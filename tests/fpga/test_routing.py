"""Routing-block stress model."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.routing import RoutingBlock


class TestRoutingBlock:
    def test_default_two_switches(self):
        block = RoutingBlock()
        assert block.n_switches == 2
        assert [t.name for t in block.transistors] == ["R1", "R2"]

    def test_delay_share_splits_evenly(self):
        block = RoutingBlock(4)
        for t in block.transistors:
            assert t.delay_weight == pytest.approx(0.25)

    def test_stressed_when_carrying_zero(self):
        block = RoutingBlock()
        stressed = block.stressed_fractions(0)
        assert stressed == {"R1": 1.0, "R2": 1.0}

    def test_unstressed_when_carrying_one(self):
        # Gate high over a weak 1 leaves Vgs ~ Vth: no PBTI stress.
        assert RoutingBlock().stressed_fractions(1) == {}

    def test_all_switches_on_poi(self):
        block = RoutingBlock(3)
        assert block.conducting_path() == ("R1", "R2", "R3")

    def test_rejects_bad_net_value(self):
        with pytest.raises(ConfigurationError):
            RoutingBlock().stressed_fractions(2)

    def test_rejects_zero_switches(self):
        with pytest.raises(ConfigurationError):
            RoutingBlock(0)

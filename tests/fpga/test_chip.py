"""FpgaChip: the virtual device under test."""

import numpy as np
import pytest

from repro.device.variation import ProcessVariation
from repro.errors import ConfigurationError
from repro.fpga.chip import FpgaChip
from repro.fpga.fabric import Fabric, Location
from repro.fpga.ring_oscillator import StressMode
from repro.units import celsius, hours

from tests.conftest import fast_technology


class TestConstruction:
    def test_fresh_chip_unshifted(self, small_chip):
        assert small_chip.delta_path_delay() == 0.0
        assert small_chip.elapsed == 0.0

    def test_fresh_path_delay_matches_stage_sum(self, small_chip):
        expected = small_chip.tech.stage_delay * 5
        assert small_chip.fresh_path_delay == pytest.approx(expected)

    def test_chips_vary_with_process_variation(self):
        tech = fast_technology()
        delays = {
            FpgaChip("c", n_stages=5, tech=tech, variation=ProcessVariation(), seed=s).fresh_path_delay
            for s in range(5)
        }
        assert len(delays) == 5

    def test_seed_reproducibility(self):
        tech = fast_technology()
        a = FpgaChip("a", n_stages=5, tech=tech, seed=9)
        b = FpgaChip("b", n_stages=5, tech=tech, seed=9)
        assert a.fresh_path_delay == b.fresh_path_delay
        a.apply_stress(hours(5.0), temperature=celsius(110.0))
        b.apply_stress(hours(5.0), temperature=celsius(110.0))
        assert a.delta_path_delay() == pytest.approx(b.delta_path_delay())

    def test_location_requires_fabric(self):
        with pytest.raises(ConfigurationError):
            FpgaChip("x", n_stages=5, tech=fast_technology(), location=Location(0, 0))

    def test_fabric_placement_slows_corner(self):
        tech = fast_technology()
        fabric = Fabric(rows=9, cols=9, gradient=0.05)
        kwargs = dict(n_stages=5, tech=tech, variation=ProcessVariation(0, 0, 0), seed=1)
        center = FpgaChip("c", fabric=fabric, location=fabric.center, **kwargs)
        corner = FpgaChip("d", fabric=fabric, location=Location(0, 0), **kwargs)
        assert corner.fresh_path_delay > center.fresh_path_delay

    def test_unknown_delay_model_rejected(self):
        with pytest.raises(ConfigurationError):
            FpgaChip("x", n_stages=5, tech=fast_technology(), delay_model="quadratic")


class TestStressRecovery:
    def test_dc_stress_ages(self, small_chip):
        small_chip.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)
        assert small_chip.delta_path_delay() > 0.0

    def test_ac_less_than_dc(self, chip_factory):
        dc = chip_factory(seed=4)
        ac = chip_factory(seed=4)
        dc.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)
        ac.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.AC)
        assert 0.0 < ac.delta_path_delay() < dc.delta_path_delay()

    def test_recovery_heals(self, small_chip):
        small_chip.apply_stress(hours(24.0), temperature=celsius(110.0))
        peak = small_chip.delta_path_delay()
        small_chip.apply_recovery(hours(6.0), temperature=celsius(110.0), supply_voltage=-0.3)
        assert small_chip.delta_path_delay() < peak

    def test_frequency_drops_with_aging(self, small_chip):
        fresh = small_chip.oscillation_frequency()
        small_chip.apply_stress(hours(24.0), temperature=celsius(110.0))
        assert small_chip.oscillation_frequency() < fresh

    def test_stress_rejects_nonpositive_supply(self, small_chip):
        with pytest.raises(ConfigurationError):
            small_chip.apply_stress(1.0, temperature=celsius(20.0), supply_voltage=0.0)

    def test_recovery_rejects_positive_supply(self, small_chip):
        with pytest.raises(ConfigurationError):
            small_chip.apply_recovery(1.0, temperature=celsius(20.0), supply_voltage=0.5)

    def test_recovery_rejects_breakdown_voltage(self, small_chip):
        with pytest.raises(ConfigurationError):
            small_chip.apply_recovery(1.0, temperature=celsius(20.0), supply_voltage=-1.0)

    def test_temperature_limit_enforced(self, small_chip):
        with pytest.raises(ConfigurationError):
            small_chip.apply_stress(1.0, temperature=celsius(150.0))

    def test_chain_input_changes_stressed_set(self, chip_factory):
        a = chip_factory(seed=6)
        b = chip_factory(seed=6)
        a.apply_stress(hours(24.0), temperature=celsius(110.0), chain_input=1)
        b.apply_stress(hours(24.0), temperature=celsius(110.0), chain_input=0)
        shifts_a = a.delta_vth()
        shifts_b = b.delta_vth()
        # Same physics, complementary stage patterns.
        assert not np.allclose(shifts_a, shifts_b)

    def test_delta_vth_shape(self, small_chip):
        assert small_chip.delta_vth().shape == (small_chip.n_owners,)


class TestSnapshotRestore:
    def test_roundtrip(self, small_chip):
        small_chip.apply_stress(hours(24.0), temperature=celsius(110.0))
        state = small_chip.snapshot()
        mid = small_chip.delta_path_delay()
        small_chip.apply_recovery(hours(6.0), temperature=celsius(110.0), supply_voltage=-0.3)
        small_chip.restore(state)
        assert small_chip.delta_path_delay() == pytest.approx(mid)
        assert small_chip.elapsed == pytest.approx(hours(24.0))

    def test_reset(self, small_chip):
        small_chip.apply_stress(hours(24.0), temperature=celsius(110.0))
        small_chip.reset()
        assert small_chip.delta_path_delay() == 0.0
        assert small_chip.elapsed == 0.0


class TestDelayModels:
    def test_alpha_power_exceeds_first_order(self):
        tech = fast_technology()
        kwargs = dict(n_stages=5, tech=tech, variation=ProcessVariation(0, 0, 0), seed=2)
        linear = FpgaChip("lin", delay_model="first-order", **kwargs)
        alpha = FpgaChip("alp", delay_model="alpha-power", **kwargs)
        for chip in (linear, alpha):
            chip.apply_stress(hours(48.0), temperature=celsius(110.0))
        assert alpha.delta_path_delay() > linear.delta_path_delay()


class TestApplyCycles:
    def segments(self):
        from repro.fpga.chip import CycleSegment

        return (
            CycleSegment.active(hours(1.0), celsius(110.0), mode=StressMode.AC),
            CycleSegment.sleep(hours(0.25), celsius(110.0), -0.3),
        )

    def test_matches_explicit_loop(self, chip_factory):
        closed = chip_factory(seed=21)
        naive = chip_factory(seed=21)
        n = 300
        closed.apply_cycles(self.segments(), n)
        for _ in range(n):
            naive.apply_stress(
                hours(1.0), temperature=celsius(110.0), mode=StressMode.AC
            )
            naive.apply_recovery(
                hours(0.25), temperature=celsius(110.0), supply_voltage=-0.3
            )
        assert closed.delta_path_delay() == pytest.approx(
            naive.delta_path_delay(), rel=1e-9
        )
        assert closed.elapsed == pytest.approx(naive.elapsed, rel=1e-12)

    def test_zero_cycles_is_noop(self, small_chip):
        small_chip.apply_cycles(self.segments(), 0)
        assert small_chip.elapsed == 0.0
        assert small_chip.delta_path_delay() == 0.0

    def test_rejects_bad_inputs(self, small_chip):
        with pytest.raises(ConfigurationError):
            small_chip.apply_cycles(self.segments(), -1)
        with pytest.raises(ConfigurationError):
            small_chip.apply_cycles((), 5)

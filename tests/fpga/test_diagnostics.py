"""Placement survey diagnostics."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.diagnostics import placement_survey
from repro.fpga.fabric import Fabric

from tests.conftest import fast_technology


class TestPlacementSurvey:
    @pytest.fixture(scope="class")
    def survey(self):
        return placement_survey(
            fabric=Fabric(rows=8, cols=8, gradient=0.03),
            n_sites=6,
            n_stages=9,
            tech=fast_technology(),
            seed=0,
        )

    def test_site_count(self, survey):
        assert len(survey.measurements) == 6

    def test_sites_distinct(self, survey):
        locations = {(m.location.row, m.location.col) for m in survey.measurements}
        assert len(locations) == 6

    def test_spatial_spread_observable(self, survey):
        # Gradient + local mismatch must produce a measurable spread.
        assert 0.0 < survey.spatial_spread < 0.2

    def test_best_site_is_fastest(self, survey):
        best = survey.best_site()
        assert best.frequency == max(m.frequency for m in survey.measurements)

    def test_table_renders(self, survey):
        text = survey.table().render()
        assert "frequency" in text

    def test_deterministic(self):
        kwargs = dict(
            fabric=Fabric(rows=8, cols=8),
            n_sites=4,
            n_stages=9,
            tech=fast_technology(),
            seed=3,
        )
        a = placement_survey(**kwargs)
        b = placement_survey(**kwargs)
        assert a.frequencies.tolist() == b.frequencies.tolist()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            placement_survey(n_sites=0)

"""Enable-gated ring (Fig. 3's En NAND stage)."""

import numpy as np
import pytest

from repro.fpga.chip import FpgaChip
from repro.fpga.netlist import InverterChainNetlist, NAND_CONFIG
from repro.fpga.ring_oscillator import StressMode
from repro.units import celsius, hours

from tests.conftest import fast_technology


class TestNandConfig:
    def test_truth_table(self):
        assert NAND_CONFIG.evaluate(0, 0) == 1
        assert NAND_CONFIG.evaluate(1, 0) == 1
        assert NAND_CONFIG.evaluate(0, 1) == 1
        assert NAND_CONFIG.evaluate(1, 1) == 0

    def test_acts_as_inverter_when_enabled(self):
        for in0 in (0, 1):
            assert NAND_CONFIG.evaluate(in0, 1) == 1 - in0


class TestEnableGatedNetlist:
    def test_frozen_pattern_is_consistent(self):
        netlist = InverterChainNetlist(n_stages=5, enable_gated=True)
        values = netlist.node_values(1)
        # Stage 0 input is the feedback of the odd chain; with the NAND
        # forcing its output high, the self-consistent pattern starts 1.
        assert values[0] == 1
        # Stage outputs alternate down the chain from the forced 1.
        np.testing.assert_array_equal(values, [1, 1, 0, 1, 0])

    def test_frozen_pattern_ignores_chain_input(self):
        netlist = InverterChainNetlist(n_stages=5, enable_gated=True)
        np.testing.assert_array_equal(netlist.node_values(0), netlist.node_values(1))

    def test_stage0_uses_nand_stress_rules(self):
        netlist = InverterChainNetlist(n_stages=5, enable_gated=True)
        fractions = netlist.dc_stress_fractions()
        # NAND with (In0=1, En=0): the selected branch passes a weak 1
        # (buffer pulldown M8 stressed, pullup M7 not); M1 on the
        # unselected In1=1 branch is gate-high over its 0 bit — stressed
        # but off the conducting path.
        assert fractions[netlist.owner_index(0, "M8")] == pytest.approx(0.67)
        assert fractions[netlist.owner_index(0, "M7")] == 0.0
        assert fractions[netlist.owner_index(0, "M1")] == 1.0
        # The selected level-2 pass (M6, En side) carries a 1: unstressed.
        assert fractions[netlist.owner_index(0, "M6")] == 0.0

    def test_running_patterns_complementary(self):
        netlist = InverterChainNetlist(n_stages=5, enable_gated=True)
        a, b = netlist.ac_stress_fractions()
        assert not np.any((a > 0) & (b > 0))

    def test_plain_chain_unchanged(self):
        plain = InverterChainNetlist(n_stages=5, enable_gated=False)
        np.testing.assert_array_equal(plain.node_values(1), [1, 0, 1, 0, 1])


class TestEnableGatedChip:
    def test_gated_chip_ages_same_order(self):
        # The gated chain's frozen pattern has one fewer heavily-stressed
        # stage (the NAND passes a weak 1); at realistic stage counts the
        # difference dilutes to a few percent, at 15 stages it is visible
        # but same-order.
        kwargs = dict(n_stages=15, tech=fast_technology(), seed=7)
        gated = FpgaChip("g", enable_gated=True, **kwargs)
        plain = FpgaChip("p", enable_gated=False, **kwargs)
        for chip in (gated, plain):
            chip.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)
        ratio = gated.delta_path_delay() / plain.delta_path_delay()
        assert 0.4 < ratio < 1.3

    def test_gated_ac_below_dc(self):
        kwargs = dict(n_stages=5, tech=fast_technology(), seed=8, enable_gated=True)
        dc = FpgaChip("dc", **kwargs)
        ac = FpgaChip("ac", **kwargs)
        dc.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)
        ac.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.AC)
        assert 0.0 < ac.delta_path_delay() < dc.delta_path_delay()

"""Ring-oscillator measurement facade (paper Fig. 3)."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.fpga.counter import ReadoutCounter
from repro.fpga.ring_oscillator import RingOscillator, StressMode
from repro.units import celsius, hours


class TestRingOscillator:
    def test_frequency_from_chip_delay(self, small_chip):
        ro = RingOscillator(small_chip)
        assert ro.frequency() == pytest.approx(1.0 / (2.0 * small_chip.path_delay()))

    def test_measurement_reflects_aging(self, small_chip):
        ro = RingOscillator(small_chip, ReadoutCounter(noise_counts=0))
        fresh = ro.measure(rng=0)
        small_chip.apply_stress(
            hours(24.0), temperature=celsius(110.0), mode=StressMode.DC
        )
        aged = ro.measure(rng=0)
        assert aged.frequency < fresh.frequency
        assert aged.delay > fresh.delay

    def test_measurement_timestamp_is_chip_elapsed(self, small_chip):
        small_chip.apply_stress(hours(1.0), temperature=celsius(20.0))
        ro = RingOscillator(small_chip)
        assert ro.measure(rng=0).timestamp == pytest.approx(hours(1.0))

    def test_averaged_measurement_tighter_than_single(self, small_chip):
        ro = RingOscillator(small_chip, ReadoutCounter(noise_counts=5))
        rng = np.random.default_rng(0)
        singles = [ro.measure(rng=rng).frequency for _ in range(100)]
        averaged = [ro.measure_averaged(8, rng=rng).frequency for _ in range(100)]
        assert np.std(averaged) < np.std(singles)

    def test_averaged_count_rounding(self, small_chip):
        ro = RingOscillator(small_chip, ReadoutCounter(noise_counts=0))
        m = ro.measure_averaged(3, rng=0)
        assert m.count == ro.counter.ideal_count(ro.frequency())

    def test_delay_consistent_with_frequency(self, small_chip):
        ro = RingOscillator(small_chip)
        m = ro.measure(rng=0)
        assert m.delay == pytest.approx(1.0 / (2.0 * m.frequency), rel=1e-9)

    def test_near_zero_fosc_raises_measurement_error(self):
        # A ring barely above DC quantises to a zero count; converting that
        # to a delay would divide by zero, so the RO refuses with a typed
        # error naming the chip instead of crashing deeper in the stack.
        class _StalledRing:
            chip_id = "stalled-chip"
            elapsed = 0.0

            def oscillation_frequency(self):
                return 0.01  # hertz — far below the counter resolution

        ro = RingOscillator(_StalledRing(), ReadoutCounter(noise_counts=0))
        with pytest.raises(MeasurementError, match="stalled-chip"):
            ro.measure(rng=0)
        with pytest.raises(MeasurementError, match="no\\s+oscillation"):
            ro.measure_averaged(3, rng=0)


class TestStressMode:
    def test_modes(self):
        assert StressMode.AC.value == "ac"
        assert StressMode.DC.value == "dc"

"""Facade equivalence: a one-chip fleet must BE an ``FpgaChip``.

The fleet engine's whole contract rests on this file: every operation
the lab stack performs on a chip — stress, recovery, cycle fast-forward,
measurement observables, state export/import, fault upsets, guard-mode
behaviour — must produce bit-identical results through a
:class:`~repro.fpga.fleet.ChipView` into an N=1 fleet and through a
standalone :class:`~repro.fpga.chip.FpgaChip` built from the same seed.
Property-style: one randomised operation tape is replayed against both.
"""

import numpy as np
import pytest

from repro.fpga.chip import CycleSegment, FpgaChip
from repro.fpga.fleet import FleetChip
from repro.fpga.ring_oscillator import StressMode
from repro.guard import Guard, GuardConfig
from repro.units import hours

SEED = 123


def make_pair(guard_mode: str = "raise"):
    guard = Guard(GuardConfig(mode=guard_mode, dump_dir=None))
    chip = FpgaChip("chip-1", seed=SEED, guard=guard)
    fleet = FleetChip(["chip-1"], [SEED], guard=guard)
    return chip, fleet.view(0)


def random_tape(seed: int, n_ops: int = 12):
    """A deterministic random sequence of chip operations."""
    rng = np.random.default_rng(seed)
    tape = []
    for _ in range(n_ops):
        op = rng.choice(["stress_dc", "stress_ac", "recover", "cycles"])
        duration = hours(float(rng.uniform(0.1, 3.0)))
        temperature = float(rng.uniform(20.0, 110.0))
        if op == "stress_dc":
            tape.append(("stress", duration, temperature, 1.2, StressMode.DC,
                         int(rng.integers(0, 2))))
        elif op == "stress_ac":
            tape.append(("stress", duration, temperature, 1.1, StressMode.AC, 1))
        elif op == "recover":
            voltage = float(rng.choice([0.0, -0.3]))
            tape.append(("recover", duration, temperature, voltage))
        else:
            tape.append(("cycles", duration, temperature, int(rng.integers(2, 6))))
    return tape


def replay(target, tape):
    for entry in tape:
        if entry[0] == "stress":
            _, duration, temperature, supply, mode, chain = entry
            target.apply_stress(duration, temperature, supply_voltage=supply,
                                mode=mode, chain_input=chain)
        elif entry[0] == "recover":
            _, duration, temperature, voltage = entry
            target.apply_recovery(duration, temperature, supply_voltage=voltage)
        else:
            _, duration, temperature, n = entry
            segments = [
                CycleSegment.active(duration, temperature),
                CycleSegment.sleep(duration / 4.0, temperature,
                                   supply_voltage=-0.3),
            ]
            target.apply_cycles(segments, n)


def assert_states_equal(chip: FpgaChip, view) -> None:
    assert view.elapsed == chip.elapsed
    np.testing.assert_array_equal(view.delta_vth(), chip.delta_vth())
    assert view.path_delay() == chip.path_delay()
    assert view.oscillation_frequency() == chip.oscillation_frequency()
    a, b = chip.export_state(), view.export_state()
    assert a.keys() == b.keys()
    for key in a:
        np.testing.assert_array_equal(a[key], b[key])


class TestFacadeEquivalence:
    def test_fresh_state_identical(self):
        chip, view = make_pair()
        assert view.fresh_path_delay == chip.fresh_path_delay
        assert view.n_owners == chip.n_owners
        assert_states_equal(chip, view)

    @pytest.mark.parametrize("tape_seed", [0, 1, 2])
    def test_random_tape_bit_identical(self, tape_seed):
        chip, view = make_pair()
        tape = random_tape(tape_seed)
        replay(chip, tape)
        replay(view, tape)
        assert_states_equal(chip, view)

    @pytest.mark.parametrize("mode", ["raise", "clamp", "off"])
    def test_guard_modes_agree(self, mode):
        chip, view = make_pair(guard_mode=mode)
        tape = random_tape(4, n_ops=6)
        replay(chip, tape)
        replay(view, tape)
        assert_states_equal(chip, view)
        assert view.guard.violations == chip.guard.violations == 0

    def test_injected_upset_identical_through_both_surfaces(self):
        chip, view = make_pair(guard_mode="off")  # upset would trip raise
        chip.apply_stress(hours(1.0), 110.0)
        view.apply_stress(hours(1.0), 110.0)
        chip.inject_trap_upset(float("nan"), n_traps=32)
        view.inject_trap_upset(float("nan"), n_traps=32)
        a, b = chip.export_state(), view.export_state()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])

    def test_state_roundtrip_across_surfaces(self):
        # A state exported from the standalone chip imports into the
        # fleet view (and back) — the checkpoint path works unmodified.
        chip, view = make_pair()
        chip.apply_stress(hours(2.0), 110.0)
        view.import_state(chip.export_state())
        assert_states_equal(chip, view)
        view.apply_recovery(hours(1.0), 20.0, supply_voltage=-0.3)
        chip.apply_recovery(hours(1.0), 20.0, supply_voltage=-0.3)
        assert_states_equal(chip, view)

    def test_snapshot_restore_and_reset(self):
        chip, view = make_pair()
        replay(chip, random_tape(9, n_ops=4))
        replay(view, random_tape(9, n_ops=4))
        snapshot = view.snapshot()
        view.apply_stress(hours(5.0), 110.0)
        view.restore(snapshot)
        assert_states_equal(chip, view)
        view.reset()
        chip.reset()
        assert_states_equal(chip, view)

"""Property-based invariants of the LUT stress mapping (hypothesis).

The paper's two hypotheses must hold for *any* pass-transistor LUT
configuration, not just the inverter: these properties sweep all 16
configurations and all four input vectors.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.lut import LutConfig, PassTransistorLut

configs = st.tuples(
    st.integers(0, 1), st.integers(0, 1), st.integers(0, 1), st.integers(0, 1)
)
bits = st.integers(0, 1)


class TestLutProperties:
    @given(cfg=configs, in0=bits, in1=bits)
    @settings(max_examples=80, deadline=None)
    def test_evaluate_matches_config_bits(self, cfg, in0, in1):
        lut = PassTransistorLut(LutConfig(cfg))
        assert lut.evaluate(in0, in1) == cfg[2 * in1 + in0]

    @given(cfg=configs, in0=bits, in1=bits)
    @settings(max_examples=80, deadline=None)
    def test_stressed_names_and_fractions_valid(self, cfg, in0, in1):
        lut = PassTransistorLut(LutConfig(cfg))
        names = {t.name for t in lut.transistors}
        for name, fraction in lut.stressed_fractions(in0, in1).items():
            assert name in names
            assert 0.0 < fraction <= 1.0

    @given(cfg=configs, in0=bits, in1=bits)
    @settings(max_examples=80, deadline=None)
    def test_exactly_one_buffer_device_stressed(self, cfg, in0, in1):
        # The buffer input is always a definite logic level, so exactly
        # one of M7 (input 0) / M8 (input 1) is stressed.
        stressed = PassTransistorLut(LutConfig(cfg)).stressed_fractions(in0, in1)
        assert ("M7" in stressed) != ("M8" in stressed)

    @given(cfg=configs, in0=bits, in1=bits)
    @settings(max_examples=80, deadline=None)
    def test_pass_transistor_stressed_only_when_carrying_zero(self, cfg, in0, in1):
        lut = PassTransistorLut(LutConfig(cfg))
        stressed = lut.stressed_fractions(in0, in1)
        carried = {
            "M1": cfg[3], "M2": cfg[2], "M3": cfg[1], "M4": cfg[0],
            "M5": cfg[2 + in0], "M6": cfg[in0],
        }
        for name, value in carried.items():
            if name in stressed:
                assert value == 0

    @given(cfg=configs, in0=bits, in1=bits)
    @settings(max_examples=80, deadline=None)
    def test_conducting_path_structure(self, cfg, in0, in1):
        lut = PassTransistorLut(LutConfig(cfg))
        path = lut.conducting_path(in0, in1)
        assert len(path) == 4
        level1, level2, pullup, pulldown = path
        assert level1 in {"M1", "M2", "M3", "M4"}
        assert level2 in {"M5", "M6"}
        assert (pullup, pulldown) == ("M7", "M8")
        # The selected level-2 pass matches In1.
        assert level2 == ("M5" if in1 == 1 else "M6")

    @given(cfg=configs, in0=bits, in1=bits)
    @settings(max_examples=40, deadline=None)
    def test_hypothesis1_stressed_set_deterministic(self, cfg, in0, in1):
        lut = PassTransistorLut(LutConfig(cfg))
        assert lut.stressed_fractions(in0, in1) == lut.stressed_fractions(in0, in1)

    @given(cfg=configs)
    @settings(max_examples=16, deadline=None)
    def test_complementary_inputs_share_no_pass_stress(self, cfg):
        # Flipping In0 (with In1 fixed high) moves the conducting branch:
        # a level-1 pass transistor cannot be gate-high in both states.
        lut = PassTransistorLut(LutConfig(cfg))
        stressed_a = lut.stressed_fractions(0, 1)
        stressed_b = lut.stressed_fractions(1, 1)
        level1 = {"M1", "M2", "M3", "M4"}
        assert not (set(stressed_a) & set(stressed_b) & level1)

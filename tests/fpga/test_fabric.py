"""Fabric grid with systematic variation surface."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.fabric import Fabric, Location


class TestFabric:
    def test_center_is_fastest(self):
        fabric = Fabric(rows=9, cols=9, gradient=0.02)
        center = fabric.systematic_multiplier(fabric.center)
        corner = fabric.systematic_multiplier(Location(0, 0))
        assert center < corner
        assert center == pytest.approx(1.0, abs=1e-3)

    def test_corner_reaches_full_gradient(self):
        fabric = Fabric(rows=9, cols=9, gradient=0.02)
        assert fabric.systematic_multiplier(Location(0, 0)) == pytest.approx(1.02)

    def test_symmetry(self):
        fabric = Fabric(rows=9, cols=9)
        assert fabric.systematic_multiplier(Location(0, 0)) == pytest.approx(
            fabric.systematic_multiplier(Location(8, 8))
        )

    def test_contains(self):
        fabric = Fabric(rows=4, cols=4)
        assert fabric.contains(Location(3, 3))
        assert not fabric.contains(Location(4, 0))

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Fabric(rows=4, cols=4).systematic_multiplier(Location(9, 9))

    def test_placement_sites_distinct(self):
        fabric = Fabric(rows=8, cols=8)
        sites = fabric.placement_sites(10, rng=0)
        assert len(sites) == 10
        assert len({(s.row, s.col) for s in sites}) == 10
        assert all(fabric.contains(s) for s in sites)

    def test_placement_sites_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            Fabric(rows=2, cols=2).placement_sites(5, rng=0)

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            Fabric(rows=0, cols=4)

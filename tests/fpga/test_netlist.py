"""Inverter-chain netlist: owner indexing, weights, stress patterns."""

import numpy as np
import pytest

from repro.device.technology import TECH_40NM
from repro.errors import ConfigurationError
from repro.fpga.netlist import InverterChainNetlist


@pytest.fixture
def netlist() -> InverterChainNetlist:
    return InverterChainNetlist(n_stages=5)


class TestStructure:
    def test_owner_count(self, netlist):
        # 8 LUT transistors + 2 routing switches per stage.
        assert netlist.owners_per_stage == 10
        assert netlist.n_owners == 50

    def test_default_is_paper_configuration(self):
        assert InverterChainNetlist().n_stages == 75

    def test_rejects_even_or_short_chains(self):
        with pytest.raises(ConfigurationError):
            InverterChainNetlist(n_stages=4)
        with pytest.raises(ConfigurationError):
            InverterChainNetlist(n_stages=1)

    def test_owner_index_roundtrip(self, netlist):
        idx = netlist.owner_index(2, "M5")
        assert netlist.owner_names[idx] == "S2.M5"
        assert netlist.owner_stage[idx] == 2

    def test_owner_index_bounds(self, netlist):
        with pytest.raises(ConfigurationError):
            netlist.owner_index(99, "M1")
        with pytest.raises(ConfigurationError):
            netlist.owner_index(0, "M99")

    def test_exactly_one_pmos_per_stage(self, netlist):
        assert netlist.owner_is_pmos.sum() == netlist.n_stages


class TestDelayWeights:
    def test_off_poi_devices_have_zero_weight(self, netlist):
        weights = netlist.delay_weights(TECH_40NM)
        for stage in range(netlist.n_stages):
            for name in ("M3", "M4", "M6"):
                assert weights[netlist.owner_index(stage, name)] == 0.0

    def test_weights_sum_to_stage_delay(self, netlist):
        # Averaged POI membership covers each delay component exactly once
        # per stage: level-1 splits over M1/M2, level-2 is M5, the buffer
        # splits over M7/M8, routing over its switches.
        weights = netlist.delay_weights(TECH_40NM)
        per_stage = weights.reshape(netlist.n_stages, netlist.owners_per_stage).sum(axis=1)
        np.testing.assert_allclose(per_stage, TECH_40NM.stage_delay, rtol=1e-12)

    def test_m5_carries_full_level2_share(self, netlist):
        weights = netlist.delay_weights(TECH_40NM)
        m5 = weights[netlist.owner_index(0, "M5")]
        m1 = weights[netlist.owner_index(0, "M1")]
        assert m5 == pytest.approx(2.0 * m1)  # M1 is on the POI half the time


class TestStressPatterns:
    def test_node_values_alternate(self, netlist):
        np.testing.assert_array_equal(netlist.node_values(1), [1, 0, 1, 0, 1])
        np.testing.assert_array_equal(netlist.node_values(0), [0, 1, 0, 1, 0])

    def test_node_values_reject_bad_input(self, netlist):
        with pytest.raises(ConfigurationError):
            netlist.node_values(2)

    def test_dc_pattern_alternates_stage_stress(self, netlist):
        fractions = netlist.dc_stress_fractions(1)
        # Stage 0 has input 1: M1/M5/M7 stressed plus routing (output 0).
        assert fractions[netlist.owner_index(0, "M1")] == 1.0
        assert fractions[netlist.owner_index(0, "M5")] == 1.0
        assert fractions[netlist.owner_index(0, "M7")] == 1.0
        assert fractions[netlist.owner_index(0, "R1")] == 1.0
        # Stage 1 has input 0: only the weak buffer pulldown.
        assert fractions[netlist.owner_index(1, "M1")] == 0.0
        assert fractions[netlist.owner_index(1, "M8")] == pytest.approx(0.67)
        assert fractions[netlist.owner_index(1, "R1")] == 0.0

    def test_ac_patterns_are_complementary(self, netlist):
        a, b = netlist.ac_stress_fractions()
        # Every owner stressed in exactly one of the two half patterns.
        np.testing.assert_array_equal(a > 0, ~(b > 0) & (a > 0) | (a > 0))
        assert not np.any((a > 0) & (b > 0))

    def test_dc_stressed_set_is_deterministic(self, netlist):
        np.testing.assert_array_equal(
            netlist.dc_stress_fractions(1), netlist.dc_stress_fractions(1)
        )

"""Counter overflow must behave identically on every readout path.

A hardware 16-bit counter silently wraps ``count mod 2**16`` and aliases
a fast oscillator to a bogus low frequency.  The virtual instrument
refuses instead — and the refusal must be *one* behaviour shared by the
scalar :meth:`read`, the burst :meth:`read_many` and (through them) the
fleet's inline readout: the same typed
:class:`~repro.errors.CounterOverflowError` at the same threshold.
"""

import numpy as np
import pytest

from repro.errors import CounterOverflowError, MeasurementError
from repro.fpga.counter import ReadoutCounter

#: fosc that lands exactly on max_count at fref=500 (65535 * 2 * 500).
AT_LIMIT = 65_535_000.0


class TestUnifiedOverflow:
    def test_scalar_and_burst_raise_the_same_type(self):
        counter = ReadoutCounter(fref=500.0, bits=16, noise_counts=0)
        over = AT_LIMIT + 1000.0
        with pytest.raises(CounterOverflowError):
            counter.read(over, rng=0)
        with pytest.raises(CounterOverflowError):
            counter.read_many(over, 3, rng=0)

    def test_overflow_error_is_a_measurement_error(self):
        # The retry layer catches MeasurementError; the overflow must be
        # re-readable (fault-injected droop can push fosc past the range
        # transiently), so the subtype relation is load-bearing.
        assert issubclass(CounterOverflowError, MeasurementError)

    def test_threshold_is_exactly_max_count(self):
        counter = ReadoutCounter(fref=500.0, bits=16, noise_counts=0)
        assert counter.read(AT_LIMIT, rng=0) == counter.max_count
        counts = counter.read_many(AT_LIMIT, 3, rng=0)
        assert counts.max() == counter.max_count

    def test_noise_can_push_a_boundary_count_over(self):
        # ideal == max_count: a +1 noise draw overflows; both paths must
        # agree draw-for-draw on one seed.
        counter = ReadoutCounter(fref=500.0, bits=16, noise_counts=5)
        scalar_fail = burst_fail = False
        try:
            rng = np.random.default_rng(2)
            for _ in range(64):
                counter.read(AT_LIMIT, rng=rng)
        except CounterOverflowError:
            scalar_fail = True
        try:
            counter.read_many(AT_LIMIT, 64, rng=np.random.default_rng(2))
        except CounterOverflowError:
            burst_fail = True
        assert scalar_fail and burst_fail

    def test_burst_stream_identical_to_sequential_reads(self):
        counter = ReadoutCounter(fref=500.0, noise_counts=5)
        fosc = 3.2e6
        burst = counter.read_many(fosc, 16, rng=np.random.default_rng(9))
        rng = np.random.default_rng(9)
        sequential = [counter.read(fosc, rng=rng) for _ in range(16)]
        np.testing.assert_array_equal(burst, sequential)

    def test_clamp_floor_shared_by_both_paths(self):
        # Near-zero fosc: negative noisy counts clamp to 0 on both paths.
        counter = ReadoutCounter(fref=500.0, noise_counts=5)
        fosc = 1000.0  # ideal count 1
        burst = counter.read_many(fosc, 64, rng=np.random.default_rng(3))
        rng = np.random.default_rng(3)
        sequential = [counter.read(fosc, rng=rng) for _ in range(64)]
        assert burst.min() == 0
        np.testing.assert_array_equal(burst, sequential)

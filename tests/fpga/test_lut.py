"""Pass-transistor LUT: logic, stress mapping, POI (paper Fig. 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.lut import (
    BUFFER_ON_IN0,
    INVERTER_ON_IN0,
    LutConfig,
    PassTransistorLut,
)


class TestLutConfig:
    def test_inverter_truth_table(self):
        for in1 in (0, 1):
            assert INVERTER_ON_IN0.evaluate(0, in1) == 1
            assert INVERTER_ON_IN0.evaluate(1, in1) == 0

    def test_buffer_truth_table(self):
        for in1 in (0, 1):
            assert BUFFER_ON_IN0.evaluate(0, in1) == 0
            assert BUFFER_ON_IN0.evaluate(1, in1) == 1

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            LutConfig((1, 0, 2, 0))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            INVERTER_ON_IN0.evaluate(2, 0)


class TestStressMapping:
    """The paper's inverter example: In1 = 1, config = inverter on In0."""

    @pytest.fixture
    def lut(self) -> PassTransistorLut:
        return PassTransistorLut(INVERTER_ON_IN0)

    def test_input_high_stresses_selected_path_and_buffer_pullup(self, lut):
        # In0 = 1: the selected bit is 0; the conducting level-1 (M1) and
        # level-2 (M5) passes carry it and the buffer PMOS sees a 0 input.
        stressed = lut.stressed_fractions(1, 1)
        assert stressed["M1"] == 1.0
        assert stressed["M5"] == 1.0
        assert stressed["M7"] == 1.0
        assert "M8" not in stressed

    def test_input_low_stresses_only_buffer_pulldown(self, lut):
        # In0 = 0: the tree passes a weak 1 — no pass-transistor stress,
        # only the buffer NMOS at reduced overdrive (the paper's "only M7
        # is under stress" case, in our naming M8).
        stressed = lut.stressed_fractions(0, 1)
        assert set(stressed) == {"M8"}
        assert stressed["M8"] == pytest.approx(0.67)

    def test_off_branch_transistor_also_stressed_physically(self, lut):
        # M3 (the In1=0 branch pass gated by In0) is physically stressed
        # when In0 = 1 and its bit is 0 — but it is NOT on the POI.
        stressed = lut.stressed_fractions(1, 1)
        assert stressed.get("M3") == 1.0
        assert "M3" not in lut.conducting_path(1, 1)

    def test_hypothesis1_constant_stressed_set_under_dc(self, lut):
        # Once the inputs are fixed the stressed set is constant.
        assert lut.stressed_fractions(1, 1) == lut.stressed_fractions(1, 1)

    def test_conducting_path_selection(self, lut):
        assert lut.conducting_path(1, 1) == ("M1", "M5", "M7", "M8")
        assert lut.conducting_path(0, 1) == ("M2", "M5", "M7", "M8")
        assert lut.conducting_path(1, 0) == ("M3", "M6", "M7", "M8")
        assert lut.conducting_path(0, 0) == ("M4", "M6", "M7", "M8")

    def test_buffer_always_on_path(self, lut):
        for in0 in (0, 1):
            for in1 in (0, 1):
                path = lut.conducting_path(in0, in1)
                assert "M7" in path and "M8" in path

    def test_transistor_lookup(self, lut):
        assert lut.transistor("M7").is_pmos
        assert not lut.transistor("M5").is_pmos
        with pytest.raises(ConfigurationError):
            lut.transistor("M99")

    def test_transistor_index_consistent(self, lut):
        for i, t in enumerate(lut.transistors):
            assert lut.transistor_index(t.name) == i

    def test_eight_transistors(self, lut):
        assert len(lut.transistors) == 8
        names = [t.name for t in lut.transistors]
        assert names == ["M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8"]

    def test_only_buffer_pullup_is_pmos(self, lut):
        pmos = [t.name for t in lut.transistors if t.is_pmos]
        assert pmos == ["M7"]


class TestBufferConfigStress:
    def test_buffer_config_input_low_stresses_tree(self):
        # A buffer (out = In0) passes a 0 when In0 = 0: the *other*
        # level-1 pass (gated by ~In0) carries it.
        lut = PassTransistorLut(BUFFER_ON_IN0)
        stressed = lut.stressed_fractions(0, 1)
        assert stressed.get("M2") == 1.0
        assert stressed.get("M5") == 1.0
        assert stressed.get("M7") == 1.0

"""16-bit readout counter (paper Eqs. 14-15)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, CounterOverflowError, MeasurementError
from repro.fpga.counter import ReadoutCounter


class TestReadoutCounter:
    def test_equation_14_roundtrip(self):
        counter = ReadoutCounter(fref=500.0, noise_counts=0)
        fosc = 3.2e6
        count = counter.read(fosc, rng=0)
        assert counter.frequency(count) == pytest.approx(fosc, rel=1e-3)

    def test_equation_15_delay(self):
        counter = ReadoutCounter(fref=500.0)
        count = 3200
        # Td = 1/(4 * Cout * fref)
        assert counter.delay(count) == pytest.approx(1.0 / (4.0 * 3200 * 500.0))

    def test_noise_bounded_by_spec(self):
        counter = ReadoutCounter(noise_counts=5)
        ideal = counter.ideal_count(3.2e6)
        rng = np.random.default_rng(1)
        reads = [counter.read(3.2e6, rng=rng) for _ in range(200)]
        assert max(abs(r - ideal) for r in reads) <= 5

    def test_noise_free_mode(self):
        counter = ReadoutCounter(noise_counts=0)
        reads = {counter.read(3.2e6, rng=i) for i in range(10)}
        assert len(reads) == 1

    def test_overflow_detected(self):
        counter = ReadoutCounter(fref=500.0, bits=16)
        with pytest.raises(CounterOverflowError):
            counter.read(100e6, rng=0)  # needs 100000 counts > 65535

    def test_max_count(self):
        assert ReadoutCounter(bits=16).max_count == 65535

    def test_paper_operating_point_fits_in_16_bits(self):
        # A fresh 75-stage CUT at ~155 ns (3.2 MHz) must be measurable.
        counter = ReadoutCounter()
        count = counter.read(3.2e6, rng=0)
        assert 0 < count < counter.max_count

    @pytest.mark.parametrize("kwargs", [dict(fref=0.0), dict(bits=0), dict(noise_counts=-1)])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            ReadoutCounter(**kwargs)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigurationError):
            ReadoutCounter().ideal_count(0.0)

    def test_delay_rejects_zero_count_as_measurement_error(self):
        # A zero count is a noise-driven measurement outcome, not a
        # configuration mistake — it must surface as MeasurementError so
        # the retry layer can re-read instead of crashing the campaign.
        with pytest.raises(MeasurementError):
            ReadoutCounter().delay(0)


class TestReadMany:
    def test_matches_scalar_reads_on_the_same_stream(self):
        counter = ReadoutCounter(noise_counts=5)
        fosc = 3.2e6
        batch = counter.read_many(fosc, 40, rng=np.random.default_rng(9))
        rng = np.random.default_rng(9)
        scalar = [counter.read(fosc, rng=rng) for _ in range(40)]
        np.testing.assert_array_equal(batch, scalar)

    def test_noise_free_batch_is_constant(self):
        counter = ReadoutCounter(noise_counts=0)
        batch = counter.read_many(3.2e6, 10, rng=np.random.default_rng(0))
        assert np.all(batch == counter.ideal_count(3.2e6))

    def test_batch_overflow_detected(self):
        counter = ReadoutCounter(fref=500.0, bits=16)
        with pytest.raises(CounterOverflowError):
            counter.read_many(100e6, 4, rng=np.random.default_rng(0))

    def test_counts_never_negative(self):
        counter = ReadoutCounter(fref=500.0, noise_counts=50)
        batch = counter.read_many(2000.0, 200, rng=np.random.default_rng(3))
        assert np.all(batch >= 0)

"""Silicon odometer aging sensor."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.sensors import SiliconOdometer
from repro.fpga.ring_oscillator import StressMode
from repro.units import celsius, hours

from tests.conftest import fast_technology


def make_sensor(seed=0) -> SiliconOdometer:
    return SiliconOdometer(n_stages=9, tech=fast_technology(), seed=seed)


class TestSiliconOdometer:
    def test_fresh_sensor_reads_near_zero(self):
        sensor = make_sensor()
        reading = sensor.measure(celsius(20.0), rng=0)
        # Fresh mismatch offset only: well below any real degradation.
        assert abs(reading.degradation) < 0.01

    def test_tracks_stress(self):
        sensor = make_sensor()
        offset = sensor.calibrate(rng=0)
        sensor.experience(
            hours(24.0), celsius(110.0), supply_voltage=1.2, mode=StressMode.DC
        )
        reading = sensor.measure(celsius(110.0), rng=1)
        estimate = reading.degradation - offset
        truth = sensor.true_degradation()
        assert truth > 0.005
        assert estimate == pytest.approx(truth, rel=0.35)

    def test_tracks_recovery(self):
        sensor = make_sensor()
        offset = sensor.calibrate(rng=0)
        sensor.experience(hours(24.0), celsius(110.0), supply_voltage=1.2)
        aged = sensor.measure(celsius(110.0), rng=1).degradation - offset
        sensor.experience(hours(6.0), celsius(110.0), supply_voltage=-0.3)
        healed = sensor.measure(celsius(110.0), rng=2).degradation - offset
        assert healed < aged

    def test_reference_barely_ages(self):
        sensor = make_sensor()
        sensor.experience(hours(24.0), celsius(110.0), supply_voltage=1.2)
        # The reference chip only saw readout bursts and passive recovery.
        assert sensor._reference.delta_path_delay() < 0.1 * (
            sensor._stressed.delta_path_delay() + 1e-15
        )

    def test_calibrate_only_when_fresh(self):
        sensor = make_sensor()
        sensor.experience(hours(1.0), celsius(110.0), supply_voltage=1.2)
        with pytest.raises(ConfigurationError):
            sensor.calibrate(rng=0)

    def test_elapsed_tracks_experience(self):
        sensor = make_sensor()
        sensor.experience(hours(2.0), celsius(20.0), supply_voltage=1.2)
        assert sensor.elapsed >= hours(2.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            SiliconOdometer(readout_overhead=-1.0)

    def test_reading_fields_consistent(self):
        sensor = make_sensor()
        sensor.experience(hours(12.0), celsius(110.0), supply_voltage=1.2)
        reading = sensor.measure(celsius(110.0), rng=0)
        expected = 1.0 - reading.stressed_frequency / reading.reference_frequency
        assert reading.degradation == pytest.approx(expected)

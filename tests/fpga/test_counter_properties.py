"""Property-based invariants of the readout chain (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.counter import ReadoutCounter


class TestCounterProperties:
    @given(fosc=st.floats(min_value=1e5, max_value=6e7))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_within_quantisation(self, fosc):
        counter = ReadoutCounter(noise_counts=0)
        count = counter.read(fosc, rng=0)
        # Eq. 14 inverts the readout to within half an LSB.
        assert abs(counter.frequency(count) - fosc) <= counter.fref + 1e-9

    @given(fosc=st.floats(min_value=1e5, max_value=6e7))
    @settings(max_examples=60, deadline=None)
    def test_delay_frequency_consistency(self, fosc):
        counter = ReadoutCounter(noise_counts=0)
        count = counter.read(fosc, rng=0)
        # Eq. 15 == 1 / (2 * Eq. 14) up to float rounding.
        assert abs(counter.delay(count) * 2.0 * counter.frequency(count) - 1.0) < 1e-12

    @given(
        fosc=st.floats(min_value=1e6, max_value=3e7),
        noise=st.integers(min_value=0, max_value=20),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_noise_never_exceeds_spec(self, fosc, noise, seed):
        counter = ReadoutCounter(noise_counts=noise)
        ideal = counter.ideal_count(fosc)
        count = counter.read(fosc, rng=seed)
        assert abs(count - ideal) <= noise

    @given(
        f_slow=st.floats(min_value=1e6, max_value=2e7),
        factor=st.floats(min_value=1.001, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_frequency(self, f_slow, factor):
        counter = ReadoutCounter(noise_counts=0)
        assert counter.read(f_slow * factor, rng=0) >= counter.read(f_slow, rng=0)


class TestChamberProperties:
    @given(
        setpoint=st.floats(min_value=-40.0, max_value=125.0),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_fluctuation_bounded_everywhere(self, setpoint, seed):
        from repro.lab.thermal_chamber import ThermalChamber
        from repro.units import celsius

        chamber = ThermalChamber(fluctuation_c=0.3)
        chamber.set_temperature_celsius(setpoint)
        actual = chamber.actual_temperature(rng=seed)
        assert abs(actual - celsius(setpoint)) <= 0.3 + 1e-12

"""Arrhenius study: Ea extraction and holdout prediction."""

import numpy as np
import pytest

from repro.core.fitting import fit_arrhenius_rate
from repro.errors import ConfigurationError, FittingError
from repro.experiments import arrhenius
from repro.units import celsius


class TestFitArrheniusRate:
    def test_recovers_known_ea(self):
        ea = 0.7
        temps = [celsius(t) for t in (60.0, 80.0, 100.0, 120.0)]
        k = 8.617333262e-5
        rates = [1e-3 * np.exp(-ea / k * (1.0 / t - 1.0 / temps[-1])) for t in temps]
        fit = fit_arrhenius_rate(temps, rates)
        assert fit.parameters.ea_ev == pytest.approx(ea, rel=1e-6)
        assert fit.parameters.rate(temps[-1]) == pytest.approx(1e-3, rel=1e-6)

    def test_rate_monotone_for_positive_ea(self):
        fit_params = fit_arrhenius_rate(
            [300.0, 330.0, 360.0], [1e-4, 1e-3, 1e-2]
        ).parameters
        assert fit_params.rate(360.0) > fit_params.rate(300.0)

    def test_validation(self):
        with pytest.raises(FittingError):
            fit_arrhenius_rate([300.0, 310.0], [1.0, 2.0])
        with pytest.raises(FittingError):
            fit_arrhenius_rate([300.0, 310.0, 320.0], [1.0, -2.0, 3.0])


class TestArrheniusStudy:
    @pytest.fixture(scope="class")
    def result(self):
        # Small chips keep the sweep quick; the physics is per-device.
        return arrhenius.run(seed=0, n_stages=15)

    def test_rate_constants_increase_with_temperature(self, result):
        rates = [leg.fit.parameters.rate_c for leg in result.legs]
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_extracted_ea_near_microscopic_truth(self, result):
        assert result.effective_ea_ev == pytest.approx(0.9, abs=0.3)
        assert result.rate_law.r_squared > 0.98

    def test_holdout_prediction_validates(self, result):
        assert result.holdout_validation.passed, result.holdout_validation.describe()

    def test_projection_monotone_in_lifetime(self, result):
        table = result.projection_table()
        shifts = [row[1] for row in table.rows]
        assert all(a < b for a, b in zip(shifts, shifts[1:]))
        # Healing column is the margin-relaxed fraction of the unmitigated.
        for row in table.rows:
            assert row[2] == pytest.approx(row[1] * (1.0 - 0.724), rel=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            arrhenius.run(temperatures_c=(100.0, 110.0))
        with pytest.raises(ConfigurationError):
            arrhenius.run(temperatures_c=(90.0, 100.0, 110.0), holdout_c=100.0)

"""Experiment registry completeness."""

from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import EXPERIMENTS, get_experiment

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "FIG1", "FIG2", "FIG3", "TAB1", "TAB1F", "FIG4", "FIG5", "TAB2",
            "TAB3", "FIG6", "FIG7", "FIG8", "TAB4", "TAB5", "FIG9", "FIG10",
            "DEPEND",
        }
        assert set(EXPERIMENTS) == expected

    def test_lookup_case_insensitive(self):
        assert get_experiment("fig4").exp_id == "FIG4"

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            get_experiment("FIG99")

    def test_runners_are_callable(self):
        for descriptor in EXPERIMENTS.values():
            assert callable(descriptor.runner)

    def test_bench_files_exist(self):
        for descriptor in EXPERIMENTS.values():
            assert (REPO_ROOT / descriptor.bench).is_file(), descriptor.bench

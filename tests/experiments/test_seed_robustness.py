"""Seed robustness: the paper's orderings hold across virtual chip lots.

The calibration bands are asserted at the default seed; the *orderings*
— the actual reproduced claims — must survive different chip draws.
"""

import pytest

from repro.experiments import fig4, table1, table4

SEEDS = (1, 2)  # seed 0 is exercised everywhere else


@pytest.mark.parametrize("seed", SEEDS)
class TestSeedRobustness:
    def test_recovery_ordering_holds(self, seed):
        result = table4.run(seed)
        values = result.margin_relaxed
        assert (
            values["R20Z6"]
            < values["AR20N6"]
            < values["AR110Z6"]
            < values["AR110N6"]
        )

    def test_headline_case_in_loose_band(self, seed):
        value = table4.run(seed).margin_relaxed["AR110N6"]
        assert 60.0 <= value <= 88.0

    def test_ac_below_dc(self, seed):
        result = fig4.run(seed)
        assert 0.35 <= result.ac_dc_ratio <= 0.80

    def test_all_cases_recover(self, seed):
        campaign = table1.campaign(seed)
        for case, chip in (("R20Z6", 2), ("AR20N6", 3), ("AR110Z6", 4),
                           ("AR110N6", 5), ("AR110N12", 5)):
            __, shifts = campaign.delay_change_series(case, chip_no=chip)
            assert shifts[-1] < shifts[0]

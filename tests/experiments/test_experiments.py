"""Experiment runners — the paper-shape integration suite.

Every assertion here is a *shape* claim from the paper's evaluation
section, checked against the shared (session-scoped) virtual campaign.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.calibration import PAPER_TARGETS
from repro.units import hours


@pytest.fixture(scope="module", autouse=True)
def warm_campaign(campaign_result):
    """Ensure the shared campaign exists before any runner executes."""
    return campaign_result


class TestFig1:
    def test_sawtooth_with_accumulating_residue(self):
        result = fig1.run(n_cycles=3)
        assert result.residual_accumulates
        assert np.all(result.troughs < result.peaks)

    def test_trace_starts_fresh(self):
        result = fig1.run()
        assert result.trace.values[0] == 0.0


class TestTable1:
    def test_schedule_table_rows(self):
        table = table1.schedule_table()
        assert len(table.rows) == 11

    def test_campaign_cached(self):
        assert table1.campaign(0) is table1.campaign(0)


class TestFig4:
    def test_ac_about_half_of_dc(self):
        result = fig4.run()
        assert result.in_band, f"AC/DC ratio {result.ac_dc_ratio:.2f} out of band"

    def test_both_curves_fast_then_slow(self):
        result = fig4.run()
        for series in (result.ac, result.dc):
            first_half = series.at(hours(12.0))
            assert first_half > 0.55 * series.final

    def test_table_renders(self):
        text = fig4.run().table().render()
        assert "AC stress" in text


class TestFig5:
    def test_temperature_ordering(self):
        assert fig5.run().hotter_wears_faster

    def test_model_overlays_validate(self):
        result = fig5.run()
        assert result.at_110c.validation.passed
        assert result.at_100c.validation.passed

    def test_degradation_over_one_percent(self):
        # The paper chose accelerated temperatures precisely because they
        # show > 1 % frequency degradation within a day.
        result = table2.run()
        assert result.at_110c.final > 1.0
        assert result.at_100c.final > 1.0


class TestTable2:
    def test_band_checks(self):
        values = table2.run().values()
        ratio = values["110C"][24.0] / values["100C"][24.0]
        assert PAPER_TARGETS["temp_ratio_110_over_100"].contains(ratio)
        growth = values["110C"][24.0] / values["110C"][3.0]
        assert PAPER_TARGETS["growth_24h_over_3h"].contains(growth)
        assert PAPER_TARGETS["dc_degradation_percent_110"].contains(values["110C"][24.0])

    def test_monotone_in_time(self):
        values = table2.run().values()
        for temp in ("110C", "100C"):
            marks = [values[temp][m] for m in (3.0, 6.0, 12.0, 24.0)]
            assert all(a < b for a, b in zip(marks, marks[1:]))


class TestTable3:
    def test_all_fits_acceptable(self):
        assert table3.run().all_fits_acceptable

    def test_tables_render(self):
        result = table3.run()
        assert "beta" in result.stress_table().render()
        assert "phi2" in result.recovery_table().render()

    def test_hotter_stress_fits_larger_prefactor_rate_product(self):
        # The 110 C curve rises faster; its fitted beta*log-slope at the
        # 24 h mark must exceed the 100 C one.
        result = table3.run()
        hot = result.stress_fits["AS110DC24"].parameters
        cold = result.stress_fits["AS100DC24"].parameters
        assert hot.shift(hours(24.0)) > cold.shift(hours(24.0))


class TestFig6:
    def test_negative_voltage_accelerates_both_panels(self):
        result = fig6.run()
        assert result.negative_voltage_accelerates_at_20c
        assert result.negative_voltage_accelerates_at_110c


class TestFig7:
    def test_heat_accelerates_both_panels(self):
        result = fig7.run()
        assert result.heat_accelerates_at_0v
        assert result.heat_accelerates_at_negative


class TestFig8:
    def test_combined_knobs_win(self):
        result = fig8.run()
        assert result.combined_knobs_win
        assert result.ordering_holds

    def test_models_validate(self):
        assert fig8.run().models_validate

    def test_recovery_starts_fast(self):
        # A disproportionate share of the 6 h recovery lands in the first
        # 18 minutes (the paper's "recovery starts fast").
        result = fig8.run()
        curve = result.curves["AR110N6"]
        early = curve.recovered.at(hours(0.3))
        assert early > 0.4 * curve.recovered.final


class TestTable4:
    def test_all_cases_in_band(self):
        assert table4.run().all_in_band

    def test_combined_knobs_highest(self):
        assert table4.run().combined_knobs_highest

    def test_headline_near_paper_value(self):
        value = table4.run().margin_relaxed["AR110N6"]
        assert PAPER_TARGETS["margin_relaxed_AR110N6"].contains(value)


class TestTable5:
    def test_alpha_invariance(self):
        result = table5.run()
        assert result.ratio_invariance_holds


class TestFig9:
    def test_envelope_bounded_and_below_baseline(self):
        result = fig9.run(n_cycles=6)
        assert result.envelope_bounded
        assert result.healed_stays_below_baseline

    def test_table_has_cycles(self):
        assert len(fig9.run(n_cycles=6).table().rows) >= 5


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(n_epochs=96)

    def test_heater_aware_beats_baseline(self, result):
        assert result.heater_aware_margin_gain > 0.1

    def test_neighbour_heating_substantial(self, result):
        assert result.neighbour_heating_c > 15.0

    def test_energy_overhead_small(self, result):
        assert result.energy_overhead < 0.05

    def test_equal_work(self, result):
        works = {m.work_epochs for m in result.metrics.values()}
        assert len(works) == 1


class TestFig9Projection:
    def test_projection_extends_the_window(self):
        result = fig9.run(n_cycles=4, projected_cycles=60)
        assert result.projected_cycles == 60
        assert result.projected_shift is not None
        # Bounded envelope: the projected trough stays below the
        # unmitigated end-of-window shift.
        assert result.projected_shift < result.comparison.baseline.final_shift

    def test_no_projection_by_default(self):
        result = fig9.run(n_cycles=4)
        assert result.projected_cycles == 0
        assert result.projected_shift is None

"""Calibration bands and the illustrative first-order model."""

import pytest

from repro.experiments.calibration import (
    Band,
    ILLUSTRATIVE_FIRST_ORDER,
    PAPER_TARGETS,
    check_value,
)
from repro.units import hours


class TestBand:
    def test_contains_inclusive(self):
        band = Band(1.0, 2.0, "x")
        assert band.contains(1.0) and band.contains(2.0) and band.contains(1.5)
        assert not band.contains(0.99) and not band.contains(2.01)

    def test_check_value_helper(self):
        assert check_value("ac_dc_ratio", 0.5)
        assert not check_value("ac_dc_ratio", 0.95)

    def test_unknown_target_raises(self):
        with pytest.raises(KeyError):
            check_value("nonexistent", 1.0)


class TestTargets:
    def test_all_bands_ordered(self):
        for name, band in PAPER_TARGETS.items():
            assert band.low < band.high, name

    def test_margin_bands_ordered_across_cases(self):
        # The recovery-condition ordering must be encoded in the bands:
        # passive < negative-V < hot < hot+negative (band midpoints).
        mids = {
            case: (PAPER_TARGETS[f"margin_relaxed_{case}"].low
                   + PAPER_TARGETS[f"margin_relaxed_{case}"].high) / 2.0
            for case in ("R20Z6", "AR20N6", "AR110Z6", "AR110N6")
        }
        assert mids["R20Z6"] < mids["AR20N6"] < mids["AR110Z6"] < mids["AR110N6"]

    def test_headline_band_contains_paper_value(self):
        assert PAPER_TARGETS["margin_relaxed_AR110N6"].contains(72.4)


class TestIllustrativeModel:
    def test_stress_then_partial_recovery(self):
        model = ILLUSTRATIVE_FIRST_ORDER
        peak = model.stress_shift(hours(24.0))
        residual = model.recovery_shift(hours(24.0), hours(6.0))
        assert 0.0 < residual < peak

    def test_monotonic_recovery(self):
        assert ILLUSTRATIVE_FIRST_ORDER.is_monotonic_recovery(hours(24.0), hours(6.0))

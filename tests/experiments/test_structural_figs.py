"""FIG2/FIG3 structural runners."""

import pytest

from repro.experiments import fig2, fig3


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.run()

    def test_paper_example(self, result):
        assert result.paper_example_holds

    def test_hypothesis2(self, result):
        assert result.hypothesis2_off_path_has_no_delay_weight

    def test_tables_render(self, result):
        assert "M1" in result.inventory_table().render()
        assert "conducting path" in result.stress_table().render()

    def test_inventory_has_eight_rows(self, result):
        assert len(result.inventory_table().rows) == 8

    def test_stress_table_covers_all_input_vectors(self, result):
        assert len(result.stress_table().rows) == 4


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run(seed=0)

    def test_operating_point_fits_counter(self, result):
        assert result.fits_counter

    def test_chain_consistent(self, result):
        assert result.chain_consistent

    def test_resolution_spec(self, result):
        # One LSB resolves ~0.03 %; the +/-5-count spec stays below 0.2 %.
        assert result.quantisation_resolution < 5e-4
        assert result.noise_floor < 2e-3

    def test_frequency_in_expected_range(self, result):
        assert 2e6 < result.fresh_frequency < 5e6

    def test_table_renders(self, result):
        assert "fosc" in result.table().render()

"""Report builder."""

import pytest

from repro.experiments.report import build_report


class TestReport:
    @pytest.fixture(scope="class")
    def report(self, campaign_result):
        # campaign_result warms the seed-0 cache the report reuses.
        return build_report(seed=0)

    def test_contains_every_artifact(self, report):
        for artefact in ("TAB1", "FIG1", "FIG2", "FIG3", "FIG4", "FIG5",
                         "TAB2", "TAB3", "FIG6", "FIG7", "FIG8", "TAB4",
                         "TAB5", "FIG9", "FIG10"):
            assert artefact in report

    def test_contains_headline_values(self, report):
        assert "AR110N6" in report
        assert "AC/DC at 24 h" in report
        assert "Calibration bands" in report

    def test_markdown_structure(self, report):
        assert report.startswith("# Reproduction report")
        assert report.count("## ") >= 14
        assert "```" in report

    def test_cli_report_to_file(self, tmp_path, capsys, campaign_result):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["report", "--experiments", "--out", str(out)]) == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()

"""Voltage-acceleration extraction."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.arrhenius import run_voltage_sweep


class TestVoltageSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_voltage_sweep(seed=0, n_stages=15)

    def test_rates_increase_with_voltage(self, result):
        rates = list(result.rate_constants)
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_gamma_near_microscopic_truth(self, result):
        assert result.gamma_per_volt == pytest.approx(5.0, abs=1.2)
        assert result.r_squared > 0.99

    def test_table_renders(self, result):
        assert "Vdd stress" in result.table().render()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_voltage_sweep(voltages=(1.2,))

"""End-to-end telemetry of the instrumented hot paths.

Runs small-but-real workloads (a one-chip campaign, a short multicore
simulation, one experiment) under an in-memory tracer and checks the span
hierarchy and counters the JSONL trace promises.
"""

import pytest

from repro.experiments.registry import run_experiment
from repro.lab.campaign import run_table1_campaign
from repro.multicore import (
    CircadianScheduler,
    ConstantWorkload,
    InstrumentedScheduler,
    MulticoreSystem,
)
from repro.obs import JsonlExporter, ProgressReporter, Tracer, load_trace, span_tree


@pytest.fixture(scope="module")
def traced_campaign(tmp_path_factory):
    """One-chip Table-1 campaign under a tracer with a JSONL exporter."""
    path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
    tracer = Tracer(exporter=JsonlExporter(path))
    result = run_table1_campaign(seed=0, n_chips=1, tracer=tracer)
    tracer.close()
    return tracer, result, path


class TestCampaignSpans:
    def test_span_hierarchy_campaign_case_phase_measurement(self, traced_campaign):
        tracer, __, __ = traced_campaign
        campaign_spans = tracer.spans("campaign")
        assert len(campaign_spans) == 1
        campaign = campaign_spans[0]
        cases = tracer.children(campaign)
        assert cases and all(span.name == "case" for span in cases)
        phases = tracer.children(cases[-1])
        assert phases and all(span.name == "phase" for span in phases)
        measurements = tracer.children(phases[0])
        assert measurements
        assert all(span.name == "measurement" for span in measurements)

    def test_case_attributes(self, traced_campaign):
        tracer, __, __ = traced_campaign
        names = {span.attributes["case"] for span in tracer.spans("case")}
        assert "BASELINE-chip-1" in names
        assert "AS110AC24" in names
        assert all(
            span.attributes["chip_id"] == "chip-1" for span in tracer.spans("case")
        )

    def test_phase_attributes_capture_conditions(self, traced_campaign):
        tracer, __, __ = traced_campaign
        stress = [
            span
            for span in tracer.spans("phase")
            if span.attributes["case"] == "AS110AC24"
        ]
        assert stress
        assert stress[0].attributes["kind"] == "stress"
        assert stress[0].attributes["temperature_c"] == 110.0
        assert stress[0].attributes["supply_voltage"] == 1.2

    def test_simulated_time_advanced_recorded(self, traced_campaign):
        tracer, __, __ = traced_campaign
        campaign = tracer.spans("campaign")[0]
        # Baseline 2 h + 24 h stress + sampling overheads: > 26 h of
        # simulated silicon time must be attributed to the root span.
        assert campaign.sim_advanced > 26 * 3600.0
        case_total = sum(span.sim_advanced for span in tracer.spans("case"))
        assert case_total == pytest.approx(campaign.sim_advanced)

    def test_counters_match_log(self, traced_campaign):
        tracer, result, __ = traced_campaign
        metrics = tracer.metrics
        assert metrics.value("datalog.records") == len(result.log)
        assert metrics.value("lab.samples") == len(result.log)
        # Three averaged reads per sample.
        assert metrics.value("ro.evaluations") == 3 * len(result.log)
        assert metrics.value("campaign.cases") == len(tracer.spans("case"))
        assert metrics.value("bti.trap_updates") > 0
        assert metrics.value("campaign.sim_seconds_per_wall_second") > 0

    def test_jsonl_trace_mirrors_memory(self, traced_campaign):
        tracer, __, path = traced_campaign
        records = load_trace(path)
        spans = [r for r in records if r["type"] == "span"]
        metrics = {r["name"]: r["value"] for r in records if r["type"] == "metric"}
        assert len(spans) == len(tracer.finished)
        assert metrics == tracer.metrics.snapshot()
        tree = span_tree(records)
        assert [root["name"] for root in tree[None]] == ["campaign"]

    def test_progress_lines_emitted(self):
        import io

        buffer = io.StringIO()
        reporter = ProgressReporter(stream=buffer)
        run_table1_campaign(seed=0, n_chips=1, progress=reporter)
        out = buffer.getvalue()
        assert "baseline burn-in done" in out
        assert "AS110AC24" in out
        assert "(1/1 cases" in out


class TestMulticoreTelemetry:
    def test_run_span_and_counters(self):
        tracer = Tracer()
        system = MulticoreSystem(seed=1, tracer=tracer)
        scheduler = InstrumentedScheduler(CircadianScheduler(), tracer=tracer)
        history = system.run(scheduler, ConstantWorkload(6), n_epochs=8)
        assert history.n_epochs == 8
        run_spans = tracer.spans("multicore.run")
        assert len(run_spans) == 1
        assert run_spans[0].attributes["scheduler"] == "InstrumentedScheduler"
        assert run_spans[0].sim_advanced == pytest.approx(8 * 3600.0)
        assert tracer.metrics.value("multicore.epochs") == 8
        assert tracer.metrics.value("multicore.core_steps") == 8 * system.n_cores
        assert tracer.metrics.value("multicore.decisions") == 8
        assert tracer.metrics.value("multicore.decide_seconds") > 0

    def test_instrumented_scheduler_preserves_decisions(self):
        plain = CircadianScheduler()
        wrapped = InstrumentedScheduler(CircadianScheduler(), tracer=Tracer())
        system = MulticoreSystem(seed=2)
        import numpy as np

        aging = np.zeros(system.n_cores)
        assert wrapped.decide(3, 5, aging, system.grid) == plain.decide(
            3, 5, aging, system.grid
        )


class TestExperimentTelemetry:
    def test_run_experiment_spans_and_counter(self):
        tracer = Tracer()
        run_experiment("FIG1", tracer=tracer)
        spans = tracer.spans("experiment")
        assert len(spans) == 1
        assert spans[0].attributes["exp_id"] == "FIG1"
        assert tracer.metrics.value("experiments.runs") == 1

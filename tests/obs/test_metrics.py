"""Counters, gauges and the metrics registry."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("events")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ConfigurationError):
            Counter("events").inc(-1.0)


class TestGauge:
    def test_holds_latest_value(self):
        gauge = Gauge("throughput")
        gauge.set(10.0)
        gauge.set(3.0)
        assert gauge.value == 3.0


class TestNullMetrics:
    def test_null_counter_discards(self):
        NULL_COUNTER.inc(100.0)
        assert NULL_COUNTER.value == 0.0

    def test_null_gauge_discards(self):
        NULL_GAUGE.set(42.0)
        assert NULL_GAUGE.value == 0.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("x")
        b = registry.counter("x")
        assert a is b
        a.inc()
        assert registry.value("x") == 1.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_snapshot_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2.0)
        registry.gauge("a").set(1.0)
        assert registry.snapshot() == {"a": 1.0, "b": 2.0}

    def test_value_default_for_missing(self):
        assert MetricsRegistry().value("missing", default=-1.0) == -1.0

    def test_contains_len_get(self):
        registry = MetricsRegistry()
        registry.counter("x")
        assert "x" in registry
        assert "y" not in registry
        assert len(registry) == 1
        assert registry.get("x").name == "x"
        assert registry.get("y") is None

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0

    def test_table_renders_all_metrics(self):
        registry = MetricsRegistry()
        registry.counter("events", "things that happened").inc(7.0)
        registry.gauge("depth").set(2.0)
        rendered = registry.table().render()
        assert "events" in rendered
        assert "things that happened" in rendered
        assert "depth" in rendered


class TestHistogram:
    def test_observes_and_summarises(self):
        from repro.obs import Histogram

        hist = Histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 55.5
        assert hist.min == 0.5
        assert hist.max == 50.0
        assert hist.mean == 18.5
        assert hist.bucket_counts == [1, 1, 1]

    def test_value_is_observation_count(self):
        from repro.obs import Histogram

        hist = Histogram("lat")
        hist.observe(3.0)
        hist.observe(4.0)
        # snapshot value must be deterministic across machines, so it is
        # the count, never a wall-clock-dependent statistic
        assert hist.value == 2.0
        assert hist.kind == "histogram"

    def test_merge_requires_matching_bounds(self):
        from repro.obs import Histogram

        a = Histogram("lat", bounds=(1.0,))
        b = Histogram("lat", bounds=(2.0,))
        with pytest.raises(ConfigurationError):
            a.merge_from(b)

    def test_merge_folds_exactly(self):
        from repro.obs import Histogram

        a = Histogram("lat", bounds=(1.0, 10.0))
        b = Histogram("lat", bounds=(1.0, 10.0))
        a.observe(0.5)
        b.observe(20.0)
        b.observe(2.0)
        a.merge_from(b)
        assert a.count == 3
        assert a.sum == 22.5
        assert (a.min, a.max) == (0.5, 20.0)
        assert a.bucket_counts == [1, 1, 1]

    def test_empty_payload_has_null_extremes(self):
        from repro.obs import Histogram

        payload = Histogram("lat").payload()
        assert payload["count"] == 0
        assert payload["min"] is None
        assert payload["max"] is None


class TestDerivedGauge:
    def test_reads_ratio_of_operands(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3.0)
        registry.counter("cache.misses").inc(1.0)
        ratio = registry.derived_gauge(
            "cache.hit_rate", "hit fraction", "cache.hits",
            ("cache.hits", "cache.misses"),
        )
        assert ratio.value == 0.75
        registry.counter("cache.misses").inc(2.0)
        assert ratio.value == 0.5

    def test_zero_denominator_reads_zero(self):
        registry = MetricsRegistry()
        ratio = registry.derived_gauge(
            "cache.hit_rate", "", "cache.hits", ("cache.hits", "cache.misses")
        )
        assert ratio.value == 0.0

    def test_conflicting_redefinition_raises(self):
        registry = MetricsRegistry()
        registry.derived_gauge("r", "", "a", ("a", "b"))
        with pytest.raises(ConfigurationError):
            registry.derived_gauge("r", "", "a", ("a", "c"))


class TestRegistryMergeNewKinds:
    def test_histograms_merge_exactly(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("lat", bounds=(1.0, 10.0)).observe(0.5)
        b.histogram("lat", bounds=(1.0, 10.0)).observe(5.0)
        a.merge(b)
        merged = a.get("lat")
        assert merged.count == 2
        assert merged.sum == 5.5

    def test_derived_gauge_reads_merged_operands(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c.hits").inc(1.0)
        b.counter("c.hits").inc(1.0)
        b.counter("c.misses").inc(2.0)
        b.derived_gauge("c.rate", "", "c.hits", ("c.hits", "c.misses"))
        a.merge(b)
        assert a.value("c.rate") == 0.5

    def test_merge_is_order_deterministic(self):
        def build(observations):
            registry = MetricsRegistry()
            hist = registry.histogram("lat", bounds=(1.0, 10.0))
            for value in observations:
                hist.observe(value)
            return registry

        sequential = build([0.5, 5.0, 50.0, 2.0])
        merged = build([0.5, 5.0])
        merged.merge(build([50.0, 2.0]))
        assert merged.get("lat").payload() == sequential.get("lat").payload()
        assert merged.snapshot() == sequential.snapshot()

"""Counters, gauges and the metrics registry."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("events")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ConfigurationError):
            Counter("events").inc(-1.0)


class TestGauge:
    def test_holds_latest_value(self):
        gauge = Gauge("throughput")
        gauge.set(10.0)
        gauge.set(3.0)
        assert gauge.value == 3.0


class TestNullMetrics:
    def test_null_counter_discards(self):
        NULL_COUNTER.inc(100.0)
        assert NULL_COUNTER.value == 0.0

    def test_null_gauge_discards(self):
        NULL_GAUGE.set(42.0)
        assert NULL_GAUGE.value == 0.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("x")
        b = registry.counter("x")
        assert a is b
        a.inc()
        assert registry.value("x") == 1.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_snapshot_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2.0)
        registry.gauge("a").set(1.0)
        assert registry.snapshot() == {"a": 1.0, "b": 2.0}

    def test_value_default_for_missing(self):
        assert MetricsRegistry().value("missing", default=-1.0) == -1.0

    def test_contains_len_get(self):
        registry = MetricsRegistry()
        registry.counter("x")
        assert "x" in registry
        assert "y" not in registry
        assert len(registry) == 1
        assert registry.get("x").name == "x"
        assert registry.get("y") is None

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0

    def test_table_renders_all_metrics(self):
        registry = MetricsRegistry()
        registry.counter("events", "things that happened").inc(7.0)
        registry.gauge("depth").set(2.0)
        rendered = registry.table().render()
        assert "events" in rendered
        assert "things that happened" in rendered
        assert "depth" in rendered

"""Progress reporter output and gating."""

import io

from repro.obs import NULL_PROGRESS, ProgressReporter


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestProgressReporter:
    def test_line_is_elapsed_stamped(self):
        buffer = io.StringIO()
        clock = FakeClock()
        reporter = ProgressReporter(stream=buffer, clock=clock)
        clock.now += 2.5
        reporter.line("hello")
        assert buffer.getvalue() == "[    2.5s] hello\n"
        assert reporter.n_lines == 1

    def test_case_done_format(self):
        buffer = io.StringIO()
        reporter = ProgressReporter(stream=buffer, clock=FakeClock())
        reporter.case_done("chip-1", "AS110DC24", 3, 11, 1, 5)
        out = buffer.getvalue()
        assert "chip-1" in out
        assert "AS110DC24" in out
        assert "(3/11 cases, 1/5 chips)" in out

    def test_disabled_reporter_is_silent(self):
        buffer = io.StringIO()
        reporter = ProgressReporter(stream=buffer, enabled=False)
        reporter.line("hidden")
        reporter.case_done("chip-1", "X", 1, 1, 1, 1)
        assert buffer.getvalue() == ""
        assert reporter.n_lines == 0

    def test_null_progress_is_disabled(self):
        assert NULL_PROGRESS.enabled is False
        NULL_PROGRESS.line("discarded")


class TestResilienceSuffix:
    def test_case_done_shows_retry_and_quarantine_tallies(self):
        buffer = io.StringIO()
        reporter = ProgressReporter(stream=buffer, clock=FakeClock())
        reporter.case_done("chip-1", "X", 1, 11, 0, 5, retries=2, quarantined=1)
        assert "(1/11 cases, 0/5 chips, 2 retries, 1 quarantined)" in buffer.getvalue()

    def test_suffix_hidden_while_zero(self):
        buffer = io.StringIO()
        reporter = ProgressReporter(stream=buffer, clock=FakeClock())
        reporter.case_done("chip-1", "X", 1, 11, 0, 5, retries=0, quarantined=0)
        assert "retries" not in buffer.getvalue()

    def test_chip_done_schedule_complete(self):
        buffer = io.StringIO()
        reporter = ProgressReporter(stream=buffer, clock=FakeClock())
        reporter.chip_done("chip-2", 2, 5)
        out = buffer.getvalue()
        assert "chip-2" in out
        assert "schedule complete" in out
        assert "(2/5 chips)" in out

    def test_chip_done_quarantined_shows_reason(self):
        buffer = io.StringIO()
        reporter = ProgressReporter(stream=buffer, clock=FakeClock())
        reporter.chip_done(
            "chip-3", 3, 5, retries=4, quarantined=1,
            quarantine_reason="during R20Z6: chip dropout",
        )
        out = buffer.getvalue()
        assert "QUARANTINED: during R20Z6: chip dropout" in out
        assert "4 retries, 1 quarantined" in out

"""Progress reporter output and gating."""

import io

from repro.obs import NULL_PROGRESS, ProgressReporter


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestProgressReporter:
    def test_line_is_elapsed_stamped(self):
        buffer = io.StringIO()
        clock = FakeClock()
        reporter = ProgressReporter(stream=buffer, clock=clock)
        clock.now += 2.5
        reporter.line("hello")
        assert buffer.getvalue() == "[    2.5s] hello\n"
        assert reporter.n_lines == 1

    def test_case_done_format(self):
        buffer = io.StringIO()
        reporter = ProgressReporter(stream=buffer, clock=FakeClock())
        reporter.case_done("chip-1", "AS110DC24", 3, 11, 1, 5)
        out = buffer.getvalue()
        assert "chip-1" in out
        assert "AS110DC24" in out
        assert "(3/11 cases, 1/5 chips)" in out

    def test_disabled_reporter_is_silent(self):
        buffer = io.StringIO()
        reporter = ProgressReporter(stream=buffer, enabled=False)
        reporter.line("hidden")
        reporter.case_done("chip-1", "X", 1, 1, 1, 1)
        assert buffer.getvalue() == ""
        assert reporter.n_lines == 0

    def test_null_progress_is_disabled(self):
        assert NULL_PROGRESS.enabled is False
        NULL_PROGRESS.line("discarded")

"""Hot-path profiler: throughput sampling and profile views."""

from repro.obs import Tracer
from repro.obs.profile import (
    CACHE_HIT_RATE,
    CaseThroughputSampler,
    HotPathProfile,
    MEAS_PER_S,
    TRAP_UPDATES_PER_S,
)
from repro.obs.query import TraceModel
from repro.obs.tracer import NULL_TRACER


class FakeSpan:
    def __init__(self, duration):
        self.duration = duration


class TestCaseThroughputSampler:
    def test_observes_counter_deltas_over_duration(self):
        tracer = Tracer()
        tracer.counter("lab.samples").inc(10.0)
        sampler = CaseThroughputSampler(tracer)
        tracer.counter("lab.samples").inc(30.0)
        tracer.counter("bti.trap_updates").inc(400.0)
        sampler.finish(FakeSpan(duration=2.0))
        meas = tracer.metrics.get(MEAS_PER_S)
        assert meas.count == 1
        assert meas.mean == 15.0  # (40 - 10) / 2
        updates = tracer.metrics.get(TRAP_UPDATES_PER_S)
        assert updates.mean == 200.0

    def test_registers_cache_hit_rate(self):
        tracer = Tracer()
        tracer.counter("bti.rate_cache.hits").inc(3.0)
        tracer.counter("bti.rate_cache.misses").inc(1.0)
        CaseThroughputSampler(tracer)
        assert tracer.metrics.value(CACHE_HIT_RATE) == 0.75

    def test_zero_duration_span_is_skipped(self):
        tracer = Tracer()
        sampler = CaseThroughputSampler(tracer)
        sampler.finish(FakeSpan(duration=0.0))
        assert tracer.metrics.get(MEAS_PER_S).count == 0

    def test_null_tracer_is_noop(self):
        sampler = CaseThroughputSampler(NULL_TRACER)
        sampler.finish(FakeSpan(duration=1.0))  # must not raise


def _profiled_tracer():
    tracer = Tracer()
    with tracer.span("campaign"):
        with tracer.span("case", chip_id="chip-1", case="AS110AC24"):
            with tracer.span("phase", kind="stress", phase="AS110AC24") as span:
                span.set("sim_advanced", 3600.0)
            with tracer.span("phase", kind="recovery", phase="R20Z6") as span:
                span.set("sim_advanced", 1800.0)
    tracer.histogram(MEAS_PER_S, "").observe(100.0)
    tracer.histogram(TRAP_UPDATES_PER_S, "").observe(5000.0)
    return tracer


class TestHotPathProfile:
    def test_phase_table_groups_by_label_and_kind(self):
        profile = HotPathProfile.from_tracer(_profiled_tracer())
        rendered = profile.phase_table().render()
        assert "AS110AC24" in rendered
        assert "stress" in rendered
        assert "recovery" in rendered

    def test_collapsed_stacks_are_sorted_with_usec_values(self):
        profile = HotPathProfile.from_tracer(_profiled_tracer())
        lines = profile.collapsed()
        assert lines == sorted(lines)
        values = []
        for line in lines:
            path, _, value = line.rpartition(" ")
            assert int(value) >= 0
            values.append(int(value))
        assert sum(values) > 0  # the tree as a whole carries real time
        assert any("phase:stress" in line for line in lines)

    def test_collapsed_is_deterministic_in_structure(self):
        paths_a = [line.rpartition(" ")[0] for line in
                   HotPathProfile.from_tracer(_profiled_tracer()).collapsed()]
        paths_b = [line.rpartition(" ")[0] for line in
                   HotPathProfile.from_tracer(_profiled_tracer()).collapsed()]
        assert paths_a == paths_b

    def test_throughput_table_reads_histograms(self):
        profile = HotPathProfile.from_tracer(_profiled_tracer())
        rendered = profile.throughput_table().render()
        assert MEAS_PER_S in rendered
        assert "100.0" in rendered
        assert CACHE_HIT_RATE in rendered

    def test_throughput_table_handles_missing_metrics(self):
        profile = HotPathProfile(TraceModel([], {}))
        rendered = profile.throughput_table().render()
        assert MEAS_PER_S in rendered  # row pinned even with no data


class TestCampaignIntegration:
    def test_campaign_trace_carries_throughput_histograms(self):
        from repro.lab.campaign import run_table1_campaign

        tracer = Tracer()
        run_table1_campaign(seed=0, n_chips=1, tracer=tracer)
        meas = tracer.metrics.get(MEAS_PER_S)
        # one observation per case (baseline + AS110AC24)
        assert meas.count == 2
        assert meas.min > 0.0
        profile = HotPathProfile.from_tracer(tracer)
        assert any("measurement" in line for line in profile.collapsed())

"""Span nesting, the tracer registry, and the null tracer."""

import pytest

from repro.errors import ReproError
from repro.obs import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestSpans:
    def test_span_records_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", chip_id="chip-1") as span:
            span.set("vdd", 1.2)
        assert span.duration >= 0.0
        assert span.attributes == {"chip_id": "chip-1", "vdd": 1.2}
        assert tracer.spans("work") == [span]

    def test_nesting_assigns_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            with tracer.span("inner") as second:
                pass
        assert outer.parent_id is None
        assert outer.depth == 0
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert second.parent_id == outer.span_id
        assert tracer.children(outer) == [inner, second]
        assert tracer.current is None

    def test_finished_in_completion_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.walk()] == ["inner", "outer"]

    def test_span_ids_unique_and_increasing(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert b.span_id > a.span_id

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ReproError):
            with tracer.span("doomed") as span:
                raise ReproError("boom")
        assert span.attributes["error"] == "ReproError"
        assert tracer.spans("doomed") == [span]

    def test_sim_advanced_defaults_to_zero(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert span.sim_advanced == 0.0
        span.set("sim_advanced", 3.5)
        assert span.sim_advanced == 3.5

    def test_keep_spans_false_drops_history(self):
        tracer = Tracer(keep_spans=False)
        with tracer.span("work"):
            pass
        assert tracer.spans() == []


class TestSummaryTable:
    def test_aggregates_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase") as span:
                span.set("sim_advanced", 10.0)
        rendered = tracer.summary_table().render()
        assert "phase" in rendered
        assert "3" in rendered  # count column
        assert "30.000" in rendered  # total sim seconds

    def test_metrics_table_delegates_to_registry(self):
        tracer = Tracer()
        tracer.counter("x").inc(5.0)
        assert "x" in tracer.metrics_table().render()


class TestNullTracer:
    def test_disabled_and_shared_span(self):
        assert NULL_TRACER.enabled is False
        span_a = NULL_TRACER.span("a", key="value")
        span_b = NULL_TRACER.span("b")
        assert span_a is span_b  # one shared no-op object
        with span_a as span:
            span.set("ignored", 1)
        assert span.attributes == {}
        assert NULL_TRACER.spans() == []

    def test_null_metrics_never_register(self):
        NULL_TRACER.counter("x").inc()
        NULL_TRACER.gauge("y").set(1.0)
        assert len(NULL_TRACER.metrics) == 0

    def test_empty_tables_render(self):
        assert "span" in NULL_TRACER.summary_table().render()
        assert "metric" in NULL_TRACER.metrics_table().render()

    def test_close_is_noop(self):
        NULL_TRACER.close()


class TestActiveTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_and_reset(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer()):
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER

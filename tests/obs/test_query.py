"""Trace query engine: model building, aggregation, and diffing."""

import json

import pytest

from repro.obs import JsonlExporter, Tracer
from repro.obs.query import TraceModel, diff_traces


def _span(span_id, name, parent_id=None, depth=0, start=0.0, duration=1.0, **attrs):
    return {
        "type": "span",
        "span_id": span_id,
        "name": name,
        "parent_id": parent_id,
        "depth": depth,
        "start_s": start,
        "duration_s": duration,
        "attrs": attrs,
    }


def _metric(name, value, kind="counter", **extra):
    return {"type": "metric", "name": name, "kind": kind, "value": value, **extra}


def small_trace_records():
    """campaign -> case -> (stress phase, 2 measurements)."""
    return [
        _span(1, "campaign", duration=10.0),
        _span(2, "case", parent_id=1, depth=1, duration=8.0,
              chip_id="chip-1", case="AS110AC24", sim_advanced=7200.0),
        _span(3, "phase", parent_id=2, depth=2, duration=6.0,
              kind="stress", phase="AS110AC24"),
        _span(4, "measurement", parent_id=3, depth=3, duration=1.0,
              chip_id="chip-1"),
        _span(5, "measurement", parent_id=3, depth=3, duration=1.0,
              chip_id="chip-1"),
        _metric("lab.samples", 2.0),
        _metric("campaign.sim_seconds_per_wall_second", 720.0, kind="gauge"),
    ]


class TestTraceModelStructure:
    def test_tree_links_and_roots(self):
        model = TraceModel.from_records(small_trace_records())
        assert len(model) == 5
        assert [root.name for root in model.roots] == ["campaign"]
        campaign = model.roots[0]
        assert [c.name for c in campaign.children] == ["case"]
        phase = campaign.children[0].children[0]
        assert len(phase.children) == 2

    def test_self_time_excludes_children(self):
        model = TraceModel.from_records(small_trace_records())
        campaign = model.roots[0]
        assert campaign.self_time == pytest.approx(2.0)  # 10 - 8
        phase = campaign.children[0].children[0]
        assert phase.self_time == pytest.approx(4.0)  # 6 - 2x1

    def test_self_time_clamped_nonnegative(self):
        records = [
            _span(1, "parent", duration=1.0),
            _span(2, "child", parent_id=1, depth=1, duration=2.0),
        ]
        model = TraceModel.from_records(records)
        assert model.roots[0].self_time == 0.0

    def test_phase_frame_refined_by_kind(self):
        model = TraceModel.from_records(small_trace_records())
        phase = model.spans_named("phase")[0]
        assert phase.frame == "phase:stress"
        assert model.path(phase) == "campaign;case;phase:stress"

    def test_load_round_trips_exporter_output(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(exporter=JsonlExporter(path))
        with tracer.span("campaign"):
            with tracer.span("case", chip_id="chip-1"):
                tracer.counter("lab.samples").inc()
        tracer.close()
        model = TraceModel.load(path)
        assert [s.name for s in model.roots] == ["campaign"]
        assert model.metric_value("lab.samples") == 1.0

    def test_from_tracer_matches_loaded_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(exporter=JsonlExporter(path))
        with tracer.span("campaign"):
            tracer.histogram("profile.case.meas_per_s").observe(5.0)
        live = TraceModel.from_tracer(tracer)
        tracer.close()
        loaded = TraceModel.load(path)
        assert live.metrics.keys() == loaded.metrics.keys()
        live_rec = live.metrics["profile.case.meas_per_s"]
        loaded_rec = loaded.metrics["profile.case.meas_per_s"]
        assert live_rec["count"] == loaded_rec["count"] == 1
        assert live_rec["mean"] == loaded_rec["mean"] == 5.0


class TestAggregation:
    def test_top_by_self_time(self):
        model = TraceModel.from_records(small_trace_records())
        rendered = model.top(n=2).render()
        lines = rendered.splitlines()
        # phase:stress has the largest self time (4.0 of 10.0 total)
        assert lines[3].startswith("phase:stress")
        assert "40.0" in lines[3]

    def test_rollup_by_chip(self):
        model = TraceModel.from_records(small_trace_records())
        assert model.rollup("sim_advanced", by="chip") == {"chip-1": 7200.0}

    def test_metric_family_table_pins_absent_families(self):
        model = TraceModel.from_records(small_trace_records())
        rendered = model.metric_family_table(("lab", "guard.violations")).render()
        assert "lab.samples" in rendered
        assert "guard.violations.*" in rendered

    def test_metric_family_rows_sorted(self):
        records = [
            _metric("guard.violations.b", 1.0),
            _metric("guard.violations.a", 2.0),
        ]
        model = TraceModel.from_records(records)
        names = list(model.metrics_matching("guard.violations"))
        assert names == ["guard.violations.a", "guard.violations.b"]

    def test_tree_render_depth_and_duration_filters(self):
        model = TraceModel.from_records(small_trace_records())
        full = model.tree_render()
        assert full.count("measurement") == 2
        shallow = model.tree_render(max_depth=1)
        assert "measurement" not in shallow
        assert "campaign" in shallow


class TestDiff:
    def test_identical_traces_have_zero_significant(self):
        a = TraceModel.from_records(small_trace_records())
        b = TraceModel.from_records(small_trace_records())
        diff = diff_traces(a, b)
        assert diff.significant() == []
        assert len(diff.rows) > 0

    def test_counter_change_is_exact_and_significant(self):
        a = TraceModel.from_records([_metric("lab.samples", 2.0)])
        b = TraceModel.from_records([_metric("lab.samples", 3.0)])
        significant = diff_traces(a, b).significant()
        assert [row.key for row in significant] == ["metric:lab.samples"]
        assert significant[0].category == "exact"

    def test_timing_needs_both_thresholds(self):
        # +0.3 s self time on a 0.2 s baseline: large relative change but
        # under the absolute floor -> not significant
        a = TraceModel.from_records([_span(1, "campaign", duration=0.2)])
        b = TraceModel.from_records([_span(1, "campaign", duration=0.5)])
        assert diff_traces(a, b).significant() == []
        # +6 s on 2 s clears both thresholds
        a = TraceModel.from_records([_span(1, "campaign", duration=2.0)])
        b = TraceModel.from_records([_span(1, "campaign", duration=8.0)])
        keys = [row.key for row in diff_traces(a, b).significant()]
        assert "span:campaign self_s" in keys

    def test_gauges_are_informational(self):
        a = TraceModel.from_records([_metric("x.rate", 100.0, kind="gauge")])
        b = TraceModel.from_records([_metric("x.rate", 900.0, kind="gauge")])
        diff = diff_traces(a, b)
        assert diff.significant() == []
        assert any(row.category == "rate" for row in diff.rows)

    def test_span_count_change_is_significant(self):
        a = TraceModel.from_records(
            [_span(1, "campaign"), _span(2, "measurement", parent_id=1, depth=1)]
        )
        b = TraceModel.from_records([_span(1, "campaign")])
        keys = [row.key for row in diff_traces(a, b).significant()]
        assert "span:measurement count" in keys

    def test_diff_table_renders(self):
        a = TraceModel.from_records(small_trace_records())
        b = TraceModel.from_records(small_trace_records())
        rendered = diff_traces(a, b).table().render()
        assert "0 significant" in rendered


class TestSeededRunsDiffClean:
    """Acceptance: two same-seed campaigns diff with zero significant deltas."""

    def test_same_seed_campaigns(self, tmp_path):
        from repro.lab.campaign import run_table1_campaign

        models = []
        for name in ("a", "b"):
            path = tmp_path / f"{name}.jsonl"
            tracer = Tracer(exporter=JsonlExporter(path))
            run_table1_campaign(seed=7, n_chips=1, tracer=tracer)
            tracer.close()
            models.append(TraceModel.load(path))
        diff = diff_traces(*models)
        assert diff.significant() == []

    def test_trace_file_is_valid_jsonl(self, tmp_path):
        from repro.lab.campaign import run_table1_campaign

        path = tmp_path / "t.jsonl"
        tracer = Tracer(exporter=JsonlExporter(path))
        run_table1_campaign(seed=0, n_chips=1, tracer=tracer)
        tracer.close()
        kinds = set()
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                kinds.add(json.loads(line)["type"])
        assert kinds == {"span", "metric"}

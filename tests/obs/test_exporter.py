"""JSONL export and the trace loader."""

import json

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.obs import JsonlExporter, Tracer, load_trace, span_tree


class TestJsonlExporter:
    def test_spans_stream_as_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(exporter=JsonlExporter(path))
        with tracer.span("outer", chip_id="chip-1"):
            with tracer.span("inner"):
                pass
        tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [rec["name"] for rec in lines] == ["inner", "outer"]
        assert lines[1]["attrs"] == {"chip_id": "chip-1"}
        assert lines[0]["parent_id"] == lines[1]["span_id"]

    def test_metrics_written_on_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(exporter=JsonlExporter(path))
        tracer.counter("events").inc(3.0)
        tracer.gauge("depth").set(1.5)
        tracer.close()
        records = load_trace(path)
        metrics = {r["name"]: r for r in records if r["type"] == "metric"}
        assert metrics["events"]["value"] == 3.0
        assert metrics["events"]["kind"] == "counter"
        assert metrics["depth"]["kind"] == "gauge"

    def test_close_is_idempotent_and_write_after_close_raises(self, tmp_path):
        exporter = JsonlExporter(tmp_path / "trace.jsonl")
        exporter.close()
        exporter.close()
        with pytest.raises(MeasurementError):
            exporter.span({"type": "span"})

    def test_unwritable_path_raises_measurement_error(self, tmp_path):
        with pytest.raises(MeasurementError, match="cannot open trace file"):
            JsonlExporter(tmp_path / "no-such-dir" / "trace.jsonl")

    def test_numpy_attributes_are_coerced(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(exporter=JsonlExporter(path))
        with tracer.span("work", temperature=np.float64(110.0), n=np.int64(5)):
            pass
        tracer.close()
        record = load_trace(path)[0]
        assert record["attrs"] == {"temperature": 110.0, "n": 5}


class TestLoadTrace:
    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span", "name": "a"}\n\n')
        assert len(load_trace(path)) == 1

    def test_malformed_line_names_file_and_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span"}\nnot json\n')
        with pytest.raises(MeasurementError) as excinfo:
            load_trace(path)
        assert ":2:" in str(excinfo.value)


class TestSpanTree:
    def test_groups_by_parent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(exporter=JsonlExporter(path))
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            with tracer.span("child"):
                pass
        tracer.close()
        tree = span_tree(load_trace(path))
        root = tree[None][0]
        assert root["name"] == "root"
        assert [c["name"] for c in tree[root["span_id"]]] == ["child", "child"]

"""Fleet distribution report: JSON schema, outlier fences, rendering."""

import json

import numpy as np
import pytest

from repro.lab.datalog import DataLog
from repro.lab.fleet import FleetCampaignResult, FleetChipSummary, run_fleet_campaign
from repro.report import build_fleet_report
from repro.report.fleet import OUTLIER_SIGMA, _outliers


def synthetic_result(n_chips=50, outlier_pct=9.0) -> FleetCampaignResult:
    """A result with a tight per-group spread plus one planted outlier."""
    rng = np.random.default_rng(0)
    summaries = []
    for index in range(n_chips):
        chip_no = (index % 5) + 1
        stress = float(chip_no + rng.normal(0.0, 0.05))
        if index == 7:
            stress = outlier_pct
        summaries.append(
            FleetChipSummary(
                chip_id=f"chip-{index + 1}",
                chip_no=chip_no,
                fresh_delay=155e-9,
                fresh_frequency=3.2e6,
                case_end_frequency={"BASELINE": 3.2e6},
                stress_degradation_pct=stress,
                residual_degradation_pct=stress / 2.0,
                measurements=10,
            )
        )
    return FleetCampaignResult(
        chips={}, log=DataLog(),
        fresh_delays={s.chip_id: s.fresh_delay for s in summaries},
        summaries=summaries, fidelity="binned", total_measurements=500,
    )


class TestOutlierFences:
    def test_planted_outlier_is_flagged_within_its_group(self):
        result = synthetic_result()
        rows = _outliers(result, "stress_degradation_pct")
        assert rows, "planted outlier not detected"
        assert rows[0]["chip_id"] == "chip-8"
        assert abs(rows[0]["z_score"]) >= OUTLIER_SIGMA

    def test_fence_is_per_schedule_group(self):
        # Group means differ by construction (chip_no 1..5); without a
        # per-group fence every chip-5 chip would be a lot-wide outlier.
        result = synthetic_result(outlier_pct=3.0)  # inside chip-3's range?
        rows = _outliers(result, "stress_degradation_pct")
        flagged = {row["chip_id"] for row in rows}
        # chip-8 runs schedule position 3 (index 7), value 3.0 is the
        # group mean — nothing should be flagged.
        assert "chip-8" not in flagged


class TestReportArtifacts:
    def test_json_and_html_agree_and_render(self, tmp_path):
        result = synthetic_result()
        report = build_fleet_report(result, seed=0)
        path = report.write(tmp_path / "fleet.html")
        data = json.loads((tmp_path / "fleet.json").read_text())
        assert data["meta"]["n_chips"] == 50
        assert data["meta"]["fidelity"] == "binned"
        lot = data["distributions"]["stress_degradation_pct"]["lot"]
        assert lot["n"] == 50
        assert set(lot["percentiles"]) == {
            "p1", "p5", "p25", "p50", "p75", "p95", "p99"
        }
        html = path.read_text()
        assert "<svg" in html and "Outliers" in html
        assert "chip-8" in html  # the planted outlier row

    def test_real_small_fleet_builds(self):
        result = run_fleet_campaign(seed=0, n_chips=5, fidelity="binned",
                                    collect="summary")
        report = build_fleet_report(result, seed=0)
        assert report.data["meta"]["measurements"] == result.total_measurements
        by_no = report.data["distributions"]["stress_degradation_pct"]["by_chip_no"]
        assert set(by_no) == {"1", "2", "3", "4", "5"}
        for entry in by_no.values():
            assert entry["n"] == 1

    def test_single_chip_lot_degrades_gracefully(self):
        result = run_fleet_campaign(seed=0, n_chips=1, fidelity="binned",
                                    collect="summary")
        report = build_fleet_report(result)
        assert report.data["outliers"]["stress_degradation_pct"] == []
        assert "<svg" not in report.html  # no histogram for n == 1

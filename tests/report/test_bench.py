"""Bench history ledger and rolling-baseline regression check."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.report import bench


def entry(**overrides):
    base = {
        "bench": "bench_obs_overhead.test_bench_campaign_baseline",
        "seed": 0,
        "n_chips": 5,
        "measurements": 622,
        "campaign_wall_s": 1.369,
        "measurements_per_sec": 454.2,
        "sim_seconds_per_wall_second": 563977.2,
        "ro_evaluations": 1866,
        "trap_updates": 921000,
    }
    base.update(overrides)
    return base


class TestLedger:
    def test_record_assigns_monotonic_sequence(self, tmp_path):
        path = bench.record(entry(), history_dir=tmp_path)
        bench.record(entry(), history_dir=tmp_path, stamp="abc123")
        history = bench.load_history(path)
        assert [e["sequence"] for e in history] == [1, 2]
        assert history[1]["stamp"] == "abc123"
        assert "stamp" not in history[0]

    def test_ledger_is_append_only_jsonl(self, tmp_path):
        path = bench.record(entry(), history_dir=tmp_path)
        first = path.read_text()
        bench.record(entry(), history_dir=tmp_path)
        assert path.read_text().startswith(first)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_entries_never_carry_wall_clock_fields(self, tmp_path):
        path = bench.record(entry(), history_dir=tmp_path)
        (stored,) = bench.load_history(path)
        assert "timestamp" not in stored
        assert "time" not in stored

    def test_missing_bench_name_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            bench.record({"seed": 0}, history_dir=tmp_path)


class TestRollingBaseline:
    def test_no_matching_config_returns_none(self):
        history = [entry(n_chips=1, sequence=1)]
        assert bench.rolling_baseline(entry(), history) is None
        assert bench.rolling_baseline(entry(), []) is None

    def test_median_over_window(self):
        history = [entry(campaign_wall_s=w, sequence=i)
                   for i, w in enumerate([9.0, 1.0, 2.0, 3.0])]
        baseline = bench.rolling_baseline(entry(), history, window=3)
        assert baseline["campaign_wall_s"] == 2.0  # 9.0 fell out of window


class TestCheck:
    def test_first_run_has_nothing_to_compare(self, tmp_path):
        assert bench.check(entry(), history_dir=tmp_path) is None

    def test_unchanged_run_is_ok(self, tmp_path):
        bench.record(entry(), history_dir=tmp_path)
        result = bench.check(entry(), history_dir=tmp_path)
        assert result.ok
        assert result.regressions == []

    def test_slowed_run_is_flagged(self, tmp_path):
        bench.record(entry(), history_dir=tmp_path)
        slow = entry(
            campaign_wall_s=1.369 * 1.5, measurements_per_sec=454.2 / 1.5
        )
        result = bench.check(slow, history_dir=tmp_path)
        assert not result.ok
        flagged = {v.metric for v in result.regressions}
        assert flagged == {"campaign_wall_s", "measurements_per_sec"}

    def test_faster_run_is_not_a_regression(self, tmp_path):
        bench.record(entry(), history_dir=tmp_path)
        fast = entry(
            campaign_wall_s=1.369 / 2.0, measurements_per_sec=454.2 * 2.0
        )
        assert bench.check(fast, history_dir=tmp_path).ok

    def test_workload_shift_is_exact_regression(self, tmp_path):
        bench.record(entry(), history_dir=tmp_path)
        shifted = entry(measurements=623)
        result = bench.check(shifted, history_dir=tmp_path)
        assert [v.metric for v in result.regressions] == ["measurements"]

    def test_within_threshold_drift_is_ok(self, tmp_path):
        bench.record(entry(), history_dir=tmp_path)
        drift = entry(campaign_wall_s=1.369 * 1.05)
        assert bench.check(drift, history_dir=tmp_path).ok

    def test_table_marks_regressions(self, tmp_path):
        bench.record(entry(), history_dir=tmp_path)
        slow = entry(campaign_wall_s=1.369 * 2.0)
        rendered = bench.check(slow, history_dir=tmp_path).table().render()
        assert "REGRESSED" in rendered
        assert "campaign_wall_s" in rendered


class TestCommittedSeed:
    def test_repo_history_matches_bench_json(self):
        """The committed ledger must stay compatible with BENCH_campaign.json."""
        with open("BENCH_campaign.json", encoding="utf-8") as handle:
            candidate = json.load(handle)
        result = bench.check(candidate, history_dir="benchmarks/history")
        assert result is not None
        assert result.ok

"""Tests for the campaign health report and bench history."""

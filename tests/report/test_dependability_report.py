"""Dependability report: scatter chart, sections, JSON sibling."""

import json

import pytest

from repro.dependability import (
    LifetimeSettings,
    SweepSpec,
    analyze_sweep,
)
from repro.dependability.runner import CellOutcome, SweepResult
from repro.errors import ConfigurationError
from repro.report import build_dependability_report, svg_scatter_chart


def fabricated_analysis(failed_ids=("cell-0001",)):
    spec = SweepSpec(
        name="report-fab",
        n_chips=4,
        alphas=(1.0, 2.0, 4.0),
        seeds=(0,),
        lifetime=LifetimeSettings(horizon_hours=24.0),
    )
    cells = spec.expand()
    lifetimes = {1.0: 12.0, 2.0: 8.0, 4.0: 5.0}
    outcomes = []
    for cell in cells:
        if cell.cell_id in failed_ids:
            outcomes.append(
                CellOutcome(
                    cell_id=cell.cell_id,
                    status="timeout",
                    attempts=2,
                    error="cell exceeded the 1 s wall-clock budget",
                )
            )
            continue
        outcomes.append(
            CellOutcome(
                cell_id=cell.cell_id,
                status="ok",
                attempts=1,
                stats={
                    "quarantined_count": 1,
                    "sample_retries": 2.0,
                    "guard_violations_total": 3.0,
                    "degradation": {"chip-1": 2e-12},
                    "lifetime_active_hours": lifetimes[cell.alpha],
                    "throughput_active_fraction": cell.alpha / (1 + cell.alpha),
                    "lifetime_horizon_hours": 24.0,
                },
            )
        )
    return analyze_sweep(
        SweepResult(spec=spec, directory="", cells=cells, outcomes=tuple(outcomes))
    )


class TestScatterChart:
    def test_empty_points_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one point"):
            svg_scatter_chart([])

    def test_points_and_frontier_rendered(self):
        svg = svg_scatter_chart(
            [(0.5, 12.0, "a=1"), (0.8, 5.0, "a=4"), (0.66, 4.0, "a=2")],
            frontier=[(0.5, 12.0), (0.8, 5.0)],
            title="pareto",
            x_label="throughput",
            y_label="lifetime",
        )
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert svg.count("<circle") == 3
        assert 'stroke-dasharray="5,3"' in svg  # frontier polyline
        assert "a=2" in svg and "pareto" in svg

    def test_deterministic(self):
        points = [(0.5, 1.0, "p"), (0.7, 2.0, "q")]
        assert svg_scatter_chart(points) == svg_scatter_chart(points)

    def test_single_point_padding(self):
        # degenerate ranges must not divide by zero
        svg = svg_scatter_chart([(0.5, 1.0, "only")])
        assert "<circle" in svg


class TestDependabilityReport:
    def test_sections_and_data(self):
        report = build_dependability_report(fabricated_analysis())
        html = report.html
        for heading in (
            "Sweep",
            "Cell grid",
            "Degraded cells",
            "Confidence intervals",
            "Sensitivity",
            "Pareto frontier",
        ):
            assert heading in html
        assert "wall-clock budget" in html  # degraded cell error shown
        assert "<svg" in html
        meta = report.data["meta"]
        assert meta["ok_cells"] == 2 and meta["degraded_cells"] == 1
        ci = report.data["confidence"]
        assert len(ci["cell_failure_rate_wilson95"]) == 2
        assert ci["lifetime_hours_bootstrap95"] is not None
        assert any(p["on_frontier"] for p in report.data["pareto"])

    def test_all_ok_sweep_renders_clean_status(self):
        report = build_dependability_report(fabricated_analysis(failed_ids=()))
        assert "all cells completed" in report.html
        assert report.data["degraded"] == []

    def test_write_emits_json_sibling(self, tmp_path):
        report = build_dependability_report(fabricated_analysis())
        path = report.write(tmp_path / "sweep.html")
        sibling = path.with_suffix(".json")
        assert sibling.exists()
        payload = json.loads(sibling.read_text())
        assert payload["meta"]["sweep"] == "report-fab"
        assert len(payload["cells"]) == 3

    def test_report_json_round_trips(self):
        report = build_dependability_report(fabricated_analysis())
        assert json.loads(report.to_json())["pareto"]

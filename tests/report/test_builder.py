"""Campaign health report: SVG charts, HTML assembly, report content."""

import json

import numpy as np
import pytest

from repro.analysis.series import Series
from repro.errors import ConfigurationError
from repro.lab.campaign import run_table1_campaign
from repro.lab.datalog import DataLog, MeasurementRecord
from repro.lab.resilience import QuarantineReport
from repro.obs import Tracer
from repro.obs.query import TraceModel
from repro.report import build_campaign_report, svg_line_chart
from repro.report.html import page, rows_table


@pytest.fixture(scope="module")
def traced_campaign():
    tracer = Tracer()
    result = run_table1_campaign(seed=0, n_chips=2, tracer=tracer)
    return result, TraceModel.from_tracer(tracer)


class TestSvgLineChart:
    def _series(self):
        return [Series("AS110AC24", np.array([0.0, 1.0, 2.0]),
                       np.array([0.0, 1.5, 2.0]))]

    def test_emits_one_svg_element(self):
        svg = svg_line_chart(self._series(), title="chip-1")
        assert svg.startswith("<svg ")
        assert svg.endswith("</svg>")
        assert svg.count("<polyline") == 1
        assert "chip-1" in svg

    def test_escapes_labels(self):
        series = [Series("<b>&x", np.array([0.0, 1.0]), np.array([0.0, 1.0]))]
        svg = svg_line_chart(series, title='<script>"')
        assert "<script>" not in svg
        assert "&lt;b&gt;&amp;x" in svg

    def test_is_deterministic(self):
        assert svg_line_chart(self._series()) == svg_line_chart(self._series())

    def test_flat_series_does_not_divide_by_zero(self):
        series = [Series("flat", np.array([0.0, 1.0]), np.array([3.0, 3.0]))]
        assert "<polyline" in svg_line_chart(series)

    def test_rejects_empty_input(self):
        with pytest.raises(ConfigurationError):
            svg_line_chart([])


class TestHtmlHelpers:
    def test_rows_table_escapes_and_aligns_numbers(self):
        html = rows_table("T", ["name", "value"], [["<x>", 1.5], ["y", 3]])
        assert "&lt;x&gt;" in html
        assert '<td class="num">1.500</td>' in html
        assert '<td class="num">3</td>' in html

    def test_page_is_self_contained(self):
        html = page("Title & co", ["<p>body</p>"])
        assert html.startswith("<!DOCTYPE html>")
        assert "Title &amp; co" in html
        assert "<style>" in html
        assert "<link" not in html
        assert "<script" not in html


class TestCampaignHealthReport:
    def test_json_has_all_sections(self, traced_campaign):
        result, model = traced_campaign
        report = build_campaign_report(result, model, seed=0)
        data = json.loads(report.to_json())
        assert sorted(data) == [
            "chips", "guard_violations", "meta", "quarantined",
            "rate_cache", "resilience",
        ]
        assert data["meta"]["n_chips"] == 2
        assert data["meta"]["measurements"] == len(result.log)
        assert data["meta"]["seed"] == 0

    def test_per_chip_rows_cover_every_chip(self, traced_campaign):
        result, model = traced_campaign
        data = build_campaign_report(result, model).data
        assert [c["chip_id"] for c in data["chips"]] == ["chip-1", "chip-2"]
        for chip in data["chips"]:
            assert chip["measurements"] > 0
            assert chip["fresh_frequency_mhz"] > 0.0
            assert not chip["quarantined"]

    def test_resilience_has_confidence_intervals(self, traced_campaign):
        result, model = traced_campaign
        data = build_campaign_report(result, model).data
        stats = data["resilience"]["per_chip_measurements"]
        assert stats["n"] == 2
        low, high = stats["ci95"]
        assert low <= stats["mean"] <= high

    def test_rate_cache_section_totals(self, traced_campaign):
        result, model = traced_campaign
        cache = build_campaign_report(result, model).data["rate_cache"]
        assert cache["lookups"] == (
            cache["hits"] + cache["partial_hits"] + cache["misses"]
        )
        assert 0.0 <= cache["hit_rate"] <= 1.0

    def test_html_is_single_self_contained_file(self, traced_campaign):
        result, model = traced_campaign
        html = build_campaign_report(result, model).html
        assert html.count("<svg") == 2  # one degradation chart per chip
        for forbidden in ("<link", "<script", "src=", "href="):
            assert forbidden not in html
        assert "Frequency degradation" in html
        assert "Trap-rate cache" in html

    def test_write_emits_html_and_json_siblings(self, traced_campaign, tmp_path):
        result, model = traced_campaign
        report = build_campaign_report(result, model)
        out = report.write(tmp_path / "health.html")
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
        sibling = json.loads((tmp_path / "health.json").read_text())
        assert sibling == report.data

    def test_report_without_trace_model_keeps_schema(self, traced_campaign):
        result, _ = traced_campaign
        data = build_campaign_report(result).data
        assert data["rate_cache"]["lookups"] == 0
        assert data["meta"]["trace_spans"] == 0
        assert len(data["chips"]) == 2


class TestQuarantineRendering:
    def _result_with_quarantine(self):
        from repro.lab.campaign import CampaignResult

        log = DataLog()
        log.append(MeasurementRecord(
            chip_id="chip-1", case="AS110AC24", phase="stress",
            timestamp=60.0, phase_elapsed=60.0, count=900,
            frequency=180e6, delay=2.7e-9, temperature_c=110.0,
            supply_voltage=1.32,
        ))
        return CampaignResult(
            log=log,
            chips={},
            fresh_delays={"chip-1": 2.6e-9},
            quarantined={
                "chip-1": QuarantineReport(
                    chip_id="chip-1", case="AS110AC24", sim_time=60.0,
                    reason="chip dropout",
                )
            },
        )

    def test_quarantine_table_and_status(self):
        report = build_campaign_report(self._result_with_quarantine())
        assert report.data["meta"]["complete"] is False
        (entry,) = report.data["quarantined"]
        assert entry["chip_id"] == "chip-1"
        assert entry["reason"] == "chip dropout"
        assert "QUARANTINED" not in report.html  # status label, not table
        assert "quarantined" in report.html
        assert "chip dropout" in report.html

    def test_quarantines_fall_back_to_result_when_no_metrics(self):
        report = build_campaign_report(self._result_with_quarantine())
        assert report.data["resilience"]["quarantines"] == 1

"""Multi-core lifetime projection (BTI + EM budgets)."""

import pytest

from repro.device.electromigration import BlackModel
from repro.errors import ConfigurationError
from repro.multicore.lifetime import (
    compare_scheduler_lifetimes,
    project_multicore_lifetime,
)
from repro.multicore.scheduler import BaselineScheduler, CircadianScheduler
from repro.multicore.system import MulticoreSystem
from repro.multicore.workload import ConstantWorkload

from tests.multicore.test_system import fast_params


def make_system(seed=9) -> MulticoreSystem:
    return MulticoreSystem(core_params=fast_params(), seed=seed)


class TestProjection:
    def test_bti_limited_death(self):
        result = project_multicore_lifetime(
            make_system(),
            BaselineScheduler(),
            ConstantWorkload(6),
            bti_budget=0.8e-12,
            horizon_epochs=96,
        )
        assert result.limited_by == "bti"
        assert 0 < result.epochs_survived < 96

    def test_horizon_survival(self):
        result = project_multicore_lifetime(
            make_system(),
            BaselineScheduler(),
            ConstantWorkload(6),
            bti_budget=1.0,  # one second of shift: unreachable
            horizon_epochs=12,
        )
        assert result.survived_horizon
        assert result.epochs_survived == 12

    def test_em_limited_death(self):
        # A brutally short EM reference life makes metal fail first.
        result = project_multicore_lifetime(
            make_system(),
            BaselineScheduler(),
            ConstantWorkload(6),
            bti_budget=1.0,
            horizon_epochs=48,
            em_model=BlackModel(reference_lifetime_years=0.0002),
        )
        assert result.limited_by == "em"
        assert result.final_worst_em_damage >= 1.0

    def test_healing_extends_bti_lifetime_but_not_em(self):
        budget = 0.9e-12
        results = compare_scheduler_lifetimes(
            make_system,
            {"baseline": BaselineScheduler(), "circadian": CircadianScheduler()},
            ConstantWorkload(6),
            bti_budget=budget,
            horizon_epochs=120,
        )
        assert (
            results["circadian"].epochs_survived
            > results["baseline"].epochs_survived
        )
        # Healing reverses BTI but not EM: normalised per survived epoch,
        # the EM ledger accumulates at the same order of magnitude under
        # both schedulers (rotation wear-levels it, nothing erases it),
        # while the BTI budget bought 35+ % more epochs.
        base = results["baseline"]
        circ = results["circadian"]
        base_rate = base.final_worst_em_damage / base.epochs_survived
        circ_rate = circ.final_worst_em_damage / circ.epochs_survived
        assert 0.3 < circ_rate / base_rate < 1.5
        assert circ.final_worst_em_damage > 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            project_multicore_lifetime(
                make_system(), BaselineScheduler(), ConstantWorkload(6),
                bti_budget=0.0, horizon_epochs=10,
            )
        with pytest.raises(ConfigurationError):
            project_multicore_lifetime(
                make_system(), BaselineScheduler(), ConstantWorkload(6),
                bti_budget=1.0, horizon_epochs=0,
            )
        with pytest.raises(ConfigurationError):
            project_multicore_lifetime(
                make_system(), BaselineScheduler(), ConstantWorkload(6),
                bti_budget=1.0, horizon_epochs=10, em_budget=0.0,
            )

"""Property-based scheduler invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multicore.scheduler import (
    BaselineScheduler,
    CircadianScheduler,
    HeaterAwareScheduler,
    RoundRobinScheduler,
)
from repro.multicore.thermal import ThermalGrid

GRID = ThermalGrid()

schedulers = st.sampled_from(
    [
        BaselineScheduler(),
        RoundRobinScheduler(),
        CircadianScheduler(),
        HeaterAwareScheduler(),
    ]
)


class TestSchedulerInvariants:
    @given(
        scheduler=schedulers,
        epoch=st.integers(0, 1000),
        demand=st.integers(0, 16),
        aging=st.lists(st.floats(0.0, 1e-9), min_size=8, max_size=8),
    )
    @settings(max_examples=120, deadline=None)
    def test_decision_well_formed(self, scheduler, epoch, demand, aging):
        decision = scheduler.decide(epoch, demand, np.array(aging), GRID)
        active = decision.active
        # Valid distinct core indices.
        assert len(set(active)) == len(active)
        assert all(0 <= core < 8 for core in active)
        # Never more than the grid holds; demand honoured up to capacity.
        assert len(active) == min(demand, 8)
        # Sleep bias is never a stress bias.
        assert decision.sleep_voltage <= 0.0

    @given(
        epoch=st.integers(0, 1000),
        aging=st.lists(st.floats(0.0, 1e-9), min_size=8, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_heater_aware_sleeps_most_aged_core(self, epoch, aging):
        aging_arr = np.array(aging)
        if aging_arr.max() == 0.0:
            return  # pure tie-break case, covered elsewhere
        decision = HeaterAwareScheduler(heat_weight=0.0).decide(
            epoch, 7, aging_arr, GRID
        )
        sleeping = set(range(8)) - set(decision.active)
        assert int(np.argmax(aging_arr)) in sleeping

    @given(demand=st.integers(1, 7), offset=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_round_robin_period_is_core_count(self, demand, offset):
        scheduler = RoundRobinScheduler()
        zero = np.zeros(8)
        a = scheduler.decide(offset, demand, zero, GRID).active
        b = scheduler.decide(offset + 8, demand, zero, GRID).active
        assert a == b

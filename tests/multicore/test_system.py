"""Multi-core system simulation (integration)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.multicore.core_model import CoreParameters
from repro.multicore.metrics import compare_final_margin, compute_metrics
from repro.multicore.scheduler import (
    BaselineScheduler,
    CircadianScheduler,
    HeaterAwareScheduler,
    RoundRobinScheduler,
)
from repro.multicore.system import MulticoreSystem
from repro.multicore.workload import ConstantWorkload
from repro.units import hours


def fast_params() -> CoreParameters:
    from repro.bti.traps import TrapParameters

    return CoreParameters(
        nbti_traps=TrapParameters(mean_trap_count=120.0),
        pbti_traps=TrapParameters(mean_trap_count=100.0, impact_mean_volts=2.56e-3),
    )


def run_system(scheduler, n_epochs=48, seed=7, params=None):
    system = MulticoreSystem(core_params=params or fast_params(), seed=seed)
    history = system.run(
        scheduler, ConstantWorkload(6), n_epochs=n_epochs, epoch_duration=hours(1.0)
    )
    return history


class TestSystemRun:
    def test_history_shapes(self):
        history = run_system(RoundRobinScheduler(), n_epochs=10)
        assert history.delay_shifts.shape == (11, 8)
        assert history.temperatures.shape == (10, 8)
        assert history.active_mask.shape == (10, 8)

    def test_demand_respected(self):
        history = run_system(RoundRobinScheduler(), n_epochs=10)
        np.testing.assert_array_equal(history.active_mask.sum(axis=1), 6)

    def test_aging_accumulates(self):
        history = run_system(BaselineScheduler(), n_epochs=24)
        assert np.all(history.delay_shifts[-1] >= history.delay_shifts[0])
        assert history.worst_core_shift()[-1] > 0.0

    def test_baseline_concentrates_wear(self):
        history = run_system(BaselineScheduler(), n_epochs=24)
        final = history.final_shifts()
        # Always-active cores 0-5 age; permanently sleeping cores 6-7 barely.
        assert final[:6].min() > 5.0 * final[6:].max()

    def test_round_robin_levels_wear(self):
        baseline = run_system(BaselineScheduler(), n_epochs=48)
        levelled = run_system(RoundRobinScheduler(), n_epochs=48)
        assert (
            compute_metrics(levelled).aging_spread
            < compute_metrics(baseline).aging_spread
        )

    def test_scheduler_ladder_improves_worst_core(self):
        # Uses the default (large) trap populations: with tiny test
        # populations the worst-core statistic is dominated by draw noise.
        metrics = {}
        for name, scheduler in (
            ("baseline", BaselineScheduler()),
            ("round-robin", RoundRobinScheduler()),
            ("circadian", CircadianScheduler()),
            ("heater-aware", HeaterAwareScheduler()),
        ):
            metrics[name] = compute_metrics(
                run_system(scheduler, n_epochs=96, params=CoreParameters())
            )
        worst = {name: m.worst_shift for name, m in metrics.items()}
        # Active healing beats passive rotation beats nothing; at this
        # horizon round-robin vs baseline worst-core is draw-noise bound,
        # so the robust assertions are the active-recovery rungs.
        assert worst["heater-aware"] < worst["circadian"] < worst["round-robin"]
        assert worst["heater-aware"] < worst["baseline"]
        assert metrics["circadian"].mean_shift < metrics["baseline"].mean_shift

    def test_equal_work_across_schedulers(self):
        a = compute_metrics(run_system(BaselineScheduler(), n_epochs=24))
        b = compute_metrics(run_system(HeaterAwareScheduler(), n_epochs=24))
        assert a.work_epochs == b.work_epochs

    def test_sleeping_cores_heated_above_ambient(self):
        history = run_system(HeaterAwareScheduler(), n_epochs=12)
        metrics = compute_metrics(history)
        assert metrics.mean_sleep_temperature_c > 45.0  # ambient is 35 degC

    def test_utilisation_accounting(self):
        history = run_system(RoundRobinScheduler(), n_epochs=8)
        np.testing.assert_allclose(history.utilisation(), 0.75, atol=1e-12)

    def test_times_axis(self):
        history = run_system(RoundRobinScheduler(), n_epochs=4)
        np.testing.assert_allclose(history.times, np.arange(5) * hours(1.0))

    def test_parameter_validation(self):
        system = MulticoreSystem(core_params=fast_params(), seed=1)
        with pytest.raises(ConfigurationError):
            system.run(RoundRobinScheduler(), ConstantWorkload(6), n_epochs=0)
        with pytest.raises(ConfigurationError):
            system.run(
                RoundRobinScheduler(), ConstantWorkload(6), n_epochs=1, epoch_duration=0.0
            )


class TestMetrics:
    def test_compare_final_margin(self):
        baseline = compute_metrics(run_system(BaselineScheduler(), n_epochs=48))
        healed = compute_metrics(run_system(HeaterAwareScheduler(), n_epochs=48))
        gain = compare_final_margin(baseline, healed)
        assert 0.0 < gain < 1.0

    def test_energy_positive(self):
        metrics = compute_metrics(run_system(RoundRobinScheduler(), n_epochs=4))
        assert metrics.energy_joules > 0.0


class TestFastForward:
    def test_matches_epoch_by_epoch_run(self):
        ff = MulticoreSystem(core_params=fast_params(), seed=11)
        stepped = MulticoreSystem(core_params=fast_params(), seed=11)
        scheduler = CircadianScheduler()
        n_rotations = 6
        final = ff.fast_forward(scheduler, demand=6, n_rotations=n_rotations)
        history = stepped.run(
            scheduler,
            ConstantWorkload(6),
            n_epochs=n_rotations * stepped.n_cores,
            epoch_duration=hours(1.0),
        )
        np.testing.assert_allclose(final, history.final_shifts(), rtol=1e-9)
        assert ff.total_energy() == pytest.approx(stepped.total_energy(), rel=1e-12)

    def test_refuses_aging_dependent_scheduler(self):
        system = MulticoreSystem(core_params=fast_params(), seed=1)
        with pytest.raises(ConfigurationError):
            system.fast_forward(HeaterAwareScheduler(), demand=6, n_rotations=4)

    def test_rejects_bad_inputs(self):
        system = MulticoreSystem(core_params=fast_params(), seed=1)
        with pytest.raises(ConfigurationError):
            system.fast_forward(CircadianScheduler(), demand=6, n_rotations=0)
        with pytest.raises(ConfigurationError):
            system.fast_forward(
                CircadianScheduler(), demand=6, n_rotations=2, epoch_duration=0.0
            )

    def test_wrapped_schedulers_inherit_independence(self):
        from repro.multicore.scheduler import InstrumentedScheduler
        from repro.multicore.tdp import TdpConstrainedScheduler, TdpConstraint

        assert InstrumentedScheduler(CircadianScheduler()).aging_independent
        assert not InstrumentedScheduler(HeaterAwareScheduler()).aging_independent
        constraint = TdpConstraint(budget_watts=65.0)
        assert TdpConstrainedScheduler(
            RoundRobinScheduler(), constraint
        ).aging_independent

"""Dark silicon: TDP-constrained scheduling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.multicore.scheduler import CircadianScheduler
from repro.multicore.tdp import TdpConstrainedScheduler, TdpConstraint
from repro.multicore.thermal import ThermalGrid


class TestTdpConstraint:
    def test_max_active_cores(self):
        # 8 cores, floor 8*0.4 = 3.2 W; 60 W budget -> 56.8/9.6 = 5 actives.
        constraint = TdpConstraint(budget_watts=60.0)
        assert constraint.max_active_cores(8) == 5

    def test_generous_budget_allows_all(self):
        assert TdpConstraint(budget_watts=1000.0).max_active_cores(8) == 8

    def test_starved_budget_darkens_everything(self):
        assert TdpConstraint(budget_watts=1.0).max_active_cores(8) == 0

    def test_dark_fraction(self):
        constraint = TdpConstraint(budget_watts=60.0)
        assert constraint.dark_fraction(8) == pytest.approx(3.0 / 8.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TdpConstraint(budget_watts=0.0)
        with pytest.raises(ConfigurationError):
            TdpConstraint(budget_watts=10.0, active_power=0.3, sleep_power=0.4)
        with pytest.raises(ConfigurationError):
            TdpConstraint(budget_watts=10.0).max_active_cores(0)


class TestTdpConstrainedScheduler:
    def test_clamps_demand(self):
        grid = ThermalGrid()
        scheduler = TdpConstrainedScheduler(
            CircadianScheduler(), TdpConstraint(budget_watts=60.0)
        )
        decision = scheduler.decide(0, 8, np.zeros(8), grid)
        assert len(decision.active) == 5
        assert scheduler.clamped_epochs == 1

    def test_passes_through_within_budget(self):
        grid = ThermalGrid()
        scheduler = TdpConstrainedScheduler(
            CircadianScheduler(), TdpConstraint(budget_watts=60.0)
        )
        decision = scheduler.decide(0, 3, np.zeros(8), grid)
        assert len(decision.active) == 3
        assert scheduler.clamped_epochs == 0

    def test_dark_cores_heal_actively(self):
        grid = ThermalGrid()
        scheduler = TdpConstrainedScheduler(
            CircadianScheduler(), TdpConstraint(budget_watts=60.0)
        )
        decision = scheduler.decide(0, 8, np.zeros(8), grid)
        assert decision.sleep_voltage == -0.3

    def test_budget_respected_in_system_run(self):
        from repro.multicore.system import MulticoreSystem
        from repro.multicore.workload import ConstantWorkload
        from tests.multicore.test_system import fast_params
        from repro.units import hours

        constraint = TdpConstraint(budget_watts=60.0)
        system = MulticoreSystem(core_params=fast_params(), seed=5)
        scheduler = TdpConstrainedScheduler(CircadianScheduler(), constraint)
        history = system.run(
            scheduler, ConstantWorkload(8), n_epochs=6, epoch_duration=hours(1.0)
        )
        # Never more than 5 active cores -> power never above budget.
        assert history.active_mask.sum(axis=1).max() == 5
        worst_power = history.active_mask.sum(axis=1).max() * 10.0 + 3 * 0.4
        assert worst_power <= 60.0

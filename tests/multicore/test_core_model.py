"""Per-core aging model."""

import pytest

from repro.errors import ConfigurationError
from repro.multicore.core_model import CoreAgingModel, CoreParameters
from repro.units import celsius, hours


def make_core(seed=1) -> CoreAgingModel:
    return CoreAgingModel("core-t", rng=seed)


class TestCoreAgingModel:
    def test_fresh_core_unshifted(self):
        core = make_core()
        assert core.delta_path_delay() == 0.0
        assert core.relative_slowdown() == 0.0

    def test_running_ages(self):
        core = make_core()
        core.run_active(hours(24.0), celsius(80.0))
        assert core.delta_path_delay() > 0.0
        assert core.active_seconds == hours(24.0)

    def test_hotter_core_ages_faster(self):
        cool = make_core(seed=2)
        hot = make_core(seed=2)
        cool.run_active(hours(24.0), celsius(60.0))
        hot.run_active(hours(24.0), celsius(90.0))
        assert hot.delta_path_delay() > cool.delta_path_delay()

    def test_negative_sleep_heals_faster_than_passive(self):
        passive = make_core(seed=3)
        active = make_core(seed=3)
        for core in (passive, active):
            core.run_active(hours(48.0), celsius(90.0))
        passive.sleep(hours(12.0), celsius(60.0), voltage=0.0)
        active.sleep(hours(12.0), celsius(60.0), voltage=-0.3)
        assert active.delta_path_delay() < passive.delta_path_delay()

    def test_hot_sleep_heals_faster(self):
        cold = make_core(seed=3)
        hot = make_core(seed=3)
        for core in (cold, hot):
            core.run_active(hours(48.0), celsius(90.0))
        cold.sleep(hours(12.0), celsius(40.0), voltage=0.0)
        hot.sleep(hours(12.0), celsius(70.0), voltage=0.0)
        assert hot.delta_path_delay() < cold.delta_path_delay()

    def test_energy_accounting(self):
        core = make_core()
        core.run_active(3600.0, celsius(80.0))
        assert core.energy_joules == pytest.approx(core.params.active_power * 3600.0)
        core.sleep(3600.0, celsius(60.0), voltage=0.0)
        assert core.energy_joules == pytest.approx(
            core.params.active_power * 3600.0 + core.params.sleep_power * 3600.0
        )

    def test_negative_rail_costs_energy(self):
        passive = make_core(seed=4)
        active = make_core(seed=4)
        passive.sleep(3600.0, celsius(60.0), voltage=0.0)
        active.sleep(3600.0, celsius(60.0), voltage=-0.3)
        assert active.energy_joules > passive.energy_joules

    def test_sleep_rejects_positive_voltage(self):
        with pytest.raises(ConfigurationError):
            make_core().sleep(1.0, celsius(60.0), voltage=0.5)

    def test_snapshot_restore(self):
        core = make_core()
        core.run_active(hours(10.0), celsius(80.0))
        state = core.snapshot()
        mid = core.delta_path_delay()
        core.run_active(hours(10.0), celsius(80.0))
        core.restore(state)
        assert core.delta_path_delay() == pytest.approx(mid)
        assert core.active_seconds == pytest.approx(hours(10.0))

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CoreParameters(fresh_path_delay=0.0)
        with pytest.raises(ConfigurationError):
            CoreParameters(delay_sensitivity=0.0)
        with pytest.raises(ConfigurationError):
            CoreParameters(active_power=0.0)


class TestRunCycles:
    def segments(self):
        from repro.multicore.core_model import CoreSegment

        return (
            CoreSegment(hours(1.0), celsius(85.0), active=True),
            CoreSegment(hours(0.25), celsius(110.0), active=False, sleep_voltage=-0.3),
        )

    def test_matches_explicit_loop(self):
        closed = make_core(seed=5)
        naive = make_core(seed=5)
        n = 500
        closed.run_cycles(self.segments(), n)
        for _ in range(n):
            naive.run_active(hours(1.0), celsius(85.0))
            naive.sleep(hours(0.25), celsius(110.0), voltage=-0.3)
        assert closed.delta_path_delay() == pytest.approx(
            naive.delta_path_delay(), rel=1e-9
        )
        assert closed.energy_joules == pytest.approx(naive.energy_joules, rel=1e-12)
        assert closed.active_seconds == naive.active_seconds
        assert closed.sleep_seconds == naive.sleep_seconds

    def test_zero_cycles_is_noop(self):
        core = make_core()
        core.run_cycles(self.segments(), 0)
        assert core.energy_joules == 0.0 and core.delta_path_delay() == 0.0

    def test_rejects_bad_inputs(self):
        from repro.multicore.core_model import CoreSegment

        core = make_core()
        with pytest.raises(ConfigurationError):
            core.run_cycles(self.segments(), -1)
        with pytest.raises(ConfigurationError):
            core.run_cycles((), 3)
        with pytest.raises(ConfigurationError):
            CoreSegment(hours(1.0), celsius(85.0), active=False, sleep_voltage=0.3)

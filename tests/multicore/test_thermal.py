"""Thermal RC grid: neighbour heating physics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.multicore.thermal import ThermalGrid
from repro.units import celsius


class TestThermalGrid:
    def test_default_paper_grid(self):
        grid = ThermalGrid()
        assert grid.n_cores == 8

    def test_idle_chip_sits_at_ambient(self):
        grid = ThermalGrid(ambient_c=35.0)
        temps = grid.steady_state(np.zeros(8))
        np.testing.assert_allclose(temps, celsius(35.0))

    def test_uniform_power_uniform_temperature(self):
        grid = ThermalGrid()
        temps = grid.steady_state(np.full(8, 10.0))
        np.testing.assert_allclose(temps, temps[0])
        # With no lateral flow each core rises by P * theta_ambient.
        assert temps[0] - grid.ambient == pytest.approx(10.0 * 4.0)

    def test_sleeping_core_heated_by_neighbours(self):
        grid = ThermalGrid()
        powers = np.full(8, 10.0)
        powers[2] = 0.4  # core 3 in the paper's figure
        temps = grid.steady_state(powers)
        # The sleeping core sits well above ambient thanks to its
        # neighbours, though cooler than the active ones.
        assert temps[2] - grid.ambient > 15.0
        assert temps[2] < temps.max()

    def test_isolated_sleeper_cooler_than_surrounded_sleeper(self):
        grid = ThermalGrid(rows=1, cols=5)
        surrounded = np.array([10.0, 10.0, 0.4, 10.0, 10.0])
        edge = np.array([0.4, 10.0, 10.0, 10.0, 10.0])
        t_surrounded = grid.steady_state(surrounded)[2]
        t_edge = grid.steady_state(edge)[0]
        assert t_surrounded > t_edge

    def test_energy_conservation(self):
        # Total heat flowing to ambient equals total power injected.
        grid = ThermalGrid()
        powers = np.array([10.0, 0.4, 10.0, 0.4, 10.0, 10.0, 0.4, 10.0])
        temps = grid.steady_state(powers)
        to_ambient = np.sum((temps - grid.ambient) / grid.theta_ambient)
        assert to_ambient == pytest.approx(powers.sum())

    def test_neighbours_of_grid(self):
        grid = ThermalGrid(rows=2, cols=4)
        # Corner core 0 at (0, 0) touches (0, 1) = index 1 and (1, 0) = 4.
        assert grid.neighbours(0) == [1, 4]
        # Inner core 1 at (0, 1) touches 0, 2 and 5.
        assert grid.neighbours(1) == [0, 2, 5]

    def test_node_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            ThermalGrid().node_of(99)

    def test_power_vector_validated(self):
        grid = ThermalGrid()
        with pytest.raises(ConfigurationError):
            grid.steady_state(np.zeros(3))
        with pytest.raises(ConfigurationError):
            grid.steady_state(np.full(8, -1.0))

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ThermalGrid(rows=0)
        with pytest.raises(ConfigurationError):
            ThermalGrid(theta_ambient=0.0)

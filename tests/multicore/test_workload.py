"""Workload models."""

import pytest

from repro.errors import ConfigurationError
from repro.multicore.workload import ConstantWorkload, DiurnalWorkload, RandomWorkload


class TestConstantWorkload:
    def test_constant(self):
        workload = ConstantWorkload(6)
        assert [workload.demand(e) for e in range(5)] == [6] * 5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantWorkload(-1)


class TestDiurnalWorkload:
    def test_day_night_cycle(self):
        workload = DiurnalWorkload(peak=6, trough=2, day_epochs=3, night_epochs=2)
        demands = [workload.demand(e) for e in range(10)]
        assert demands == [6, 6, 6, 2, 2, 6, 6, 6, 2, 2]

    def test_peak_must_dominate(self):
        with pytest.raises(ConfigurationError):
            DiurnalWorkload(peak=2, trough=6)

    def test_epoch_counts_positive(self):
        with pytest.raises(ConfigurationError):
            DiurnalWorkload(peak=6, trough=2, day_epochs=0)


class TestRandomWorkload:
    def test_demand_bounded(self):
        workload = RandomWorkload(n_cores=8, utilisation=0.75, rng=0)
        demands = [workload.demand(e) for e in range(200)]
        assert all(0 <= d <= 8 for d in demands)

    def test_mean_near_utilisation(self):
        workload = RandomWorkload(n_cores=8, utilisation=0.75, rng=0)
        demands = [workload.demand(e) for e in range(2000)]
        assert sum(demands) / len(demands) == pytest.approx(6.0, abs=0.2)

    def test_utilisation_bounds(self):
        with pytest.raises(ConfigurationError):
            RandomWorkload(n_cores=8, utilisation=1.5)

"""Core schedulers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.multicore.scheduler import (
    BaselineScheduler,
    CircadianScheduler,
    HeaterAwareScheduler,
    RoundRobinScheduler,
)
from repro.multicore.thermal import ThermalGrid


@pytest.fixture
def grid() -> ThermalGrid:
    return ThermalGrid()


NO_AGING = np.zeros(8)


class TestBaseline:
    def test_fixed_active_set(self, grid):
        scheduler = BaselineScheduler()
        for epoch in range(5):
            decision = scheduler.decide(epoch, 6, NO_AGING, grid)
            assert decision.active == tuple(range(6))
            assert decision.sleep_voltage == 0.0

    def test_demand_clamped(self, grid):
        decision = BaselineScheduler().decide(0, 99, NO_AGING, grid)
        assert len(decision.active) == 8


class TestRoundRobin:
    def test_rotation(self, grid):
        scheduler = RoundRobinScheduler()
        first = scheduler.decide(0, 6, NO_AGING, grid).active
        second = scheduler.decide(1, 6, NO_AGING, grid).active
        assert first != second

    def test_every_core_gets_sleep(self, grid):
        scheduler = RoundRobinScheduler()
        slept = set()
        for epoch in range(8):
            active = set(scheduler.decide(epoch, 6, NO_AGING, grid).active)
            slept |= set(range(8)) - active
        assert slept == set(range(8))

    def test_passive_sleep_voltage(self, grid):
        assert RoundRobinScheduler().decide(0, 6, NO_AGING, grid).sleep_voltage == 0.0

    def test_rejects_positive_sleep_voltage(self):
        with pytest.raises(ConfigurationError):
            RoundRobinScheduler(sleep_voltage=0.3)


class TestCircadian:
    def test_negative_rail_by_default(self, grid):
        decision = CircadianScheduler().decide(0, 6, NO_AGING, grid)
        assert decision.sleep_voltage == -0.3


class TestHeaterAware:
    def test_most_aged_cores_sleep(self, grid):
        aging = np.array([1.0, 0.1, 0.1, 0.1, 0.9, 0.1, 0.1, 0.1])
        decision = HeaterAwareScheduler().decide(0, 6, aging, grid)
        sleeping = set(range(8)) - set(decision.active)
        assert sleeping == {0, 4}

    def test_heat_breaks_ties(self, grid):
        # With uniform aging the scheduler prefers well-surrounded slots:
        # inner cores (1, 2, 5, 6) have three neighbours, corners two.
        decision = HeaterAwareScheduler().decide(0, 6, NO_AGING, grid)
        sleeping = set(range(8)) - set(decision.active)
        assert sleeping <= {1, 2, 5, 6}

    def test_iterative_selection_avoids_adjacent_sleepers(self, grid):
        # When two cores sleep, the second choice accounts for the first
        # being asleep: sleepers should not rely on each other's heat.
        decision = HeaterAwareScheduler(heat_weight=1.0, aging_weight=0.0).decide(
            0, 6, NO_AGING, grid
        )
        sleeping = sorted(set(range(8)) - set(decision.active))
        a, b = sleeping
        assert b not in grid.neighbours(a)

    def test_negative_rail(self, grid):
        assert HeaterAwareScheduler().decide(0, 6, NO_AGING, grid).sleep_voltage == -0.3

    def test_zero_demand_sleeps_everyone(self, grid):
        decision = HeaterAwareScheduler().decide(0, 0, NO_AGING, grid)
        assert decision.active == ()

    def test_full_demand_sleeps_no_one(self, grid):
        decision = HeaterAwareScheduler().decide(0, 8, NO_AGING, grid)
        assert len(decision.active) == 8

    def test_weight_validation(self):
        with pytest.raises(ConfigurationError):
            HeaterAwareScheduler(aging_weight=-1.0)

    def test_negative_demand_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            HeaterAwareScheduler().decide(0, -1, NO_AGING, grid)

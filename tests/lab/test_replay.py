"""Replay analysis from archived logs."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.lab.datalog import DataLog, MeasurementRecord
from repro.lab.replay import fresh_delays_from_log, result_from_csv, result_from_log


def _record(chip_id: str, timestamp: float, phase_elapsed: float, delay: float):
    return MeasurementRecord(
        chip_id=chip_id,
        case="AS110DC24",
        phase="AS110DC24",
        timestamp=timestamp,
        phase_elapsed=phase_elapsed,
        count=1000,
        frequency=1.0 / (2.0 * delay),
        delay=delay,
        temperature_c=110.0,
        supply_voltage=1.2,
    )


class TestReplay:
    def test_fresh_delays_match_live_result(self, campaign_result):
        fresh = fresh_delays_from_log(campaign_result.log)
        for chip_id, live in campaign_result.fresh_delays.items():
            # The replayed anchor is a counter *measurement* of the fresh
            # chip: equal to the live value within readout resolution.
            assert fresh[chip_id] == pytest.approx(live, rel=2e-3)

    def test_series_match_live_result(self, campaign_result):
        replayed = result_from_log(campaign_result.log)
        t_live, d_live = campaign_result.delay_change_series("AR110N6", chip_no=5)
        t_rep, d_rep = replayed.delay_change_series("AR110N6", chip_no=5)
        np.testing.assert_array_equal(t_live, t_rep)
        # Delay *changes* differ only by the fresh-anchor quantisation.
        np.testing.assert_allclose(d_live, d_rep, atol=5e-10)

    def test_csv_round_trip(self, campaign_result, tmp_path):
        path = tmp_path / "campaign.csv"
        campaign_result.log.write_csv(path)
        replayed = result_from_csv(path)
        t, p = replayed.degradation_percent_series("AS110DC24", chip_no=2)
        assert p[-1] > 1.5  # the headline degradation survives archival

    def test_empty_log_rejected(self):
        with pytest.raises(MeasurementError):
            fresh_delays_from_log(DataLog())

    def test_mid_phase_log_rejected(self, campaign_result):
        truncated = DataLog()
        for record in campaign_result.log:
            if record.phase_elapsed > 0.0:
                truncated.append(record)
        with pytest.raises(MeasurementError):
            fresh_delays_from_log(truncated)

    def test_mid_phase_error_names_the_chip(self):
        log = DataLog()
        log.append(_record("chip-9", timestamp=1200.0, phase_elapsed=1200.0, delay=5e-9))
        with pytest.raises(MeasurementError, match="chip-9"):
            fresh_delays_from_log(log)

    def test_one_resumed_chip_poisons_only_that_chip(self):
        # chip-1 has a clean time-zero anchor; chip-2 resumes mid-phase.
        # The whole log must be rejected: a partial fresh-delay map would
        # silently drop chip-2's series.
        log = DataLog()
        log.append(_record("chip-1", timestamp=0.0, phase_elapsed=0.0, delay=5e-9))
        log.append(_record("chip-2", timestamp=600.0, phase_elapsed=600.0, delay=6e-9))
        with pytest.raises(MeasurementError, match="chip-2"):
            fresh_delays_from_log(log)

    def test_later_time_zero_sample_anchors_resumed_log(self):
        # A log that starts at a *later* phase's time-zero reading is a
        # legal resume point: the earliest record per chip has
        # phase_elapsed exactly 0.0, so it anchors that chip's deltas.
        log = DataLog()
        log.append(_record("chip-1", timestamp=86400.0, phase_elapsed=0.0, delay=5.2e-9))
        log.append(_record("chip-1", timestamp=88200.0, phase_elapsed=1800.0, delay=5.1e-9))
        fresh = fresh_delays_from_log(log)
        assert fresh["chip-1"] == 5.2e-9

    def test_replayed_result_has_no_chips(self, campaign_result):
        replayed = result_from_log(campaign_result.log)
        assert replayed.chips == {}
        assert set(replayed.fresh_delays) == set(campaign_result.fresh_delays)

"""Replay analysis from archived logs."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.lab.datalog import DataLog
from repro.lab.replay import fresh_delays_from_log, result_from_csv, result_from_log


class TestReplay:
    def test_fresh_delays_match_live_result(self, campaign_result):
        fresh = fresh_delays_from_log(campaign_result.log)
        for chip_id, live in campaign_result.fresh_delays.items():
            # The replayed anchor is a counter *measurement* of the fresh
            # chip: equal to the live value within readout resolution.
            assert fresh[chip_id] == pytest.approx(live, rel=2e-3)

    def test_series_match_live_result(self, campaign_result):
        replayed = result_from_log(campaign_result.log)
        t_live, d_live = campaign_result.delay_change_series("AR110N6", chip_no=5)
        t_rep, d_rep = replayed.delay_change_series("AR110N6", chip_no=5)
        np.testing.assert_array_equal(t_live, t_rep)
        # Delay *changes* differ only by the fresh-anchor quantisation.
        np.testing.assert_allclose(d_live, d_rep, atol=5e-10)

    def test_csv_round_trip(self, campaign_result, tmp_path):
        path = tmp_path / "campaign.csv"
        campaign_result.log.write_csv(path)
        replayed = result_from_csv(path)
        t, p = replayed.degradation_percent_series("AS110DC24", chip_no=2)
        assert p[-1] > 1.5  # the headline degradation survives archival

    def test_empty_log_rejected(self):
        with pytest.raises(MeasurementError):
            fresh_delays_from_log(DataLog())

    def test_mid_phase_log_rejected(self, campaign_result):
        truncated = DataLog()
        for record in campaign_result.log:
            if record.phase_elapsed > 0.0:
                truncated.append(record)
        with pytest.raises(MeasurementError):
            fresh_delays_from_log(truncated)

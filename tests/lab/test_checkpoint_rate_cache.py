"""Checkpoint restore must invalidate trap-rate caches (regression).

The rate caches memoise on bias/temperature keys, so a restore *could*
keep them warm — but the invalidation contract is load-bearing: any
future cache key that reads mutable state (and the defensive posture of
``restore``/``import_state``) requires the caches to drop on every state
replacement.  The observable contract tested here is stronger than the
cache counters: a chip resumed from a :class:`CheckpointStore` snapshot
and then evolved must stay bit-identical to the chip that never stopped,
even when the resumed process polluted its caches with other biases
first.
"""

import numpy as np

from repro.fpga.chip import FpgaChip
from repro.lab.datalog import DataLog
from repro.lab.resilience import CheckpointStore
from repro.units import hours

HOT = 110.0
COLD = 20.0


def _chip(seed=0) -> FpgaChip:
    return FpgaChip("chip-ckpt", seed=seed)


class TestRestoreInvalidatesCaches:
    def test_import_state_empties_both_populations(self):
        chip = _chip()
        chip.apply_stress(hours(1.0), HOT)
        chip.apply_recovery(hours(0.5), HOT, supply_voltage=-0.3)
        assert chip._pmos_population.rate_cache_entries > 0
        state = chip.export_state()
        chip.import_state(state)
        assert chip._pmos_population.rate_cache_entries == 0
        assert chip._nmos_population.rate_cache_entries == 0

    def test_restore_empties_both_populations(self):
        chip = _chip()
        snapshot = chip.snapshot()
        chip.apply_stress(hours(1.0), HOT)
        assert chip._pmos_population.rate_cache_entries > 0
        chip.restore(snapshot)
        assert chip._pmos_population.rate_cache_entries == 0
        assert chip._nmos_population.rate_cache_entries == 0


class TestResumeThenEvolveBitIdentity:
    def test_checkpoint_roundtrip_then_evolve_matches_uninterrupted(self, tmp_path):
        # The uninterrupted reference: stress, checkpoint-time mark,
        # then the post-resume schedule.
        reference = _chip()
        reference.apply_stress(hours(2.0), HOT)
        continued_rng = np.random.default_rng(42)
        store = CheckpointStore(tmp_path)
        store.init_manifest(seed=0, n_chips=1, include_baseline=True)
        store.save_chip(
            reference,
            continued_rng,
            DataLog(),
            DataLog(),
            completed=["CASE-A"],
        )
        reference.apply_stress(hours(1.0), HOT)
        reference.apply_recovery(hours(1.0), COLD, supply_voltage=-0.3)
        reference_noise = continued_rng.integers(0, 1 << 16, size=4)

        # The resumed process: same construction, *different* early
        # history (polluting the rate caches with other bias keys), then
        # a checkpoint load and the same post-resume schedule.
        resumed = _chip()
        resumed.apply_stress(hours(0.25), COLD, supply_voltage=1.1)
        resumed.apply_recovery(hours(0.25), HOT, supply_voltage=0.0)
        resumed_rng = np.random.default_rng(7)
        loaded = store.load_chip(resumed, resumed_rng)
        assert loaded is not None
        _, _, completed, quarantine = loaded
        assert completed == ["CASE-A"] and quarantine is None
        assert resumed._pmos_population.rate_cache_entries == 0
        resumed.apply_stress(hours(1.0), HOT)
        resumed.apply_recovery(hours(1.0), COLD, supply_voltage=-0.3)
        resumed_noise = resumed_rng.integers(0, 1 << 16, size=4)

        assert resumed.elapsed == reference.elapsed
        np.testing.assert_array_equal(resumed.delta_vth(), reference.delta_vth())
        assert resumed.path_delay() == reference.path_delay()
        # The bench RNG stream resumes exactly where the snapshot took it.
        np.testing.assert_array_equal(resumed_noise, reference_noise)

"""Parallel campaign engine — bit-identity with the sequential path.

The acceptance bar for ``workers > 1`` is not "statistically equivalent"
but *bit-identical*: same seed, same records in the same order, same
fresh delays, same physics counters.  Workers only change wall-clock
scheduling; per-chip RNG streams are derived identically and results are
merged in chip order.
"""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.lab.campaign import run_table1_campaign
from repro.obs import Tracer

#: Gauges derived from wall-clock timing legitimately differ between
#: runs; everything else in the registry must match exactly.
WALL_CLOCK_METRICS = {"campaign.sim_seconds_per_wall_second"}


@pytest.fixture(scope="module")
def sequential_result():
    return run_table1_campaign(seed=123, n_chips=3, workers=1)


@pytest.fixture(scope="module")
def parallel_result():
    return run_table1_campaign(seed=123, n_chips=3, workers=4)


class TestBitIdentity:
    def test_records_identical(self, sequential_result, parallel_result):
        seq = list(sequential_result.log)
        par = list(parallel_result.log)
        assert len(seq) == len(par)
        assert seq == par  # frozen dataclasses: field-by-field equality

    def test_fresh_delays_identical(self, sequential_result, parallel_result):
        assert sequential_result.fresh_delays == parallel_result.fresh_delays

    def test_chip_state_identical(self, sequential_result, parallel_result):
        for chip_id, chip in sequential_result.chips.items():
            other = parallel_result.chips[chip_id]
            assert chip.delta_path_delay() == other.delta_path_delay()
            assert chip.elapsed == other.elapsed

    def test_more_workers_than_chips(self):
        seq = run_table1_campaign(seed=5, n_chips=2, workers=1)
        par = run_table1_campaign(seed=5, n_chips=2, workers=16)
        assert list(seq.log) == list(par.log)


class TestInstrumentedParallelRun:
    def test_counters_match_sequential(self):
        seq_tracer, par_tracer = Tracer(), Tracer()
        run_table1_campaign(seed=7, n_chips=2, tracer=seq_tracer, workers=1)
        run_table1_campaign(seed=7, n_chips=2, tracer=par_tracer, workers=2)
        seq = {k: v for k, v in seq_tracer.metrics.snapshot().items()
               if k not in WALL_CLOCK_METRICS}
        par = {k: v for k, v in par_tracer.metrics.snapshot().items()
               if k not in WALL_CLOCK_METRICS}
        assert seq == par

    def test_span_tree_is_consistent(self):
        tracer = Tracer()
        run_table1_campaign(seed=7, n_chips=2, tracer=tracer, workers=2)
        campaign_spans = tracer.spans("campaign")
        assert len(campaign_spans) == 1
        root = campaign_spans[0]
        assert root.attributes["workers"] == 2
        ids = {span.span_id for span in tracer.finished}
        assert len(ids) == len(tracer.finished)  # absorb renumbered uniquely
        for span in tracer.finished:
            if span is root:
                continue
            assert span.parent_id is None or span.parent_id in ids

    def test_case_spans_absorbed_from_workers(self):
        seq_tracer, par_tracer = Tracer(), Tracer()
        run_table1_campaign(seed=7, n_chips=2, tracer=seq_tracer, workers=1)
        run_table1_campaign(seed=7, n_chips=2, tracer=par_tracer, workers=2)
        assert len(par_tracer.spans("case")) == len(seq_tracer.spans("case"))
        assert len(par_tracer.finished) == len(seq_tracer.finished)


class TestValidation:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ScheduleError):
            run_table1_campaign(seed=0, n_chips=1, workers=0)

    def test_delay_change_series_usable(self, parallel_result):
        times, shifts = parallel_result.delay_change_series("AS110DC24", chip_no=2)
        assert times.size > 0
        assert np.all(np.isfinite(shifts))


class TestMergedHistogramsAndDerived:
    """The new metric kinds must survive worker merges bit-identically."""

    def test_histogram_payloads_match_sequential(self):
        seq_tracer, par_tracer = Tracer(), Tracer()
        run_table1_campaign(seed=7, n_chips=2, tracer=seq_tracer, workers=1)
        run_table1_campaign(seed=7, n_chips=2, tracer=par_tracer, workers=2)
        for name in ("profile.case.meas_per_s", "profile.case.trap_updates_per_s"):
            seq_hist = seq_tracer.metrics.get(name)
            par_hist = par_tracer.metrics.get(name)
            # observation counts and bucket shape are deterministic;
            # the observed rates themselves are wall-clock quantities
            assert par_hist.count == seq_hist.count
            assert len(par_hist.bucket_counts) == len(seq_hist.bucket_counts)
            assert par_hist.count == sum(par_hist.bucket_counts)

    def test_derived_gauge_reads_merged_counters(self):
        tracer = Tracer()
        run_table1_campaign(seed=7, n_chips=2, tracer=tracer, workers=2)
        registry = tracer.metrics
        lookups = (
            registry.value("bti.rate_cache.hits")
            + registry.value("bti.rate_cache.partial_hits")
            + registry.value("bti.rate_cache.misses")
        )
        expected = (
            registry.value("bti.rate_cache.hits") / lookups if lookups else 0.0
        )
        assert registry.value("bti.rate_cache.hit_rate") == expected

    def test_absorb_merges_new_kinds_into_parent(self):
        parent, child = Tracer(), Tracer()
        parent.histogram("profile.case.meas_per_s").observe(10.0)
        child.histogram("profile.case.meas_per_s").observe(30.0)
        child.counter("bti.rate_cache.hits").inc(3.0)
        child.counter("bti.rate_cache.misses").inc(1.0)
        child.derived_gauge(
            "bti.rate_cache.hit_rate", "", "bti.rate_cache.hits",
            ("bti.rate_cache.hits", "bti.rate_cache.misses"),
        )
        parent.absorb(child)
        hist = parent.metrics.get("profile.case.meas_per_s")
        assert hist.count == 2
        assert hist.sum == 40.0
        assert parent.metrics.value("bti.rate_cache.hit_rate") == 0.75

"""Determinism sanitizer: phase-boundary state hashes prove bit-identity.

Two claims are tested here.  First, the positive one: with ``--sanitize``
the sequential, parallel and resilient campaign paths produce *identical*
per-phase digests, so the hashes are evidence rather than noise.  Second,
the diagnostic one: when a divergence is injected, ``diff_traces``
localizes it to the first divergent (chip, phase) span instead of just
reporting that final results differ.
"""

import pytest

from repro.lab.campaign import run_table1_campaign
from repro.lab.measurement import VirtualTestbench
from repro.lab.resilience import RetryPolicy
from repro.lab.sanitizer import NULL_SANITIZER, DeterminismSanitizer
from repro.obs import Tracer
from repro.obs.query import TraceModel, diff_traces


@pytest.fixture(scope="module")
def sanitized_sequential():
    return run_table1_campaign(seed=123, n_chips=2, workers=1, sanitize=True)


@pytest.fixture(scope="module")
def sanitized_parallel():
    return run_table1_campaign(seed=123, n_chips=2, workers=2, sanitize=True)


class TestPhaseHashes:
    def test_sequential_run_emits_phase_hashes(self, sanitized_sequential):
        hashes = sanitized_sequential.state_hashes
        assert len(hashes) == 5  # 2 baselines + 2 stress/recovery + re-stress
        for key, digest in hashes.items():
            chip_id, _, seq = key.partition("/")
            assert chip_id.startswith("chip-")
            assert len(seq) == 3 and seq.isdigit()
            assert len(digest) == 16
            int(digest, 16)  # hex

    def test_parallel_hashes_bit_identical(
        self, sanitized_sequential, sanitized_parallel
    ):
        assert sanitized_sequential.state_hashes == sanitized_parallel.state_hashes
        assert sanitized_parallel.state_hashes

    def test_resilient_path_hashes_bit_identical(self, sanitized_sequential):
        resilient = run_table1_campaign(
            seed=123, n_chips=2, workers=2, retry=RetryPolicy(), sanitize=True
        )
        assert resilient.state_hashes == sanitized_sequential.state_hashes

    def test_unsanitized_runs_carry_no_hashes(self):
        result = run_table1_campaign(seed=123, n_chips=2, workers=1)
        assert result.state_hashes == {}

    def test_null_sanitizer_is_inert(self):
        assert NULL_SANITIZER.enabled is False
        assert NULL_SANITIZER.hashes == {}
        assert NULL_SANITIZER.record_phase(None, None, "c", "p", [], 0) == ""
        NULL_SANITIZER.absorb(DeterminismSanitizer())
        assert NULL_SANITIZER.hashes == {}

    def test_hashes_depend_on_seed(self, sanitized_sequential):
        other = run_table1_campaign(seed=124, n_chips=2, workers=1, sanitize=True)
        assert other.state_hashes != sanitized_sequential.state_hashes
        assert other.state_hashes.keys() == sanitized_sequential.state_hashes.keys()


def _traced_run(monkeypatch=None, diverge=False) -> TraceModel:
    if diverge:
        original = VirtualTestbench._delivered_voltage

        def skewed(self):
            value = original(self)
            # Strictly after the 2 h baseline: seq 0 still matches, the
            # first stress phase on chip-2 is where history forks.  Only
            # positive (stress) voltages are skewed — recovery biases
            # must stay non-positive to pass chip validation.
            if (
                value > 0.0
                and self.chip.chip_id == "chip-2"
                and self.chip.elapsed > 7200.0
            ):
                value += 1e-6
            return value

        monkeypatch.setattr(VirtualTestbench, "_delivered_voltage", skewed)
    tracer = Tracer()
    run_table1_campaign(seed=123, n_chips=2, workers=1, tracer=tracer, sanitize=True)
    if monkeypatch is not None:
        monkeypatch.undo()
    return TraceModel.from_tracer(tracer)


class TestDivergenceLocalization:
    def test_identical_runs_have_no_divergent_rows(self):
        diff = diff_traces(_traced_run(), _traced_run())
        assert diff.hash_rows
        assert diff.hash_divergent() == []
        assert diff.first_divergence() is None

    def test_injected_divergence_is_localized(self, monkeypatch):
        clean = _traced_run()
        skewed = _traced_run(monkeypatch, diverge=True)
        diff = diff_traces(clean, skewed)

        first = diff.first_divergence()
        assert first is not None
        assert first.chip_id == "chip-2"
        assert first.seq == 1  # baseline (seq 0) matched; stress forked
        assert first.a != first.b

        # chip-1 never saw the skew: every one of its spans still matches.
        assert all(
            row.match for row in diff.hash_rows if row.chip_id == "chip-1"
        )
        # Divergence is causal: once chip-2 forks it never re-converges.
        chip2 = sorted(
            (r for r in diff.hash_rows if r.chip_id == "chip-2"),
            key=lambda r: r.seq,
        )
        assert [r.match for r in chip2] == [True, False, False]


class TestSanitizerUnit:
    def test_hash_keys_are_sequenced_per_chip(self):
        result = run_table1_campaign(seed=7, n_chips=1, workers=1, sanitize=True)
        assert list(result.state_hashes) == ["chip-1/000", "chip-1/001"]

    def test_absorb_merges_worker_hashes(self):
        a = DeterminismSanitizer()
        a.hashes["chip-1/000"] = "aa"
        b = DeterminismSanitizer()
        b.hashes["chip-2/000"] = "bb"
        a.absorb(b)
        assert a.hashes == {"chip-1/000": "aa", "chip-2/000": "bb"}

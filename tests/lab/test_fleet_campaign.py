"""Fleet campaign driver: bit-identity, sharding, fidelity, collection.

The acceptance bar from the engine's design: on the 5-chip Table 1
configuration the exact-fidelity fleet is *bit-identical* to the
sequential :func:`~repro.lab.campaign.run_table1_campaign` — every
record field, every fresh delay, every sanitizer digest.  Sharding may
only change scheduling, never results; binned fidelity trades
bit-identity for scale and must stay within a small statistical band of
exact.  (The full 5-chip identity run lives in
``benchmarks/bench_fleet_campaign.py``; the tier-1 versions here use
smaller lots to stay fast.)
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ScheduleError
from repro.lab.campaign import run_table1_campaign
from repro.lab.fleet import (
    AUTO_EXACT_LIMIT,
    fleet_chip_no,
    run_fleet_campaign,
)


class TestExactBitIdentity:
    def test_two_chip_fleet_matches_sequential(self):
        sequential = run_table1_campaign(seed=1, n_chips=2, sanitize=True)
        fleet = run_fleet_campaign(seed=1, n_chips=2, fidelity="exact",
                                   sanitize=True)
        assert list(fleet.log) == list(sequential.log)
        assert fleet.fresh_delays == sequential.fresh_delays
        assert fleet.state_hashes == sequential.state_hashes
        assert fleet.complete
        assert fleet.total_measurements == len(sequential.log)

    def test_auto_picks_exact_for_small_lots(self):
        result = run_fleet_campaign(seed=0, n_chips=2, fidelity="auto")
        assert result.fidelity == "exact"
        assert AUTO_EXACT_LIMIT >= 5  # the paper bench must stay exact

    def test_summaries_cover_every_chip_in_order(self):
        result = run_fleet_campaign(seed=0, n_chips=7, fidelity="binned")
        assert [s.chip_id for s in result.summaries] == [
            f"chip-{i + 1}" for i in range(7)
        ]
        assert [s.chip_no for s in result.summaries] == [
            fleet_chip_no(i) for i in range(7)
        ]
        for summary in result.summaries:
            assert summary.measurements > 0
            assert summary.fresh_frequency > 0


class TestSharding:
    def test_sharded_run_bit_identical_to_sequential_fleet(self):
        base = run_fleet_campaign(seed=2, n_chips=6, fidelity="binned",
                                  sanitize=True)
        sharded = run_fleet_campaign(seed=2, n_chips=6, fidelity="binned",
                                     sanitize=True, shards=3)
        assert list(base.log) == list(sharded.log)
        assert base.state_hashes == sharded.state_hashes
        assert base.fresh_delays == sharded.fresh_delays
        assert [s.case_end_frequency for s in base.summaries] == [
            s.case_end_frequency for s in sharded.summaries
        ]
        assert sharded.shards == 3

    def test_more_shards_than_chips_is_fine(self):
        result = run_fleet_campaign(seed=0, n_chips=2, fidelity="binned",
                                    shards=5)
        assert len(result.summaries) == 2


class TestBinnedFidelity:
    def test_binned_tracks_exact_degradation(self):
        exact = run_fleet_campaign(seed=0, n_chips=5, fidelity="exact")
        binned = run_fleet_campaign(seed=0, n_chips=5, fidelity="binned")
        for a, b in zip(exact.summaries, binned.summaries):
            assert a.stress_degradation_pct == pytest.approx(
                b.stress_degradation_pct, abs=0.2
            )
            assert a.residual_degradation_pct == pytest.approx(
                b.residual_degradation_pct, abs=0.2
            )

    def test_batching_does_not_change_results(self):
        whole = run_fleet_campaign(seed=0, n_chips=6, fidelity="binned")
        batched = run_fleet_campaign(seed=0, n_chips=6, fidelity="binned",
                                     batch_size=2)
        assert [s.case_end_frequency for s in whole.summaries] == [
            s.case_end_frequency for s in batched.summaries
        ]


class TestCollectionModes:
    def test_summary_mode_trims_records_but_not_statistics(self):
        full = run_fleet_campaign(seed=0, n_chips=2, fidelity="exact",
                                  sanitize=True)
        trimmed = run_fleet_campaign(seed=0, n_chips=2, fidelity="exact",
                                     sanitize=True, collect="summary")
        assert len(trimmed.log) < len(full.log)
        assert trimmed.total_measurements == full.total_measurements
        # Hashes are fed the full stream before trimming.
        assert trimmed.state_hashes == full.state_hashes
        assert [s.case_end_frequency for s in trimmed.summaries] == [
            s.case_end_frequency for s in full.summaries
        ]
        # First and last record of every (chip, phase) survive the trim.
        kept = {(r.chip_id, r.case, r.phase) for r in trimmed.log}
        assert kept == {(r.chip_id, r.case, r.phase) for r in full.log}

    def test_rejects_bad_arguments(self):
        with pytest.raises(ScheduleError):
            run_fleet_campaign(n_chips=0)
        with pytest.raises(ScheduleError):
            run_fleet_campaign(n_chips=2, shards=0)
        with pytest.raises(ConfigurationError):
            run_fleet_campaign(n_chips=2, collect="everything")
        with pytest.raises(ConfigurationError):
            run_fleet_campaign(n_chips=2, fidelity="approximate")

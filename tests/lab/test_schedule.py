"""Test schedules and the case-name grammar."""

import pytest

from repro.errors import ScheduleError
from repro.fpga.ring_oscillator import StressMode
from repro.lab.schedule import (
    CHIP_SEQUENCES,
    TABLE1_CASES,
    PhaseKind,
    TestCase,
    TestPhase,
    baseline_phase,
    parse_case_name,
    standard_case,
)
from repro.units import hours


class TestCaseNameGrammar:
    def test_accelerated_stress_dc(self):
        phase = parse_case_name("AS110DC24")
        assert phase.kind is PhaseKind.STRESS
        assert phase.temperature_c == 110.0
        assert phase.mode is StressMode.DC
        assert phase.duration == hours(24.0)
        assert phase.supply_voltage == 1.2

    def test_accelerated_stress_ac(self):
        phase = parse_case_name("AS110AC24")
        assert phase.mode is StressMode.AC

    def test_passive_recovery(self):
        phase = parse_case_name("R20Z6")
        assert phase.kind is PhaseKind.RECOVERY
        assert phase.supply_voltage == 0.0
        assert phase.temperature_c == 20.0
        assert phase.duration == hours(6.0)

    def test_accelerated_recovery_negative(self):
        phase = parse_case_name("AR110N12")
        assert phase.supply_voltage == -0.3
        assert phase.temperature_c == 110.0
        assert phase.duration == hours(12.0)

    @pytest.mark.parametrize("name", ["XX110DC24", "AS110XY24", "R110N6", "R110Z6", ""])
    def test_invalid_names_rejected(self, name):
        with pytest.raises(ScheduleError):
            parse_case_name(name)

    @pytest.mark.parametrize("__, name, chip", TABLE1_CASES)
    def test_all_table1_names_parse(self, __, name, chip):
        assert parse_case_name(name).duration > 0


class TestPhaseValidation:
    def test_stress_needs_positive_supply(self):
        with pytest.raises(ScheduleError):
            TestPhase("x", PhaseKind.STRESS, hours(1.0), 110.0, 0.0)

    def test_recovery_needs_nonpositive_supply(self):
        with pytest.raises(ScheduleError):
            TestPhase("x", PhaseKind.RECOVERY, hours(1.0), 110.0, 1.2)

    def test_duration_positive(self):
        with pytest.raises(ScheduleError):
            TestPhase("x", PhaseKind.STRESS, 0.0, 110.0, 1.2)

    def test_negative_duration_rejected(self):
        with pytest.raises(ScheduleError, match="duration"):
            TestPhase("x", PhaseKind.STRESS, -hours(1.0), 110.0, 1.2)

    def test_zero_duration_case_name_rejected(self):
        # A zero-hour case parses through the grammar but must still be
        # rejected by phase validation (zero-duration phases measure
        # nothing and would divide the sampling loop by zero).
        with pytest.raises(ScheduleError, match="duration"):
            parse_case_name("AS110DC0")
        with pytest.raises(ScheduleError, match="duration"):
            parse_case_name("AR110N0")

    def test_sampling_interval_must_be_positive(self):
        for bad_interval in (0.0, -60.0):
            with pytest.raises(ScheduleError, match="sampling"):
                TestPhase(
                    "x",
                    PhaseKind.STRESS,
                    hours(1.0),
                    110.0,
                    1.2,
                    sampling_interval=bad_interval,
                )

    def test_recovery_at_exactly_zero_volts_allowed(self):
        phase = TestPhase("x", PhaseKind.RECOVERY, hours(1.0), 20.0, 0.0)
        assert phase.supply_voltage == 0.0

    def test_multi_phase_total_duration_sums(self):
        case = TestCase(
            name="multi",
            chip_no=1,
            phases=(parse_case_name("AS110DC24"), parse_case_name("AR110N6")),
        )
        assert case.total_duration == hours(30.0)


class TestTable1Schedule:
    def test_eleven_rows(self):
        assert len(TABLE1_CASES) == 11

    def test_five_chips(self):
        assert {chip for __, __, chip in TABLE1_CASES} == {1, 2, 3, 4, 5}

    def test_recovery_cases_have_alpha_four(self):
        # Every recovery case sleeps for a quarter of its stress time.
        stress_hours = {2: 24.0, 3: 24.0, 4: 24.0, 5: 24.0}
        for group, name, chip in TABLE1_CASES:
            if group.startswith("Sleep") and name.endswith("6"):
                phase = parse_case_name(name)
                assert phase.duration == hours(stress_hours[chip] / 4.0)

    def test_chip5_sequence_restresses_before_second_recovery(self):
        assert CHIP_SEQUENCES[5] == ("AS110DC24", "AR110N6", "AS110DC48", "AR110N12")

    def test_standard_case(self):
        case = standard_case("AS110DC24", chip_no=2)
        assert case.total_duration == hours(24.0)
        assert case.phases[0].label == "AS110DC24"

    def test_test_case_validation(self):
        with pytest.raises(ScheduleError):
            TestCase(name="empty", chip_no=1, phases=())
        with pytest.raises(ScheduleError):
            standard_case("AS110DC24", chip_no=0)

    def test_baseline_phase_matches_paper(self):
        phase = baseline_phase()
        assert phase.duration == hours(2.0)
        assert phase.temperature_c == 20.0
        assert phase.supply_voltage == 1.2

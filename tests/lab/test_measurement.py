"""Virtual testbench: phase execution and sampling discipline."""

import pytest

from repro.errors import ConfigurationError
from repro.lab.datalog import DataLog
from repro.lab.measurement import VirtualTestbench
from repro.lab.schedule import PhaseKind, TestPhase, parse_case_name
from repro.units import hours, minutes


@pytest.fixture
def bench(small_chip) -> VirtualTestbench:
    return VirtualTestbench(small_chip, rng=0)


class TestVirtualTestbench:
    def test_run_stress_phase_samples(self, bench):
        log = DataLog()
        phase = TestPhase(
            "AS110DC2", PhaseKind.STRESS, hours(2.0), 110.0, 1.2,
            sampling_interval=minutes(20.0),
        )
        bench.run_phase(phase, "AS110DC2", log)
        # Initial sample + one per 20-minute interval = 1 + 6.
        assert len(log) == 7
        assert log.first().phase_elapsed == 0.0
        assert log.last().phase_elapsed == pytest.approx(hours(2.0))

    def test_stress_phase_degrades_frequency(self, bench):
        log = DataLog()
        bench.run_phase(parse_case_name("AS110DC24"), "AS110DC24", log)
        __, freqs = log.series("frequency")
        assert freqs[-1] < freqs[0]

    def test_recovery_phase_restores_frequency(self, bench):
        log = DataLog()
        bench.run_phase(parse_case_name("AS110DC24"), "AS110DC24", log)
        recovery_log = DataLog()
        bench.run_phase(parse_case_name("AR110N6"), "AR110N6", recovery_log)
        __, freqs = recovery_log.series("frequency")
        assert freqs[-1] > freqs[0]

    def test_zero_volt_recovery_power_gates(self, bench):
        log = DataLog()
        bench.run_phase(parse_case_name("AS110DC24"), "AS110DC24", log)
        bench.run_phase(parse_case_name("R20Z6"), "R20Z6", log)
        assert not bench.supply.output_enabled

    def test_sampling_burst_advances_chip_clock(self, bench):
        log = DataLog()
        phase = TestPhase(
            "AS110DC1", PhaseKind.STRESS, hours(1.0), 110.0, 1.2,
            sampling_interval=minutes(20.0),
        )
        bench.run_phase(phase, "AS110DC1", log)
        # 4 samples x 3 s overhead on top of the hour.
        assert bench.chip.elapsed == pytest.approx(hours(1.0) + 4 * 3.0)

    def test_measurement_artifact_reduces_measured_dc_degradation(self, chip_factory):
        # The readout bursts let fast traps emit — measured degradation
        # under sparse sampling is *lower* than a no-measurement run, the
        # classic BTI measurement-recovery artifact our lab reproduces.
        quiet = chip_factory(seed=15)
        from repro.units import celsius
        from repro.fpga.ring_oscillator import StressMode

        quiet.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)
        pristine = quiet.delta_path_delay()

        sampled_chip = chip_factory(seed=15)
        bench = VirtualTestbench(sampled_chip, rng=1)
        log = DataLog()
        bench.run_phase(parse_case_name("AS110DC24"), "AS110DC24", log)
        measured = sampled_chip.delta_path_delay()
        assert measured < pristine

    def test_record_metadata(self, bench):
        log = DataLog()
        bench.run_phase(parse_case_name("AS110DC24"), "my-case", log)
        r = log.first()
        assert r.case == "my-case"
        assert r.phase == "AS110DC24"
        assert r.temperature_c == 110.0
        assert r.chip_id == bench.chip.chip_id

    def test_invalid_construction(self, small_chip):
        with pytest.raises(ConfigurationError):
            VirtualTestbench(small_chip, reads_per_sample=0)
        with pytest.raises(ConfigurationError):
            VirtualTestbench(small_chip, sampling_overhead=-1.0)

    def test_phase_duration_with_float_residue_takes_no_extra_sample(self, bench):
        # Ten 0.1 s chunks sum to 0.9999999999999999 in binary float; the
        # loop must not schedule a spurious near-zero 11th chunk and log a
        # duplicate sample at the end of the phase.
        log = DataLog()
        phase = TestPhase(
            "AS110DC0", PhaseKind.STRESS, 1.0, 110.0, 1.2,
            sampling_interval=0.1,
        )
        bench.run_phase(phase, "AS110DC0", log)
        assert len(log) == 11  # initial + ten intervals, not 12
        elapsed = [record.phase_elapsed for record in log]
        assert len(set(elapsed)) == len(elapsed)  # no duplicate sample times
        assert log.last().phase_elapsed == 1.0  # snapped, not 0.9999999...

    def test_open_relay_records_zero_supply_voltage(self, bench):
        # The setpoint register still holds 1.2 V, but a rail behind an
        # open relay delivers nothing — the record must say 0 V.
        bench.supply.set_voltage(1.2)
        bench.supply.disable_output()
        record = bench.take_sample("CASE", "PHASE", 0.0)
        assert record.supply_voltage == 0.0
        bench.supply.enable_output()
        record = bench.take_sample("CASE", "PHASE", 0.0)
        assert record.supply_voltage == 1.2

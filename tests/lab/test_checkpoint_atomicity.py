"""Checkpoint manifest atomicity: orphaned temp files never block resume.

Satellite of the dependability sweep: every manifest write goes through
``atomic_write_json`` (tmp + fsync + rename), and opening a
:class:`CheckpointStore` discards any ``*.tmp`` a killed writer left
behind — with a warning, never a crash, because the committed files the
writer was about to replace are still intact.
"""

import json

import pytest

from repro.lab.campaign import run_table1_campaign
from repro.lab.resilience import (
    CheckpointStore,
    atomic_write_json,
    discard_orphan_tmp,
)

SEED = 5
N_CHIPS = 2


class TestAtomicWriteJson:
    def test_writes_readable_json_and_no_tmp(self, tmp_path):
        target = tmp_path / "manifest.json"
        atomic_write_json(target, {"a": 1})
        assert json.loads(target.read_text()) == {"a": 1}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "manifest.json"
        atomic_write_json(target, {"generation": 1})
        atomic_write_json(target, {"generation": 2})
        assert json.loads(target.read_text()) == {"generation": 2}


class TestDiscardOrphanTmp:
    def test_removes_and_reports_orphans(self, tmp_path):
        orphan = tmp_path / "manifest.json.tmp"
        orphan.write_text('{"torn": ')
        keeper = tmp_path / "manifest.json"
        keeper.write_text("{}")
        with pytest.warns(RuntimeWarning, match="orphaned temp file"):
            removed = discard_orphan_tmp(tmp_path)
        assert removed == [orphan]
        assert not orphan.exists()
        assert keeper.exists()

    def test_clean_directory_is_silent(self, tmp_path):
        assert discard_orphan_tmp(tmp_path) == []


class TestCheckpointStoreResume:
    def test_orphan_manifest_tmp_ignored_on_resume(self, tmp_path):
        checkpoint = tmp_path / "ckpt"
        run_table1_campaign(seed=SEED, n_chips=N_CHIPS, checkpoint=str(checkpoint))
        # Simulate a writer killed mid-manifest-update: a truncated temp
        # file beside the last committed manifest.
        orphan = checkpoint / "manifest.json.tmp"
        orphan.write_text('{"completed": {"chip-1": ["case')

        with pytest.warns(RuntimeWarning, match="orphaned temp file"):
            resumed = run_table1_campaign(
                seed=SEED, n_chips=N_CHIPS, checkpoint=str(checkpoint), resume=True
            )
        assert not orphan.exists()
        reference = run_table1_campaign(seed=SEED, n_chips=N_CHIPS)
        assert resumed.complete
        assert list(resumed.log) == list(reference.log)

    def test_empty_tmp_also_discarded(self, tmp_path):
        checkpoint = tmp_path / "ckpt"
        run_table1_campaign(seed=SEED, n_chips=N_CHIPS, checkpoint=str(checkpoint))
        (checkpoint / "manifest.json.tmp").write_text("")

        with pytest.warns(RuntimeWarning, match="orphaned temp file"):
            store = CheckpointStore(checkpoint)
        manifest = store.read_manifest()
        assert manifest is not None and manifest["completed"]

    def test_store_open_never_raises_on_orphans(self, tmp_path):
        directory = tmp_path / "fresh"
        directory.mkdir()
        (directory / "chip-1.0.rng.json.tmp").write_bytes(b"\x00\x01garbage")
        with pytest.warns(RuntimeWarning):
            CheckpointStore(directory)
        assert list(directory.glob("*.tmp")) == []

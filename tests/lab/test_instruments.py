"""Virtual instruments: chamber, supply, clock."""

import numpy as np
import pytest

from repro.errors import InstrumentError
from repro.lab.clock_generator import ClockGenerator
from repro.lab.power_supply import DcPowerSupply
from repro.lab.thermal_chamber import ThermalChamber
from repro.units import celsius


class TestThermalChamber:
    def test_default_room_temperature(self):
        assert ThermalChamber().setpoint_celsius == pytest.approx(20.0)

    def test_setpoint_programming(self):
        chamber = ThermalChamber()
        chamber.set_temperature_celsius(110.0)
        assert chamber.setpoint == pytest.approx(celsius(110.0))

    def test_fluctuation_within_spec(self, rng):
        chamber = ThermalChamber(fluctuation_c=0.3)
        chamber.set_temperature_celsius(110.0)
        temps = [chamber.actual_temperature(rng) for _ in range(500)]
        deviations = np.abs(np.array(temps) - celsius(110.0))
        assert deviations.max() <= 0.3 + 1e-12

    def test_range_enforced(self):
        chamber = ThermalChamber(min_c=-60.0, max_c=150.0)
        with pytest.raises(InstrumentError):
            chamber.set_temperature_celsius(200.0)
        with pytest.raises(InstrumentError):
            chamber.set_temperature_celsius(-80.0)

    def test_invalid_construction(self):
        with pytest.raises(InstrumentError):
            ThermalChamber(fluctuation_c=-0.1)
        with pytest.raises(InstrumentError):
            ThermalChamber(min_c=100.0, max_c=0.0)


class TestDcPowerSupply:
    def test_default_nominal(self):
        assert DcPowerSupply().setpoint == pytest.approx(1.2)

    def test_negative_rail_supported(self):
        supply = DcPowerSupply()
        supply.set_voltage(-0.3)
        assert supply.setpoint == -0.3

    def test_range_enforced(self):
        supply = DcPowerSupply()
        with pytest.raises(InstrumentError):
            supply.set_voltage(2.0)
        with pytest.raises(InstrumentError):
            supply.set_voltage(-1.0)

    def test_output_disable_gives_exact_zero(self, rng):
        supply = DcPowerSupply()
        supply.disable_output()
        assert supply.actual_voltage(rng) == 0.0
        assert not supply.output_enabled

    def test_accuracy_within_spec(self, rng):
        supply = DcPowerSupply(accuracy_volts=1e-3)
        supply.set_voltage(1.2)
        volts = [supply.actual_voltage(rng) for _ in range(200)]
        assert max(abs(v - 1.2) for v in volts) <= 1e-3 + 1e-12

    def test_enable_after_disable(self, rng):
        supply = DcPowerSupply()
        supply.disable_output()
        supply.enable_output()
        assert supply.actual_voltage(rng) != 0.0


class TestClockGenerator:
    def test_default_paper_reference(self):
        assert ClockGenerator().frequency == 500.0

    def test_accuracy_ppm(self, rng):
        clock = ClockGenerator(frequency=500.0, accuracy_ppm=5.0)
        freqs = [clock.actual_frequency(rng) for _ in range(200)]
        assert max(abs(f - 500.0) for f in freqs) <= 500.0 * 5e-6 + 1e-9

    def test_invalid_construction(self):
        with pytest.raises(InstrumentError):
            ClockGenerator(frequency=0.0)
        with pytest.raises(InstrumentError):
            ClockGenerator(accuracy_ppm=-1.0)

"""Fault injection, retry/quarantine and checkpoint/resume.

The resilience acceptance bar mirrors the parallel engine's: determinism
everywhere.  Same seed ⇒ same fault plan; a fault on one chip leaves every
other chip bit-identical to a fault-free run; a resumed campaign produces
the same DataLog as an uninterrupted one.
"""

import json

import numpy as np
import pytest

from repro.errors import (
    CheckpointError,
    ChipDropoutError,
    ConfigurationError,
    RetryExhaustedError,
)
from repro.lab.campaign import run_table1_campaign, table1_horizon
from repro.lab.datalog import DataLog
from repro.lab.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.lab.measurement import VirtualTestbench
from repro.lab.resilience import CheckpointStore, ResilientTestbench, RetryPolicy
from repro.lab.schedule import PhaseKind, TestPhase
from repro.units import hours, minutes

CHIPS = ["chip-1", "chip-2", "chip-3"]


def short_stress_phase() -> TestPhase:
    return TestPhase(
        "AS110DC1", PhaseKind.STRESS, hours(1.0), 110.0, 1.2,
        sampling_interval=minutes(20.0),
    )


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        horizon = table1_horizon(3)
        kwargs = dict(rate_per_day=2.0, dropout_probability=0.5)
        assert FaultPlan.generate(7, CHIPS, horizon, **kwargs) == FaultPlan.generate(
            7, CHIPS, horizon, **kwargs
        )

    def test_different_seeds_differ(self):
        horizon = table1_horizon(3)
        plans = [FaultPlan.generate(s, CHIPS, horizon, rate_per_day=3.0) for s in (1, 2)]
        assert plans[0] != plans[1]

    def test_for_chip_filters_and_orders(self):
        plan = FaultPlan([
            FaultEvent(FaultKind.DROPPED_READOUT, "chip-2", start=50.0),
            FaultEvent(FaultKind.DROPPED_READOUT, "chip-1", start=10.0),
            FaultEvent(FaultKind.DROPPED_READOUT, "chip-2", start=5.0),
        ])
        assert [e.start for e in plan.for_chip("chip-2")] == [5.0, 50.0]
        assert plan.for_chip("chip-9") == ()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind=FaultKind.DROPPED_READOUT, chip_id="c", start=-1.0),
            dict(kind=FaultKind.THERMAL_DRIFT, chip_id="c", start=0.0),  # no duration
            dict(kind=FaultKind.STUCK_BIT, chip_id="c", start=0.0, magnitude=3.5),
        ],
    )
    def test_invalid_events_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultEvent(**kwargs)


class TestFaultInjector:
    def test_one_shot_fires_once(self):
        plan = FaultPlan([FaultEvent(FaultKind.DROPPED_READOUT, "c", start=10.0)])
        injector = FaultInjector(plan, "c")
        assert injector.pop_readout_fault(5.0) is None
        event = injector.pop_readout_fault(12.0)
        assert event is not None and event.kind is FaultKind.DROPPED_READOUT
        assert injector.pop_readout_fault(12.0) is None  # consumed
        assert injector.fired == [event]

    def test_window_offsets_bounded(self):
        plan = FaultPlan([
            FaultEvent(FaultKind.THERMAL_DRIFT, "c", start=10.0, duration=5.0,
                       magnitude=2.0),
        ])
        injector = FaultInjector(plan, "c")
        assert injector.temperature_offset(9.0) == 0.0
        assert injector.temperature_offset(12.0) == 2.0
        assert injector.temperature_offset(15.0) == 0.0  # end-exclusive

    def test_dropout_raises_permanently(self):
        plan = FaultPlan([FaultEvent(FaultKind.CHIP_DROPOUT, "c", start=100.0)])
        injector = FaultInjector(plan, "c")
        injector.check_dropout(99.0)
        with pytest.raises(ChipDropoutError):
            injector.check_dropout(100.0)
        with pytest.raises(ChipDropoutError):
            injector.check_dropout(1e9)

    def test_start_time_skips_spent_one_shots(self):
        plan = FaultPlan([FaultEvent(FaultKind.DROPPED_READOUT, "c", start=10.0)])
        injector = FaultInjector(plan, "c", start_time=50.0)
        assert injector.pop_readout_fault(60.0) is None


class TestRetryPolicy:
    def test_deterministic_backoff(self):
        policy = RetryPolicy(max_attempts=4, backoff_seconds=5.0, backoff_multiplier=2.0)
        assert [policy.backoff(k) for k in (1, 2, 3)] == [5.0, 10.0, 20.0]

    @pytest.mark.parametrize(
        "kwargs",
        [dict(max_attempts=0), dict(backoff_seconds=-1.0), dict(backoff_multiplier=0.5)],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestResilientTestbench:
    def test_no_faults_bit_identical_to_plain_bench(self, chip_factory):
        phase = short_stress_phase()
        plain_log, resilient_log = DataLog(), DataLog()
        plain = VirtualTestbench(chip_factory(seed=1), rng=9)
        plain.run_phase(phase, "CASE", plain_log)
        bench = ResilientTestbench(
            chip_factory(seed=1), injector=FaultInjector(FaultPlan(), "chip-seed1"),
            rng=9,
        )
        bench.run_phase(phase, "CASE", resilient_log)
        assert list(plain_log) == list(resilient_log)

    def test_dropped_readout_retried_and_phase_completes(self, chip_factory):
        chip = chip_factory(seed=2)
        plan = FaultPlan([
            FaultEvent(FaultKind.DROPPED_READOUT, chip.chip_id, start=minutes(30.0)),
        ])
        bench = ResilientTestbench(
            chip,
            injector=FaultInjector(plan, chip.chip_id),
            retry=RetryPolicy(max_attempts=3, backoff_seconds=4.0),
            rng=9,
        )
        log = DataLog()
        bench.run_phase(short_stress_phase(), "CASE", log)
        assert len(log) == 4  # initial + 3 intervals, no sample lost
        assert bench.injector.fired[0].kind is FaultKind.DROPPED_READOUT
        # 4 logged samples + 1 failed burst = 5 readout overheads, plus the
        # 4 s backoff the chip aged through while the operator re-armed.
        expected = hours(1.0) + 5 * bench.sampling_overhead + 4.0
        assert chip.elapsed == pytest.approx(expected)

    def test_retries_exhausted_raises(self, chip_factory):
        chip = chip_factory(seed=3)
        plan = FaultPlan([
            FaultEvent(FaultKind.DROPPED_READOUT, chip.chip_id, start=0.0),
            FaultEvent(FaultKind.DROPPED_READOUT, chip.chip_id, start=0.0),
        ])
        bench = ResilientTestbench(
            chip,
            injector=FaultInjector(plan, chip.chip_id),
            retry=RetryPolicy(max_attempts=2, backoff_seconds=1.0),
            rng=9,
        )
        with pytest.raises(RetryExhaustedError):
            bench.run_phase(short_stress_phase(), "CASE", DataLog())

    def test_stuck_bit_fires_and_no_sample_is_lost(self, chip_factory):
        chip = chip_factory(seed=4)
        plan = FaultPlan([
            FaultEvent(FaultKind.STUCK_BIT, chip.chip_id, start=minutes(30.0),
                       magnitude=13),
        ])
        injector = FaultInjector(plan, chip.chip_id)
        bench = ResilientTestbench(chip, injector=injector, rng=9)
        log = DataLog()
        bench.run_phase(short_stress_phase(), "CASE", log)
        assert injector.fired and injector.fired[0].kind is FaultKind.STUCK_BIT
        assert len(log) == 4  # corruption detected (or harmless), never fatal

    def test_thermal_drift_perturbs_delivered_temperature(self, chip_factory):
        chip = chip_factory(seed=5)
        plan = FaultPlan([
            FaultEvent(FaultKind.THERMAL_DRIFT, chip.chip_id, start=0.0,
                       duration=hours(2.0), magnitude=3.0),
        ])
        bench = ResilientTestbench(
            chip, injector=FaultInjector(plan, chip.chip_id), rng=9
        )
        bench.chamber.set_temperature_celsius(110.0)
        # Beyond the chamber's +/-0.3 degC control band around the setpoint.
        assert bench._delivered_temperature() - bench.chamber.setpoint > 0.3


class TestCampaignQuarantine:
    def test_dropout_quarantines_and_survivors_bit_identical(self):
        plan = FaultPlan([
            FaultEvent(FaultKind.CHIP_DROPOUT, "chip-2", start=hours(10.0)),
        ])
        clean = run_table1_campaign(seed=31, n_chips=2)
        faulted = run_table1_campaign(seed=31, n_chips=2, faults=plan)
        assert not faulted.complete
        report = faulted.quarantined["chip-2"]
        assert report.case == "AS110DC24"
        assert "stopped responding" in report.reason
        # The campaign completed and kept chip-2's records up to the fault.
        assert 0 < len(faulted.log.filter(chip_id="chip-2")) < len(
            clean.log.filter(chip_id="chip-2")
        )
        # The surviving chip is bit-identical to the fault-free run.
        assert list(faulted.log.filter(chip_id="chip-1")) == list(
            clean.log.filter(chip_id="chip-1")
        )
        assert faulted.fresh_delays == clean.fresh_delays

    def test_faulted_parallel_matches_faulted_sequential(self):
        plan = FaultPlan([
            FaultEvent(FaultKind.DROPPED_READOUT, "chip-1", start=hours(3.0)),
            FaultEvent(FaultKind.CHIP_DROPOUT, "chip-2", start=hours(20.0)),
        ])
        sequential = run_table1_campaign(seed=32, n_chips=2, faults=plan, workers=1)
        parallel = run_table1_campaign(seed=32, n_chips=2, faults=plan, workers=2)
        assert list(sequential.log) == list(parallel.log)
        assert sequential.quarantined == parallel.quarantined


class TestCheckpointResume:
    def test_checkpointed_run_bit_identical_to_plain(self, tmp_path):
        plain = run_table1_campaign(seed=41, n_chips=2)
        checkpointed = run_table1_campaign(
            seed=41, n_chips=2, checkpoint=str(tmp_path / "ck")
        )
        assert list(plain.log) == list(checkpointed.log)

    def test_resume_after_losing_a_whole_chip_matches_uninterrupted(self, tmp_path):
        """Drop chip-2's progress from the manifest (as if the campaign died
        before its first checkpoint): resume replays it from scratch while
        chip-1 is restored from its shards — the merged log must match."""
        directory = tmp_path / "ck"
        uninterrupted = run_table1_campaign(seed=42, n_chips=2, checkpoint=str(directory))
        manifest_path = directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["completed"]["chip-2"]
        manifest_path.write_text(json.dumps(manifest))
        resumed = run_table1_campaign(
            seed=42, n_chips=2, checkpoint=str(directory), resume=True
        )
        assert list(resumed.log) == list(uninterrupted.log)
        assert resumed.fresh_delays == uninterrupted.fresh_delays
        for chip_id, chip in uninterrupted.chips.items():
            assert resumed.chips[chip_id].delta_path_delay() == chip.delta_path_delay()
            assert resumed.chips[chip_id].elapsed == chip.elapsed

    def test_kill_mid_schedule_then_resume_round_trips_rng_and_datalog(
        self, tmp_path, monkeypatch
    ):
        """SIGKILL model: die right after chip-2's first case checkpoint.
        The resumed tail must replay from the restored trap + RNG state so
        the final DataLog is bit-identical to an uninterrupted run."""
        directory = str(tmp_path / "ck")
        uninterrupted = run_table1_campaign(seed=43, n_chips=2)
        original = CheckpointStore.save_chip
        state = {"armed": True, "saves": 0}

        def save_then_die(self, chip, *args, **kwargs):
            original(self, chip, *args, **kwargs)
            if state["armed"]:
                state["saves"] += 1
                # Saves with workers=1: chip-1 baseline, chip-1 case,
                # chip-2 baseline, chip-2 first case — die after that one.
                if state["saves"] == 4:
                    raise RuntimeError("simulated power loss")

        monkeypatch.setattr(CheckpointStore, "save_chip", save_then_die)
        with pytest.raises(RuntimeError, match="power loss"):
            run_table1_campaign(seed=43, n_chips=2, checkpoint=directory, workers=1)
        state["armed"] = False
        resumed = run_table1_campaign(
            seed=43, n_chips=2, checkpoint=directory, resume=True
        )
        assert list(resumed.log) == list(uninterrupted.log)
        for chip_id, chip in uninterrupted.chips.items():
            assert resumed.chips[chip_id].delta_path_delay() == chip.delta_path_delay()

    def test_reusing_checkpoint_dir_without_resume_refused(self, tmp_path):
        directory = str(tmp_path / "ck")
        run_table1_campaign(seed=44, n_chips=1, checkpoint=directory)
        with pytest.raises(CheckpointError):
            run_table1_campaign(seed=44, n_chips=1, checkpoint=directory)

    def test_resume_with_different_seed_refused(self, tmp_path):
        directory = str(tmp_path / "ck")
        run_table1_campaign(seed=45, n_chips=1, checkpoint=directory)
        with pytest.raises(CheckpointError):
            run_table1_campaign(seed=46, n_chips=1, checkpoint=directory, resume=True)

    def test_resume_without_checkpoint_dir_refused(self):
        with pytest.raises(ConfigurationError):
            run_table1_campaign(seed=0, n_chips=1, resume=True)

    def test_corrupt_rng_state_raises_checkpoint_error(self, tmp_path, chip_factory):
        directory = tmp_path / "ck"
        store = CheckpointStore(directory)
        store.init_manifest(seed=0, n_chips=1, include_baseline=True)
        chip = chip_factory(seed=1)
        store.save_chip(chip, np.random.default_rng(0), DataLog(), DataLog(),
                        ["BASELINE-x"])
        rng_file = next(directory.glob(f"{chip.chip_id}.*.rng.json"))
        rng_file.write_text("{not json")
        with pytest.raises(CheckpointError):
            store.load_chip(chip_factory(seed=1), np.random.default_rng(0))

    def test_quarantine_is_checkpointed_and_not_replayed(self, tmp_path):
        directory = str(tmp_path / "ck")
        plan = FaultPlan([
            FaultEvent(FaultKind.CHIP_DROPOUT, "chip-2", start=hours(5.0)),
        ])
        first = run_table1_campaign(seed=47, n_chips=2, faults=plan, checkpoint=directory)
        assert "chip-2" in first.quarantined
        resumed = run_table1_campaign(
            seed=47, n_chips=2, faults=plan, checkpoint=directory, resume=True
        )
        assert resumed.quarantined["chip-2"].case == first.quarantined["chip-2"].case


class TestHorizon:
    def test_horizon_is_chip5_schedule(self):
        # Chip 5: 2 h baseline + 24 + 6 + 48 + 12 h of cases.
        assert table1_horizon(5) == pytest.approx(hours(92.0))
        assert table1_horizon(5, include_baseline=False) == pytest.approx(hours(90.0))

    def test_horizon_shrinks_with_fewer_chips(self):
        assert table1_horizon(1) == pytest.approx(hours(26.0))

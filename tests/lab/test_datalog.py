"""Measurement records and the campaign data log."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.lab.datalog import DataLog, MeasurementRecord


def record(i: int, chip="chip-1", case="AS110DC24", phase="AS110DC24") -> MeasurementRecord:
    return MeasurementRecord(
        chip_id=chip,
        case=case,
        phase=phase,
        timestamp=float(i * 1200),
        phase_elapsed=float(i * 1200),
        count=3200 + i,
        frequency=2.0 * (3200 + i) * 500.0,
        delay=1.0 / (4.0 * (3200 + i) * 500.0),
        temperature_c=110.0,
        supply_voltage=1.2,
    )


class TestDataLog:
    def test_append_len_iter(self):
        log = DataLog()
        log.append(record(0))
        log.extend([record(1), record(2)])
        assert len(log) == 3
        assert [r.count for r in log] == [3200, 3201, 3202]

    def test_filter_by_chip_case_phase(self):
        log = DataLog()
        log.append(record(0, chip="chip-1", case="A"))
        log.append(record(1, chip="chip-2", case="A"))
        log.append(record(2, chip="chip-1", case="B"))
        assert len(log.filter(chip_id="chip-1")) == 2
        assert len(log.filter(case="A")) == 2
        assert len(log.filter(chip_id="chip-1", case="A")) == 1

    def test_cases_in_insertion_order(self):
        log = DataLog()
        log.append(record(0, case="B"))
        log.append(record(1, case="A"))
        log.append(record(2, case="B"))
        assert log.cases() == ["B", "A"]

    def test_series_extraction(self):
        log = DataLog()
        log.extend([record(i) for i in range(3)])
        times, values = log.series("frequency")
        assert times.shape == values.shape == (3,)
        assert np.all(np.diff(values) > 0)

    def test_series_unknown_field(self):
        log = DataLog()
        log.append(record(0))
        with pytest.raises(MeasurementError):
            log.series("nonexistent")

    def test_empty_log_raises(self):
        with pytest.raises(MeasurementError):
            DataLog().series()
        with pytest.raises(MeasurementError):
            DataLog().first()
        with pytest.raises(MeasurementError):
            DataLog().last()

    def test_first_last(self):
        log = DataLog()
        log.extend([record(i) for i in range(5)])
        assert log.first().count == 3200
        assert log.last().count == 3204

    def test_csv_roundtrip(self, tmp_path):
        log = DataLog()
        log.extend([record(i) for i in range(4)])
        path = tmp_path / "log.csv"
        log.write_csv(path)
        loaded = DataLog.read_csv(path)
        assert len(loaded) == 4
        assert loaded.last() == log.last()

    def test_csv_roundtrip_every_record_equal(self, tmp_path):
        log = DataLog()
        log.extend([record(i, chip=f"chip-{1 + i % 2}", case=c)
                    for i, c in enumerate(["A", "B", "A", "C", "B"])])
        path = tmp_path / "log.csv"
        log.write_csv(path)
        loaded = DataLog.read_csv(path)
        assert list(loaded) == list(log)

    def test_read_csv_malformed_value_names_file_and_row(self, tmp_path):
        log = DataLog()
        log.extend([record(i) for i in range(2)])
        path = tmp_path / "log.csv"
        log.write_csv(path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2].replace("110.0", "not-a-number")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(MeasurementError) as excinfo:
            DataLog.read_csv(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert ":3:" in message  # header is line 1, bad row is line 3

    def test_read_csv_missing_column_raises_measurement_error(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("chip_id,case\nchip-1,A\n")
        with pytest.raises(MeasurementError) as excinfo:
            DataLog.read_csv(path)
        # Detected at the header, naming what is missing.
        assert "timestamp" in str(excinfo.value)
        assert str(path) in str(excinfo.value)

    def test_read_csv_empty_file_raises_measurement_error(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("")
        with pytest.raises(MeasurementError) as excinfo:
            DataLog.read_csv(path)
        assert str(path) in str(excinfo.value)

    def test_read_csv_headerless_file_raises_measurement_error(self, tmp_path):
        # Data where the header should be: DictReader would adopt the first
        # data row as field names and silently misparse.
        path = tmp_path / "log.csv"
        path.write_text("chip-1,A,P,0.0,0.0,100,1.0,1.0,20.0,1.2\n")
        with pytest.raises(MeasurementError):
            DataLog.read_csv(path)

    def test_read_csv_truncated_row_raises_measurement_error(self, tmp_path):
        log = DataLog()
        log.append(record(0))
        path = tmp_path / "log.csv"
        log.write_csv(path)
        with open(path, "a") as handle:
            handle.write("chip-1,A\n")  # row with most columns missing
        with pytest.raises(MeasurementError) as excinfo:
            DataLog.read_csv(path)
        assert ":3:" in str(excinfo.value)


class TestMerge:
    def test_stable_concatenation_in_shard_order(self):
        shard_a = DataLog()
        shard_a.extend([record(0, chip="chip-1"), record(1, chip="chip-1")])
        shard_b = DataLog()
        shard_b.extend([record(0, chip="chip-2"), record(1, chip="chip-2")])
        merged = DataLog.merge([shard_a, shard_b])
        assert len(merged) == 4
        assert [r.chip_id for r in merged] == ["chip-1", "chip-1", "chip-2", "chip-2"]
        # Within-shard order preserved.
        assert [r.count for r in merged] == [3200, 3201, 3200, 3201]

    def test_merge_order_is_caller_defined(self):
        shard_a = DataLog()
        shard_a.append(record(0, chip="chip-1"))
        shard_b = DataLog()
        shard_b.append(record(0, chip="chip-2"))
        forward = DataLog.merge([shard_a, shard_b])
        reverse = DataLog.merge([shard_b, shard_a])
        assert [r.chip_id for r in forward] == ["chip-1", "chip-2"]
        assert [r.chip_id for r in reverse] == ["chip-2", "chip-1"]

    def test_merge_skips_empty_shards(self):
        shard = DataLog()
        shard.append(record(0))
        merged = DataLog.merge([DataLog(), shard, DataLog()])
        assert len(merged) == 1

    def test_merge_of_nothing_is_empty(self):
        assert len(DataLog.merge([])) == 0

    def test_merge_does_not_alias_shards(self):
        shard = DataLog()
        shard.append(record(0))
        merged = DataLog.merge([shard])
        shard.append(record(1))
        assert len(merged) == 1

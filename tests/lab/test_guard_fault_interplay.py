"""Guard violation budgets × faultload dropouts: quarantine exactly once.

Satellite of the dependability sweep.  A chip can leave the bench for two
independent reasons — exhausting its guard violation budget or a
``CHIP_DROPOUT`` fault — and a chip hit by *both* must still be
quarantined exactly once, with deterministic counters, whether the
campaign runs sequentially or with worker threads.
"""

from repro.guard import GuardConfig
from repro.lab.campaign import run_table1_campaign
from repro.lab.faults import FaultEvent, FaultKind, FaultPlan, hours
from repro.obs import Tracer

SEED = 4
N_CHIPS = 3

#: Metric families that must be bit-identical across runs of one seed.
DETERMINISTIC_PREFIXES = ("campaign.quarantines", "guard.violations.", "lab.faults.")


def upsets(chip_id, *starts, magnitude=2.5):
    return [
        FaultEvent(
            kind=FaultKind.TRAP_UPSET,
            chip_id=chip_id,
            start=start,
            magnitude=magnitude,
        )
        for start in starts
    ]


def dropout(chip_id, start):
    return FaultEvent(kind=FaultKind.CHIP_DROPOUT, chip_id=chip_id, start=start)


def interplay_plan(dropout_first=False):
    """chip-1: upsets *and* a dropout; chip-2: upsets only; chip-3 clean."""
    dropout_at = hours(0.5) if dropout_first else hours(30.0)
    return FaultPlan(
        [
            *upsets("chip-1", hours(1.0), hours(2.0)),
            dropout("chip-1", dropout_at),
            *upsets("chip-2", hours(1.0), hours(2.0)),
        ]
    )


def run(plan, tracer=None, workers=1):
    return run_table1_campaign(
        seed=SEED,
        n_chips=N_CHIPS,
        workers=workers,
        faults=plan,
        guard=GuardConfig(mode="clamp", violation_budget=1, dump_dir=None),
        tracer=tracer,
    )


def counter_snapshot(tracer):
    return {
        name: value
        for name, value in tracer.metrics.snapshot().items()
        if name.startswith(DETERMINISTIC_PREFIXES)
    }


class TestQuarantineExactlyOnce:
    def test_budget_exhaustion_quarantines_upset_chips(self):
        tracer = Tracer()
        result = run(interplay_plan(), tracer=tracer)
        assert set(result.quarantined) == {"chip-1", "chip-2"}
        assert not result.complete
        assert tracer.metrics.value("campaign.quarantines") == 2.0

    def test_budget_and_dropout_counted_once(self):
        """chip-1 has both exit paths; the quarantine counter sees one."""
        tracer = Tracer()
        result = run(interplay_plan(), tracer=tracer)
        assert tracer.metrics.value("campaign.quarantines") == float(
            len(result.quarantined)
        )

    def test_dropout_before_budget_also_counted_once(self):
        tracer = Tracer()
        result = run(interplay_plan(dropout_first=True), tracer=tracer)
        assert "chip-1" in result.quarantined
        assert tracer.metrics.value("campaign.quarantines") == float(
            len(result.quarantined)
        )

    def test_survivor_chip_untouched(self):
        """The clean chip's records match a fault-free campaign's exactly."""
        degraded = run(interplay_plan())
        reference = run_table1_campaign(seed=SEED, n_chips=N_CHIPS)
        assert list(degraded.log.filter(chip_id="chip-3")) == list(
            reference.log.filter(chip_id="chip-3")
        )


class TestDeterministicCounters:
    def test_repeat_runs_agree(self):
        first, second = Tracer(), Tracer()
        run(interplay_plan(), tracer=first)
        run(interplay_plan(), tracer=second)
        snapshot = counter_snapshot(first)
        assert snapshot == counter_snapshot(second)
        assert snapshot["campaign.quarantines"] == 2.0
        assert any(name.startswith("guard.violations.") for name in snapshot)

    def test_sequential_matches_workers(self):
        sequential_tracer, parallel_tracer = Tracer(), Tracer()
        sequential = run(interplay_plan(), tracer=sequential_tracer)
        parallel = run(interplay_plan(), tracer=parallel_tracer, workers=2)
        assert list(sequential.log) == list(parallel.log)
        assert set(sequential.quarantined) == set(parallel.quarantined)
        assert {
            chip: report.case for chip, report in sequential.quarantined.items()
        } == {chip: report.case for chip, report in parallel.quarantined.items()}
        assert counter_snapshot(sequential_tracer) == counter_snapshot(
            parallel_tracer
        )

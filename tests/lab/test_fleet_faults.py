"""Fleet faultload contract: TRAP_UPSET support, typed rejections, guard.

Satellite of the dependability sweep: ``run_fleet_campaign`` documents
exactly which resilience options the batched path supports and raises a
typed :class:`~repro.errors.ConfigurationError` *naming the option* for
everything else — never silently ignoring a knob.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PhysicsViolationError
from repro.guard import GuardConfig
from repro.lab.campaign import run_table1_campaign, table1_horizon
from repro.lab.faults import FaultEvent, FaultKind, FaultPlan
from repro.lab.fleet import FLEET_SUPPORTED_FAULT_KINDS, run_fleet_campaign
from repro.lab.resilience import RetryPolicy
from repro.obs import Tracer


def upset_plan(n_chips=2, seed=11, probability=1.0):
    """A plan containing only trap upsets (the supported faultload)."""
    chip_ids = [f"chip-{i + 1}" for i in range(n_chips)]
    plan = FaultPlan.generate(
        seed,
        chip_ids,
        table1_horizon(n_chips),
        rate_per_day=0.0,
        upset_probability=probability,
    )
    assert {event.kind for event in plan.events} <= {FaultKind.TRAP_UPSET}
    return plan


class TestTypedRejections:
    def test_retry_rejected_by_name(self):
        with pytest.raises(ConfigurationError, match="retry="):
            run_fleet_campaign(seed=0, n_chips=2, retry=RetryPolicy())

    def test_checkpoint_rejected_by_name(self, tmp_path):
        with pytest.raises(ConfigurationError, match="checkpoint="):
            run_fleet_campaign(seed=0, n_chips=2, checkpoint=str(tmp_path))

    def test_resume_rejected_by_name(self):
        with pytest.raises(ConfigurationError, match="resume=True"):
            run_fleet_campaign(seed=0, n_chips=2, resume=True)

    def test_unsupported_fault_kinds_named(self):
        plan = FaultPlan.generate(
            seed=1,
            chip_ids=["chip-1", "chip-2"],
            horizon=table1_horizon(2),
            rate_per_day=2.0,
            dropout_probability=1.0,
        )
        with pytest.raises(ConfigurationError) as excinfo:
            run_fleet_campaign(seed=0, n_chips=2, faults=plan)
        message = str(excinfo.value)
        assert "chip-dropout" in message
        assert "trap-upset" in message  # the supported set is spelled out

    def test_guard_budget_rejected(self):
        config = GuardConfig(mode="clamp", violation_budget=2, dump_dir=None)
        with pytest.raises(ConfigurationError, match="violation_budget"):
            run_fleet_campaign(seed=0, n_chips=2, guard=config)

    def test_faults_with_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="shards"):
            run_fleet_campaign(seed=0, n_chips=4, shards=2, faults=upset_plan(4))

    def test_guard_with_shards_rejected(self):
        config = GuardConfig(mode="clamp", dump_dir=None)
        with pytest.raises(ConfigurationError, match="shards"):
            run_fleet_campaign(seed=0, n_chips=4, shards=2, guard=config)

    def test_supported_set_is_trap_upset_only(self):
        assert FLEET_SUPPORTED_FAULT_KINDS == frozenset({FaultKind.TRAP_UPSET})


class TestUpsetInjection:
    def test_upsets_perturb_the_run(self):
        baseline = run_fleet_campaign(seed=3, n_chips=2, fidelity="exact")
        upset = run_fleet_campaign(
            seed=3,
            n_chips=2,
            fidelity="exact",
            faults=upset_plan(probability=1.0),
            guard=GuardConfig(mode="clamp", dump_dir=None),
        )
        assert list(upset.log) != list(baseline.log)
        assert upset.total_measurements == baseline.total_measurements

    def test_upset_injection_counted(self):
        tracer = Tracer()
        run_fleet_campaign(
            seed=3,
            n_chips=2,
            fidelity="exact",
            faults=upset_plan(probability=1.0),
            guard=GuardConfig(mode="clamp", dump_dir=None),
            tracer=tracer,
        )
        assert tracer.metrics.value("lab.faults.injected") >= 1.0

    def test_nan_upset_without_guard_raises(self):
        plan = FaultPlan(
            [
                FaultEvent(
                    chip_id="chip-1",
                    kind=FaultKind.TRAP_UPSET,
                    start=1000.0,
                    duration=0.0,
                    magnitude=float("nan"),
                )
            ]
        )
        with pytest.raises(PhysicsViolationError):
            run_fleet_campaign(seed=3, n_chips=1, fidelity="exact", faults=plan)

    def test_upsets_deterministic_per_seed(self):
        kwargs = dict(
            seed=3,
            n_chips=2,
            fidelity="exact",
            faults=upset_plan(probability=1.0),
            guard=GuardConfig(mode="clamp", dump_dir=None),
        )
        first = run_fleet_campaign(**kwargs)
        second = run_fleet_campaign(**kwargs)
        assert list(first.log) == list(second.log)

    def test_binned_fidelity_accepts_upsets(self):
        result = run_fleet_campaign(
            seed=3,
            n_chips=2,
            fidelity="binned",
            faults=upset_plan(probability=1.0),
            guard=GuardConfig(mode="clamp", dump_dir=None),
        )
        assert result.total_measurements > 0

    def test_matches_scalar_bench_semantics(self):
        """Same upset plan through the scalar campaign also completes."""
        plan = upset_plan(probability=1.0)
        scalar = run_table1_campaign(
            seed=3,
            n_chips=2,
            faults=plan,
            guard=GuardConfig(mode="clamp", dump_dir=None),
        )
        assert not np.isnan([r.frequency for r in scalar.log]).any()


class TestGuardThreading:
    def test_clean_run_under_guard_is_bit_identical(self):
        plain = run_fleet_campaign(seed=1, n_chips=2, fidelity="exact")
        guarded = run_fleet_campaign(
            seed=1,
            n_chips=2,
            fidelity="exact",
            guard=GuardConfig(mode="clamp", dump_dir=None),
        )
        assert list(guarded.log) == list(plain.log)

    def test_clamp_counts_violations(self):
        tracer = Tracer()
        run_fleet_campaign(
            seed=3,
            n_chips=2,
            fidelity="exact",
            faults=upset_plan(probability=1.0),
            guard=GuardConfig(mode="clamp", dump_dir=None),
            tracer=tracer,
        )
        metrics = tracer.metrics.snapshot()
        violations = sum(
            value
            for name, value in metrics.items()
            if name.startswith("guard.violations.")
        )
        assert violations >= 1.0

"""Campaign runner — integration against the full Table-1 schedule."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.lab.campaign import Campaign
from repro.lab.schedule import standard_case


class TestCampaignUnit:
    def test_chip_numbering(self):
        campaign = Campaign(n_chips=3, seed=0)
        assert campaign.chip_id(1) == "chip-1"
        with pytest.raises(ScheduleError):
            campaign.chip_id(4)

    def test_chips_have_distinct_fresh_delays(self):
        campaign = Campaign(n_chips=5, seed=0)
        delays = set(campaign.fresh_delays.values())
        assert len(delays) == 5

    def test_run_case_logs_measurements(self):
        campaign = Campaign(n_chips=2, seed=0)
        campaign.run_case(standard_case("AS110DC24", chip_no=1))
        assert len(campaign.log) > 50
        assert campaign.log.cases() == ["AS110DC24"]

    def test_rejects_nonpositive_chip_count(self):
        with pytest.raises(ScheduleError):
            Campaign(n_chips=0)


class TestTable1Integration:
    """Assertions against the session-scoped full campaign run."""

    def test_all_cases_present(self, campaign_result):
        cases = set(campaign_result.log.cases())
        for expected in (
            "AS110AC24", "AS110DC24", "AS100DC24", "AS110DC48",
            "R20Z6", "AR20N6", "AR110Z6", "AR110N6", "AR110N12",
        ):
            assert expected in cases

    def test_baseline_ran_on_every_chip(self, campaign_result):
        cases = campaign_result.log.cases()
        assert sum(1 for c in cases if c.startswith("BASELINE")) == 5

    def test_stress_cases_degrade(self, campaign_result):
        for case, chip in (("AS110AC24", 1), ("AS110DC24", 2), ("AS100DC24", 4)):
            __, p = campaign_result.degradation_percent_series(case, chip)
            assert p[-1] > 0.5  # all accelerated cases show > 0.5 %

    def test_recovery_cases_recover(self, campaign_result):
        for case, chip in (("R20Z6", 2), ("AR20N6", 3), ("AR110N6", 5)):
            __, d = campaign_result.delay_change_series(case, chip)
            assert d[-1] < d[0]

    def test_shared_case_requires_chip_number(self, campaign_result):
        with pytest.raises(ScheduleError):
            campaign_result.delay_change_series("AS110DC24")

    def test_unknown_case_rejected(self, campaign_result):
        with pytest.raises(ScheduleError):
            campaign_result.delay_change_series("AS200DC24", chip_no=1)

    def test_sampling_cadence_matches_paper(self, campaign_result):
        # DC stress sampled every 20 minutes: 24 h -> 73 samples.
        times, __ = campaign_result.delay_change_series("AS110DC24", chip_no=2)
        assert len(times) == 73
        assert np.diff(times)[0] == pytest.approx(1200.0)
        # Recovery sampled every 30 minutes: 6 h -> 13 samples.
        times, __ = campaign_result.delay_change_series("AR110N6", chip_no=5)
        assert len(times) == 13
        assert np.diff(times)[0] == pytest.approx(1800.0)

    def test_chip5_restress_deeper_than_first(self, campaign_result):
        __, first = campaign_result.delay_change_series("AS110DC24", chip_no=5)
        __, second = campaign_result.delay_change_series("AS110DC48", chip_no=5)
        assert second[-1] > first[-1]

"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) of the reproduction requires doc comments on every public
item; this test makes the requirement executable.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented: list[str] = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere; owned there
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(item):
            for attr_name, attr in vars(item).items():
                if attr_name.startswith("_"):
                    continue
                if not inspect.isfunction(attr):
                    continue
                if not (attr.__doc__ and attr.__doc__.strip()):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )

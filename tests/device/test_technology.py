"""40 nm technology parameters."""

import pytest

from repro.device.technology import TECH_40NM, TechnologyParameters
from repro.errors import ConfigurationError
from repro.units import celsius


class TestTechnology:
    def test_default_nominal_rail(self):
        assert TECH_40NM.vdd_nominal == 1.2

    def test_stage_delay_is_sum_of_components(self):
        t = TECH_40NM
        assert t.stage_delay == pytest.approx(
            t.pass_tree_delay + t.buffer_delay + t.routing_delay
        )

    def test_overdrive(self):
        assert TECH_40NM.overdrive(TECH_40NM.vth0_pmos) == pytest.approx(1.2 - 0.42)

    def test_recovery_voltage_guard(self):
        TECH_40NM.check_recovery_voltage(-0.3)  # the paper's value is fine
        with pytest.raises(ConfigurationError):
            TECH_40NM.check_recovery_voltage(-1.0)  # junction breakdown

    def test_temperature_guard(self):
        TECH_40NM.check_temperature(celsius(110.0))  # accelerated but allowed
        with pytest.raises(ConfigurationError):
            TECH_40NM.check_temperature(celsius(150.0))

    def test_recommended_range_is_vendor_datasheet(self):
        lo, hi = TECH_40NM.recommended_temperature_range
        assert lo == pytest.approx(celsius(-40.0))
        assert hi == pytest.approx(celsius(85.0))

    def test_vdd_must_exceed_thresholds(self):
        with pytest.raises(ConfigurationError):
            TechnologyParameters(vdd_nominal=0.4)

    def test_min_recovery_voltage_must_be_negative(self):
        with pytest.raises(ConfigurationError):
            TechnologyParameters(min_recovery_voltage=0.1)

    def test_pbti_population_differs_from_nbti(self):
        # High-k PBTI is real but weaker at this node (paper Sec. 1).
        assert (
            TECH_40NM.pbti_traps.mean_trap_count < TECH_40NM.nbti_traps.mean_trap_count
        )

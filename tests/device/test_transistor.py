"""Transistor descriptors."""

import pytest

from repro.bti.conditions import StressPolarity
from repro.device.transistor import Transistor, TransistorRole
from repro.errors import ConfigurationError


class TestTransistor:
    def test_pmos_flag(self):
        pmos = Transistor("M7", StressPolarity.NBTI, TransistorRole.BUFFER_PULLUP)
        nmos = Transistor("M1", StressPolarity.PBTI, TransistorRole.PASS_LEVEL1)
        assert pmos.is_pmos and not nmos.is_pmos

    def test_default_full_weights(self):
        t = Transistor("M5", StressPolarity.PBTI, TransistorRole.PASS_LEVEL2)
        assert t.delay_weight == 1.0
        assert t.stress_fraction == 1.0

    @pytest.mark.parametrize("weight", [-0.1, 1.1])
    def test_delay_weight_bounds(self, weight):
        with pytest.raises(ConfigurationError):
            Transistor("X", StressPolarity.PBTI, TransistorRole.ROUTING, delay_weight=weight)

    @pytest.mark.parametrize("fraction", [0.0, 1.5])
    def test_stress_fraction_bounds(self, fraction):
        with pytest.raises(ConfigurationError):
            Transistor(
                "X",
                StressPolarity.PBTI,
                TransistorRole.ROUTING,
                stress_fraction=fraction,
            )

    def test_frozen(self):
        t = Transistor("M1", StressPolarity.PBTI, TransistorRole.PASS_LEVEL1)
        with pytest.raises(AttributeError):
            t.delay_weight = 0.5

"""Electromigration model (the irreversible wear BTI healing cannot fix)."""

import pytest

from repro.device.electromigration import BlackModel, EmWearState
from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_YEAR, celsius, hours


class TestBlackModel:
    def test_reference_anchor(self):
        model = BlackModel(reference_lifetime_years=10.0)
        mttf = model.mttf(1.0, model.reference_temperature)
        assert mttf == pytest.approx(10.0 * SECONDS_PER_YEAR)

    def test_current_acceleration(self):
        model = BlackModel(current_exponent=2.0)
        t = model.reference_temperature
        assert model.mttf(2.0, t) == pytest.approx(model.mttf(1.0, t) / 4.0)

    def test_temperature_acceleration(self):
        model = BlackModel()
        hot = model.mttf(1.0, celsius(125.0))
        cool = model.mttf(1.0, celsius(85.0))
        assert hot < cool

    def test_zero_current_immortal(self):
        assert BlackModel().mttf(0.0, celsius(105.0)) == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BlackModel(current_exponent=0.0)
        with pytest.raises(ConfigurationError):
            BlackModel().mttf(-1.0, 300.0)


class TestEmWearState:
    def test_damage_accumulates(self):
        wear = EmWearState()
        wear.stress(hours(1000.0), 1.0, celsius(105.0))
        assert wear.damage > 0.0

    def test_damage_is_irreversible_by_construction(self):
        wear = EmWearState()
        assert not hasattr(wear, "recover")
        wear.stress(hours(1000.0), 1.0, celsius(105.0))
        before = wear.damage
        # Power-gated time adds nothing, but removes nothing either.
        wear.stress(hours(1000.0), 0.0, celsius(105.0))
        assert wear.damage == before

    def test_miner_rule_linear(self):
        a = EmWearState()
        a.stress(hours(2000.0), 1.0, celsius(105.0))
        b = EmWearState()
        b.stress(hours(1000.0), 1.0, celsius(105.0))
        b.stress(hours(1000.0), 1.0, celsius(105.0))
        assert a.damage == pytest.approx(b.damage)

    def test_failure_threshold(self):
        model = BlackModel(reference_lifetime_years=0.001)
        wear = EmWearState(model)
        wear.stress(hours(10.0), 1.0, model.reference_temperature)
        assert wear.failed

    def test_remaining_life_shrinks(self):
        wear = EmWearState()
        before = wear.remaining_life(1.0, celsius(105.0))
        wear.stress(hours(5000.0), 1.0, celsius(105.0))
        assert wear.remaining_life(1.0, celsius(105.0)) < before

    def test_heat_hurts_em_even_during_healing(self):
        # The paper's limitation, sharpened: if current still flows, the
        # 110 degC healing temperature would *accelerate* EM.
        cool = EmWearState()
        hot = EmWearState()
        cool.stress(hours(100.0), 0.5, celsius(20.0))
        hot.stress(hours(100.0), 0.5, celsius(110.0))
        assert hot.damage > cool.damage

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            EmWearState().stress(-1.0, 1.0, 300.0)


class TestCryogenicExtremes:
    """Regression: cryogenic extremes never produce NaN.

    ``inf`` is this API's designed "effectively never fails" sentinel
    (zero current returns it explicitly), so a millikelvin MTTF may
    legitimately saturate there — but the clamped thermal factor must
    never meet a vanishing current factor as ``inf * 0.0 -> NaN``.
    """

    def test_millikelvin_mttf_is_never_nan(self):
        model = BlackModel()
        mttf = model.mttf(model.reference_current_density, 1e-3)
        assert mttf > 0.0
        assert not mttf != mttf  # not NaN

    def test_huge_current_at_millikelvin_stays_finite(self):
        model = BlackModel()
        # Raw exp: thermal factor inf, current factor ~0 -> inf*0 = NaN.
        # Clamped it underflows to an honest 0.0 ("fails immediately").
        mttf = model.mttf(model.reference_current_density * 1e200, 1e-3)
        assert mttf >= 0.0
        assert not mttf != mttf

    def test_colder_never_shortens_life(self):
        model = BlackModel()
        j = model.reference_current_density
        mttfs = [model.mttf(j, t) for t in (1e-3, 4.2, 77.0, celsius(25.0))]
        assert mttfs == sorted(mttfs, reverse=True)

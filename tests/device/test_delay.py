"""Gate delay models (first-order Eq. 6 and alpha-power)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.delay import AlphaPowerDelayModel, FirstOrderDelayShift
from repro.errors import ConfigurationError


class TestFirstOrder:
    def test_matches_equation_six(self):
        model = FirstOrderDelayShift(vdd=1.2, vth0=0.4)
        td0, dvth = 1e-9, 0.02
        assert model.delay_shift(td0, dvth) == pytest.approx(td0 * dvth / 0.8)

    def test_linear_in_dvth(self):
        model = FirstOrderDelayShift(vdd=1.2, vth0=0.4)
        assert model.delay_shift(1e-9, 0.04) == pytest.approx(
            2.0 * model.delay_shift(1e-9, 0.02)
        )

    def test_array_broadcast(self):
        model = FirstOrderDelayShift(vdd=1.2, vth0=0.4)
        result = model.delay_shift(np.array([1e-9, 2e-9]), np.array([0.01, 0.01]))
        assert result.shape == (2,)
        assert result[1] == pytest.approx(2.0 * result[0])

    def test_requires_positive_overdrive(self):
        with pytest.raises(ConfigurationError):
            FirstOrderDelayShift(vdd=0.4, vth0=0.4)


class TestAlphaPower:
    def test_zero_shift_zero_delay(self):
        model = AlphaPowerDelayModel(vdd=1.2, vth0=0.4)
        assert model.delay_shift(1e-9, 0.0) == pytest.approx(0.0)

    def test_superlinear_vs_first_order(self):
        # Alpha-power bends upward: for equal small-signal slope it must
        # exceed the linearisation at large shifts.
        first = FirstOrderDelayShift(vdd=1.2, vth0=0.4)
        alpha = AlphaPowerDelayModel(vdd=1.2, vth0=0.4, alpha=1.0)
        big = 0.2
        assert alpha.delay_shift(1e-9, big) > first.delay_shift(1e-9, big)

    def test_agrees_with_first_order_for_small_shifts(self):
        first = FirstOrderDelayShift(vdd=1.2, vth0=0.4)
        alpha = AlphaPowerDelayModel(vdd=1.2, vth0=0.4, alpha=1.0)
        small = 1e-4
        assert alpha.delay_shift(1e-9, small) == pytest.approx(
            first.delay_shift(1e-9, small), rel=1e-3
        )

    def test_rejects_shift_beyond_overdrive(self):
        model = AlphaPowerDelayModel(vdd=1.2, vth0=0.4)
        with pytest.raises(ConfigurationError):
            model.delay_shift(1e-9, 0.9)

    def test_rejects_alpha_below_one(self):
        with pytest.raises(ConfigurationError):
            AlphaPowerDelayModel(vdd=1.2, vth0=0.4, alpha=0.5)

    @given(dvth=st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=50, deadline=None)
    def test_monotone_nonnegative(self, dvth):
        model = AlphaPowerDelayModel(vdd=1.2, vth0=0.4)
        shift = model.delay_shift(1e-9, dvth)
        assert shift >= 0.0
        assert model.delay_shift(1e-9, dvth + 0.05) >= shift

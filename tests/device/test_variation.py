"""Process variation sampling."""

import numpy as np
import pytest

from repro.device.variation import NO_VARIATION, ProcessVariation
from repro.errors import ConfigurationError


class TestProcessVariation:
    def test_no_variation_is_deterministic(self):
        sample = NO_VARIATION.sample(10, rng=0)
        assert sample.vth_offset == 0.0
        assert sample.delay_multiplier == 1.0
        np.testing.assert_array_equal(sample.local_delay_multipliers, np.ones(10))

    def test_sample_shape(self):
        sample = ProcessVariation().sample(75, rng=1)
        assert sample.local_delay_multipliers.shape == (75,)

    def test_seeded_reproducibility(self):
        a = ProcessVariation().sample(10, rng=7)
        b = ProcessVariation().sample(10, rng=7)
        assert a.vth_offset == b.vth_offset
        np.testing.assert_array_equal(
            a.local_delay_multipliers, b.local_delay_multipliers
        )

    def test_chips_differ(self):
        a = ProcessVariation().sample(10, rng=1)
        b = ProcessVariation().sample(10, rng=2)
        assert a.vth_offset != b.vth_offset

    def test_multipliers_floored_positive(self):
        # Even absurd sigma cannot produce a negative stage delay.
        variation = ProcessVariation(local_delay_sigma=5.0)
        sample = variation.sample(1000, rng=3)
        assert np.all(sample.local_delay_multipliers >= 0.5)

    def test_spread_scales_with_sigma(self):
        tight = ProcessVariation(chip_vth_sigma=0.001)
        loose = ProcessVariation(chip_vth_sigma=0.05)
        tight_offsets = [tight.sample(5, rng=i).vth_offset for i in range(50)]
        loose_offsets = [loose.sample(5, rng=i).vth_offset for i in range(50)]
        assert np.std(loose_offsets) > np.std(tight_offsets)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            ProcessVariation(chip_vth_sigma=-0.1)

    def test_rejects_nonpositive_stage_count(self):
        with pytest.raises(ConfigurationError):
            ProcessVariation().sample(0, rng=0)

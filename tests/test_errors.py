"""Exception hierarchy contract."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigurationError,
        errors.ScheduleError,
        errors.InstrumentError,
        errors.MeasurementError,
        errors.CounterOverflowError,
        errors.FittingError,
        errors.SimulationError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_schedule_error_is_configuration_error():
    # Schedules are configuration; a single except clause should catch both.
    assert issubclass(errors.ScheduleError, errors.ConfigurationError)


def test_counter_overflow_is_measurement_error():
    assert issubclass(errors.CounterOverflowError, errors.MeasurementError)


def test_catchable_as_repro_error():
    with pytest.raises(errors.ReproError):
        raise errors.FittingError("did not converge")

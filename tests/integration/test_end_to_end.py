"""End-to-end paper-shape assertions across the whole stack.

These tests combine the substrates the way a downstream user would and
check the paper's headline claims as one connected story.
"""

import numpy as np
import pytest

from repro import FpgaChip, StressMode
from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.metrics import lifetime_extension
from repro.core.planner import CircadianPlanner
from repro.core.policies import NoRecoveryPolicy, ProactivePolicy
from repro.core.rejuvenator import Rejuvenator
from repro.units import celsius, hours


class TestHeadlineClaim:
    """Abstract: 'bring stressed chips back to within 90 % of their
    original margin by actively rejuvenating for only 1/4 of the stress
    time' — on the periodic alpha = 4 schedule, the end-of-cycle residual
    stays a small fraction of the unmitigated aging budget."""

    def test_periodic_schedule_keeps_chip_near_original_margin(self):
        chip = FpgaChip("headline", seed=5)
        knobs = RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
        planner = CircadianPlanner(
            knobs, OperatingPoint(temperature_c=110.0), period=hours(7.5)
        )
        comparison = planner.compare_against_baseline(
            chip, total_active_time=hours(48.0), max_segment=hours(1.5)
        )
        troughs = comparison.healed.cycle_troughs()
        budget = comparison.baseline.final_shift
        # After every rejuvenation the chip is back within ~75 % of the
        # margin the unmitigated design would have had to budget.
        assert troughs[-1] < 0.3 * budget
        # And each individual cycle recovers the majority of its own wear.
        assert comparison.end_recovery_fraction > 0.6

    def test_one_quarter_sleep_single_shot(self):
        # The single-shot version: 24 h stress, 6 h combined-knob recovery
        # undoes most (the paper's 72.4 %) of the shift.
        chip = FpgaChip("single", seed=6)
        chip.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)
        peak = chip.delta_path_delay()
        chip.apply_recovery(hours(6.0), temperature=celsius(110.0), supply_voltage=-0.3)
        fraction = 1.0 - chip.delta_path_delay() / peak
        assert 0.6 < fraction < 0.95


class TestKnobMonotonicity:
    """Both knobs must help, independently, from any stressed state."""

    @pytest.fixture
    def stressed_chip(self):
        chip = FpgaChip("knobs", seed=8)
        chip.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)
        return chip

    def test_voltage_knob(self, stressed_chip):
        state = stressed_chip.snapshot()
        residuals = {}
        for voltage in (0.0, -0.15, -0.3):
            stressed_chip.restore(state)
            stressed_chip.apply_recovery(
                hours(6.0), temperature=celsius(110.0), supply_voltage=voltage
            )
            residuals[voltage] = stressed_chip.delta_path_delay()
        assert residuals[-0.3] < residuals[-0.15] < residuals[0.0]

    def test_temperature_knob(self, stressed_chip):
        state = stressed_chip.snapshot()
        residuals = {}
        for temp in (20.0, 60.0, 110.0):
            stressed_chip.restore(state)
            stressed_chip.apply_recovery(
                hours(6.0), temperature=celsius(temp), supply_voltage=-0.3
            )
            residuals[temp] = stressed_chip.delta_path_delay()
        assert residuals[110.0] < residuals[60.0] < residuals[20.0]


class TestLifetimeStory:
    def test_circadian_schedule_extends_lifetime(self):
        operating = OperatingPoint(temperature_c=110.0)
        budget = None
        trajectories = {}
        for name, policy_factory in (
            ("baseline", lambda: NoRecoveryPolicy(segment=hours(1.5))),
            (
                "healed",
                lambda: ProactivePolicy(
                    RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3,
                                  sleep_temperature_c=110.0),
                    period=hours(7.5),
                ),
            ),
        ):
            chip = FpgaChip("life", seed=9)
            rejuvenator = Rejuvenator(chip, operating, max_segment=hours(1.5))
            trajectories[name] = rejuvenator.run(policy_factory(), hours(60.0))
        baseline = trajectories["baseline"]
        healed = trajectories["healed"]
        budget = 0.8 * baseline.final_shift
        extension = lifetime_extension(
            baseline.active_times,
            baseline.delay_shifts,
            healed.active_times,
            healed.delay_shifts,
            budget,
        )
        assert extension > 1.5


class TestMeasurementChainConsistency:
    def test_counter_delay_tracks_chip_delay(self):
        # The whole measurement chain (chip -> RO -> counter -> Eq. 15)
        # must agree with the chip's internal delay to counter resolution.
        from repro.fpga.counter import ReadoutCounter
        from repro.fpga.ring_oscillator import RingOscillator

        chip = FpgaChip("chain", seed=10)
        chip.apply_stress(hours(12.0), temperature=celsius(110.0))
        ro = RingOscillator(chip, ReadoutCounter(noise_counts=0))
        measured = ro.measure(rng=0)
        assert measured.delay == pytest.approx(chip.path_delay(), rel=1e-3)


class TestStatisticalAging:
    def test_chip_population_spread(self):
        # Chip-to-chip variation: five virtual chips differ in fresh
        # frequency and in aged shift — the reason the paper normalises
        # with recovered delay.
        shifts = []
        fresh = []
        for seed in range(5):
            chip = FpgaChip(f"pop-{seed}", seed=seed)
            fresh.append(chip.fresh_path_delay)
            chip.apply_stress(hours(24.0), temperature=celsius(110.0))
            shifts.append(chip.delta_path_delay())
        assert len(set(fresh)) == 5
        spread = (max(shifts) - min(shifts)) / np.mean(shifts)
        assert spread > 0.02

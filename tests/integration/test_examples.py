"""Every example script must run unmodified (smoke integration)."""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    path = EXAMPLES / name
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_has_quickstart_plus_domain_scenarios():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "design margin relaxed" in out


def test_model_fitting_runs(capsys):
    run_example("model_fitting.py")
    out = capsys.readouterr().out
    assert "cross-condition scaling fit" in out
    assert "FAIL" not in out


def test_recovery_knob_sweep_runs(capsys):
    run_example("recovery_knob_sweep.py")
    out = capsys.readouterr().out
    assert "best setting" in out


def test_multicore_circadian_runs(capsys):
    run_example("multicore_circadian.py")
    out = capsys.readouterr().out
    assert "heater-aware" in out


def test_sensor_guided_healing_runs(capsys):
    run_example("sensor_guided_healing.py")
    out = capsys.readouterr().out
    assert "HEAL" in out
    assert "converged: True" in out


def test_statistical_margins_runs(capsys):
    run_example("statistical_margins.py")
    out = capsys.readouterr().out
    assert "p99" in out
    assert "sigma/mu" in out


def test_aging_campaign_runs_and_exports(tmp_path, capsys):
    csv_path = tmp_path / "campaign.csv"
    run_example("aging_campaign.py", [str(csv_path)])
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert csv_path.exists()
    from repro.lab.datalog import DataLog

    assert len(DataLog.read_csv(csv_path)) > 500

"""Model transferability: fits generalise across chips and phases.

The paper fits its first-order model on measured data and treats it as a
property of the technology, not of one chip.  These tests check that the
virtual reproduction supports the same practice.
"""

import numpy as np
import pytest

from repro.core.fitting import fit_recovery_parameters, fit_stress_parameters
from repro.core.validation import validate_model_against_series
from repro.units import hours


class TestCrossChipTransfer:
    def test_stress_fit_transfers_between_chips(self, campaign_result):
        # Chips 2 and 3 ran the identical AS110DC24 case.  A model fitted
        # on chip 2, rescaled by the chips' relative magnitude at 24 h,
        # must track chip 3's whole curve.
        t2, d2 = campaign_result.delay_change_series("AS110DC24", chip_no=2)
        t3, d3 = campaign_result.delay_change_series("AS110DC24", chip_no=3)
        fit = fit_stress_parameters(t2, d2)
        predicted = np.asarray(fit.parameters.shift(t3))
        scale = d3[-1] / predicted[-1]
        report = validate_model_against_series(d3, predicted * scale, threshold=0.15)
        assert report.passed, report.describe()

    def test_raw_transfer_within_variation(self, campaign_result):
        # Even without rescaling, chip-to-chip differences stay within the
        # process-variation envelope (tens of percent, not factors).
        __, d2 = campaign_result.delay_change_series("AS110DC24", chip_no=2)
        __, d3 = campaign_result.delay_change_series("AS110DC24", chip_no=3)
        assert d3[-1] == pytest.approx(d2[-1], rel=0.35)


class TestPhaseConsistency:
    def test_shared_rate_constant_fits_recovery(self, campaign_result):
        # The paper shares C between the stress and recovery forms; fixing
        # the stress-fitted C in the recovery fit must still validate.
        t_s, d_s = campaign_result.delay_change_series("AS110DC24", chip_no=5)
        stress_fit = fit_stress_parameters(t_s, d_s)
        t_r, d_r = campaign_result.delay_change_series("AR110N6", chip_no=5)
        recovery_fit = fit_recovery_parameters(
            stress_time=hours(24.0),
            shift_at_stress_end=float(d_r[0]),
            times=t_r,
            shifts=d_r,
            rate_c=stress_fit.parameters.rate_c,
        )
        assert recovery_fit.parameters.rate_c == stress_fit.parameters.rate_c
        assert recovery_fit.nrmse < 0.15

    def test_restress_consistent_with_first_stress(self, campaign_result):
        # Chip 5's 48 h re-stress continues from its healed state; by the
        # 24 h mark of the re-stress it must exceed where the *fresh* 24 h
        # stress ended (residue accumulates, paper Fig. 1).
        t1, d1 = campaign_result.delay_change_series("AS110DC24", chip_no=5)
        t2, d2 = campaign_result.delay_change_series("AS110DC48", chip_no=5)
        idx_24h = int(np.argmin(np.abs(t2 - hours(24.0))))
        assert d2[idx_24h] > 0.8 * d1[-1]
        assert d2[-1] > d1[-1]

"""Determinism: everything is exactly reproducible under a seed."""

import numpy as np

from repro.fpga.chip import FpgaChip
from repro.lab.campaign import Campaign
from repro.lab.schedule import standard_case
from repro.multicore.scheduler import HeaterAwareScheduler
from repro.multicore.system import MulticoreSystem
from repro.multicore.workload import ConstantWorkload
from repro.units import celsius, hours

from tests.conftest import fast_technology
from tests.multicore.test_system import fast_params


class TestCampaignDeterminism:
    def _run(self, seed: int):
        campaign = Campaign(n_chips=1, seed=seed)
        campaign.run_case(standard_case("AS110DC24", chip_no=1))
        campaign.run_case(standard_case("AR110N6", chip_no=1))
        return [(r.timestamp, r.count) for r in campaign.log]

    def test_same_seed_identical_logs(self):
        assert self._run(5) == self._run(5)

    def test_different_seed_different_logs(self):
        assert self._run(5) != self._run(6)


class TestChipDeterminism:
    def test_stress_recovery_roundtrip_bitwise(self):
        def trace(seed: int) -> list[float]:
            chip = FpgaChip("d", n_stages=5, tech=fast_technology(), seed=seed)
            values = []
            chip.apply_stress(hours(12.0), temperature=celsius(110.0))
            values.append(chip.delta_path_delay())
            chip.apply_recovery(hours(3.0), temperature=celsius(110.0), supply_voltage=-0.3)
            values.append(chip.delta_path_delay())
            return values

        assert trace(11) == trace(11)


class TestMulticoreDeterminism:
    def test_system_run_reproducible(self):
        def final(seed: int) -> np.ndarray:
            system = MulticoreSystem(core_params=fast_params(), seed=seed)
            history = system.run(
                HeaterAwareScheduler(), ConstantWorkload(6), n_epochs=12,
                epoch_duration=hours(1.0),
            )
            return history.final_shifts()

        np.testing.assert_array_equal(final(3), final(3))


class TestExperimentDeterminism:
    def test_fig1_is_pure(self):
        from repro.experiments import fig1

        a = fig1.run()
        b = fig1.run()
        np.testing.assert_array_equal(a.trace.values, b.trace.values)

"""Dependability sweep acceptance drills.

Two end-to-end contracts from the sweep engine's spec:

* a ≥24-cell faultload matrix with one forced crash and one forced
  timeout still completes, reporting exactly those two cells as
  degraded; and
* ``repro sweep resume`` after a SIGKILL re-runs only the unfinished
  cells and reproduces the surviving cells bit-identically.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.dependability import (
    LifetimeSettings,
    SweepRunner,
    SweepSpec,
    analyze_sweep,
)
from repro.obs import Tracer
from repro.report import build_dependability_report

ROOT = Path(__file__).resolve().parent.parent.parent


def grid_24() -> SweepSpec:
    """2 fault rates x 2 guard modes x 3 alphas x 2 seeds = 24 cells."""
    return SweepSpec(
        name="acceptance-24",
        n_chips=1,
        fault_rates=(0.0, 6.0),
        guard_modes=("clamp", "off"),
        alphas=(1.0, 2.0, 4.0),
        seeds=(3, 5),
        lifetime=LifetimeSettings(enabled=False),
    )


class TestDegradedSweepCompletes:
    def test_crash_and_timeout_cells_reported(self, tmp_path):
        spec = grid_24()
        assert spec.n_cells == 24
        tracer = Tracer()
        result = SweepRunner(
            spec,
            tmp_path,
            isolation="process",
            timeout_s=5.0,
            cell_retries=1,
            inject={"cell-0000": "crash", "cell-0001": "hang"},
            tracer=tracer,
        ).run()

        by_id = {outcome.cell_id: outcome for outcome in result.outcomes}
        crashed, hung = by_id["cell-0000"], by_id["cell-0001"]
        assert crashed.status == "failed" and "worker died" in crashed.error
        assert hung.status == "timeout" and "wall-clock budget" in hung.error
        assert {o.cell_id for o in result.degraded_cells} == {
            "cell-0000", "cell-0001",
        }
        assert len(result.ok_cells) == 22
        # Both degraded cells exhausted their attempts; one via timeout.
        assert tracer.metrics.value("sweep.cell_failures") == 2.0
        assert tracer.metrics.value("sweep.cell_timeouts") == 1.0

        analysis = analyze_sweep(result)
        assert len(analysis.degraded_rows) == 2
        report = build_dependability_report(analysis)
        assert report.data["meta"]["degraded_cells"] == 2
        assert "wall-clock budget" in report.html


class TestSigkillResume:
    SPEC = dict(
        name="kill-resume",
        n_chips=1,
        alphas=(1.0, 2.0, 4.0),
        seeds=(3, 5),
        lifetime=dict(enabled=False),
    )

    def test_resume_runs_only_unfinished_cells(self, tmp_path):
        spec = SweepSpec.from_dict(self.SPEC)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        sweep_dir = tmp_path / "sweep"
        cells_dir = sweep_dir / "cells"

        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "sweep", "run", str(spec_path),
                "--dir", str(sweep_dir), "--isolation", "inline", "--quiet",
            ],
            cwd=ROOT,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break  # finished before the kill window — still valid
                if len(list(cells_dir.glob("cell-*.json"))) >= 2:
                    process.send_signal(signal.SIGKILL)
                    process.wait(timeout=30.0)
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("sweep made no cell progress in 300 s")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30.0)

        survivors = {
            path.stem: json.loads(path.read_text())["digest"]
            for path in cells_dir.glob("cell-*.json")
        }
        assert survivors, "kill landed before any cell was persisted"

        tracer = Tracer()
        resumed = SweepRunner.resume(sweep_dir, isolation="inline", tracer=tracer)
        assert resumed.complete
        # Only the unfinished cells re-ran...
        assert tracer.metrics.value("sweep.cells") == float(
            spec.n_cells - len(survivors)
        )
        # ...and the surviving cells kept their exact pre-kill results,
        # which in turn match an uninterrupted reference sweep.
        resumed_digests = {o.cell_id: o.digest for o in resumed.outcomes}
        for cell_id, digest in survivors.items():
            assert resumed_digests[cell_id] == digest
        reference = SweepRunner(
            spec, tmp_path / "reference", isolation="inline"
        ).run()
        assert resumed_digests == {o.cell_id: o.digest for o in reference.outcomes}

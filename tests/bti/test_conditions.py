"""Bias conditions, waveforms and phases."""

import pytest

from repro.bti.conditions import (
    AC_FIFTY_FIFTY,
    DC,
    BiasCondition,
    BiasPhase,
    Waveform,
)
from repro.errors import ConfigurationError, ScheduleError
from repro.units import celsius


class TestBiasCondition:
    def test_at_celsius(self):
        cond = BiasCondition.at_celsius(1.2, 110.0)
        assert cond.temperature == pytest.approx(celsius(110.0))
        assert cond.stress_voltage == 1.2

    def test_negative_stress_voltage_allowed(self):
        # The paper's accelerated recovery reverses the bias.
        cond = BiasCondition.at_celsius(-0.3, 20.0)
        assert cond.stress_voltage == -0.3

    def test_nonpositive_temperature_rejected(self):
        with pytest.raises(ConfigurationError):
            BiasCondition(stress_voltage=0.0, temperature=0.0)

    def test_with_voltage_preserves_temperature(self):
        cond = BiasCondition.at_celsius(1.2, 110.0)
        sleep = cond.with_voltage(-0.3)
        assert sleep.temperature == cond.temperature
        assert sleep.stress_voltage == -0.3

    def test_with_temperature_preserves_voltage(self):
        cond = BiasCondition.at_celsius(1.2, 20.0)
        hot = cond.with_temperature(celsius(110.0))
        assert hot.stress_voltage == 1.2
        assert hot.temperature == pytest.approx(celsius(110.0))

    def test_frozen(self):
        cond = BiasCondition.at_celsius(1.2, 20.0)
        with pytest.raises(AttributeError):
            cond.stress_voltage = 0.5


class TestWaveform:
    def test_dc_constant(self):
        assert DC.is_dc
        assert DC.duty == 1.0

    def test_ac_fifty_fifty(self):
        assert AC_FIFTY_FIFTY.duty == 0.5
        assert not AC_FIFTY_FIFTY.is_dc

    @pytest.mark.parametrize("duty", [-0.1, 1.5])
    def test_duty_out_of_range_rejected(self, duty):
        with pytest.raises(ConfigurationError):
            Waveform(duty=duty)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            Waveform(duty=0.5, frequency=0.0)


class TestBiasPhase:
    def test_default_relax_bias_is_unbiased_same_temperature(self):
        phase = BiasPhase(duration=10.0, bias=BiasCondition.at_celsius(1.2, 110.0))
        relax = phase.effective_relax_bias
        assert relax.stress_voltage == 0.0
        assert relax.temperature == phase.bias.temperature

    def test_explicit_relax_bias_returned(self):
        bias = BiasCondition.at_celsius(1.2, 110.0)
        relax = bias.with_voltage(-0.3)
        phase = BiasPhase(duration=10.0, bias=bias, relax_bias=relax)
        assert phase.effective_relax_bias == relax

    def test_negative_duration_rejected(self):
        with pytest.raises(ScheduleError):
            BiasPhase(duration=-1.0, bias=BiasCondition.at_celsius(1.2, 20.0))

    def test_relax_bias_must_share_temperature(self):
        # A thermal chamber cannot follow a MHz waveform.
        bias = BiasCondition.at_celsius(1.2, 110.0)
        relax = BiasCondition.at_celsius(0.0, 20.0)
        with pytest.raises(ScheduleError):
            BiasPhase(duration=10.0, bias=bias, relax_bias=relax)

"""Bias-argument shape handling of the trap ensemble (regression).

``TrapPopulation`` historically accepted a python float or a full
``(n_owners,)`` vector, but the two shapes numpy naturally produces for
a uniform bias — a 0-d array (``np.float64`` arithmetic results) and a
length-1 vector (``np.atleast_1d`` / batched-broadcast callers) — fell
through to the wrong cache key or a shape error.  All four spellings of
"every owner at V" must now share one canonical form, one cache entry
and one trajectory.
"""

import numpy as np
import pytest

from repro.bti.traps import TrapParameters, TrapPopulation
from repro.errors import ConfigurationError
from repro.obs import Tracer
from repro.units import celsius, hours


def make_population(seed=7, n_owners=4, tracer=None) -> TrapPopulation:
    return TrapPopulation(
        TrapParameters(mean_trap_count=40.0), n_owners=n_owners, rng=seed,
        tracer=tracer,
    )


HOT = celsius(110.0)
V = 1.2


def uniform_spellings(n_owners: int, value: float = V):
    """Every accepted way to say "all owners at ``value`` volts"."""
    return (
        value,
        np.float64(value),
        np.array(value),                      # 0-d
        np.array([value]),                    # (1,)
        np.full(n_owners, value),             # full vector
    )


class TestCanonicalBias:
    def test_zero_d_and_length_one_collapse_to_scalar_form(self):
        pop = make_population()
        for spelling in (np.array(V), np.array([V]), V):
            canonical = pop._canonical_bias(spelling)
            assert canonical.ndim == 0
            assert float(canonical) == V

    def test_full_vector_is_preserved(self):
        pop = make_population(n_owners=4)
        vector = np.array([1.2, 0.0, 1.2, -0.3])
        canonical = pop._canonical_bias(vector)
        assert canonical.shape == (4,)
        np.testing.assert_array_equal(canonical, vector)

    def test_length_one_vector_on_single_owner_population(self):
        # With n_owners == 1 the shape (1,) IS the full vector; it must
        # still evolve identically to the scalar spelling.
        a = make_population(n_owners=1)
        b = make_population(n_owners=1)
        a.evolve(hours(1.0), V, HOT)
        b.evolve(hours(1.0), np.array([V]), HOT)
        np.testing.assert_array_equal(a.occupancy, b.occupancy)

    def test_wrong_shapes_rejected(self):
        pop = make_population(n_owners=4)
        for bad in (np.array([V, V]), np.zeros((4, 1)), np.zeros(5)):
            with pytest.raises(ConfigurationError):
                pop._canonical_bias(bad)

    def test_uniform_spellings_share_one_cache_key(self):
        pop = make_population()
        keys = {
            pop._bias_key(pop._canonical_bias(s))
            for s in uniform_spellings(pop.n_owners)
            if np.asarray(s).ndim > 0 or True
        }
        # scalar/0-d/(1,) collapse to one key; the full vector keeps its
        # own shape (same values, different fingerprint is acceptable —
        # the trajectory equivalence below is the real contract).
        assert len(keys) == 2


class TestShapeEquivalentTrajectories:
    def test_all_uniform_spellings_evolve_bit_identically(self):
        reference = make_population(seed=11)
        reference.evolve(hours(2.0), V, HOT)
        reference.evolve(hours(1.0), -0.3, HOT, duty=0.5, relax_voltage=0.0)
        for spelling in uniform_spellings(reference.n_owners):
            pop = make_population(seed=11)
            pop.evolve(hours(2.0), spelling, HOT)
            relax = np.asarray(spelling, dtype=float) * 0.0
            pop.evolve(hours(1.0), -0.3, HOT, duty=0.5, relax_voltage=relax)
            np.testing.assert_array_equal(pop.occupancy, reference.occupancy)
            assert pop.elapsed == reference.elapsed

    def test_zero_d_bias_hits_the_scalar_cache_entry(self):
        tracer = Tracer()
        pop = make_population(seed=5, tracer=tracer)
        pop.evolve(hours(1.0), V, HOT)
        misses_after_scalar = tracer.metrics.value("bti.rate_cache.misses")
        pop.evolve(hours(1.0), np.array(V), HOT)
        pop.evolve(hours(1.0), np.array([V]), HOT)
        assert tracer.metrics.value("bti.rate_cache.misses") == misses_after_scalar
        assert tracer.metrics.value("bti.rate_cache.hits") >= 2.0

"""Statistical aging prediction."""

import numpy as np
import pytest

from repro.bti.conditions import BiasCondition, BiasPhase
from repro.bti.statistical import (
    margin_at_quantile,
    sample_device_shifts,
    shift_statistics,
    sigma_mu_relation,
)
from repro.bti.traps import TrapParameters
from repro.errors import ConfigurationError
from repro.units import hours

STRESS_PHASE = BiasPhase(
    duration=hours(24.0), bias=BiasCondition.at_celsius(1.2, 110.0)
)
SMALL = TrapParameters(mean_trap_count=15.0)


class TestSampling:
    def test_sample_shape_and_positivity(self):
        shifts = sample_device_shifts([STRESS_PHASE], 100, params=SMALL, rng=0)
        assert shifts.shape == (100,)
        assert np.all(shifts >= 0.0)
        assert shifts.mean() > 0.0

    def test_reproducible(self):
        a = sample_device_shifts([STRESS_PHASE], 50, params=SMALL, rng=3)
        b = sample_device_shifts([STRESS_PHASE], 50, params=SMALL, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_mean_field_less_noisy_than_stochastic(self):
        mean_field = sample_device_shifts(
            [STRESS_PHASE], 200, params=SMALL, rng=1, stochastic=False
        )
        stochastic = sample_device_shifts(
            [STRESS_PHASE], 200, params=SMALL, rng=1, stochastic=True
        )
        assert np.std(stochastic) > np.std(mean_field) * 0.9
        # Means must agree (Bernoulli sampling is unbiased).
        assert np.mean(stochastic) == pytest.approx(np.mean(mean_field), rel=0.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sample_device_shifts([STRESS_PHASE], 0)
        with pytest.raises(ConfigurationError):
            sample_device_shifts([], 10)


class TestStatistics:
    def test_summary_fields(self):
        shifts = sample_device_shifts([STRESS_PHASE], 300, params=SMALL, rng=0)
        stats = shift_statistics(shifts)
        assert stats.n_devices == 300
        assert stats.quantiles[0.99] >= stats.quantiles[0.9] >= stats.quantiles[0.5]
        assert stats.relative_sigma > 0.0

    def test_margin_at_quantile_exceeds_mean(self):
        shifts = sample_device_shifts([STRESS_PHASE], 300, params=SMALL, rng=0)
        margin = margin_at_quantile(shifts, coverage=0.99)
        assert margin > shifts.mean()

    def test_quantile_validation(self):
        shifts = np.array([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            margin_at_quantile(shifts, coverage=1.0)
        with pytest.raises(ConfigurationError):
            shift_statistics(np.array([]))


class TestSigmaMu:
    def test_smaller_devices_less_predictable(self):
        relation = sigma_mu_relation(
            [STRESS_PHASE], trap_counts=(8.0, 32.0, 128.0), n_devices=300, rng=0
        )
        sigmas = [relation[c] for c in (8.0, 32.0, 128.0)]
        assert sigmas[0] > sigmas[1] > sigmas[2]

    def test_roughly_inverse_sqrt(self):
        relation = sigma_mu_relation(
            [STRESS_PHASE], trap_counts=(16.0, 256.0), n_devices=600, rng=1
        )
        # 16x more traps -> ~4x less relative sigma (within a loose factor).
        ratio = relation[16.0] / relation[256.0]
        assert 2.0 < ratio < 8.0

"""Rate caching and closed-form cycle compression of the trap ensemble.

The caches must be *transparent*: a cached population and a fresh one fed
the same bias history must produce identical occupancy, and every cache
level must be dropped on ``reset`` / ``restore`` so stale rates can never
leak across state changes.  ``evolve_cycles`` must match the naive
evolve-in-a-loop reference within the acceptance budget of 1e-9 over at
least a thousand cycles.
"""

import numpy as np
import pytest

from repro.bti.traps import CyclePhase, TrapParameters, TrapPopulation
from repro.errors import ConfigurationError
from repro.obs import Tracer
from repro.units import celsius, hours


def make_population(seed=7, tracer=None, **kwargs) -> TrapPopulation:
    return TrapPopulation(
        TrapParameters(mean_trap_count=40.0),
        n_owners=4,
        rng=seed,
        tracer=tracer,
        **kwargs,
    )


STRESS_V = 1.2
RECOVER_V = -0.3
HOT = celsius(110.0)


class TestCacheTransparency:
    def test_cached_rates_match_uncached_reference(self):
        pop = make_population()
        for duty, relax in ((1.0, 0.0), (0.5, 0.0), (0.25, -0.3)):
            capture, emission = pop._effective_rates(STRESS_V, HOT, duty, relax)
            # Reference: duty-average the uncached per-trap rate path.
            v = np.full(pop.n_traps, STRESS_V)
            ref_c, ref_e = pop._rates(v, HOT)
            if duty < 1.0:
                sup = pop.params.ac_capture_suppression ** (1.0 - duty)
                off_c, off_e = pop._rates(np.full(pop.n_traps, relax), HOT)
                ref_c = duty * sup * ref_c + (1.0 - duty) * off_c
                ref_e = duty * ref_e + (1.0 - duty) * off_e
            np.testing.assert_allclose(capture, ref_c, rtol=1e-12)
            np.testing.assert_allclose(emission, ref_e, rtol=1e-12)

    def test_cached_population_evolves_identically_to_fresh(self):
        cached = make_population(seed=3)
        history = [
            (hours(1.0), STRESS_V, HOT, 1.0, 0.0),
            (hours(0.5), RECOVER_V, HOT, 1.0, 0.0),
            (hours(1.0), STRESS_V, HOT, 0.5, 0.0),
            (hours(1.0), STRESS_V, HOT, 1.0, 0.0),  # repeat: cache hit path
        ]
        for args in history:
            cached.evolve(*args)
        fresh = make_population(seed=3, rate_cache_size=1)
        for args in history:
            fresh.evolve(*args)
        np.testing.assert_array_equal(cached.occupancy, fresh.occupancy)

    def test_repeated_bias_hits_the_full_cache(self):
        tracer = Tracer()
        pop = make_population(tracer=tracer)
        for _ in range(5):
            pop.evolve(hours(1.0), STRESS_V, HOT)
        assert tracer.metrics.value("bti.rate_cache.misses") == 1.0
        assert tracer.metrics.value("bti.rate_cache.hits") == 4.0

    def test_new_temperature_is_a_partial_hit(self):
        tracer = Tracer()
        pop = make_population(tracer=tracer)
        pop.evolve(hours(1.0), STRESS_V, HOT)
        pop.evolve(hours(1.0), STRESS_V, celsius(100.0))
        assert tracer.metrics.value("bti.rate_cache.misses") == 1.0
        assert tracer.metrics.value("bti.rate_cache.partial_hits") == 1.0

    def test_cache_is_bounded(self):
        pop = make_population(rate_cache_size=4)
        for i in range(20):
            pop.evolve(60.0, 1.0 + 0.01 * i, HOT)
        assert pop.rate_cache_entries <= 3 * 4


class TestCacheInvalidation:
    """The stale-cache class: state changes must drop every cache level."""

    def test_reset_clears_the_cache(self):
        pop = make_population()
        pop.evolve(hours(1.0), STRESS_V, HOT)
        assert pop.rate_cache_entries > 0
        pop.reset()
        assert pop.rate_cache_entries == 0

    def test_restore_clears_the_cache(self):
        pop = make_population()
        state = pop.snapshot()
        pop.evolve(hours(1.0), STRESS_V, HOT)
        assert pop.rate_cache_entries > 0
        pop.restore(state)
        assert pop.rate_cache_entries == 0

    def test_snapshot_restore_replay_is_exact_despite_caching(self):
        pop = make_population(seed=11)
        pop.evolve(hours(2.0), STRESS_V, HOT)
        state = pop.snapshot()
        mid = pop.occupancy.copy()
        pop.evolve(hours(4.0), RECOVER_V, HOT)
        pop.restore(state)
        np.testing.assert_array_equal(pop.occupancy, mid)
        pop.evolve(hours(4.0), RECOVER_V, HOT)
        end_a = pop.occupancy.copy()
        pop.restore(state)
        pop.evolve(hours(4.0), RECOVER_V, HOT)
        np.testing.assert_array_equal(pop.occupancy, end_a)


class TestEvolveCycles:
    def phases(self):
        return (
            CyclePhase(duration=hours(1.0), stress_voltage=STRESS_V,
                       temperature=HOT, duty=0.5, relax_voltage=0.0),
            CyclePhase(duration=hours(0.25), stress_voltage=RECOVER_V,
                       temperature=HOT),
        )

    def test_matches_naive_loop_over_1000_cycles(self):
        n = 1000
        closed = make_population(seed=9)
        closed.evolve_cycles(self.phases(), n)
        naive = make_population(seed=9)
        for _ in range(n):
            for phase in self.phases():
                naive.evolve(phase.duration, phase.stress_voltage,
                             phase.temperature, phase.duty, phase.relax_voltage)
        np.testing.assert_allclose(
            closed.occupancy, naive.occupancy, rtol=1e-9, atol=1e-12
        )
        assert closed.elapsed == pytest.approx(naive.elapsed, rel=1e-12)

    def test_matches_loop_from_stressed_state(self):
        closed = make_population(seed=4)
        closed.evolve(hours(24.0), STRESS_V, HOT)
        naive = make_population(seed=4)
        naive.evolve(hours(24.0), STRESS_V, HOT)
        closed.evolve_cycles(self.phases(), 64)
        for _ in range(64):
            for phase in self.phases():
                naive.evolve(phase.duration, phase.stress_voltage,
                             phase.temperature, phase.duty, phase.relax_voltage)
        np.testing.assert_allclose(
            closed.occupancy, naive.occupancy, rtol=1e-9, atol=1e-12
        )

    def test_zero_cycles_is_a_noop(self):
        pop = make_population()
        before = pop.occupancy.copy()
        pop.evolve_cycles(self.phases(), 0)
        np.testing.assert_array_equal(pop.occupancy, before)
        assert pop.elapsed == 0.0

    def test_zero_duration_phases_are_skipped(self):
        pop = make_population(seed=2)
        ref = make_population(seed=2)
        padded = (CyclePhase(duration=0.0, stress_voltage=0.0, temperature=HOT),
                  *self.phases())
        pop.evolve_cycles(padded, 10)
        ref.evolve_cycles(self.phases(), 10)
        np.testing.assert_array_equal(pop.occupancy, ref.occupancy)

    def test_counts_compressed_cycles(self):
        tracer = Tracer()
        pop = make_population(tracer=tracer)
        pop.evolve_cycles(self.phases(), 250)
        assert tracer.metrics.value("bti.cycles_compressed") == 250.0

    def test_rejects_bad_inputs(self):
        pop = make_population()
        with pytest.raises(ConfigurationError):
            pop.evolve_cycles(self.phases(), -1)
        with pytest.raises(ConfigurationError):
            pop.evolve_cycles((), 5)
        with pytest.raises(ConfigurationError):
            CyclePhase(duration=-1.0, stress_voltage=1.2, temperature=HOT)
        with pytest.raises(ConfigurationError):
            CyclePhase(duration=1.0, stress_voltage=1.2, temperature=HOT, duty=1.5)

"""Arrhenius and field acceleration factors."""

import numpy as np
import pytest

from repro.bti.acceleration import arrhenius_factor, field_factor
from repro.errors import ConfigurationError
from repro.units import celsius


class TestArrhenius:
    def test_unity_at_reference(self):
        t = celsius(20.0)
        assert arrhenius_factor(0.6, t, t) == pytest.approx(1.0)

    def test_speeds_up_above_reference(self):
        assert arrhenius_factor(0.6, celsius(110.0), celsius(20.0)) > 1.0

    def test_slows_down_below_reference(self):
        assert arrhenius_factor(0.6, celsius(-20.0), celsius(20.0)) < 1.0

    def test_zero_activation_energy_is_temperature_independent(self):
        assert arrhenius_factor(0.0, celsius(110.0), celsius(20.0)) == pytest.approx(1.0)

    def test_multiplicative_composition(self):
        # AF(T1 -> T3) = AF(T1 -> T2) * AF(T2 -> T3)
        ea = 0.45
        t1, t2, t3 = celsius(20.0), celsius(60.0), celsius(110.0)
        direct = arrhenius_factor(ea, t3, t1)
        composed = arrhenius_factor(ea, t2, t1) * arrhenius_factor(ea, t3, t2)
        assert direct == pytest.approx(composed)

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ConfigurationError):
            arrhenius_factor(0.5, -1.0, celsius(20.0))

    def test_known_value(self):
        # Ea = 0.6 eV from 293.15 K to 383.15 K: exp(0.6/k * (1/293.15 - 1/383.15))
        expected = np.exp((0.6 / 8.617333262e-5) * (1 / 293.15 - 1 / 383.15))
        assert arrhenius_factor(0.6, celsius(110.0), celsius(20.0)) == pytest.approx(
            expected, rel=1e-9
        )


class TestFieldFactor:
    def test_unity_at_reference(self):
        assert field_factor(5.0, 1.2, 1.2) == pytest.approx(1.0)

    def test_exponential_in_overdrive(self):
        assert field_factor(5.0, 1.4, 1.2) == pytest.approx(np.exp(1.0))

    def test_negative_overdrive_suppresses(self):
        assert field_factor(5.0, 0.0, 1.2) < 1e-2

    def test_negative_gamma_inverts_direction(self):
        # Emission uses a negative effective gamma: reverse bias accelerates.
        assert field_factor(-8.2, -0.3, 0.0) == pytest.approx(np.exp(8.2 * 0.3))


class TestExtremeConditions:
    """Overflow/underflow audit: extremes saturate, they never go inf/NaN."""

    def test_near_zero_kelvin_saturates_finite(self):
        # 1e-6 K drives |Ea|/kT to ~1e10 — raw exp would overflow to inf.
        hot = arrhenius_factor(0.9, 1e-6, celsius(110.0))
        assert hot == 0.0  # positive-Ea process frozen out, exact limit
        cold_reference = arrhenius_factor(0.9, celsius(110.0), 1e-6)
        assert np.isfinite(cold_reference)
        assert cold_reference > 0.0

    def test_negative_ea_near_zero_kelvin_saturates(self):
        factor = arrhenius_factor(-0.9, 1e-6, celsius(110.0))
        assert np.isfinite(factor)

    def test_extreme_overdrive_field_factor_is_finite(self):
        assert np.isfinite(field_factor(5.0, 1e4, 1.2))
        assert field_factor(5.0, -1e4, 1.2) == 0.0

    def test_monotonic_through_the_saturation_knee(self):
        # Saturation must clamp, not fold back below earlier values.
        temps = [1e-3, 1e-2, 1.0, 77.0, celsius(-40.0), celsius(110.0)]
        factors = [arrhenius_factor(0.9, celsius(110.0), t) for t in temps]
        assert all(np.isfinite(f) for f in factors)
        assert factors == sorted(factors, reverse=True)

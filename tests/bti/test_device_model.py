"""Single-device aging wrapper."""

import numpy as np
import pytest

from repro.bti.conditions import BiasCondition, BiasPhase, StressPolarity, Waveform
from repro.bti.device_model import DeviceAgingModel
from repro.bti.traps import TrapParameters
from repro.units import hours

STRESS = BiasCondition.at_celsius(1.2, 110.0)
RECOVER = BiasCondition.at_celsius(-0.3, 110.0)


def make_device(seed=3) -> DeviceAgingModel:
    return DeviceAgingModel(TrapParameters(mean_trap_count=30.0), rng=seed)


class TestDeviceAgingModel:
    def test_fresh_device_unshifted(self):
        assert make_device().delta_vth == 0.0

    def test_stress_then_recover(self):
        device = make_device()
        peak = device.stress(hours(24.0), STRESS)
        assert peak > 0.0
        residual = device.recover(hours(6.0), RECOVER)
        assert 0.0 <= residual < peak

    def test_default_polarity_nbti(self):
        assert make_device().polarity is StressPolarity.NBTI

    def test_run_schedule_returns_per_phase_shifts(self):
        device = make_device()
        phases = [
            BiasPhase(duration=hours(24.0), bias=STRESS),
            BiasPhase(duration=hours(6.0), bias=RECOVER),
        ]
        shifts = device.run_schedule(phases)
        assert shifts.shape == (2,)
        assert shifts[0] > shifts[1]

    def test_trajectory_times_and_monotonic_stress(self):
        device = make_device()
        phase = BiasPhase(duration=hours(10.0), bias=STRESS)
        times, shifts = device.trajectory(phase, n_samples=10)
        assert times[-1] == pytest.approx(hours(10.0))
        assert np.all(np.diff(shifts) >= -1e-15)

    def test_trajectory_matches_single_phase_endpoint(self):
        direct = make_device(seed=8)
        sampled = make_device(seed=8)
        phase = BiasPhase(duration=hours(10.0), bias=STRESS)
        direct.stress(hours(10.0), STRESS)
        __, shifts = sampled.trajectory(phase, n_samples=7)
        assert shifts[-1] == pytest.approx(direct.delta_vth, rel=1e-9)

    def test_ac_waveform_ages_less(self):
        dc = make_device(seed=5)
        ac = make_device(seed=5)
        dc.stress(hours(24.0), STRESS)
        ac.stress(hours(24.0), STRESS, waveform=Waveform(duty=0.5))
        assert ac.delta_vth < dc.delta_vth

    def test_reset(self):
        device = make_device()
        device.stress(hours(24.0), STRESS)
        device.reset()
        assert device.delta_vth == 0.0
        assert device.elapsed == 0.0

    def test_elapsed_tracks_all_phases(self):
        device = make_device()
        device.stress(hours(2.0), STRESS)
        device.recover(hours(1.0), RECOVER)
        assert device.elapsed == pytest.approx(hours(3.0))

"""Reaction-diffusion baseline model."""

import numpy as np
import pytest

from repro.bti.rd_model import ReactionDiffusionModel
from repro.errors import ConfigurationError
from repro.units import celsius, hours


class TestReactionDiffusion:
    def test_power_law_exponent(self):
        model = ReactionDiffusionModel(exponent=1.0 / 6.0)
        v, t = 1.2, celsius(110.0)
        ratio = model.stress_shift(64.0, v, t) / model.stress_shift(1.0, v, t)
        assert ratio == pytest.approx(2.0)  # 64^(1/6) = 2

    def test_acceleration_with_temperature_and_voltage(self):
        model = ReactionDiffusionModel()
        base = model.acceleration(1.2, celsius(20.0))
        assert model.acceleration(1.2, celsius(110.0)) > base
        assert model.acceleration(1.3, celsius(20.0)) > base

    def test_recovery_square_root_form(self):
        model = ReactionDiffusionModel(xi=0.5)
        t1 = hours(24.0)
        residual = model.recovery_shift(1.0, t1, t1)
        assert residual == pytest.approx(1.0 - np.sqrt(0.25))

    def test_recovery_floors_at_zero(self):
        model = ReactionDiffusionModel(xi=1.0)
        residual = model.recovery_shift(1.0, 1.0, 1e12)
        assert residual >= 0.0

    def test_recovery_monotone_decreasing(self):
        model = ReactionDiffusionModel()
        times = np.linspace(1.0, hours(6.0), 30)
        residuals = np.asarray(model.recovery_shift(2.0, hours(24.0), times))
        assert np.all(np.diff(residuals) <= 0.0)

    def test_effective_stress_time_inverts(self):
        model = ReactionDiffusionModel()
        v, t = 1.2, celsius(110.0)
        shift = model.stress_shift(hours(5.0), v, t)
        assert model.effective_stress_time(shift, v, t) == pytest.approx(
            hours(5.0), rel=1e-9
        )

    def test_effective_stress_time_zero_for_zero_shift(self):
        model = ReactionDiffusionModel()
        assert model.effective_stress_time(0.0, 1.2, celsius(20.0)) == 0.0

    @pytest.mark.parametrize("kwargs", [dict(exponent=0.0), dict(exponent=1.0), dict(xi=0.0)])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            ReactionDiffusionModel(**kwargs)

    def test_recovery_requires_positive_stress_time(self):
        with pytest.raises(ConfigurationError):
            ReactionDiffusionModel().recovery_shift(1.0, 0.0, 10.0)

    def test_rd_vs_td_shape_difference(self):
        # RD's t^(1/6) keeps accelerating in log-time less than the TD log
        # law saturates: over one decade the RD curve grows by a constant
        # *factor* while the TD curve grows by a constant *amount*.
        model = ReactionDiffusionModel()
        v, t = 1.2, celsius(110.0)
        r1 = model.stress_shift(1e4, v, t) / model.stress_shift(1e3, v, t)
        r2 = model.stress_shift(1e5, v, t) / model.stress_shift(1e4, v, t)
        assert r1 == pytest.approx(r2, rel=1e-9)  # scale-free power law

"""CET maps and recovery spectroscopy."""

import numpy as np
import pytest

from repro.bti.cet import (
    cet_map,
    emission_spectrum,
    occupied_emission_histogram,
)
from repro.bti.conditions import BiasCondition
from repro.bti.traps import TrapParameters, TrapPopulation
from repro.errors import ConfigurationError
from repro.units import celsius, hours

STRESS = BiasCondition.at_celsius(1.2, 110.0)
RECOVER = BiasCondition.at_celsius(-0.3, 110.0)


def make_population(seed=4, traps=200.0) -> TrapPopulation:
    return TrapPopulation(TrapParameters(mean_trap_count=traps), n_owners=1, rng=seed)


class TestCetMap:
    def test_total_impact_matches_population(self):
        population = make_population()
        result = cet_map(population, STRESS)
        assert result.total_impact == pytest.approx(float(population.impact.sum()))

    def test_marginal_shapes(self):
        result = cet_map(make_population(), STRESS, n_bins=16)
        assert result.density.shape == (16, 16)
        assert result.marginal_emission().shape == (16,)

    def test_stress_shifts_capture_left(self):
        # Under stress acceleration the effective capture times are far
        # shorter than at recovery bias: the capture marginal moves left.
        population = make_population()
        stressed = cet_map(population, STRESS)
        recovering = cet_map(population, RECOVER)
        centers = 0.5 * (stressed.capture_edges[:-1] + stressed.capture_edges[1:])
        mean_stress = np.average(centers, weights=stressed.density.sum(axis=1) + 1e-30)
        mean_recover = np.average(centers, weights=recovering.density.sum(axis=1) + 1e-30)
        assert mean_stress < mean_recover

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cet_map(make_population(), STRESS, n_bins=1)
        with pytest.raises(ConfigurationError):
            cet_map(make_population(), STRESS, bounds_decades=(5.0, 5.0))


class TestEmissionSpectrum:
    def test_spectrum_from_simulated_recovery(self):
        population = make_population(traps=400.0)
        population.evolve(hours(24.0), 1.2, celsius(110.0))
        peak = population.delta_vth()[0]
        times, recovered = [], []
        t = 0.0
        for step in np.diff(np.logspace(0, np.log10(hours(6.0)), 30), prepend=0.0):
            population.evolve(float(step), -0.3, celsius(110.0))
            t += float(step)
            times.append(t)
            recovered.append(peak - population.delta_vth()[0])
        spectrum = emission_spectrum(np.array(times), np.array(recovered))
        # Emission density is non-negative everywhere (recovery only).
        assert np.all(spectrum.density >= -1e-12)
        # Total spectral mass equals total recovery over the window.
        total = np.sum(spectrum.density * np.diff(np.log10(np.array(times))))
        assert total == pytest.approx(recovered[-1] - recovered[0], rel=1e-6)

    def test_oracle_histogram_agrees_with_spectrum_mass(self):
        population = make_population(traps=400.0)
        population.evolve(hours(24.0), 1.2, celsius(110.0))
        edges = np.array([0.0, 2.0, 4.0])
        histogram = occupied_emission_histogram(population, RECOVER, edges)
        # Recover long enough to drain those bins and compare.
        peak = population.delta_vth()[0]
        population.evolve(10.0**4.0, -0.3, celsius(110.0))
        recovered = peak - population.delta_vth()[0]
        assert recovered == pytest.approx(histogram.sum(), rel=0.35)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            emission_spectrum([1.0, 2.0], [0.0, 0.1])
        with pytest.raises(ConfigurationError):
            emission_spectrum([1.0, 2.0, 3.0], [0.0, 0.1])
        with pytest.raises(ConfigurationError):
            occupied_emission_histogram(make_population(), RECOVER, np.array([1.0]))

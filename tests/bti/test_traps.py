"""Trap ensemble: construction, exact evolution, invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bti.conditions import BiasCondition, BiasPhase, Waveform
from repro.bti.traps import TrapParameters, TrapPopulation
from repro.errors import ConfigurationError
from repro.units import celsius, hours


def small_params(**overrides) -> TrapParameters:
    defaults = dict(mean_trap_count=20.0)
    defaults.update(overrides)
    return TrapParameters(**defaults)


def make_population(n_owners=3, seed=7, **param_overrides) -> TrapPopulation:
    return TrapPopulation(small_params(**param_overrides), n_owners=n_owners, rng=seed)


STRESS = BiasCondition.at_celsius(1.2, 110.0)


class TestConstruction:
    def test_owner_assignment_covers_all_owners_statistically(self):
        pop = TrapPopulation(small_params(mean_trap_count=50.0), n_owners=20, rng=0)
        assert set(np.unique(pop.owner)) == set(range(20))

    def test_deterministic_under_seed(self):
        a = make_population(seed=42)
        b = make_population(seed=42)
        np.testing.assert_array_equal(a.tau_c0, b.tau_c0)
        np.testing.assert_array_equal(a.impact, b.impact)

    def test_different_seeds_differ(self):
        a = make_population(seed=1)
        b = make_population(seed=2)
        assert a.n_traps != b.n_traps or not np.array_equal(a.tau_c0, b.tau_c0)

    def test_tau_within_bounds(self):
        pop = make_population()
        lo, hi = pop.params.tau_capture_bounds
        assert np.all(pop.tau_c0 >= lo) and np.all(pop.tau_c0 <= hi)
        lo, hi = pop.params.tau_emission_bounds
        assert np.all(pop.tau_e0 >= lo) and np.all(pop.tau_e0 <= hi)

    def test_fresh_population_has_zero_shift(self):
        pop = make_population()
        assert np.all(pop.delta_vth() == 0.0)

    def test_rejects_nonpositive_owner_count(self):
        with pytest.raises(ConfigurationError):
            TrapPopulation(small_params(), n_owners=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mean_trap_count=0.0),
            dict(tau_capture_bounds=(0.0, 1.0)),
            dict(tau_emission_bounds=(10.0, 1.0)),
            dict(impact_mean_volts=-1e-3),
            dict(ac_capture_suppression=0.0),
            dict(ac_capture_suppression=1.5),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            small_params(**kwargs)


class TestEvolution:
    def test_stress_increases_shift(self):
        pop = make_population()
        pop.evolve(hours(24.0), 1.2, celsius(110.0))
        assert np.all(pop.delta_vth() >= 0.0)
        assert pop.delta_vth().sum() > 0.0

    def test_zero_duration_is_identity(self):
        pop = make_population()
        pop.evolve(hours(1.0), 1.2, celsius(110.0))
        before = pop.delta_vth().copy()
        pop.evolve(0.0, 1.2, celsius(110.0))
        np.testing.assert_array_equal(pop.delta_vth(), before)

    def test_composition_exactness(self):
        # The closed-form update composes exactly: one 24 h phase equals
        # 24 one-hour phases under identical conditions.
        one = make_population(seed=11)
        many = make_population(seed=11)
        one.evolve(hours(24.0), 1.2, celsius(110.0))
        for _ in range(24):
            many.evolve(hours(1.0), 1.2, celsius(110.0))
        np.testing.assert_allclose(one.delta_vth(), many.delta_vth(), rtol=1e-10)

    def test_hotter_stress_ages_more(self):
        cold = make_population(seed=5)
        hot = make_population(seed=5)
        cold.evolve(hours(24.0), 1.2, celsius(100.0))
        hot.evolve(hours(24.0), 1.2, celsius(110.0))
        assert hot.delta_vth().sum() > cold.delta_vth().sum()

    def test_recovery_reduces_shift(self):
        pop = make_population()
        pop.evolve(hours(24.0), 1.2, celsius(110.0))
        peak = pop.delta_vth().sum()
        pop.evolve(hours(6.0), -0.3, celsius(110.0))
        assert pop.delta_vth().sum() < peak

    def test_negative_voltage_recovers_faster_than_zero(self):
        passive = make_population(seed=3)
        active = make_population(seed=3)
        for pop in (passive, active):
            pop.evolve(hours(24.0), 1.2, celsius(110.0))
        passive.evolve(hours(6.0), 0.0, celsius(20.0))
        active.evolve(hours(6.0), -0.3, celsius(20.0))
        assert active.delta_vth().sum() < passive.delta_vth().sum()

    def test_hot_recovery_faster_than_cold(self):
        cold = make_population(seed=3)
        hot = make_population(seed=3)
        for pop in (cold, hot):
            pop.evolve(hours(24.0), 1.2, celsius(110.0))
        cold.evolve(hours(6.0), 0.0, celsius(20.0))
        hot.evolve(hours(6.0), 0.0, celsius(110.0))
        assert hot.delta_vth().sum() < cold.delta_vth().sum()

    def test_per_owner_voltages(self):
        pop = make_population(n_owners=2, seed=9)
        voltages = np.array([1.2, 0.0])
        pop.evolve(hours(24.0), voltages, celsius(110.0))
        shifts = pop.delta_vth()
        assert shifts[0] > 10.0 * max(shifts[1], 1e-12)

    def test_duty_cycled_ages_less_than_dc(self):
        dc = make_population(seed=13)
        ac = make_population(seed=13)
        dc.evolve(hours(24.0), 1.2, celsius(110.0))
        ac.evolve(hours(24.0), 1.2, celsius(110.0), duty=0.5, relax_voltage=0.0)
        assert ac.delta_vth().sum() < dc.delta_vth().sum()

    def test_wrong_voltage_vector_shape_rejected(self):
        pop = make_population(n_owners=3)
        with pytest.raises(ConfigurationError):
            pop.evolve(1.0, np.array([1.2, 1.2]), celsius(20.0))

    def test_negative_duration_rejected(self):
        pop = make_population()
        with pytest.raises(ConfigurationError):
            pop.evolve(-1.0, 1.2, celsius(20.0))

    def test_elapsed_accumulates(self):
        pop = make_population()
        pop.evolve(100.0, 1.2, celsius(20.0))
        pop.evolve(50.0, 0.0, celsius(20.0))
        assert pop.elapsed == pytest.approx(150.0)


class TestPhaseApi:
    def test_evolve_phase_with_stress_mask(self):
        pop = make_population(n_owners=4, seed=21)
        phase = BiasPhase(duration=hours(24.0), bias=STRESS)
        mask = np.array([True, False, True, False])
        pop.evolve_phase(phase, stress_mask=mask)
        shifts = pop.delta_vth()
        assert shifts[0] > shifts[1] and shifts[2] > shifts[3]

    def test_evolve_phase_without_mask_stresses_everyone(self):
        pop = make_population(n_owners=2, seed=21)
        pop.evolve_phase(BiasPhase(duration=hours(24.0), bias=STRESS))
        assert np.all(pop.delta_vth() > 0.0)

    def test_mask_shape_checked(self):
        pop = make_population(n_owners=4)
        phase = BiasPhase(duration=1.0, bias=STRESS)
        with pytest.raises(ConfigurationError):
            pop.evolve_phase(phase, stress_mask=np.array([True, False]))

    def test_waveform_duty_applied(self):
        dc = make_population(seed=31)
        ac = make_population(seed=31)
        dc.evolve_phase(BiasPhase(duration=hours(24.0), bias=STRESS))
        ac.evolve_phase(
            BiasPhase(duration=hours(24.0), bias=STRESS, waveform=Waveform(duty=0.5))
        )
        assert ac.delta_vth().sum() < dc.delta_vth().sum()


class TestObservables:
    def test_sample_delta_vth_mean_converges(self):
        pop = make_population(n_owners=1, seed=17, mean_trap_count=200.0)
        pop.evolve(hours(24.0), 1.2, celsius(110.0))
        expected = pop.delta_vth()[0]
        rng = np.random.default_rng(0)
        samples = [pop.sample_delta_vth(rng)[0] for _ in range(300)]
        assert np.mean(samples) == pytest.approx(expected, rel=0.1)

    def test_equilibrium_shift_bounds_long_stress(self):
        pop = make_population(seed=19)
        equilibrium = pop.equilibrium_delta_vth(STRESS)
        pop.evolve(hours(1000.0), STRESS.stress_voltage, STRESS.temperature)
        assert np.all(pop.delta_vth() <= equilibrium + 1e-12)

    def test_occupancy_view_readonly(self):
        pop = make_population()
        with pytest.raises(ValueError):
            pop.occupancy[0] = 0.5


class TestStateManagement:
    def test_reset_restores_fresh(self):
        pop = make_population()
        pop.evolve(hours(24.0), 1.2, celsius(110.0))
        pop.reset()
        assert np.all(pop.delta_vth() == 0.0)
        assert pop.elapsed == 0.0

    def test_snapshot_restore_roundtrip(self):
        pop = make_population()
        pop.evolve(hours(24.0), 1.2, celsius(110.0))
        state = pop.snapshot()
        mid = pop.delta_vth().copy()
        pop.evolve(hours(6.0), -0.3, celsius(110.0))
        pop.restore(state)
        np.testing.assert_array_equal(pop.delta_vth(), mid)

    def test_snapshot_is_isolated_from_future_evolution(self):
        pop = make_population()
        state = pop.snapshot()
        pop.evolve(hours(24.0), 1.2, celsius(110.0))
        assert np.all(state.occupancy == 0.0)

    def test_restore_rejects_foreign_snapshot(self):
        a = make_population(seed=1)
        b = make_population(seed=2)
        if a.n_traps == b.n_traps:
            pytest.skip("populations coincidentally equal-sized")
        with pytest.raises(ConfigurationError):
            a.restore(b.snapshot())


class TestOccupancyInvariants:
    """Property-based invariants of the exact occupancy update."""

    @given(
        duration=st.floats(min_value=1.0, max_value=1e7),
        voltage=st.floats(min_value=-0.6, max_value=1.32),
        temp_c=st.floats(min_value=-40.0, max_value=125.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_occupancy_stays_in_unit_interval(self, duration, voltage, temp_c):
        pop = make_population(seed=99)
        pop.evolve(duration, voltage, celsius(temp_c))
        assert np.all(pop.occupancy >= 0.0)
        assert np.all(pop.occupancy <= 1.0)

    @given(
        d1=st.floats(min_value=1.0, max_value=1e5),
        d2=st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=25, deadline=None)
    def test_split_phase_equals_joined_phase(self, d1, d2):
        joined = make_population(seed=55)
        split = make_population(seed=55)
        joined.evolve(d1 + d2, 1.2, celsius(110.0))
        split.evolve(d1, 1.2, celsius(110.0))
        split.evolve(d2, 1.2, celsius(110.0))
        np.testing.assert_allclose(joined.occupancy, split.occupancy, rtol=1e-9, atol=1e-12)

    @given(duration=st.floats(min_value=10.0, max_value=1e6))
    @settings(max_examples=25, deadline=None)
    def test_stress_monotonic_in_time(self, duration):
        shorter = make_population(seed=77)
        longer = make_population(seed=77)
        shorter.evolve(duration, 1.2, celsius(110.0))
        longer.evolve(duration * 2.0, 1.2, celsius(110.0))
        assert longer.delta_vth().sum() >= shorter.delta_vth().sum() - 1e-15

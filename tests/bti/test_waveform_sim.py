"""Explicit toggled waveform vs duty-averaged rates (consistency ablation)."""

import pytest

from repro.bti.traps import TrapParameters, TrapPopulation
from repro.bti.waveform_sim import compare_toggled_vs_averaged, simulate_toggled
from repro.errors import ConfigurationError
from repro.units import celsius, hours


def pure_rate_factory(seed=5):
    """Populations with the empirical AC correction disabled."""
    params = TrapParameters(mean_trap_count=25.0, ac_capture_suppression=1.0)

    def make() -> TrapPopulation:
        return TrapPopulation(params, n_owners=3, rng=seed)

    return make


class TestConsistency:
    def test_fast_toggling_matches_averaging(self):
        # Toggle period (60 s) far below the effective trap constants at
        # this bias: the averaged model must agree closely.
        comparison = compare_toggled_vs_averaged(
            pure_rate_factory(),
            duration=hours(6.0),
            toggle_period=60.0,
            stress_voltage=1.2,
            relax_voltage=0.0,
            temperature=celsius(110.0),
        )
        assert comparison.max_relative_error < 0.02

    def test_agreement_improves_with_faster_toggling(self):
        slow = compare_toggled_vs_averaged(
            pure_rate_factory(),
            duration=hours(6.0),
            toggle_period=hours(1.0),
            stress_voltage=1.2,
            relax_voltage=0.0,
            temperature=celsius(110.0),
        )
        fast = compare_toggled_vs_averaged(
            pure_rate_factory(),
            duration=hours(6.0),
            toggle_period=60.0,
            stress_voltage=1.2,
            relax_voltage=0.0,
            temperature=celsius(110.0),
        )
        assert fast.max_relative_error <= slow.max_relative_error

    def test_asymmetric_duty(self):
        comparison = compare_toggled_vs_averaged(
            pure_rate_factory(),
            duration=hours(4.0),
            toggle_period=30.0,
            stress_voltage=1.2,
            relax_voltage=0.0,
            temperature=celsius(110.0),
            duty=0.25,
        )
        assert comparison.max_relative_error < 0.03

    def test_default_model_suppression_is_visible(self):
        # With the empirical correction enabled (default 0.01) the
        # averaged model deliberately ages LESS than pure rate toggling.
        params = TrapParameters(mean_trap_count=25.0)

        def make() -> TrapPopulation:
            return TrapPopulation(params, n_owners=3, rng=7)

        comparison = compare_toggled_vs_averaged(
            make,
            duration=hours(6.0),
            toggle_period=60.0,
            stress_voltage=1.2,
            relax_voltage=0.0,
            temperature=celsius(110.0),
        )
        assert comparison.averaged_shift.sum() < comparison.explicit_shift.sum()


class TestDutyFactorCurve:
    def test_monotone_and_endpoints(self):
        from repro.bti.waveform_sim import duty_factor_curve

        factory = pure_rate_factory(seed=9)
        curve = duty_factor_curve(
            factory,
            duration=hours(12.0),
            stress_voltage=1.2,
            temperature=celsius(110.0),
            duties=(0.0, 0.5, 1.0),
        )
        assert curve[0.0] <= curve[0.5] <= curve[1.0]
        assert curve[0.0] < 0.05 * curve[1.0]

    def test_validation(self):
        from repro.bti.waveform_sim import duty_factor_curve

        factory = pure_rate_factory()
        with pytest.raises(ConfigurationError):
            duty_factor_curve(factory, 0.0, 1.2, celsius(110.0))
        with pytest.raises(ConfigurationError):
            duty_factor_curve(factory, 10.0, 1.2, celsius(110.0), duties=(1.5,))


class TestSimulateToggled:
    def test_elapsed_time_accounted(self):
        population = pure_rate_factory()()
        simulate_toggled(population, 600.0, 60.0, 1.2, 0.0, celsius(110.0))
        assert population.elapsed == pytest.approx(600.0)

    def test_validation(self):
        population = pure_rate_factory()()
        with pytest.raises(ConfigurationError):
            simulate_toggled(population, 0.0, 1.0, 1.2, 0.0, celsius(110.0))
        with pytest.raises(ConfigurationError):
            simulate_toggled(population, 10.0, 60.0, 1.2, 0.0, celsius(110.0))
        with pytest.raises(ConfigurationError):
            simulate_toggled(population, 60.0, 10.0, 1.2, 0.0, celsius(110.0), duty=1.0)

"""The paper's first-order closed forms (Eqs. 1-4, 10-12)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bti.firstorder import (
    FirstOrderBtiModel,
    FirstOrderDelayModel,
    PhysicsScaling,
    RecoveryParameters,
    StressParameters,
)
from repro.errors import ConfigurationError
from repro.units import celsius, hours


def make_model() -> FirstOrderBtiModel:
    return FirstOrderBtiModel(
        stress=StressParameters(prefactor=2.4e-3, offset_a=0.05, rate_c=2.0e-4),
        recovery=RecoveryParameters(
            prefactor=1.5e-4, offset_a=0.05, rate_c=2.0e-4, k1=0.9, k2=1.6
        ),
    )


class TestStressParameters:
    def test_shift_grows_logarithmically(self):
        p = StressParameters(prefactor=1.0, offset_a=0.0, rate_c=1.0)
        # For C*t >> 1, shift(10t) - shift(t) ~ log(10).
        gap = p.shift(1e6) - p.shift(1e5)
        assert gap == pytest.approx(np.log(10.0), rel=1e-3)

    def test_scalar_and_array_evaluation(self):
        p = StressParameters(prefactor=1.0, offset_a=0.1, rate_c=1e-4)
        scalar = p.shift(3600.0)
        array = p.shift(np.array([3600.0, 7200.0]))
        assert isinstance(scalar, float)
        assert array.shape == (2,)
        assert array[0] == pytest.approx(scalar)

    def test_effective_stress_time_inverts_shift(self):
        p = StressParameters(prefactor=2.0e-3, offset_a=0.05, rate_c=2e-4)
        t = hours(7.0)
        shift = float(np.asarray(p.shift(t)))
        assert p.effective_stress_time(shift) == pytest.approx(t, rel=1e-9)

    def test_effective_stress_time_clamps_small_shifts(self):
        p = StressParameters(prefactor=1.0, offset_a=0.5, rate_c=1.0)
        assert p.effective_stress_time(0.0) == 0.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            StressParameters(prefactor=1.0, offset_a=0.0, rate_c=0.0)

    @given(t=st.floats(min_value=0.0, max_value=1e8))
    @settings(max_examples=50, deadline=None)
    def test_shift_monotone_nonnegative_prefactor(self, t):
        p = StressParameters(prefactor=1e-3, offset_a=0.1, rate_c=1e-4)
        assert p.shift(t + 100.0) >= p.shift(t)


class TestRecoveryParameters:
    def test_residual_decreases_with_time(self):
        model = make_model()
        t1 = hours(24.0)
        times = np.linspace(60.0, hours(6.0), 50)
        residuals = np.asarray(model.recovery_shift(t1, times))
        assert np.all(np.diff(residuals) <= 1e-12)

    def test_residual_below_peak(self):
        model = make_model()
        t1 = hours(24.0)
        peak = float(np.asarray(model.stress_shift(t1)))
        residual = model.recovery_shift(t1, hours(6.0))
        assert residual < peak

    def test_cannot_fully_recover(self):
        # The paper: "recovery is slower than degradation and dVth can't be
        # fully recovered" — even after very long sleeps a floor remains.
        model = make_model()
        residual = model.recovery_shift(hours(24.0), hours(10000.0))
        assert residual > 0.0

    def test_recovered_is_peak_minus_residual(self):
        model = make_model()
        t1, t2 = hours(24.0), hours(6.0)
        peak = float(np.asarray(model.stress_shift(t1)))
        assert model.recovered(t1, t2) == pytest.approx(
            peak - model.recovery_shift(t1, t2)
        )

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            RecoveryParameters(prefactor=1.0, offset_a=0.0, rate_c=1.0, k1=-0.1, k2=1.0)
        with pytest.raises(ConfigurationError):
            RecoveryParameters(prefactor=1.0, offset_a=0.0, rate_c=1.0, k1=0.1, k2=0.0)

    def test_recovery_starts_fast(self):
        # More than a proportional share of 6 h recovery lands in the
        # first 0.3 h — the paper's "recovery starts fast".
        model = make_model()
        t1 = hours(24.0)
        early = model.recovered(t1, hours(0.3))
        total = model.recovered(t1, hours(6.0))
        assert early / total > 0.3


class TestCycles:
    def test_simulate_cycles_shapes(self):
        model = make_model()
        peaks, troughs = model.simulate_cycles(hours(24.0), hours(6.0), n_cycles=5)
        assert peaks.shape == troughs.shape == (5,)

    def test_troughs_below_peaks(self):
        model = make_model()
        peaks, troughs = model.simulate_cycles(hours(24.0), hours(6.0), n_cycles=5)
        assert np.all(troughs < peaks)

    def test_residue_accumulates_but_decelerates(self):
        # Fig. 1's point: troughs rise cycle over cycle, ever more slowly.
        model = make_model()
        __, troughs = model.simulate_cycles(hours(24.0), hours(6.0), n_cycles=6)
        increments = np.diff(troughs)
        assert np.all(increments > 0.0)
        assert increments[-1] < increments[0]

    def test_rejects_nonpositive_cycles(self):
        with pytest.raises(ConfigurationError):
            make_model().simulate_cycles(1.0, 1.0, n_cycles=0)

    def test_is_monotonic_recovery_check(self):
        assert make_model().is_monotonic_recovery(hours(24.0), hours(6.0))


class TestPhysicsScaling:
    def test_prefactor_positive(self):
        scaling = PhysicsScaling(k_prefactor=1.0)
        assert scaling.prefactor(1.2, celsius(110.0)) > 0.0

    def test_voltage_monotonicity(self):
        scaling = PhysicsScaling(k_prefactor=1.0, b_field_ev_per_volt=0.05)
        t = celsius(110.0)
        assert scaling.prefactor(1.3, t) > scaling.prefactor(1.1, t)

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ConfigurationError):
            PhysicsScaling(k_prefactor=1.0).prefactor(1.2, -5.0)


class TestDelayModelAlias:
    def test_delay_model_is_bti_model(self):
        model = FirstOrderDelayModel(
            stress=StressParameters(prefactor=1e-9, offset_a=0.0, rate_c=1e-4),
            recovery=RecoveryParameters(
                prefactor=1e-10, offset_a=0.0, rate_c=1e-4, k1=0.9, k2=1.6
            ),
        )
        assert isinstance(model, FirstOrderBtiModel)
        assert model.stress_shift(hours(24.0)) > 0.0


class TestPhysicsScalingExtremes:
    """Regression: near-zero kelvin saturates instead of overflowing."""

    def test_near_zero_kelvin_is_finite(self):
        scaling = PhysicsScaling(k_prefactor=1.0, b_field_ev_per_volt=0.05)
        # Raw exp(bV/kT) alone overflows below ~0.02 K; the combined
        # exponent (bV - E0 < 0 here) underflows to 0.0 instead.
        assert scaling.prefactor(1.2, 1e-6) == 0.0

    def test_dominant_field_term_saturates_finite(self):
        scaling = PhysicsScaling(
            k_prefactor=1.0, e0_ev=0.01, b_field_ev_per_volt=0.5
        )
        value = scaling.prefactor(1.2, 1e-6)
        assert np.isfinite(value)
        assert value > 0.0

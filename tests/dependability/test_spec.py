"""Sweep spec: deterministic expansion and RPR105/RPR106 validation."""

import pytest

from repro.dependability import (
    LifetimeSettings,
    SweepSpec,
    demo_spec,
    validate_sweep_spec,
)
from repro.dependability.spec import AXIS_ORDER, MAX_CELLS
from repro.errors import ConfigurationError


def small_spec(**overrides) -> SweepSpec:
    defaults = dict(
        name="unit",
        n_chips=1,
        fault_rates=(0.0, 12.0),
        guard_modes=("clamp", "off"),
        alphas=(1.0, 4.0),
        seeds=(3,),
        lifetime=LifetimeSettings(enabled=False),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestExpansion:
    def test_grid_size_and_order(self):
        spec = small_spec()
        cells = spec.expand()
        assert len(cells) == spec.n_cells == 8
        assert [cell.index for cell in cells] == list(range(8))
        assert cells[0].cell_id == "cell-0000"
        # fault_rate is the outermost axis in AXIS_ORDER: the first half
        # of the grid is the 0.0 block, the second half the 12.0 block.
        assert AXIS_ORDER[0] == "fault_rate"
        assert all(cell.fault_rate == 0.0 for cell in cells[:4])
        assert all(cell.fault_rate == 12.0 for cell in cells[4:])

    def test_expansion_is_deterministic(self):
        first, second = small_spec().expand(), small_spec().expand()
        assert first == second
        assert [c.fault_seed for c in first] == [c.fault_seed for c in second]

    def test_fault_seeds_decorrelate_cells(self):
        cells = small_spec().expand()
        fault_seeds = {cell.fault_seed for cell in cells}
        assert len(fault_seeds) == len(cells)
        assert all(cell.fault_seed != cell.seed for cell in cells)

    def test_config_digest_distinguishes_cells(self):
        cells = small_spec().expand()
        assert len({cell.config_digest() for cell in cells}) == len(cells)

    def test_has_faults(self):
        cells = small_spec().expand()
        assert not cells[0].has_faults
        assert cells[-1].has_faults


class TestSerialisation:
    def test_round_trip_preserves_digest(self):
        spec = small_spec()
        again = SweepSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_from_json_lists_become_tuples(self):
        spec = SweepSpec.from_json('{"name": "j", "alphas": [1.0, 2.0]}')
        assert spec.alphas == (1.0, 2.0)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep spec keys"):
            SweepSpec.from_dict({"name": "x", "bogus": 1})

    def test_unknown_lifetime_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown lifetime keys"):
            SweepSpec.from_dict({"lifetime": {"budget": 0.1}})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            SweepSpec.from_json("{nope")

    def test_digest_tracks_axis_changes(self):
        assert small_spec().digest() != small_spec(alphas=(1.0, 2.0)).digest()


class TestValidation:
    def test_small_spec_and_demo_are_clean(self):
        assert validate_sweep_spec(small_spec()) == []
        assert validate_sweep_spec(demo_spec()) == []
        assert demo_spec().n_cells == 12

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(name=""), "non-empty slug"),
            (dict(name="no spaces"), "non-empty slug"),
            (dict(engine="gpu"), "unknown engine"),
            (dict(n_chips=0), "n_chips"),
            (dict(workers=0), "workers"),
            (dict(retries=0), "retries"),
            (dict(retry_backoff_s=-1.0), "retry_backoff_s"),
            (dict(guard_budget=-1), "guard_budget"),
            (dict(alphas=()), "is empty"),
            (dict(alphas=(1.0, 1.0)), "duplicate"),
            (dict(fault_rates=(-1.0,)), "fault rate"),
            (dict(dropout_probs=(1.5,)), "outside"),
            (dict(upset_probs=(-0.1,)), "outside"),
            (dict(guard_modes=("panic",)), "unknown guard mode"),
            (dict(alphas=(0.0,)), "alpha must be positive"),
            (dict(sleep_voltages=(0.3,)), "sleep voltage"),
            (dict(sleep_temperatures_c=(400.0,)), "chamber range"),
            (dict(seeds=(-1,)), "non-negative"),
        ],
    )
    def test_rpr_findings(self, overrides, fragment):
        findings = validate_sweep_spec(small_spec(**overrides))
        assert findings, f"expected a finding for {overrides}"
        assert any(fragment in f.message for f in findings)
        assert all(f.rule_id in ("RPR105", "RPR106") for f in findings)

    def test_grid_bound(self):
        spec = small_spec(seeds=tuple(range(MAX_CELLS // 8 + 1)))
        findings = validate_sweep_spec(spec)
        assert any("above the" in f.message for f in findings)

    def test_lifetime_domains(self):
        spec = small_spec(
            lifetime=LifetimeSettings(enabled=True, budget_fraction=1.5)
        )
        assert any(
            "budget_fraction" in f.message for f in validate_sweep_spec(spec)
        )

    def test_fleet_restrictions(self):
        spec = small_spec(
            engine="fleet", dropout_probs=(0.5,), guard_budget=2
        )
        messages = " ".join(f.message for f in validate_sweep_spec(spec))
        assert "rate-driven fault kinds" in messages
        assert "chip dropout" in messages
        assert "guard violation budgets" in messages

    def test_expand_raises_on_invalid(self):
        with pytest.raises(ConfigurationError, match="RPR106"):
            small_spec(alphas=(0.0,)).expand()

"""Sweep runner: graceful degradation, isolation, resume bit-identity.

The fast tests here run tiny grids inline with lifetime projection off;
the process-isolation crash/timeout paths use one-cell grids so forks
stay cheap.  The 24-cell acceptance drill lives in
``tests/integration/test_sweep_dependability.py``.
"""

import json

import pytest

from repro.dependability import (
    LifetimeSettings,
    SweepRunner,
    SweepSpec,
    SweepStore,
)
from repro.errors import ConfigurationError, SweepError
from repro.obs import Tracer


def tiny_spec(**overrides) -> SweepSpec:
    defaults = dict(
        name="tiny",
        n_chips=1,
        alphas=(1.0, 4.0),
        seeds=(3,),
        lifetime=LifetimeSettings(enabled=False),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestRunnerConfig:
    def test_bad_timeout_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="timeout_s"):
            SweepRunner(tiny_spec(), tmp_path, timeout_s=0.0)

    def test_bad_isolation_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="isolation"):
            SweepRunner(tiny_spec(), tmp_path, isolation="thread")

    def test_bad_inject_mode_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="inject mode"):
            SweepRunner(tiny_spec(), tmp_path, inject={"cell-0000": "explode"})


class TestInlineRun:
    def test_all_cells_complete(self, tmp_path):
        result = SweepRunner(tiny_spec(), tmp_path, isolation="inline").run()
        assert result.complete
        assert len(result.outcomes) == 2
        assert all(outcome.attempts == 1 for outcome in result.outcomes)
        assert all(outcome.digest for outcome in result.outcomes)

    def test_stats_digest_excludes_wall_clock(self, tmp_path):
        first = SweepRunner(
            tiny_spec(), tmp_path / "a", isolation="inline"
        ).run()
        second = SweepRunner(
            tiny_spec(), tmp_path / "b", isolation="inline"
        ).run()
        assert [o.digest for o in first.outcomes] == [
            o.digest for o in second.outcomes
        ]

    def test_injected_crash_degrades_not_raises(self, tmp_path):
        tracer = Tracer()
        result = SweepRunner(
            tiny_spec(),
            tmp_path,
            isolation="inline",
            cell_retries=2,
            inject={"cell-0000": "crash"},
            tracer=tracer,
        ).run()
        crashed = result.outcomes[0]
        assert crashed.status == "failed"
        assert crashed.attempts == 2
        assert "injected crash" in crashed.error
        assert result.outcomes[1].ok
        assert tracer.metrics.value("sweep.cell_failures") == 1.0
        assert tracer.metrics.value("sweep.cell_retries") == 1.0

    def test_crash_once_recovers_on_retry(self, tmp_path):
        result = SweepRunner(
            tiny_spec(),
            tmp_path,
            isolation="inline",
            cell_retries=2,
            inject={"cell-0000": "crash-once"},
        ).run()
        assert result.complete
        assert result.outcomes[0].attempts == 2

    def test_inline_hang_refuses(self, tmp_path):
        result = SweepRunner(
            tiny_spec(),
            tmp_path,
            isolation="inline",
            cell_retries=1,
            inject={"cell-0000": "hang"},
        ).run()
        assert "inline isolation cannot" in result.outcomes[0].error


class TestProcessIsolation:
    def test_sigkilled_child_is_recorded(self, tmp_path):
        spec = tiny_spec(alphas=(1.0,))
        result = SweepRunner(
            spec,
            tmp_path,
            isolation="process",
            cell_retries=1,
            inject={"cell-0000": "crash"},
        ).run()
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert "worker died" in outcome.error

    def test_hang_times_out(self, tmp_path):
        spec = tiny_spec(alphas=(1.0,))
        tracer = Tracer()
        result = SweepRunner(
            spec,
            tmp_path,
            isolation="process",
            timeout_s=1.5,
            cell_retries=1,
            inject={"cell-0000": "hang"},
            tracer=tracer,
        ).run()
        outcome = result.outcomes[0]
        assert outcome.status == "timeout"
        assert "wall-clock budget" in outcome.error
        assert tracer.metrics.value("sweep.cell_timeouts") == 1.0

    def test_process_digests_match_inline(self, tmp_path):
        spec = tiny_spec(alphas=(1.0,))
        inline = SweepRunner(spec, tmp_path / "i", isolation="inline").run()
        forked = SweepRunner(spec, tmp_path / "p", isolation="process").run()
        assert [o.digest for o in inline.outcomes] == [
            o.digest for o in forked.outcomes
        ]


class TestResume:
    def test_resume_runs_only_unfinished_cells(self, tmp_path):
        spec = tiny_spec()
        first = SweepRunner(spec, tmp_path, isolation="inline").run()
        victim = first.outcomes[0]
        (tmp_path / "cells" / f"{victim.cell_id}.json").unlink()

        tracer = Tracer()
        resumed = SweepRunner.resume(
            tmp_path, isolation="inline", tracer=tracer
        )
        assert tracer.metrics.value("sweep.cells") == 1.0  # one cell re-ran
        assert [o.digest for o in resumed.outcomes] == [
            o.digest for o in first.outcomes
        ]

    def test_run_on_partial_directory_continues(self, tmp_path):
        spec = tiny_spec()
        SweepRunner(spec, tmp_path, isolation="inline").run()
        (tmp_path / "cells" / "cell-0001.json").unlink()
        again = SweepRunner(spec, tmp_path, isolation="inline").run()
        assert again.complete

    def test_resume_rejects_different_spec(self, tmp_path):
        SweepRunner(tiny_spec(), tmp_path, isolation="inline").run()
        other = tiny_spec(alphas=(2.0, 3.0))
        with pytest.raises(SweepError, match="does not match"):
            SweepRunner(other, tmp_path, isolation="inline").run(resume=True)
        with pytest.raises(SweepError, match="different spec"):
            SweepRunner(other, tmp_path, isolation="inline").run()

    def test_resume_needs_manifest(self, tmp_path):
        with pytest.raises(SweepError):
            SweepRunner.resume(tmp_path / "nowhere")


class TestStoreRobustness:
    def test_orphan_tmp_discarded_with_warning(self, tmp_path):
        SweepRunner(tiny_spec(), tmp_path, isolation="inline").run()
        orphan = tmp_path / "cells" / "cell-9999.json.tmp"
        orphan.write_text('{"torn":')
        with pytest.warns(RuntimeWarning, match="orphaned temp file"):
            store = SweepStore(tmp_path)
        assert not orphan.exists()
        assert len(store.load_cells()) == 2

    def test_corrupt_cell_file_is_skipped(self, tmp_path):
        SweepRunner(tiny_spec(), tmp_path, isolation="inline").run()
        (tmp_path / "cells" / "cell-0000.json").write_text("{not json")
        store = SweepStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="cell-0000"):
            cells = store.load_cells()
        assert set(cells) == {"cell-0001"}

    def test_manifest_is_valid_json(self, tmp_path):
        SweepRunner(tiny_spec(), tmp_path, isolation="inline").run()
        manifest = json.loads((tmp_path / "sweep.json").read_text())
        assert manifest["name"] == "tiny"
        assert manifest["n_cells"] == 2

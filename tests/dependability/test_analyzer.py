"""Analyzer and Pareto frontier over fabricated sweep results.

Outcomes are constructed by hand (no campaigns run), so these tests pin
the statistics — Wilson/bootstrap intervals, sensitivity marginals,
dominance flags — without simulation noise or runtime cost.
"""

import pytest

from repro.dependability import (
    LifetimeSettings,
    SweepSpec,
    analyze_sweep,
    pareto_frontier,
)
from repro.dependability.runner import CellOutcome, SweepResult
from repro.errors import ConfigurationError


def build_result(stats_by_alpha, failed_ids=()):
    """A 1-seed sweep over the given alphas with fabricated stats."""
    spec = SweepSpec(
        name="fab",
        n_chips=4,
        alphas=tuple(sorted(stats_by_alpha)),
        seeds=(0,),
        lifetime=LifetimeSettings(horizon_hours=24.0),
    )
    cells = spec.expand()
    outcomes = []
    for cell in cells:
        if cell.cell_id in failed_ids:
            outcomes.append(
                CellOutcome(
                    cell_id=cell.cell_id,
                    status="failed",
                    attempts=2,
                    error="synthetic failure",
                )
            )
            continue
        stats = dict(stats_by_alpha[cell.alpha])
        outcomes.append(
            CellOutcome(
                cell_id=cell.cell_id, status="ok", attempts=1, stats=stats
            )
        )
    return SweepResult(
        spec=spec, directory="", cells=cells, outcomes=tuple(outcomes)
    )


def ok_stats(quarantined=0, lifetime=10.0, throughput=0.5, violations=0.0):
    return {
        "quarantined_count": quarantined,
        "sample_retries": 0.0,
        "guard_violations_total": violations,
        "degradation": {"chip-1": 1e-12, "chip-2": 3e-12},
        "lifetime_active_hours": lifetime,
        "throughput_active_fraction": throughput,
        "lifetime_horizon_hours": 24.0,
    }


class TestAnalyzeSweep:
    def test_failure_and_quarantine_intervals(self):
        result = build_result(
            {
                1.0: ok_stats(quarantined=2, lifetime=12.0, throughput=0.5),
                2.0: ok_stats(quarantined=0, lifetime=8.0, throughput=2 / 3),
                4.0: ok_stats(quarantined=0, lifetime=5.0, throughput=0.8),
            },
            failed_ids=("cell-0001",),
        )
        analysis = analyze_sweep(result)
        assert len(analysis.degraded_rows) == 1
        low, high = analysis.cell_failure_ci  # 1 failure of 3 cells
        assert 0.0 < low < 1 / 3 < high < 1.0
        # 2 quarantined of 8 chips across the two surviving cells.
        q_low, q_high = analysis.quarantine_ci
        assert 0.0 < q_low < 0.25 < q_high < 1.0

    def test_lifetime_bootstrap_needs_two_points(self):
        one = build_result({1.0: ok_stats(lifetime=12.0)})
        assert analyze_sweep(one).lifetime_ci is None
        two = build_result(
            {1.0: ok_stats(lifetime=12.0), 4.0: ok_stats(lifetime=4.0)}
        )
        ci = analyze_sweep(two).lifetime_ci
        assert ci is not None and ci[0] <= ci[1]

    def test_sensitivity_only_for_swept_axes(self):
        result = build_result(
            {1.0: ok_stats(violations=2.0), 4.0: ok_stats(violations=6.0)}
        )
        analysis = analyze_sweep(result)
        assert set(analysis.sensitivity) == {"alphas"}
        marginals = analysis.sensitivity["alphas"]
        assert marginals[1.0]["guard_violations"] == 2.0
        assert marginals[4.0]["guard_violations"] == 6.0

    def test_degraded_cells_excluded_from_marginals(self):
        result = build_result(
            {1.0: ok_stats(), 4.0: ok_stats()}, failed_ids=("cell-0000",)
        )
        marginals = analyze_sweep(result).sensitivity["alphas"]
        assert marginals[1.0]["ok_cells"] == 0
        assert marginals[1.0]["lifetime_hours"] is None
        assert marginals[4.0]["ok_cells"] == 1

    def test_table_marks_degraded_and_censored(self):
        stats = ok_stats()
        stats["lifetime_active_hours"] = None  # censored at the horizon
        result = build_result(
            {1.0: stats, 4.0: ok_stats()}, failed_ids=("cell-0001",)
        )
        rendered = analyze_sweep(result).table().render()
        assert ">24" in rendered
        assert "failed" in rendered

    def test_inconsistent_result_rejected(self):
        result = build_result({1.0: ok_stats()})
        broken = SweepResult(
            spec=result.spec,
            directory="",
            cells=result.cells,
            outcomes=(),
        )
        with pytest.raises(ConfigurationError, match="inconsistent"):
            analyze_sweep(broken)

    def test_directory_reload_marks_never_ran(self, tmp_path):
        from repro.dependability import SweepRunner

        spec = SweepSpec(
            name="partial",
            n_chips=1,
            alphas=(1.0, 4.0),
            seeds=(3,),
            lifetime=LifetimeSettings(enabled=False),
        )
        SweepRunner(spec, tmp_path, isolation="inline").run()
        (tmp_path / "cells" / "cell-0001.json").unlink()
        analysis = analyze_sweep(tmp_path)
        assert len(analysis.rows) == 2
        missing = analysis.rows[1].outcome
        assert not missing.ok and "never ran" in missing.error


class TestParetoFrontier:
    def test_dominated_point_flagged_off_frontier(self):
        result = build_result(
            {
                1.0: ok_stats(lifetime=12.0, throughput=0.5),
                2.0: ok_stats(lifetime=5.0, throughput=2 / 3),  # dominated
                4.0: ok_stats(lifetime=6.0, throughput=0.8),
            }
        )
        points = pareto_frontier(analyze_sweep(result))
        by_alpha = {p.alpha: p for p in points}
        assert by_alpha[1.0].on_frontier
        assert by_alpha[4.0].on_frontier
        assert not by_alpha[2.0].on_frontier
        # sorted by throughput for direct polyline plotting
        assert [p.alpha for p in points] == [1.0, 2.0, 4.0]

    def test_censored_lifetimes_enter_at_horizon(self):
        stats = ok_stats(throughput=0.5)
        stats["lifetime_active_hours"] = None
        result = build_result(
            {1.0: stats, 4.0: ok_stats(lifetime=6.0, throughput=0.8)}
        )
        points = pareto_frontier(analyze_sweep(result))
        censored = next(p for p in points if p.alpha == 1.0)
        assert censored.lifetime_hours == 24.0
        assert censored.censored == 1
        assert censored.on_frontier

    def test_no_lifetime_data_means_empty_frontier(self):
        stats = {
            "quarantined_count": 0,
            "guard_violations_total": 0.0,
            "degradation": {},
        }
        result = build_result({1.0: stats})
        assert pareto_frontier(analyze_sweep(result)) == ()

"""Recovery scheduling policies."""

import pytest

from repro.core.knobs import RecoveryKnobs
from repro.core.policies import (
    ChipStatus,
    NoRecoveryPolicy,
    PassiveSleepPolicy,
    ProactivePolicy,
    ReactivePolicy,
    RecoveryAction,
)
from repro.errors import ConfigurationError
from repro.units import hours


def status(shift=0.0, active=0.0, total=0.0) -> ChipStatus:
    return ChipStatus(total_elapsed=total, active_elapsed=active, delay_shift=shift)


class TestNoRecovery:
    def test_always_active(self):
        policy = NoRecoveryPolicy(segment=100.0)
        for __ in range(5):
            action = policy.next_action(status())
            assert not action.sleep
            assert action.duration == 100.0


class TestProactive:
    def test_alternates_active_sleep(self):
        knobs = RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
        policy = ProactivePolicy(knobs, period=hours(30.0))
        first = policy.next_action(status())
        second = policy.next_action(status())
        third = policy.next_action(status())
        assert not first.sleep and second.sleep and not third.sleep

    def test_durations_follow_alpha(self):
        knobs = RecoveryKnobs(alpha=4.0)
        policy = ProactivePolicy(knobs, period=hours(30.0))
        active = policy.next_action(status())
        sleep = policy.next_action(status())
        assert active.duration == pytest.approx(hours(24.0))
        assert sleep.duration == pytest.approx(hours(6.0))

    def test_sleep_action_carries_knobs(self):
        knobs = RecoveryKnobs(alpha=2.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
        policy = ProactivePolicy(knobs, period=hours(3.0))
        policy.next_action(status())
        sleep = policy.next_action(status())
        assert sleep.sleep_voltage == -0.3
        assert sleep.sleep_temperature_c == 110.0

    def test_needs_no_aging_sensor(self):
        # Proactive decisions are identical regardless of the sensed shift.
        knobs = RecoveryKnobs(alpha=4.0)
        a = ProactivePolicy(knobs, period=hours(30.0))
        b = ProactivePolicy(knobs, period=hours(30.0))
        assert a.next_action(status(shift=0.0)) == b.next_action(status(shift=1e-6))

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            ProactivePolicy(RecoveryKnobs(), period=0.0)


class TestPassiveSleep:
    def test_sleeps_passively(self):
        policy = PassiveSleepPolicy(alpha=4.0, period=hours(30.0))
        policy.next_action(status())
        sleep = policy.next_action(status())
        assert sleep.sleep
        assert sleep.sleep_voltage == 0.0
        assert sleep.sleep_temperature_c == 20.0


class TestReactive:
    def test_runs_until_trigger(self):
        policy = ReactivePolicy(
            RecoveryKnobs(), trigger_shift=1.0, recovery_duration=hours(1.0)
        )
        assert not policy.next_action(status(shift=0.5)).sleep
        assert policy.next_action(status(shift=1.5)).sleep
        assert policy.triggers == 1

    def test_recovery_duration_fixed(self):
        policy = ReactivePolicy(
            RecoveryKnobs(), trigger_shift=1.0, recovery_duration=hours(2.0)
        )
        action = policy.next_action(status(shift=2.0))
        assert action.duration == pytest.approx(hours(2.0))

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ReactivePolicy(RecoveryKnobs(), trigger_shift=0.0, recovery_duration=1.0)
        with pytest.raises(ConfigurationError):
            ReactivePolicy(RecoveryKnobs(), trigger_shift=1.0, recovery_duration=0.0)


class TestRecoveryAction:
    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            RecoveryAction(duration=0.0, sleep=True)

"""Recovery knobs and operating points."""

import pytest

from repro.core.knobs import (
    ACCELERATED_KNOBS,
    PASSIVE_KNOBS,
    OperatingPoint,
    RecoveryKnobs,
)
from repro.errors import ConfigurationError
from repro.units import celsius


class TestRecoveryKnobs:
    def test_paper_defaults(self):
        knobs = RecoveryKnobs()
        assert knobs.alpha == 4.0
        assert knobs.sleep_voltage == -0.3
        assert knobs.sleep_temperature_c == 110.0

    def test_fractions(self):
        knobs = RecoveryKnobs(alpha=4.0)
        assert knobs.sleep_fraction == pytest.approx(0.2)
        assert knobs.active_fraction == pytest.approx(0.8)
        assert knobs.sleep_fraction + knobs.active_fraction == pytest.approx(1.0)

    def test_split_cycle(self):
        active, sleep = RecoveryKnobs(alpha=4.0).split_cycle(30.0 * 3600.0)
        assert active == pytest.approx(24.0 * 3600.0)
        assert sleep == pytest.approx(6.0 * 3600.0)

    def test_split_cycle_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            RecoveryKnobs().split_cycle(0.0)

    def test_sleep_temperature_kelvin(self):
        assert RecoveryKnobs().sleep_temperature == pytest.approx(celsius(110.0))

    def test_rejects_positive_sleep_voltage(self):
        with pytest.raises(ConfigurationError):
            RecoveryKnobs(sleep_voltage=0.3)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ConfigurationError):
            RecoveryKnobs(alpha=0.0)

    def test_presets(self):
        assert PASSIVE_KNOBS.sleep_voltage == 0.0
        assert PASSIVE_KNOBS.sleep_temperature_c == 20.0
        assert ACCELERATED_KNOBS.sleep_voltage == -0.3


class TestOperatingPoint:
    def test_defaults(self):
        op = OperatingPoint()
        assert op.supply_voltage == 1.2
        assert op.temperature == pytest.approx(celsius(110.0))

    def test_rejects_nonpositive_supply(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(supply_voltage=0.0)

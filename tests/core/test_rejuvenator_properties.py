"""Property-based rejuvenator invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.policies import ProactivePolicy
from repro.core.rejuvenator import Rejuvenator
from repro.units import hours

from tests.conftest import fast_technology


def make_chip(seed: int):
    from repro.device.variation import ProcessVariation
    from repro.fpga.chip import FpgaChip

    return FpgaChip(
        "prop", n_stages=5, tech=fast_technology(),
        variation=ProcessVariation(0.0, 0.0, 0.0), seed=seed,
    )


class TestRejuvenatorProperties:
    @given(
        alpha=st.floats(min_value=1.0, max_value=8.0),
        period_h=st.floats(min_value=1.0, max_value=6.0),
        total_h=st.floats(min_value=4.0, max_value=16.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_work_conservation(self, alpha, period_h, total_h):
        chip = make_chip(seed=77)
        knobs = RecoveryKnobs(alpha=alpha, sleep_voltage=-0.3, sleep_temperature_c=110.0)
        rejuvenator = Rejuvenator(
            chip, OperatingPoint(temperature_c=110.0), max_segment=hours(1.0)
        )
        trajectory = rejuvenator.run(
            ProactivePolicy(knobs, hours(period_h)), hours(total_h)
        )
        # Exactly the requested work was delivered — never more, never less.
        assert trajectory.active_times[-1] == pytest.approx(hours(total_h))
        # Wall clock >= active time, monotone axes, non-negative shifts.
        assert trajectory.times[-1] >= trajectory.active_times[-1] - 1e-9
        assert np.all(np.diff(trajectory.times) >= -1e-9)
        assert np.all(np.diff(trajectory.active_times) >= -1e-9)
        assert np.all(trajectory.delay_shifts >= -1e-18)

    @given(alpha=st.floats(min_value=1.5, max_value=8.0))
    @settings(max_examples=10, deadline=None)
    def test_shift_rises_while_active_falls_while_asleep(self, alpha):
        chip = make_chip(seed=78)
        knobs = RecoveryKnobs(alpha=alpha, sleep_voltage=-0.3, sleep_temperature_c=110.0)
        rejuvenator = Rejuvenator(
            chip, OperatingPoint(temperature_c=110.0), max_segment=hours(0.5)
        )
        trajectory = rejuvenator.run(ProactivePolicy(knobs, hours(3.0)), hours(6.0))
        deltas = np.diff(trajectory.delay_shifts)
        sleeping = trajectory.sleeping[1:]
        # Every active step ages, every sleep step heals.
        assert np.all(deltas[~sleeping] >= -1e-18)
        assert np.all(deltas[sleeping] <= 1e-18)

"""Model-vs-measurement validation reports."""

import numpy as np
import pytest

from repro.core.validation import validate_model_against_series
from repro.errors import ConfigurationError


class TestValidation:
    def test_perfect_match(self):
        data = np.array([1.0, 2.0, 3.0])
        report = validate_model_against_series(data, data)
        assert report.rmse == 0.0
        assert report.passed
        assert report.r_squared == pytest.approx(1.0)

    def test_nrmse_normalised_by_range(self):
        measured = np.array([0.0, 1.0, 2.0])
        predicted = measured + 0.2
        report = validate_model_against_series(measured, predicted)
        assert report.nrmse == pytest.approx(0.1)

    def test_fail_beyond_threshold(self):
        measured = np.array([0.0, 1.0, 2.0])
        predicted = measured + 1.0
        report = validate_model_against_series(measured, predicted, threshold=0.15)
        assert not report.passed

    def test_max_abs_error(self):
        measured = np.array([0.0, 1.0])
        predicted = np.array([0.0, 1.5])
        report = validate_model_against_series(measured, predicted)
        assert report.max_abs_error == pytest.approx(0.5)

    def test_describe_contains_verdict(self):
        data = np.array([1.0, 2.0])
        assert "PASS" in validate_model_against_series(data, data).describe()

    def test_shape_checked(self):
        with pytest.raises(ConfigurationError):
            validate_model_against_series([1.0, 2.0], [1.0])

    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            validate_model_against_series([1.0], [1.0])

    def test_threshold_positive(self):
        with pytest.raises(ConfigurationError):
            validate_model_against_series([1.0, 2.0], [1.0, 2.0], threshold=0.0)

    def test_constant_series_infinite_nrmse(self):
        report = validate_model_against_series([1.0, 1.0, 1.0], [1.1, 1.1, 1.1])
        assert report.nrmse == float("inf")
        assert not report.passed

"""Model parameter extraction (paper Table 3 methodology)."""

import numpy as np
import pytest

from repro.bti.firstorder import PhysicsScaling, RecoveryParameters, StressParameters
from repro.core.fitting import (
    fit_physics_scaling,
    fit_recovery_parameters,
    fit_stress_parameters,
)
from repro.errors import FittingError
from repro.units import celsius, hours


class TestStressFit:
    def test_recovers_known_parameters(self):
        truth = StressParameters(prefactor=0.7e-9, offset_a=0.2, rate_c=1.5e-3)
        times = np.linspace(0.0, hours(24.0), 73)
        shifts = np.asarray(truth.shift(times))
        fit = fit_stress_parameters(times, shifts)
        predicted = np.asarray(fit.parameters.shift(times))
        np.testing.assert_allclose(predicted, shifts, rtol=1e-3, atol=1e-14)
        assert fit.nrmse < 1e-3

    def test_robust_to_noise(self):
        truth = StressParameters(prefactor=0.7e-9, offset_a=0.2, rate_c=1.5e-3)
        times = np.linspace(0.0, hours(24.0), 73)
        rng = np.random.default_rng(1)
        shifts = np.asarray(truth.shift(times)) + rng.normal(0.0, 3e-11, times.size)
        fit = fit_stress_parameters(times, shifts)
        assert fit.nrmse < 0.05
        assert fit.r_squared > 0.95

    def test_rejects_flat_series(self):
        times = np.linspace(0.0, 10.0, 10)
        with pytest.raises(FittingError):
            fit_stress_parameters(times, np.zeros(10))

    def test_rejects_too_few_points(self):
        with pytest.raises(FittingError):
            fit_stress_parameters([0.0, 1.0], [0.0, 1.0])

    def test_fits_campaign_data(self, campaign_result):
        times, shifts = campaign_result.delay_change_series("AS110DC24", chip_no=2)
        fit = fit_stress_parameters(times, shifts)
        assert fit.nrmse < 0.1
        assert fit.r_squared > 0.9


class TestRecoveryFit:
    def test_recovers_known_model(self):
        truth = RecoveryParameters(
            prefactor=5e-11, offset_a=0.1, rate_c=1e-3, k1=0.8, k2=1.5
        )
        t1 = hours(24.0)
        peak = 3.5e-9
        times = np.linspace(0.0, hours(6.0), 13)
        shifts = np.asarray(truth.residual(peak, t1, times))
        fit = fit_recovery_parameters(t1, peak, times, shifts)
        predicted = np.asarray(fit.parameters.residual(peak, t1, times))
        np.testing.assert_allclose(predicted, shifts, rtol=0.02, atol=1e-12)

    def test_fixed_rate_c_respected(self):
        truth = RecoveryParameters(
            prefactor=5e-11, offset_a=0.1, rate_c=1e-3, k1=0.8, k2=1.5
        )
        t1, peak = hours(24.0), 3.5e-9
        times = np.linspace(0.0, hours(6.0), 13)
        shifts = np.asarray(truth.residual(peak, t1, times))
        fit = fit_recovery_parameters(t1, peak, times, shifts, rate_c=1e-3)
        assert fit.parameters.rate_c == 1e-3

    def test_rejects_bad_anchor(self):
        times = np.linspace(0.0, 10.0, 10)
        with pytest.raises(FittingError):
            fit_recovery_parameters(0.0, 1.0, times, np.ones(10))
        with pytest.raises(FittingError):
            fit_recovery_parameters(10.0, 0.0, times, np.ones(10))

    def test_fits_campaign_recovery(self, campaign_result):
        times, shifts = campaign_result.delay_change_series("AR110N6", chip_no=5)
        fit = fit_recovery_parameters(hours(24.0), float(shifts[0]), times, shifts)
        assert fit.nrmse < 0.1


class TestPhysicsScalingFit:
    def test_recovers_known_scaling(self):
        truth = PhysicsScaling(k_prefactor=3.0, e0_ev=0.08, b_field_ev_per_volt=0.05)
        conditions = [
            (1.2, celsius(100.0)),
            (1.2, celsius(110.0)),
            (1.0, celsius(110.0)),
            (1.1, celsius(80.0)),
        ]
        prefactors = [truth.prefactor(v, t) for v, t in conditions]
        voltages = [v for v, __ in conditions]
        temperatures = [t for __, t in conditions]
        fit = fit_physics_scaling(voltages, temperatures, prefactors)
        assert fit.parameters.e0_ev == pytest.approx(0.08, rel=1e-6)
        assert fit.parameters.b_field_ev_per_volt == pytest.approx(0.05, rel=1e-6)

    def test_needs_three_conditions(self):
        with pytest.raises(FittingError):
            fit_physics_scaling([1.2, 1.2], [300.0, 310.0], [1.0, 2.0])

    def test_rejects_nonpositive_prefactors(self):
        with pytest.raises(FittingError):
            fit_physics_scaling([1.2, 1.2, 1.0], [300.0, 310.0, 320.0], [1.0, -2.0, 1.0])

    def test_rejects_misaligned_arrays(self):
        with pytest.raises(FittingError):
            fit_physics_scaling([1.2], [300.0, 310.0], [1.0, 2.0])

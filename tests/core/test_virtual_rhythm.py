"""Virtual circadian rhythm: adaptive alpha control."""

import numpy as np
import pytest

from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.virtual_rhythm import VirtualCircadianRhythm
from repro.errors import ConfigurationError
from repro.units import hours


def make_rhythm(target=1.0e-12, period=hours(5.0), **kwargs) -> VirtualCircadianRhythm:
    kwargs.setdefault("operating", OperatingPoint(temperature_c=110.0))
    kwargs.setdefault(
        "knobs", RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
    )
    return VirtualCircadianRhythm(target_shift=target, period=period, **kwargs)


class TestVirtualCircadianRhythm:
    def test_cycles_recorded(self, small_chip):
        result = make_rhythm(target=30e-12).run(small_chip, n_cycles=6)
        assert len(result.cycles) == 6
        assert all(c.trough_shift <= c.peak_shift for c in result.cycles)

    def test_period_preserved(self, small_chip):
        result = make_rhythm(target=30e-12, period=hours(5.0)).run(small_chip, 4)
        for cycle in result.cycles:
            assert cycle.active_time + cycle.sleep_time == pytest.approx(hours(5.0))

    def test_tight_target_lowers_alpha(self, chip_factory):
        # A demanding residual target forces more sleep (smaller alpha)
        # than a lenient one.
        tight = make_rhythm(target=10e-12).run(chip_factory(seed=80), 10)
        loose = make_rhythm(target=60e-12).run(chip_factory(seed=80), 10)
        assert tight.final_alpha < loose.final_alpha

    def test_converges_to_achievable_target(self, chip_factory):
        result = make_rhythm(target=30e-12).run(chip_factory(seed=81), 12)
        assert result.converged
        # The trough trace settles near the target.
        tail = result.troughs()[-3:]
        assert np.all(tail <= 30e-12 * 1.15)

    def test_unachievable_target_pins_alpha_low(self, chip_factory):
        result = make_rhythm(target=1e-15).run(chip_factory(seed=82), 8)
        lo, __ = (1.0, 16.0)
        assert result.final_alpha == pytest.approx(lo)
        assert not result.converged

    def test_alpha_stays_in_bounds(self, chip_factory):
        result = make_rhythm(target=30e-12).run(chip_factory(seed=83), 12)
        alphas = result.alphas()
        assert np.all(alphas >= 1.0) and np.all(alphas <= 16.0)

    def test_validation(self, small_chip):
        with pytest.raises(ConfigurationError):
            VirtualCircadianRhythm(target_shift=0.0, period=hours(5.0))
        with pytest.raises(ConfigurationError):
            VirtualCircadianRhythm(target_shift=1e-12, period=0.0)
        with pytest.raises(ConfigurationError):
            make_rhythm().run(small_chip, n_cycles=0)
        with pytest.raises(ConfigurationError):
            make_rhythm().run(small_chip, n_cycles=2, alpha0=100.0)


class TestFastForward:
    def test_matches_fixed_alpha_loop(self, small_chip, chip_factory):
        from repro.units import celsius

        rhythm = make_rhythm()
        other = chip_factory(seed=123)
        cycle = rhythm.fast_forward(small_chip, 30, alpha=4.0)
        active = rhythm.period * 4.0 / 5.0
        sleep = rhythm.period - active
        for _ in range(30):
            other.apply_stress(
                active,
                temperature=rhythm.operating.temperature,
                supply_voltage=rhythm.operating.supply_voltage,
                mode=rhythm.stress_mode,
            )
            peak = other.delta_path_delay()
            other.apply_recovery(
                sleep,
                temperature=celsius(rhythm.knobs.sleep_temperature_c),
                supply_voltage=rhythm.knobs.sleep_voltage,
            )
            trough = other.delta_path_delay()
        assert cycle.peak_shift == pytest.approx(peak, rel=1e-9)
        assert cycle.trough_shift == pytest.approx(trough, rel=1e-9)
        assert cycle.index == 29
        assert small_chip.elapsed == pytest.approx(other.elapsed, rel=1e-12)

    def test_last_cycle_is_observed(self, small_chip):
        cycle = make_rhythm().fast_forward(small_chip, 1, alpha=2.0)
        assert cycle.peak_shift > cycle.trough_shift > 0.0

    def test_rejects_bad_inputs(self, small_chip):
        rhythm = make_rhythm()
        with pytest.raises(ConfigurationError):
            rhythm.fast_forward(small_chip, 0)
        with pytest.raises(ConfigurationError):
            rhythm.fast_forward(small_chip, 5, alpha=100.0)

"""On-chip negative-rail feasibility (paper Sec. 6.1)."""

import numpy as np
import pytest

from repro.core.negative_rail import (
    ChargePumpGenerator,
    GidlModel,
    check_feasibility,
    recommend_voltage,
    sweep_sleep_voltage,
)
from repro.errors import ConfigurationError
from repro.fpga.ring_oscillator import StressMode
from repro.units import celsius, hours


@pytest.fixture(scope="module")
def stressed_chip(chip_factory_module):
    chip = chip_factory_module(seed=44)
    chip.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)
    return chip


@pytest.fixture(scope="module")
def chip_factory_module():
    from repro.device.variation import ProcessVariation
    from repro.fpga.chip import FpgaChip

    from tests.conftest import fast_technology

    def make(seed: int = 44):
        return FpgaChip(
            "rail", n_stages=5, tech=fast_technology(),
            variation=ProcessVariation(0.0, 0.0, 0.0), seed=seed,
        )

    return make


class TestGidl:
    def test_zero_at_zero_volts(self):
        assert GidlModel().current(0.0) == 0.0

    def test_exponential_growth(self):
        gidl = GidlModel(gamma_per_volt=9.0)
        # Per 0.1 V the GIDL grows by roughly e^0.9 once away from onset.
        ratio = gidl.current(-0.5) / gidl.current(-0.4)
        assert ratio == pytest.approx(np.exp(0.9), rel=0.05)

    def test_rejects_positive_voltage(self):
        with pytest.raises(ConfigurationError):
            GidlModel().current(0.1)


class TestGenerator:
    def test_input_power_includes_static_and_efficiency(self):
        pump = ChargePumpGenerator(efficiency=0.5, static_power_watts=1e-4)
        assert pump.input_power(1e-4) == pytest.approx(1e-4 + 2e-4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChargePumpGenerator(efficiency=0.0)
        with pytest.raises(ConfigurationError):
            ChargePumpGenerator().input_power(-1.0)


class TestFeasibility:
    def test_breakdown_limit(self):
        assert check_feasibility(-0.3)
        assert not check_feasibility(-0.7)  # below the 40 nm junction limit
        assert not check_feasibility(0.1)


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self, stressed_chip):
        return sweep_sleep_voltage(
            stressed_chip, voltages=(0.0, -0.1, -0.2, -0.3, -0.4, -0.5, -0.7)
        )

    def test_more_negative_recovers_more(self, points):
        feasible = [p for p in points if p.feasible]
        fractions = [p.recovery_fraction for p in feasible]
        assert all(a < b for a, b in zip(fractions, fractions[1:]))

    def test_gidl_grows_much_faster_than_benefit(self, points):
        at_03 = next(p for p in points if p.sleep_voltage == -0.3)
        at_05 = next(p for p in points if p.sleep_voltage == -0.5)
        benefit_ratio = at_05.recovery_fraction / at_03.recovery_fraction
        gidl_ratio = at_05.gidl_power_watts / at_03.gidl_power_watts
        assert gidl_ratio > 5.0 * benefit_ratio

    def test_breakdown_point_marked_infeasible(self, points):
        beyond = next(p for p in points if p.sleep_voltage == -0.7)
        assert not beyond.feasible

    def test_chip_state_restored(self, stressed_chip, points):
        # The sweep ends by restoring the stressed snapshot.
        assert stressed_chip.delta_path_delay() > 0.0

    def test_recommendation_is_the_papers_modest_rail(self, points):
        assert recommend_voltage(points) == pytest.approx(-0.3)

    def test_unreachable_target_raises(self, points):
        with pytest.raises(ConfigurationError):
            recommend_voltage(points, target_fraction=0.999)

    def test_sweep_requires_stressed_chip(self, chip_factory_module):
        with pytest.raises(ConfigurationError):
            sweep_sleep_voltage(chip_factory_module(seed=45))

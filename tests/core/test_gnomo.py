"""GNOMO baseline (greater-than-nominal Vdd operation)."""

import pytest

from repro.core.gnomo import gnomo_speedup, run_gnomo
from repro.errors import ConfigurationError
from repro.fpga.ring_oscillator import StressMode
from repro.units import celsius, hours


class TestGnomoSpeedup:
    def test_boost_speeds_up(self, small_chip):
        assert gnomo_speedup(small_chip, 1.32) > 1.0

    def test_more_boost_more_speedup(self, small_chip):
        assert gnomo_speedup(small_chip, 1.32) > gnomo_speedup(small_chip, 1.25)


class TestRunGnomo:
    def test_less_aging_than_nominal_continuous(self, chip_factory):
        nominal = chip_factory(seed=70)
        nominal.apply_stress(
            hours(24.0), temperature=celsius(110.0), mode=StressMode.DC
        )
        gnomo_chip = chip_factory(seed=70)
        result = run_gnomo(gnomo_chip, hours(24.0), boosted_voltage=1.32)
        assert result.delay_shift < nominal.delta_path_delay()

    def test_energy_premium(self, chip_factory):
        result = run_gnomo(chip_factory(seed=71), hours(8.0), boosted_voltage=1.32)
        assert result.energy_factor == pytest.approx((1.32 / 1.2) ** 2)
        assert result.energy_factor > 1.0

    def test_throughput_preserved(self, chip_factory):
        result = run_gnomo(chip_factory(seed=72), hours(8.0), boosted_voltage=1.32)
        assert result.stress_time + result.idle_time == pytest.approx(hours(8.0))
        assert result.idle_time > 0.0

    def test_accelerated_healing_beats_gnomo_margin(self, chip_factory):
        # The paper's positioning: at the same delivered work, stress +
        # accelerated recovery ends with less residual shift than GNOMO's
        # reduced-stress-plus-passive-idle.
        gnomo_chip = chip_factory(seed=73)
        gnomo = run_gnomo(
            gnomo_chip, hours(24.0), boosted_voltage=1.32, cycle=hours(6.0)
        )
        healed_chip = chip_factory(seed=73)
        healed_chip.apply_stress(
            hours(24.0), temperature=celsius(110.0), mode=StressMode.DC
        )
        healed_chip.apply_recovery(
            hours(6.0), temperature=celsius(110.0), supply_voltage=-0.3
        )
        assert healed_chip.delta_path_delay() < gnomo.delay_shift

    def test_requires_supply_above_nominal(self, small_chip):
        with pytest.raises(ConfigurationError):
            run_gnomo(small_chip, hours(1.0), boosted_voltage=1.2)

    def test_requires_positive_work(self, small_chip):
        with pytest.raises(ConfigurationError):
            run_gnomo(small_chip, 0.0, boosted_voltage=1.32)

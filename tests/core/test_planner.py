"""Circadian planner."""

import numpy as np
import pytest

from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.planner import CircadianPlanner
from repro.errors import ConfigurationError
from repro.units import hours


KNOBS = RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
OPERATING = OperatingPoint(temperature_c=110.0)


@pytest.fixture
def planner() -> CircadianPlanner:
    return CircadianPlanner(KNOBS, OPERATING, period=hours(5.0))


class TestPlanning:
    def test_plan_covers_requested_work(self, planner):
        plan = planner.plan(hours(12.0))
        assert plan.total_active_time >= hours(12.0)
        assert plan.n_cycles == 3  # 4 h active per 5 h cycle

    def test_throughput_overhead_is_inverse_alpha(self, planner):
        plan = planner.plan(hours(12.0))
        assert plan.throughput_overhead == pytest.approx(1.0 / 4.0)

    def test_wall_clock_time(self, planner):
        plan = planner.plan(hours(12.0))
        assert plan.wall_clock_time == pytest.approx(plan.n_cycles * hours(5.0))

    def test_rejects_nonpositive_work(self, planner):
        with pytest.raises(ConfigurationError):
            planner.plan(0.0)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            CircadianPlanner(KNOBS, OPERATING, period=0.0)


class TestSimulation:
    def test_envelope_comparison(self, planner, small_chip):
        comparison = planner.compare_against_baseline(
            small_chip, hours(16.0), max_segment=hours(1.0)
        )
        assert 0.0 < comparison.margin_relaxed < 1.0
        assert comparison.healed.peak_shift < comparison.baseline.final_shift
        assert 0.0 < comparison.end_recovery_fraction <= 1.0

    def test_chip_state_restored_after_comparison(self, planner, small_chip):
        before = small_chip.delta_path_delay()
        planner.compare_against_baseline(small_chip, hours(8.0), max_segment=hours(1.0))
        assert small_chip.delta_path_delay() == pytest.approx(before)

    def test_simulate_returns_saw_tooth(self, planner, small_chip):
        trajectory = planner.simulate(small_chip, hours(16.0), max_segment=hours(1.0))
        assert trajectory.cycle_peaks().size >= 3

    def test_optimise_alpha_picks_laziest_schedule(self, small_chip):
        planner = CircadianPlanner(KNOBS, OPERATING, period=hours(5.0))
        alpha, results = planner.optimise_alpha(
            small_chip,
            hours(16.0),
            margin_target=0.05,
            alphas=(2.0, 4.0, 8.0),
            max_segment=hours(1.0),
        )
        assert alpha == max(a for a, margin in results.items() if margin >= 0.05)

    def test_optimise_alpha_unreachable_target(self, small_chip):
        planner = CircadianPlanner(KNOBS, OPERATING, period=hours(5.0))
        with pytest.raises(ConfigurationError):
            planner.optimise_alpha(
                small_chip,
                hours(8.0),
                margin_target=0.999,
                alphas=(4.0,),
                max_segment=hours(1.0),
            )

    def test_margin_target_validated(self, planner, small_chip):
        with pytest.raises(ConfigurationError):
            planner.optimise_alpha(small_chip, hours(8.0), margin_target=1.5)


class TestFastForward:
    def test_matches_simulated_schedule(self, planner, small_chip, chip_factory):
        from repro.units import celsius

        other = chip_factory(seed=123)
        trough = planner.fast_forward(small_chip, 40)
        active, sleep = KNOBS.split_cycle(planner.period)
        for _ in range(40):
            other.apply_stress(
                active,
                temperature=OPERATING.temperature,
                supply_voltage=OPERATING.supply_voltage,
                mode=planner.stress_mode,
            )
            other.apply_recovery(
                sleep,
                temperature=celsius(KNOBS.sleep_temperature_c),
                supply_voltage=KNOBS.sleep_voltage,
            )
        assert trough == pytest.approx(other.delta_path_delay(), rel=1e-9)
        assert small_chip.elapsed == pytest.approx(40 * planner.period, rel=1e-12)

    def test_cost_independent_of_cycle_count(self, planner, chip_factory):
        # Projecting ten thousand cycles must be as cheap as ten; this
        # only terminates quickly if the closed form is in use.
        chip = chip_factory(seed=9)
        trough = planner.fast_forward(chip, 10_000)
        assert np.isfinite(trough)
        assert chip.elapsed == pytest.approx(10_000 * planner.period, rel=1e-12)

    def test_rejects_nonpositive_cycles(self, planner, small_chip):
        with pytest.raises(ConfigurationError):
            planner.fast_forward(small_chip, 0)

"""Rejuvenator: policy-driven wearout/recovery runs."""

import numpy as np
import pytest

from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.policies import NoRecoveryPolicy, ProactivePolicy
from repro.core.rejuvenator import Rejuvenator, Trajectory
from repro.errors import ConfigurationError
from repro.units import hours


@pytest.fixture
def operating() -> OperatingPoint:
    return OperatingPoint(supply_voltage=1.2, temperature_c=110.0)


def run_proactive(chip, operating, total=hours(12.0), period=hours(3.0)):
    rejuvenator = Rejuvenator(chip, operating, max_segment=hours(0.5))
    knobs = RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
    return rejuvenator.run(ProactivePolicy(knobs, period), total)


class TestRejuvenator:
    def test_delivers_exact_active_time(self, small_chip, operating):
        trajectory = run_proactive(small_chip, operating)
        assert trajectory.active_times[-1] == pytest.approx(hours(12.0))

    def test_no_recovery_wall_clock_equals_active(self, small_chip, operating):
        rejuvenator = Rejuvenator(small_chip, operating, max_segment=hours(1.0))
        trajectory = rejuvenator.run(NoRecoveryPolicy(segment=hours(1.0)), hours(6.0))
        assert trajectory.times[-1] == pytest.approx(hours(6.0))
        assert trajectory.sleep_fraction() == pytest.approx(0.0)

    def test_proactive_sleep_fraction_matches_alpha(self, small_chip, operating):
        # The run stops once the work target is met, so the final cycle's
        # sleep leg never executes: with n full cycles the fraction is
        # 0.2 * (n-1)/n, approaching 1/(1+alpha) from below.
        trajectory = run_proactive(small_chip, operating)
        assert 0.14 <= trajectory.sleep_fraction() <= 0.2001

    def test_saw_tooth_structure(self, small_chip, operating):
        trajectory = run_proactive(small_chip, operating)
        peaks = trajectory.cycle_peaks()
        troughs = trajectory.cycle_troughs()
        assert peaks.size >= 3
        assert np.all(troughs[: peaks.size] < peaks[: troughs.size])

    def test_healing_beats_no_recovery(self, chip_factory, operating):
        healed_chip = chip_factory(seed=33)
        baseline_chip = chip_factory(seed=33)
        healed = run_proactive(healed_chip, operating)
        rejuvenator = Rejuvenator(baseline_chip, operating, max_segment=hours(0.5))
        baseline = rejuvenator.run(NoRecoveryPolicy(segment=hours(1.0)), hours(12.0))
        assert healed.final_shift < baseline.final_shift

    def test_at_active_time_interpolation(self, small_chip, operating):
        trajectory = run_proactive(small_chip, operating)
        mid = trajectory.at_active_time(hours(6.0))
        assert 0.0 < mid <= trajectory.peak_shift

    def test_rejects_nonpositive_total(self, small_chip, operating):
        rejuvenator = Rejuvenator(small_chip, operating)
        with pytest.raises(ConfigurationError):
            rejuvenator.run(NoRecoveryPolicy(), 0.0)

    def test_rejects_nonpositive_segment(self, small_chip, operating):
        with pytest.raises(ConfigurationError):
            Rejuvenator(small_chip, operating, max_segment=0.0)


class TestTrajectory:
    def test_array_length_validation(self):
        with pytest.raises(ConfigurationError):
            Trajectory(
                times=np.array([0.0, 1.0]),
                active_times=np.array([0.0]),
                delay_shifts=np.array([0.0, 1.0]),
                sleeping=np.array([False, False]),
            )

    def test_peak_and_final(self):
        trajectory = Trajectory(
            times=np.array([0.0, 1.0, 2.0]),
            active_times=np.array([0.0, 1.0, 1.0]),
            delay_shifts=np.array([0.0, 2.0, 1.0]),
            sleeping=np.array([False, False, True]),
        )
        assert trajectory.peak_shift == 2.0
        assert trajectory.final_shift == 1.0

"""Self-healing metrics (RD, margin relaxed, lifetime)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics
from repro.errors import ConfigurationError


TIMES = np.array([0.0, 1.0, 2.0, 4.0, 6.0])
SHIFTS = np.array([4.0, 2.5, 2.0, 1.5, 1.2])


class TestRecoveredDelay:
    def test_equation_16(self):
        rd = metrics.recovered_delay(TIMES, SHIFTS)
        np.testing.assert_allclose(rd, [0.0, 1.5, 2.0, 2.5, 2.8])

    def test_recovery_fraction(self):
        assert metrics.recovery_fraction(TIMES, SHIFTS) == pytest.approx(2.8 / 4.0)

    def test_margin_relaxed_parameter_is_percent(self):
        assert metrics.margin_relaxed_parameter(TIMES, SHIFTS) == pytest.approx(70.0)

    def test_rejects_unstressed_start(self):
        with pytest.raises(ConfigurationError):
            metrics.recovery_fraction(TIMES, np.zeros(5))

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ConfigurationError):
            metrics.recovered_delay(TIMES, SHIFTS[:-1])

    def test_rejects_unsorted_times(self):
        with pytest.raises(ConfigurationError):
            metrics.recovered_delay(TIMES[::-1], SHIFTS)

    @given(
        start=st.floats(min_value=0.5, max_value=10.0),
        fractions=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=10
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_fraction_bounded_for_monotone_recovery(self, start, fractions):
        values = start * np.sort(np.array([1.0] + fractions))[::-1]
        times = np.arange(values.size, dtype=float)
        fraction = metrics.recovery_fraction(times, values)
        assert 0.0 <= fraction <= 1.0


class TestDesignMarginRelaxed:
    def test_envelope_definition(self):
        assert metrics.design_margin_relaxed(1.0, 4.0) == pytest.approx(0.75)

    def test_no_healing_no_relaxation(self):
        assert metrics.design_margin_relaxed(4.0, 4.0) == pytest.approx(0.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            metrics.design_margin_relaxed(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            metrics.design_margin_relaxed(-1.0, 2.0)


class TestTimeToBudget:
    def test_interpolated_crossing(self):
        times = np.array([0.0, 10.0, 20.0])
        shifts = np.array([0.0, 1.0, 3.0])
        assert metrics.time_to_budget(times, shifts, 2.0) == pytest.approx(15.0)

    def test_never_crossing_returns_inf(self):
        times = np.array([0.0, 10.0])
        shifts = np.array([0.0, 0.5])
        assert metrics.time_to_budget(times, shifts, 2.0) == float("inf")

    def test_crossing_at_first_sample(self):
        times = np.array([5.0, 10.0])
        shifts = np.array([3.0, 4.0])
        assert metrics.time_to_budget(times, shifts, 2.0) == 5.0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigurationError):
            metrics.time_to_budget(TIMES, SHIFTS, 0.0)


class TestLifetimeExtension:
    def test_extension_ratio(self):
        base_t = np.array([0.0, 10.0, 20.0])
        base_s = np.array([0.0, 1.0, 2.0])
        heal_t = np.array([0.0, 10.0, 20.0, 40.0])
        heal_s = np.array([0.0, 0.5, 1.0, 2.0])
        ext = metrics.lifetime_extension(base_t, base_s, heal_t, heal_s, budget=2.0)
        assert ext == pytest.approx(2.0)

    def test_infinite_when_healed_never_dies(self):
        base_t = np.array([0.0, 10.0])
        base_s = np.array([0.0, 4.0])
        heal_t = np.array([0.0, 10.0])
        heal_s = np.array([0.0, 0.5])
        assert metrics.lifetime_extension(base_t, base_s, heal_t, heal_s, 2.0) == float(
            "inf"
        )

    def test_baseline_must_cross(self):
        t = np.array([0.0, 10.0])
        s = np.array([0.0, 0.5])
        with pytest.raises(ConfigurationError):
            metrics.lifetime_extension(t, s, t, s, 2.0)

"""Adaptive-clock baseline."""

import numpy as np
import pytest

from repro.core.adaptation import AdaptiveClockController, ClockTrace
from repro.errors import ConfigurationError


class TestAdaptiveClockController:
    def test_clock_below_inverse_delay(self):
        controller = AdaptiveClockController(safety_margin=0.03)
        delay = 1e-9
        assert controller.clock_frequency(delay) == pytest.approx(1.0 / (delay * 1.03))

    def test_zero_margin_is_inverse_delay(self):
        controller = AdaptiveClockController(safety_margin=0.0)
        assert controller.clock_frequency(2e-9) == pytest.approx(5e8)

    def test_trace_from_trajectory(self):
        controller = AdaptiveClockController(safety_margin=0.0)
        times = np.array([0.0, 10.0, 20.0])
        shifts = np.array([0.0, 1e-10, 2e-10])
        trace = controller.trace_from_trajectory(times, shifts, fresh_delay=1e-9)
        assert trace.fresh_frequency == pytest.approx(1e9)
        assert trace.final_frequency == pytest.approx(1.0 / 1.2e-9)
        assert 0.0 < trace.performance_loss < 0.2

    def test_mean_frequency_between_extremes(self):
        trace = ClockTrace(
            times=np.array([0.0, 1.0]), frequencies=np.array([2.0, 1.0])
        )
        assert 1.0 < trace.mean_frequency() < 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveClockController(safety_margin=1.0)
        controller = AdaptiveClockController()
        with pytest.raises(ConfigurationError):
            controller.clock_frequency(0.0)
        with pytest.raises(ConfigurationError):
            controller.trace_from_trajectory([0.0], [0.0, 1.0], 1e-9)
        with pytest.raises(ConfigurationError):
            controller.trace_from_trajectory([0.0], [0.0], 0.0)

    def test_healed_chip_ships_faster_clock(self, chip_factory):
        # The paper's argument end-to-end: adaptation-only performance
        # decays; healing keeps the delivered clock higher.
        from repro.core.knobs import OperatingPoint, RecoveryKnobs
        from repro.core.policies import NoRecoveryPolicy, ProactivePolicy
        from repro.core.rejuvenator import Rejuvenator
        from repro.units import hours

        controller = AdaptiveClockController()
        operating = OperatingPoint(temperature_c=110.0)
        knobs = RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
        traces = {}
        for name, policy in (
            ("adaptive-only", NoRecoveryPolicy(segment=hours(1.0))),
            ("healed", ProactivePolicy(knobs, period=hours(2.5))),
        ):
            chip = chip_factory(seed=90)
            trajectory = Rejuvenator(chip, operating, max_segment=hours(0.5)).run(
                policy, hours(24.0)
            )
            traces[name] = controller.trace_from_trajectory(
                trajectory.active_times, trajectory.delay_shifts, chip.fresh_path_delay
            )
        assert traces["healed"].mean_frequency() > traces["adaptive-only"].mean_frequency()
        assert traces["healed"].performance_loss < traces["adaptive-only"].performance_loss
"""Lifetime projection under policies."""

import pytest

from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.lifetime import project_lifetime
from repro.core.policies import NoRecoveryPolicy, ProactivePolicy
from repro.errors import ConfigurationError
from repro.units import hours


OPERATING = OperatingPoint(temperature_c=110.0)


class TestLifetimeProjection:
    def test_baseline_crosses_small_budget(self, small_chip):
        report = project_lifetime(
            small_chip,
            NoRecoveryPolicy(segment=hours(1.0)),
            budget=50e-12,
            horizon_active_time=hours(24.0),
            operating=OPERATING,
            max_segment=hours(1.0),
        )
        assert not report.survived_horizon
        assert 0.0 < report.active_lifetime < hours(24.0)

    def test_healing_extends_lifetime(self, chip_factory):
        budget = 46e-12
        baseline = project_lifetime(
            chip_factory(seed=50),
            NoRecoveryPolicy(segment=hours(1.0)),
            budget=budget,
            horizon_active_time=hours(24.0),
            operating=OPERATING,
            max_segment=hours(1.0),
        )
        knobs = RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
        healed = project_lifetime(
            chip_factory(seed=50),
            ProactivePolicy(knobs, period=hours(2.5)),
            budget=budget,
            horizon_active_time=hours(24.0),
            operating=OPERATING,
            max_segment=hours(0.5),
        )
        assert healed.active_lifetime > baseline.active_lifetime

    def test_generous_budget_survives(self, small_chip):
        report = project_lifetime(
            small_chip,
            NoRecoveryPolicy(segment=hours(1.0)),
            budget=1.0,  # one full second of delay budget: unreachable
            horizon_active_time=hours(4.0),
            operating=OPERATING,
        )
        assert report.survived_horizon

    def test_budget_validated(self, small_chip):
        with pytest.raises(ConfigurationError):
            project_lifetime(
                small_chip, NoRecoveryPolicy(), budget=0.0, horizon_active_time=1.0
            )

    def test_trajectory_attached(self, small_chip):
        report = project_lifetime(
            small_chip,
            NoRecoveryPolicy(segment=hours(1.0)),
            budget=1.0,
            horizon_active_time=hours(2.0),
            operating=OPERATING,
        )
        assert report.trajectory.times[-1] > 0.0

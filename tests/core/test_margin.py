"""Margin budgeting: guardbands and yield."""

import numpy as np
import pytest

from repro.core.margin import (
    build_margin_budget,
    frequency_guardband,
    parametric_yield,
    relaxed_guardband,
)
from repro.errors import ConfigurationError


UNHEALED = np.array([0.01, 0.02, 0.025, 0.03, 0.05])
HEALED = UNHEALED * 0.3


class TestGuardband:
    def test_known_value(self):
        # Single-device population with 4 % shift: derate 1 - 1/1.04.
        assert frequency_guardband([0.04], coverage=0.5) == pytest.approx(
            1.0 - 1.0 / 1.04
        )

    def test_higher_coverage_bigger_guardband(self):
        assert frequency_guardband(UNHEALED, 0.99) >= frequency_guardband(UNHEALED, 0.5)

    def test_relaxed_guardband(self):
        before, after, reduction = relaxed_guardband(UNHEALED, HEALED)
        assert after < before
        assert 0.0 < reduction < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            frequency_guardband(UNHEALED, coverage=1.0)
        with pytest.raises(ConfigurationError):
            frequency_guardband([-0.1])
        with pytest.raises(ConfigurationError):
            relaxed_guardband(np.zeros(3), HEALED[:3])


class TestYield:
    def test_full_yield_with_generous_guardband(self):
        assert parametric_yield(UNHEALED, guardband=0.10) == 1.0

    def test_zero_guardband_fails_aged_parts(self):
        assert parametric_yield(UNHEALED, guardband=0.0) == 0.0

    def test_partial_yield(self):
        # Guardband exactly covering shifts <= ~0.0257.
        y = parametric_yield(UNHEALED, guardband=0.025)
        assert y == pytest.approx(3.0 / 5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            parametric_yield(UNHEALED, guardband=1.0)


class TestBudget:
    def test_budget_assembly(self):
        budget = build_margin_budget(UNHEALED, HEALED, coverage=0.9)
        assert budget.guardband_healed < budget.guardband_unhealed
        assert budget.guardband_reduction > 0.5
        # At the healed guardband the healed population yields better
        # than the unhealed one (a p90 band tolerates some tail loss).
        assert budget.yield_healed > budget.yield_unhealed
        assert budget.yield_healed >= 0.8

    def test_table_renders(self):
        text = build_margin_budget(UNHEALED, HEALED).table().render()
        assert "guardband" in text

    def test_from_trap_population(self):
        # End-to-end with the statistical module.
        from repro.bti.conditions import BiasCondition, BiasPhase
        from repro.bti.statistical import sample_device_shifts
        from repro.units import hours

        stress = BiasPhase(duration=hours(24.0), bias=BiasCondition.at_celsius(1.2, 110.0))
        heal = BiasPhase(duration=hours(6.0), bias=BiasCondition.at_celsius(-0.3, 110.0))
        overdrive = 0.78
        unhealed = sample_device_shifts([stress], 300, rng=0) / overdrive
        healed = sample_device_shifts([stress, heal], 300, rng=0) / overdrive
        budget = build_margin_budget(unhealed, healed)
        assert budget.guardband_reduction > 0.3

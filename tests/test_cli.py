"""Command-line interface."""

import pytest

from repro.cli import main
from repro.lab.datalog import DataLog
from repro.obs import load_trace, span_tree


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "FIG4" in out and "TAB4" in out

    def test_info(self, capsys):
        assert main(["info", "FIG4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "bench_fig4" in out

    def test_info_case_insensitive(self, capsys):
        assert main(["info", "tab5"]) == 0
        assert "Table 5" in capsys.readouterr().out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["info", "FIG99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "ac_dc_ratio" in out

    def test_run_fig1(self, capsys):
        # FIG1 is model-only (no campaign) — fast enough for a unit test.
        assert main(["run", "FIG1"]) == 0

    def test_run_table4(self, capsys, campaign_result):
        # Reuses the session campaign cache (seed 0).
        assert main(["run", "TAB4", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "AR110N6" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_report_to_stdout(self, capsys, campaign_result):
        # campaign_result warms the seed-0 cache the report reuses.
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "TAB1" in out


class TestCampaignCli:
    """The campaign/stats subcommands with a one-chip bench (fast)."""

    def test_campaign_csv_roundtrip(self, tmp_path, capsys):
        from repro.lab.campaign import run_table1_campaign

        path = tmp_path / "log.csv"
        assert main(["campaign", "--chips", "1", "--quiet", "--csv", str(path)]) == 0
        out = capsys.readouterr().out
        assert "log written to" in out
        loaded = DataLog.read_csv(path)
        direct = run_table1_campaign(seed=0, n_chips=1)
        assert list(loaded) == list(direct.log)

    def test_campaign_trace_writes_nested_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["campaign", "--chips", "1", "--quiet", "--trace", str(path)]) == 0
        assert "trace written to" in capsys.readouterr().out
        records = load_trace(path)
        tree = span_tree(records)
        campaign = tree[None][0]
        assert campaign["name"] == "campaign"
        cases = tree[campaign["span_id"]]
        assert {c["name"] for c in cases} == {"case"}
        phases = tree[cases[-1]["span_id"]]
        assert {p["name"] for p in phases} == {"phase"}
        assert any(r["type"] == "metric" for r in records)

    def test_campaign_progress_lines_on_stderr(self, capsys):
        assert main(["campaign", "--chips", "1", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "AS110AC24" in captured.err
        assert "cases" in captured.err

    def test_campaign_quiet_suppresses_progress(self, capsys):
        assert main(["campaign", "--chips", "1", "--quiet"]) == 0
        assert capsys.readouterr().err == ""

    def test_campaign_guard_modes_run_clean(self, capsys):
        for mode in ("raise", "clamp", "off"):
            assert main(["campaign", "--chips", "1", "--quiet",
                         "--guard-mode", mode]) == 0
        capsys.readouterr()

    def test_campaign_guard_mode_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--chips", "1", "--guard-mode", "maybe"])
        assert "invalid choice" in capsys.readouterr().err

    def test_stats_prints_timing_and_metrics(self, capsys):
        assert main(["stats", "--chips", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Per-span timing" in out
        assert "measurement" in out
        assert "ro.evaluations" in out
        assert "campaign.sim_seconds_per_wall_second" in out


class TestLintCli:
    """The `repro lint` subcommand against fixture trees."""

    def _dirty_tree(self, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "dirty.py").write_text("d = 3600.0\n")
        return tree

    def test_findings_gate_with_exit_1(self, tmp_path, capsys):
        tree = self._dirty_tree(tmp_path)
        assert main(["lint", str(tree), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "SECONDS_PER_HOUR" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "clean.py").write_text("x = 1\n")
        assert main(["lint", str(tree), "--no-baseline"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        import json

        tree = self._dirty_tree(tmp_path)
        assert main(["lint", str(tree), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "RPR001"

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        tree = self._dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(tree), "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_repo_lints_clean_end_to_end(self, capsys):
        # The acceptance criterion, through the real CLI entry point.
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_experiments_validation_runs_clean_and_fast(self, capsys):
        assert main(["lint", "--experiments"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_malformed_baseline_is_a_repro_error(self, tmp_path, capsys):
        tree = self._dirty_tree(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["lint", str(tree), "--baseline", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

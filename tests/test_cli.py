"""Command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "FIG4" in out and "TAB4" in out

    def test_info(self, capsys):
        assert main(["info", "FIG4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "bench_fig4" in out

    def test_info_case_insensitive(self, capsys):
        assert main(["info", "tab5"]) == 0
        assert "Table 5" in capsys.readouterr().out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["info", "FIG99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "ac_dc_ratio" in out

    def test_run_fig1(self, capsys):
        # FIG1 is model-only (no campaign) — fast enough for a unit test.
        assert main(["run", "FIG1"]) == 0

    def test_run_table4(self, capsys, campaign_result):
        # Reuses the session campaign cache (seed 0).
        assert main(["run", "TAB4", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "AR110N6" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

"""Command-line interface."""

import pytest

from repro.cli import main
from repro.lab.datalog import DataLog
from repro.obs import load_trace, span_tree


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "FIG4" in out and "TAB4" in out

    def test_info(self, capsys):
        assert main(["info", "FIG4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "bench_fig4" in out

    def test_info_case_insensitive(self, capsys):
        assert main(["info", "tab5"]) == 0
        assert "Table 5" in capsys.readouterr().out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["info", "FIG99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "ac_dc_ratio" in out

    def test_run_fig1(self, capsys):
        # FIG1 is model-only (no campaign) — fast enough for a unit test.
        assert main(["run", "FIG1"]) == 0

    def test_run_table4(self, capsys, campaign_result):
        # Reuses the session campaign cache (seed 0).
        assert main(["run", "TAB4", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "AR110N6" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_experiments_report_to_stdout(self, capsys, campaign_result):
        # campaign_result warms the seed-0 cache the report reuses.
        assert main(["report", "--experiments"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "TAB1" in out


class TestCampaignCli:
    """The campaign/stats subcommands with a one-chip bench (fast)."""

    def test_campaign_csv_roundtrip(self, tmp_path, capsys):
        from repro.lab.campaign import run_table1_campaign

        path = tmp_path / "log.csv"
        assert main(["campaign", "--chips", "1", "--quiet", "--csv", str(path)]) == 0
        out = capsys.readouterr().out
        assert "log written to" in out
        loaded = DataLog.read_csv(path)
        direct = run_table1_campaign(seed=0, n_chips=1)
        assert list(loaded) == list(direct.log)

    def test_campaign_trace_writes_nested_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["campaign", "--chips", "1", "--quiet", "--trace", str(path)]) == 0
        assert "trace written to" in capsys.readouterr().out
        records = load_trace(path)
        tree = span_tree(records)
        campaign = tree[None][0]
        assert campaign["name"] == "campaign"
        cases = tree[campaign["span_id"]]
        assert {c["name"] for c in cases} == {"case"}
        phases = tree[cases[-1]["span_id"]]
        assert {p["name"] for p in phases} == {"phase"}
        assert any(r["type"] == "metric" for r in records)

    def test_campaign_progress_lines_on_stderr(self, capsys):
        assert main(["campaign", "--chips", "1", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "AS110AC24" in captured.err
        assert "cases" in captured.err

    def test_campaign_quiet_suppresses_progress(self, capsys):
        assert main(["campaign", "--chips", "1", "--quiet"]) == 0
        assert capsys.readouterr().err == ""

    def test_campaign_guard_modes_run_clean(self, capsys):
        for mode in ("raise", "clamp", "off"):
            assert main(["campaign", "--chips", "1", "--quiet",
                         "--guard-mode", mode]) == 0
        capsys.readouterr()

    def test_campaign_guard_mode_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--chips", "1", "--guard-mode", "maybe"])
        assert "invalid choice" in capsys.readouterr().err

    def test_stats_prints_timing_and_metrics(self, capsys):
        assert main(["stats", "--chips", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Per-span timing" in out
        assert "measurement" in out
        assert "ro.evaluations" in out
        assert "campaign.sim_seconds_per_wall_second" in out

    def test_stats_rolls_up_health_metric_families(self, capsys):
        assert main(["stats", "--chips", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Metric rollup by family" in out
        # pinned families render even when the run had no such events
        assert "guard.violations" in out
        assert "lab.faults" in out
        assert "lab.sample_retries" in out
        assert "campaign.quarantines" in out
        assert "bti.rate_cache" in out

    def test_campaign_report_flag_writes_health_report(self, tmp_path, capsys):
        import json

        out_html = tmp_path / "health.html"
        assert main(["campaign", "--chips", "1", "--quiet",
                     "--report", str(out_html)]) == 0
        assert "health report written" in capsys.readouterr().out
        assert out_html.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
        data = json.loads((tmp_path / "health.json").read_text())
        assert data["meta"]["n_chips"] == 1
        assert data["rate_cache"]["lookups"] > 0


class TestTraceCli:
    """The `repro trace` subcommands over a real exported trace."""

    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "t.jsonl"
        assert main(["campaign", "--chips", "1", "--quiet",
                     "--trace", str(path)]) == 0
        return path

    def test_summary(self, trace_file, capsys):
        assert main(["trace", "summary", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "span groups by self time" in out
        assert "Per-chip span rollup" in out
        assert "Metric rollup by family" in out

    def test_top_by_path(self, trace_file, capsys):
        assert main(["trace", "top", str(trace_file), "--group", "path"]) == 0
        assert "campaign;case;phase:stress" in capsys.readouterr().out

    def test_tree_depth_limit(self, trace_file, capsys):
        assert main(["trace", "tree", str(trace_file), "--max-depth", "1"]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out
        assert "measurement" not in out

    def test_flame_output_is_collapsed_stacks(self, trace_file, capsys):
        assert main(["trace", "flame", str(trace_file)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            path, _, usec = line.rpartition(" ")
            assert ";" in path or path == "campaign"
            assert int(usec) > 0

    def test_profile(self, trace_file, capsys):
        assert main(["trace", "profile", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Per-phase self time" in out
        assert "profile.case.meas_per_s" in out

    def test_diff_same_seed_zero_significant(self, trace_file, tmp_path, capsys):
        other = tmp_path / "other.jsonl"
        assert main(["campaign", "--chips", "1", "--quiet",
                     "--trace", str(other)]) == 0
        assert main(["trace", "diff", str(trace_file), str(other)]) == 0
        assert "significant: 0" in capsys.readouterr().out

    def test_diff_strict_gates_on_structural_change(self, trace_file, tmp_path,
                                                    capsys):
        import json

        mutated = tmp_path / "mutated.jsonl"
        with open(trace_file, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        for record in records:
            if record["type"] == "metric" and record["name"] == "lab.samples":
                record["value"] += 1
        with open(mutated, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        assert main(["trace", "diff", str(trace_file), str(mutated),
                     "--strict"]) == 1
        assert "lab.samples" in capsys.readouterr().out


class TestReportCli:
    def test_report_writes_html_and_json(self, tmp_path, capsys):
        import json

        out_html = tmp_path / "r.html"
        assert main(["report", "--chips", "1", "--quiet",
                     "--out", str(out_html)]) == 0
        assert "health report written" in capsys.readouterr().out
        html = out_html.read_text(encoding="utf-8")
        assert "<svg" in html
        assert "<script" not in html
        data = json.loads((tmp_path / "r.json").read_text())
        assert sorted(data) == ["chips", "guard_violations", "meta",
                                "quarantined", "rate_cache", "resilience"]


class TestBenchCli:
    def _entry(self, tmp_path, **overrides):
        import json

        entry = json.loads(open("BENCH_campaign.json", encoding="utf-8").read())
        entry.update(overrides)
        path = tmp_path / "candidate.json"
        path.write_text(json.dumps(entry))
        return path

    def test_no_history_is_informational(self, tmp_path, capsys):
        candidate = self._entry(tmp_path)
        assert main(["bench", "--input", str(candidate),
                     "--history", str(tmp_path / "h")]) == 0
        assert "no matching history" in capsys.readouterr().out

    def test_record_then_check_ok(self, tmp_path, capsys):
        candidate = self._entry(tmp_path)
        history = tmp_path / "h"
        assert main(["bench", "--input", str(candidate),
                     "--history", str(history), "--record"]) == 0
        assert main(["bench", "--check", "--input", str(candidate),
                     "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "Bench regression check" in out
        assert "REGRESSED" not in out

    def test_slowed_run_warns_but_exits_zero(self, tmp_path, capsys):
        import json

        base = self._entry(tmp_path)
        history = tmp_path / "h"
        assert main(["bench", "--input", str(base),
                     "--history", str(history), "--record"]) == 0
        entry = json.loads(base.read_text())
        slow = self._entry(
            tmp_path,
            campaign_wall_s=entry["campaign_wall_s"] * 1.5,
            measurements_per_sec=entry["measurements_per_sec"] / 1.5,
        )
        assert main(["bench", "--check", "--input", str(slow),
                     "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "WARNING: possible regression" in out
        assert main(["bench", "--check", "--strict", "--input", str(slow),
                     "--history", str(history)]) == 1
        capsys.readouterr()

    def test_missing_input_is_an_error(self, tmp_path, capsys):
        assert main(["bench", "--input", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err


class TestLintCli:
    """The `repro lint` subcommand against fixture trees."""

    def _dirty_tree(self, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "dirty.py").write_text("d = 3600.0\n")
        return tree

    def test_findings_gate_with_exit_1(self, tmp_path, capsys):
        tree = self._dirty_tree(tmp_path)
        assert main(["lint", str(tree), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "SECONDS_PER_HOUR" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "clean.py").write_text("x = 1\n")
        assert main(["lint", str(tree), "--no-baseline"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        import json

        tree = self._dirty_tree(tmp_path)
        assert main(["lint", str(tree), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "RPR001"

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        tree = self._dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(tree), "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_repo_lints_clean_end_to_end(self, capsys):
        # The acceptance criterion, through the real CLI entry point.
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_experiments_validation_runs_clean_and_fast(self, capsys):
        assert main(["lint", "--experiments"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_malformed_baseline_is_a_repro_error(self, tmp_path, capsys):
        tree = self._dirty_tree(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["lint", str(tree), "--baseline", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestDeepLintCli:
    """`repro lint --deep`: cross-module passes through the CLI."""

    FIXTURES = "tests/analysis/flow/fixtures"

    def test_repo_is_deep_clean_end_to_end(self, capsys):
        assert main(["lint", "--deep"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_deep_surfaces_fixture_violations(self, capsys):
        code = main(["lint", self.FIXTURES, "--deep", "--no-baseline"])
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR201" in out
        assert "RPR202" in out
        assert "RPR305" in out

    def test_shallow_run_misses_cross_module_findings(self, capsys):
        # The same tree without --deep: the violations are invisible to
        # single-file lint, which is the point of the deep pass.
        assert main(["lint", self.FIXTURES, "--no-baseline"]) == 0
        assert "RPR2" not in capsys.readouterr().out

    def test_stale_baseline_warns_then_prunes(self, tmp_path, capsys):
        tree = tmp_path / "pkg"
        tree.mkdir()
        target = tree / "dirty.py"
        target.write_text("d = 3600.0\n")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(tree), "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        capsys.readouterr()

        target.write_text("x = 1\n")  # the finding is fixed; entry goes stale
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 0
        warned = capsys.readouterr().out
        assert "stale" in warned
        assert "--prune-baseline" in warned

        assert main(["lint", str(tree), "--baseline", str(baseline),
                     "--prune-baseline"]) == 0
        pruned = capsys.readouterr().out
        assert "pruned 1 stale entry" in pruned

        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 0
        assert "stale" not in capsys.readouterr().out


class TestPipedLintOutput:
    """`repro lint | head` must exit cleanly when the reader hangs up."""

    def test_broken_pipe_is_not_a_traceback(self, tmp_path):
        import os
        import subprocess
        import sys

        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "dirty.py").write_text("d = 3600.0\n" * 50)

        read_end, write_end = os.pipe()
        os.close(read_end)  # guarantees EPIPE on the first large write
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "lint", str(tree),
                 "--no-baseline"],
                stdout=write_end, stderr=subprocess.PIPE, env=env,
            )
        finally:
            os.close(write_end)
        assert b"Traceback" not in proc.stderr
        assert b"BrokenPipeError" not in proc.stderr


class TestSanitizerCli:
    """`repro campaign --sanitize` and the hash-aware trace diff."""

    def test_campaign_sanitize_prints_final_hashes(self, capsys):
        assert main(["campaign", "--chips", "2", "--quiet",
                     "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer: 5 phase hashes" in out
        assert "chip-1=" in out and "chip-2=" in out

    def test_sanitized_traces_diff_clean(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            assert main(["campaign", "--chips", "2", "--quiet",
                         "--sanitize", "--trace", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "all 5 phase digests match" in out

    def test_parallel_sanitized_trace_matches_sequential(self, tmp_path, capsys):
        seq, par = tmp_path / "seq.jsonl", tmp_path / "par.jsonl"
        assert main(["campaign", "--chips", "2", "--quiet",
                     "--sanitize", "--trace", str(seq)]) == 0
        assert main(["campaign", "--chips", "2", "--quiet", "--workers", "2",
                     "--sanitize", "--trace", str(par)]) == 0
        capsys.readouterr()
        assert main(["trace", "diff", str(seq), str(par)]) == 0
        assert "all 5 phase digests match" in capsys.readouterr().out


class TestSweepCli:
    @staticmethod
    def spec_file(tmp_path, **overrides):
        import json

        from repro.dependability import LifetimeSettings, SweepSpec

        defaults = dict(
            name="cli-sweep",
            n_chips=1,
            alphas=(1.0, 4.0),
            seeds=(3,),
            lifetime=LifetimeSettings(enabled=False),
        )
        defaults.update(overrides)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SweepSpec(**defaults).to_dict()))
        return str(path)

    def test_init_prints_digest(self, tmp_path, capsys):
        spec = self.spec_file(tmp_path)
        sweep_dir = str(tmp_path / "sweep")
        assert main(["sweep", "init", spec, "--dir", sweep_dir]) == 0
        out = capsys.readouterr().out
        assert "2 cells" in out and "digest" in out
        assert (tmp_path / "sweep" / "sweep.json").exists()

    def test_init_rejects_invalid_spec(self, tmp_path, capsys):
        spec = self.spec_file(tmp_path, alphas=(0.0,))
        assert main(["sweep", "init", spec, "--dir", str(tmp_path / "s")]) == 1
        assert "RPR106" in capsys.readouterr().err

    def test_run_resume_report_lifecycle(self, tmp_path, capsys):
        spec = self.spec_file(tmp_path)
        sweep_dir = str(tmp_path / "sweep")
        run_args = ["--dir", sweep_dir, "--isolation", "inline", "--quiet"]

        assert main(["sweep", "run", spec, *run_args]) == 0
        out = capsys.readouterr().out
        assert "2/2 cells completed" in out
        assert len(list((tmp_path / "sweep" / "cells").glob("*.json"))) == 2

        assert main(["sweep", "resume", *run_args]) == 0
        assert "2/2 cells completed" in capsys.readouterr().out

        report = tmp_path / "sweep.html"
        assert main(["sweep", "report", "--dir", sweep_dir,
                     "--out", str(report)]) == 0
        capsys.readouterr()
        assert report.exists()
        assert report.with_suffix(".json").exists()

    def test_run_with_report_flag(self, tmp_path, capsys):
        spec = self.spec_file(tmp_path)
        report = tmp_path / "dep.html"
        assert main(["sweep", "run", spec, "--dir", str(tmp_path / "s"),
                     "--isolation", "inline", "--quiet",
                     "--report", str(report)]) == 0
        capsys.readouterr()
        assert report.exists()

    def test_missing_spec_file_is_a_config_error(self, tmp_path, capsys):
        assert main(["sweep", "run", str(tmp_path / "nope.json"),
                     "--dir", str(tmp_path / "s")]) == 2
        assert "cannot read sweep spec" in capsys.readouterr().err

    def test_report_without_sweep_directory_fails(self, tmp_path, capsys):
        assert main(["sweep", "report", "--dir", str(tmp_path / "empty")]) == 2
        assert "error:" in capsys.readouterr().err

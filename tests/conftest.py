"""Shared fixtures: fast chips, bias conditions and the session campaign."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bti.conditions import BiasCondition
from repro.bti.traps import TrapParameters
from repro.device.technology import TechnologyParameters
from repro.device.variation import ProcessVariation
from repro.fpga.chip import FpgaChip
from repro.units import celsius


def fast_trap_params(**overrides) -> TrapParameters:
    """Trap parameters with a small population for quick unit tests."""
    defaults = dict(mean_trap_count=12.0)
    defaults.update(overrides)
    return TrapParameters(**defaults)


def fast_technology() -> TechnologyParameters:
    """Technology with small trap populations (fast chip construction)."""
    return TechnologyParameters(
        nbti_traps=fast_trap_params(),
        pbti_traps=fast_trap_params(impact_mean_volts=2.56e-3),
    )


@pytest.fixture
def stress_110() -> BiasCondition:
    """Full-rail stress at the paper's accelerated temperature."""
    return BiasCondition(stress_voltage=1.2, temperature=celsius(110.0))


@pytest.fixture
def recover_110_neg() -> BiasCondition:
    """The paper's best recovery condition: 110 degC at -0.3 V."""
    return BiasCondition(stress_voltage=-0.3, temperature=celsius(110.0))


@pytest.fixture
def small_chip() -> FpgaChip:
    """A 5-stage chip with small trap populations — fast but realistic."""
    return FpgaChip(
        "test-chip",
        n_stages=5,
        tech=fast_technology(),
        variation=ProcessVariation(0.0, 0.0, 0.0),
        seed=123,
    )


@pytest.fixture
def chip_factory():
    """Factory for small chips with custom settings."""

    def make(seed: int = 123, n_stages: int = 5, **kwargs) -> FpgaChip:
        kwargs.setdefault("tech", fast_technology())
        kwargs.setdefault("variation", ProcessVariation(0.0, 0.0, 0.0))
        return FpgaChip(f"chip-seed{seed}", n_stages=n_stages, seed=seed, **kwargs)

    return make


@pytest.fixture(scope="session")
def campaign_result():
    """The full Table-1 campaign, run once per test session (read-only)."""
    from repro.experiments import table1

    return table1.campaign(0)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for noise-consuming tests."""
    return np.random.default_rng(2024)

"""Series container."""

import numpy as np
import pytest

from repro.analysis.series import Series, downsample, nearest_index, resample
from repro.errors import ConfigurationError


def make_series() -> Series:
    return Series("demo", np.array([0.0, 1.0, 2.0, 3.0]), np.array([0.0, 2.0, 3.0, 3.5]))


class TestSeries:
    def test_basic_accessors(self):
        s = make_series()
        assert len(s) == 4
        assert s.final == 3.5
        assert s.peak == 3.5

    def test_interpolation(self):
        assert make_series().at(0.5) == pytest.approx(1.0)

    def test_scaled(self):
        s = make_series().scaled(1e9, units="ns")
        assert s.final == pytest.approx(3.5e9)
        assert s.units == "ns"

    def test_relabeled(self):
        assert make_series().relabeled("other").label == "other"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Series("bad", np.array([0.0, 1.0]), np.array([0.0]))
        with pytest.raises(ConfigurationError):
            Series("bad", np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        with pytest.raises(ConfigurationError):
            Series("bad", np.array([]), np.array([]))


class TestHelpers:
    def test_nearest_index(self):
        assert nearest_index([0.0, 10.0, 20.0], 12.0) == 1

    def test_nearest_index_empty(self):
        with pytest.raises(ConfigurationError):
            nearest_index([], 0.0)

    def test_resample(self):
        s = resample(make_series(), [0.5, 1.5])
        np.testing.assert_allclose(s.values, [1.0, 2.5])

    def test_downsample_keeps_last(self):
        s = Series("d", np.arange(10.0), np.arange(10.0))
        d = downsample(s, 4)
        assert d.times[-1] == 9.0
        assert len(d) == 4  # indices 0, 4, 8, 9

    def test_downsample_validation(self):
        with pytest.raises(ConfigurationError):
            downsample(make_series(), 0)

"""Summary statistics and bootstrap."""

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_ci, summary
from repro.errors import ConfigurationError


class TestSummary:
    def test_values(self):
        s = summary([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_single_value_zero_std(self):
        assert summary([5.0]).std == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            summary([])


class TestBootstrap:
    def test_interval_contains_true_mean(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 1.0, size=200)
        low, high = bootstrap_ci(sample, rng=1)
        assert low < 10.0 < high
        assert high - low < 1.0

    def test_confidence_widens_interval(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(0.0, 1.0, size=50)
        narrow = bootstrap_ci(sample, confidence=0.80, rng=1)
        wide = bootstrap_ci(sample, confidence=0.99, rng=1)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0])
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

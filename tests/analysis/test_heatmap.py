"""ASCII heatmaps."""

import numpy as np
import pytest

from repro.analysis.heatmap import render_heatmap
from repro.errors import ConfigurationError


class TestHeatmap:
    def test_extremes_use_ramp_ends(self):
        text = render_heatmap(np.array([[0.0, 1.0]]), cell_width=1)
        grid_line = text.splitlines()[0]
        assert grid_line[0] == " " and grid_line[1] == "@"

    def test_scale_legend(self):
        text = render_heatmap(np.array([[35.0, 70.0]]))
        assert "35" in text and "70" in text

    def test_labels(self):
        text = render_heatmap(
            np.ones((2, 2)),
            title="temps",
            row_labels=["r0", "r1"],
            col_labels=["c0", "c1"],
        )
        assert "temps" in text
        assert "r0" in text and "r1" in text

    def test_constant_matrix_does_not_crash(self):
        text = render_heatmap(np.full((3, 3), 5.0))
        assert "5" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            render_heatmap(np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            render_heatmap(np.ones((2, 2)), row_labels=["only-one"])
        with pytest.raises(ConfigurationError):
            render_heatmap(np.ones((2, 2)), cell_width=0)

    def test_thermal_field_usage(self):
        # The intended consumer: a 2 x 4 core temperature field.
        from repro.multicore.thermal import ThermalGrid

        grid = ThermalGrid()
        powers = np.array([10.0, 10.0, 0.4, 10.0, 10.0, 10.0, 0.4, 10.0])
        temps = grid.steady_state(powers).reshape(2, 4) - 273.15
        text = render_heatmap(temps, title="die temperature (degC)")
        assert "die temperature" in text

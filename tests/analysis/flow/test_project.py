"""Project model: module inventory, binding tables, import edges."""

from pathlib import Path

import pytest

from repro.analysis.flow import Project
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[3]


@pytest.fixture(scope="module")
def fixture_project():
    return Project.load([FIXTURES], root=REPO_ROOT)


class TestProjectLoad:
    def test_loads_every_fixture_module(self, fixture_project):
        assert {
            "leaky_rng",
            "mini_campaign",
            "mini_faults",
            "rig",
            "worker_state",
        } <= set(fixture_project.modules)

    def test_paths_are_repo_relative(self, fixture_project):
        module = fixture_project.modules["rig"]
        assert module.path == "tests/analysis/flow/fixtures/rig.py"

    def test_src_modules_get_dotted_names(self):
        project = Project.load([REPO_ROOT / "src"], root=REPO_ROOT)
        assert "repro.lab.campaign" in project.modules
        assert "repro.analysis.flow.project" in project.modules

    def test_missing_target_raises(self):
        with pytest.raises(ConfigurationError):
            Project.load([FIXTURES / "no-such-dir"])


class TestBindings:
    def test_import_from_binds_symbol(self, fixture_project):
        binding = fixture_project.modules["rig"].bindings["run_case"]
        assert binding.kind == "symbol"
        assert binding.target == "mini_campaign.run_case"

    def test_local_function_binds_qualified(self, fixture_project):
        binding = fixture_project.modules["mini_faults"].bindings["plan_faults"]
        assert binding.kind == "function"
        assert binding.target == "mini_faults.plan_faults"

    def test_module_level_object_records_constructor(self, fixture_project):
        binding = fixture_project.modules["worker_state"].bindings["SHARED_LOG"]
        assert binding.kind == "object"
        assert binding.target == "DataLog"


class TestResolution:
    def test_symbol_resolves_into_defining_module(self, fixture_project):
        rig = fixture_project.modules["rig"]
        resolved = fixture_project.resolve(rig, "plan_faults")
        assert resolved is not None
        assert resolved.kind == "function"
        assert resolved.target == "mini_faults.plan_faults"

    def test_builtin_names_resolve_to_none(self, fixture_project):
        rig = fixture_project.modules["rig"]
        assert fixture_project.resolve(rig, "enumerate") is None

    def test_import_edges_and_importers(self, fixture_project):
        assert fixture_project.imports["rig"] == {"mini_campaign", "mini_faults"}
        assert fixture_project.importers_of("mini_faults") == ["rig"]

"""The deep-analysis acceptance gate: this repo's tree is determinism-clean.

Mirrors ``tests/analysis/lint/test_self.py`` for the cross-module passes:
every RNG stream in ``src/`` is parameter-threaded and single-owner, and
no worker entry writes shared state outside the merge registry.  If this
fails, so will CI's ``repro lint --deep`` step.
"""

import shutil
from pathlib import Path

from repro.analysis.flow import DEEP_RULE_IDS, analyze_paths
from repro.analysis.lint import apply_baseline, load_baseline, write_baseline

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[3]


class TestRepositoryIsDeterminismClean:
    def test_src_has_no_deep_findings(self):
        result = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert result.findings == [], "\n".join(str(f) for f in result.findings)

    def test_whole_tree_was_analyzed(self):
        result = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert result.files > 90

    def test_every_finding_uses_a_deep_rule_id(self):
        result = analyze_paths([FIXTURES], root=REPO_ROOT)
        assert result.findings
        assert {f.rule_id for f in result.findings} <= set(DEEP_RULE_IDS)


class TestSharedSuppressionMachinery:
    def test_noqa_silences_deep_findings(self, tmp_path):
        source = (FIXTURES / "leaky_rng.py").read_text(encoding="utf-8")
        patched = []
        for line in source.splitlines():
            if "SHARED_STREAM = " in line:
                line += "  # repro: noqa[RPR201]"
            patched.append(line)
        target = tmp_path / "leaky_rng.py"
        target.write_text("\n".join(patched) + "\n", encoding="utf-8")

        result = analyze_paths([target], root=tmp_path)
        assert not any(
            f.rule_id == "RPR201" and "SHARED_STREAM" in f.message
            for f in result.findings
        )
        assert any(
            f.rule_id == "RPR201" and "SHARED_STREAM" in f.message
            for f in result.suppressed
        )

    def test_baseline_round_trip_absorbs_deep_findings(self, tmp_path):
        for name in ("leaky_rng.py", "worker_state.py"):
            shutil.copy(FIXTURES / name, tmp_path / name)
        findings = analyze_paths([tmp_path], root=tmp_path).findings
        assert findings

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        diff = apply_baseline(findings, load_baseline(baseline_path))
        assert diff.new == []
        assert diff.stale == []
        assert len(diff.baselined) == len(findings)

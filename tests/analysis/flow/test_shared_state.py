"""RPR3xx: thread-shared mutable state reachable from worker entries."""

from pathlib import Path

import pytest

from repro.analysis.flow import MergeRegistry, analyze_paths
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[3]


@pytest.fixture(scope="module")
def findings():
    result = analyze_paths([FIXTURES], root=REPO_ROOT)
    return [f for f in result.findings if f.path.endswith("worker_state.py")]


def _only(findings, rule_id):
    flagged = [f for f in findings if f.rule_id == rule_id]
    assert len(flagged) == 1, flagged
    return flagged[0]


class TestSharedStateRules:
    def test_global_write_is_rpr301(self, findings):
        finding = _only(findings, "RPR301")
        assert "RUN_COUNT" in finding.message
        assert "worker_task" in finding.message

    def test_class_attribute_write_is_rpr302(self, findings):
        finding = _only(findings, "RPR302")
        assert "WorkerPool.last_result" in finding.message

    def test_nonlocal_write_is_rpr303(self, findings):
        finding = _only(findings, "RPR303")
        assert "retries" in finding.message

    def test_module_object_mutation_is_rpr304(self, findings):
        flagged = sorted(
            (f for f in findings if f.rule_id == "RPR304"),
            key=lambda f: f.line,
        )
        assert len(flagged) == 2
        assert "RESULTS" in flagged[0].message
        assert ".append" in flagged[0].message
        assert "_TOTALS" in flagged[1].message
        assert "item assignment" in flagged[1].message

    def test_shared_argument_mutation_is_rpr305(self, findings):
        finding = _only(findings, "RPR305")
        assert "'sink'" in finding.message
        assert ".update" in finding.message


class TestMergeExemptions:
    def test_registered_merge_types_are_exempt(self, findings):
        # SHARED_LOG is a DataLog and merging_task annotates its log
        # parameter as DataLog — both merges are deterministic, neither
        # may be flagged.
        assert not any("SHARED_LOG" in f.message for f in findings)
        assert not any("merging_task" in f.message for f in findings)
        assert not any("'log'" in f.message for f in findings)

    def test_custom_registry_silences_a_type(self, tmp_path):
        source = (FIXTURES / "worker_state.py").read_text(encoding="utf-8")
        target = tmp_path / "worker_state.py"
        target.write_text(source, encoding="utf-8")
        default = analyze_paths([target], root=tmp_path).findings
        assert any(f.rule_id == "RPR305" for f in default)

        merges = MergeRegistry.default()
        merges.register("dict", via="update", note="test-only")
        relaxed = analyze_paths([target], root=tmp_path, merges=merges).findings
        # The sink parameter has no annotation, so the dict rule cannot
        # prove anything — but registering a rule must never add noise.
        assert len(relaxed) <= len(default)

    def test_conflicting_registration_raises(self):
        merges = MergeRegistry.default()
        with pytest.raises(ConfigurationError):
            merges.register("DataLog", via="update", note="conflict")

"""Call graph construction, worker-entry discovery and reachability."""

from pathlib import Path

import pytest

from repro.analysis.flow import CallGraph, Project, find_worker_entries

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[3]


@pytest.fixture(scope="module")
def fixture_graph():
    project = Project.load([FIXTURES], root=REPO_ROOT)
    return project, CallGraph.build(project)


class TestCallGraph:
    def test_indexes_functions_and_nested_defs(self, fixture_graph):
        _, graph = fixture_graph
        assert "worker_state.run_all" in graph.functions
        assert "worker_state.worker_task" in graph.functions
        assert "worker_state.worker_task.note_retry" in graph.functions

    def test_methods_indexed_by_bare_name(self, fixture_graph):
        _, graph = fixture_graph
        assert "worker_state.DataLog.merge" in graph.methods_by_name["merge"]

    def test_nested_def_gets_implicit_edge(self, fixture_graph):
        _, graph = fixture_graph
        assert (
            "worker_state.worker_task.note_retry"
            in graph.edges["worker_state.worker_task"]
        )

    def test_cross_module_call_edge(self, fixture_graph):
        _, graph = fixture_graph
        assert "mini_faults.plan_faults" in graph.edges["rig.drive"]
        assert "mini_campaign.run_case" in graph.edges["rig.drive"]


class TestWorkerEntries:
    def test_submit_targets_discovered(self, fixture_graph):
        project, graph = fixture_graph
        entries = find_worker_entries(project, graph)
        assert {entry.qualname for entry in entries} == {
            "worker_state.worker_task",
            "worker_state.merging_task",
        }

    def test_loop_var_args_classified_per_task(self, fixture_graph):
        project, graph = fixture_graph
        entries = {
            entry.qualname: entry for entry in find_worker_entries(project, graph)
        }
        racy = entries["worker_state.worker_task"]
        # index/payload come from the comprehension loop vars; only the
        # sink is shared across tasks.
        assert set(racy.shared_params) == {"sink"}
        merged = entries["worker_state.merging_task"]
        assert set(merged.shared_params) == {"log"}
        assert merged.shared_params["log"] == "DataLog"

    def test_reachability_from_workers(self, fixture_graph):
        _, graph = fixture_graph
        reachable = graph.reachable(["worker_state.worker_task"])
        assert "worker_state.worker_task.note_retry" in reachable
        assert "worker_state.run_all" not in reachable

    def test_real_campaign_workers_are_discovered(self):
        project = Project.load([REPO_ROOT / "src"], root=REPO_ROOT)
        graph = CallGraph.build(project)
        entries = {e.qualname for e in find_worker_entries(project, graph)}
        assert "repro.lab.campaign._run_chip_schedule" in entries
        assert "repro.lab.campaign._resilient_chip_schedule" in entries

"""RPR2xx: RNG stream ownership violations in the fixture rig."""

from pathlib import Path

import pytest

from repro.analysis.flow import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[3]


@pytest.fixture(scope="module")
def findings():
    return analyze_paths([FIXTURES], root=REPO_ROOT).findings


def _rule_lines(findings, rule_id, path_tail):
    return [
        f.line
        for f in findings
        if f.rule_id == rule_id and f.path.endswith(path_tail)
    ]


class TestRngOwnership:
    def test_module_global_stream_is_rpr201(self, findings):
        lines = _rule_lines(findings, "RPR201", "leaky_rng.py")
        flagged = [
            f for f in findings
            if f.rule_id == "RPR201" and "SHARED_STREAM" in f.message
        ]
        assert flagged and flagged[0].line in lines

    def test_global_escape_is_rpr201(self, findings):
        flagged = [
            f for f in findings
            if f.rule_id == "RPR201" and "_installed" in f.message
        ]
        assert len(flagged) == 1
        assert "install_stream" in flagged[0].message

    def test_free_draw_is_rpr203(self, findings):
        flagged = [f for f in findings if f.rule_id == "RPR203"]
        assert len(flagged) == 1
        assert "sample_noise" in flagged[0].message
        assert "SHARED_STREAM" in flagged[0].message

    def test_parameter_threaded_draw_is_clean(self, findings):
        assert not any("sample_owned" in f.message for f in findings)


class TestCrossPathConsumption:
    def test_shared_master_stream_is_rpr202(self, findings):
        flagged = [f for f in findings if f.rule_id == "RPR202"]
        assert len(flagged) == 1
        assert flagged[0].path.endswith("rig.py")
        assert "master_rng" in flagged[0].message
        assert "drive" in flagged[0].message

    def test_spawned_children_are_clean(self, findings):
        assert not any("drive_clean" in f.message for f in findings)


class TestFingerprintStability:
    def test_two_runs_produce_identical_fingerprints(self, findings):
        again = analyze_paths([FIXTURES], root=REPO_ROOT).findings
        assert [f.fingerprint for f in findings] == [f.fingerprint for f in again]

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        # The fingerprint excludes line numbers, so prepending comments
        # (which moves every finding) keeps baselines stable.
        source = (FIXTURES / "leaky_rng.py").read_text(encoding="utf-8")
        target = tmp_path / "leaky_rng.py"
        target.write_text(source, encoding="utf-8")
        original = {
            f.fingerprint for f in analyze_paths([target], root=tmp_path).findings
        }
        target.write_text("# shifted\n# shifted\n" + source, encoding="utf-8")
        shifted = {
            f.fingerprint for f in analyze_paths([target], root=tmp_path).findings
        }
        assert original and original == shifted

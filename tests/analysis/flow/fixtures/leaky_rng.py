"""Deliberate RPR2xx violations: RNG streams that escape their owner.

This module is a lint fixture — it is parsed by the flow analyzer in
tests, never imported or executed.  Every violation below is
intentional; the tests assert each one is caught with a stable
fingerprint.
"""

import numpy as np

# RPR201: a module-global stream is shared (and advanced) by every
# importer — draw order anywhere changes results everywhere.
SHARED_STREAM = np.random.default_rng(1234)

_installed = None


def install_stream(seed):
    """RPR201: the freshly created stream escapes into module state."""
    global _installed
    _installed = np.random.default_rng(seed)
    return _installed


def sample_noise(n):
    """RPR203: draws from a stream that was never threaded through."""
    return SHARED_STREAM.normal(size=n)


def sample_owned(rng, n):
    """Clean counterpart: the stream arrives as a parameter."""
    return rng.normal(size=n)

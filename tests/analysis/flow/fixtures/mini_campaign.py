"""Campaign side of the RPR202 fixture rig (parsed, never run)."""


def run_case(rng, label="case"):
    """One measurement drawn from the stream handed in."""
    return (label, rng.normal())

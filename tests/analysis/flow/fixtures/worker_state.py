"""Deliberate RPR3xx violations: worker-shared mutable state.

This module is a lint fixture — it is parsed by the flow analyzer in
tests, never imported or executed.  ``run_all`` submits ``worker_task``
to a thread pool; everything the worker (and its callees) writes to
shared state below is an intentional violation.  ``run_merged`` is the
clean counterpart: its shared accumulator is a ``DataLog``, whose merge
is registered as deterministic.
"""

from concurrent.futures import ThreadPoolExecutor


class DataLog:
    """Stand-in for repro.lab.datalog.DataLog (merge-registered type)."""

    def merge(self, other):
        """Deterministic chip-order merge."""


class WorkerPool:
    """Carries the class attribute the worker races on."""

    last_result = None


RESULTS = []
_TOTALS = {}
RUN_COUNT = 0
SHARED_LOG = DataLog()


def worker_task(index, payload, sink):
    """The racy worker: RPR301/302/303/304/305 live here."""
    global RUN_COUNT
    retries = 0

    def note_retry():
        """RPR303: workers race on the closure cell."""
        nonlocal retries
        retries = retries + 1

    RUN_COUNT = RUN_COUNT + 1
    RESULTS.append(payload)
    _TOTALS[index] = payload
    WorkerPool.last_result = payload
    sink.update({index: payload})
    note_retry()
    SHARED_LOG.merge(payload)
    return index


def merging_task(index, log: DataLog):
    """Clean worker: the shared accumulator merges deterministically."""
    log.merge(index)
    return index


def run_all(payloads, sink):
    """Submit the racy worker across a pool."""
    with ThreadPoolExecutor() as pool:
        futures = [
            pool.submit(worker_task, i, p, sink) for i, p in enumerate(payloads)
        ]
    return [f.result() for f in futures]


def run_merged(payloads, log: DataLog):
    """Submit the clean worker across a pool."""
    with ThreadPoolExecutor() as pool:
        futures = [pool.submit(merging_task, i, log) for i in range(len(payloads))]
    return [f.result() for f in futures]

"""Fault-injection side of the RPR202 fixture rig (parsed, never run)."""


def plan_faults(rng, n_cases=3):
    """Draw fault times from the stream handed in."""
    return [rng.integers(0, 100) for _ in range(n_cases)]

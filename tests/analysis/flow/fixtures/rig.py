"""Driver of the RPR202 fixture rig: one stream feeds both paths.

Parsed by the flow analyzer in tests, never imported or executed.
"""

from mini_campaign import run_case
from mini_faults import plan_faults


def drive(master_rng):
    """RPR202: the same stream feeds fault planning AND measurement."""
    faults = plan_faults(master_rng)
    record = run_case(master_rng)
    return faults, record


def drive_clean(master_rng):
    """Clean counterpart: independent child streams per path."""
    children = master_rng.spawn(2)
    faults = plan_faults(children[0])
    record = run_case(children[1])
    return faults, record

"""Each built-in rule against a known-bad and a known-good fixture."""

import textwrap

from repro.analysis.lint import lint_source


def _rule_ids(source: str, path: str = "src/repro/fake.py") -> list[str]:
    result = lint_source(textwrap.dedent(source), path)
    return [finding.rule_id for finding in result.findings]


class TestUnitLiteralRule:
    def test_seconds_per_hour_literal_flagged(self):
        assert _rule_ids("duration = 24 * 3600\n") == ["RPR001"]

    def test_zero_celsius_flagged_even_negated(self):
        assert _rule_ids("t_c = t_k - 273.15\n") == ["RPR001"]
        assert _rule_ids("offset = -273.15\n") == ["RPR001"]

    def test_boltzmann_both_spellings_flagged(self):
        assert _rule_ids("k = 8.617e-5\n") == ["RPR001"]
        assert _rule_ids("k = 8.617333262e-5\n") == ["RPR001"]

    def test_day_literal_flagged(self):
        assert _rule_ids("day = 86400.0\n") == ["RPR001"]

    def test_units_module_is_exempt(self):
        assert _rule_ids("HOUR = 3600.0\n", path="src/repro/units.py") == []

    def test_innocent_numbers_pass(self):
        assert _rule_ids("x = 3601\ny = 273.16\nz = 100.0\n") == []

    def test_suggestion_names_the_units_constant(self):
        result = lint_source("d = 3600.0\n", "src/repro/fake.py")
        assert "SECONDS_PER_HOUR" in result.findings[0].suggestion


class TestNondeterminismRule:
    def test_time_time_flagged(self):
        assert _rule_ids("import time\nstart = time.time()\n") == ["RPR002"]

    def test_datetime_now_flagged(self):
        source = "import datetime\nstamp = datetime.datetime.now()\n"
        assert _rule_ids(source) == ["RPR002"]

    def test_stdlib_random_flagged(self):
        assert _rule_ids("import random\nx = random.random()\n") == ["RPR002"]

    def test_numpy_legacy_global_flagged(self):
        assert _rule_ids("import numpy as np\nnp.random.seed(0)\n") == ["RPR002"]
        assert _rule_ids("import numpy as np\nx = np.random.normal()\n") == ["RPR002"]

    def test_seedless_default_rng_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert _rule_ids(source) == ["RPR002"]

    def test_seeded_default_rng_passes(self):
        ok = (
            "import numpy as np\n"
            "rng = np.random.default_rng(seed)\n"
            "rng2 = np.random.default_rng(0)\n"
        )
        assert _rule_ids(ok) == []

    def test_generator_methods_pass(self):
        assert _rule_ids("x = rng.normal(0.0, 1.0)\n") == []

    def test_perf_counter_passes(self):
        # perf_counter is the telemetry clock, not simulation state.
        assert _rule_ids("import time\nt = time.perf_counter()\n") == []

    def test_obs_package_is_allowlisted(self):
        source = "import time\nwall = time.time()\n"
        assert _rule_ids(source, path="src/repro/obs/tracer.py") == []


class TestFloatEqualityRule:
    def test_eq_against_float_literal_flagged(self):
        assert _rule_ids("if x == 0.0:\n    pass\n") == ["RPR003"]

    def test_noteq_against_float_literal_flagged(self):
        assert _rule_ids("ok = value != 1.0\n") == ["RPR003"]

    def test_negative_literal_flagged(self):
        assert _rule_ids("if v == -0.3:\n    pass\n") == ["RPR003"]

    def test_int_literal_passes(self):
        assert _rule_ids("if n == 0:\n    pass\n") == []

    def test_orderings_pass(self):
        assert _rule_ids("if x <= 0.0 or y >= 1.0:\n    pass\n") == []

    def test_chained_comparison_flags_float_leg(self):
        assert _rule_ids("ok = 0 < x == 1.0\n") == ["RPR003"]


class TestCelsiusKelvinRule:
    def test_small_literal_to_temperature_flagged(self):
        assert _rule_ids("pop.evolve(3600.0, 1.2, temperature=110.0)\n") == [
            "RPR001",
            "RPR004",
        ]

    def test_temp_k_keyword_flagged(self):
        assert _rule_ids("f(temp_k=25)\n") == ["RPR004"]

    def test_suffixed_temperature_flagged(self):
        assert _rule_ids("g(sleep_temperature=110.0)\n") == ["RPR004"]

    def test_kelvin_literal_passes(self):
        assert _rule_ids("pop.evolve(1.0, 1.2, temperature=383.15)\n") == []

    def test_celsius_named_parameters_pass(self):
        assert _rule_ids("f(temperature_c=110.0, sleep_temperature_c=20.0)\n") == []

    def test_computed_value_passes(self):
        assert _rule_ids("f(temperature=celsius(110.0))\n") == []


class TestSpanHygieneRule:
    def test_bare_span_call_flagged(self):
        assert _rule_ids("tracer.span('case')\n") == ["RPR005"]

    def test_assigned_span_flagged(self):
        assert _rule_ids("span = self.tracer.span('phase')\n") == ["RPR005"]

    def test_get_tracer_receiver_flagged(self):
        assert _rule_ids("get_tracer().span('x')\n") == ["RPR005"]

    def test_with_block_passes(self):
        source = "with tracer.span('case') as span:\n    span.set('k', 1)\n"
        assert _rule_ids(source) == []

    def test_with_block_on_attribute_receiver_passes(self):
        source = "with self.tracer.span('case'):\n    pass\n"
        assert _rule_ids(source) == []

    def test_unrelated_span_method_passes(self):
        # The JSONL exporter's span(dict) sink is not a context manager.
        assert _rule_ids("self.exporter.span({'type': 'span'})\n") == []


class TestUnguardedExpRule:
    GUARDED = "src/repro/bti/traps.py"

    def test_raw_exp_in_guarded_module_flagged(self):
        assert _rule_ids("y = np.exp(x)\n", path=self.GUARDED) == ["RPR006"]
        assert _rule_ids("y = math.exp(x)\n", path=self.GUARDED) == ["RPR006"]

    def test_all_guarded_trees_covered(self):
        for path in (
            "src/repro/bti/acceleration.py",
            "src/repro/device/delay.py",
            "src/repro/fpga/chip.py",
            "src/repro/multicore/thermal.py",
        ):
            assert _rule_ids("y = np.exp(x)\n", path=path) == ["RPR006"]

    def test_unguarded_modules_exempt(self):
        assert _rule_ids("y = np.exp(x)\n", path="src/repro/core/fitting.py") == []
        assert _rule_ids("y = np.exp(x)\n", path="src/repro/guard/contracts.py") == []

    def test_clamped_exponent_passes(self):
        assert _rule_ids("y = np.exp(np.minimum(x, 700.0))\n", path=self.GUARDED) == []
        assert _rule_ids("y = math.exp(min(x, 700.0))\n", path=self.GUARDED) == []
        assert _rule_ids("y = np.exp(np.clip(x, -700, 700))\n", path=self.GUARDED) == []

    def test_safe_exp_helper_passes(self):
        assert _rule_ids("y = safe_exp(x)\n", path=self.GUARDED) == []

    def test_division_by_exponential_flagged(self):
        findings = _rule_ids("y = 1.0 / np.exp(x)\n", path=self.GUARDED)
        assert findings.count("RPR006") == 2  # the division AND the raw exp

    def test_division_by_safe_exp_still_flagged(self):
        # safe_exp caps overflow, not underflow: 1/safe_exp(-1e6) -> 1/0.0.
        assert _rule_ids("y = 1.0 / safe_exp(x)\n", path=self.GUARDED) == ["RPR006"]

    def test_suggestion_names_the_helpers(self):
        result = lint_source("y = np.exp(x)\n", self.GUARDED)
        assert "safe_exp" in result.findings[0].suggestion


class TestMetricNameRule:
    def test_well_formed_literal_passes(self):
        assert _rule_ids('tracer.counter("bti.trap_updates", "updates")\n') == []
        assert _rule_ids('self.metrics.gauge("campaign.progress")\n') == []
        assert _rule_ids(
            'tracer.histogram("profile.case.meas_per_s", "h")\n'
        ) == []

    def test_single_segment_name_flagged(self):
        assert _rule_ids('tracer.counter("events")\n') == ["RPR007"]

    def test_uppercase_and_hyphen_flagged(self):
        assert _rule_ids('tracer.counter("Lab.Samples")\n') == ["RPR007"]
        assert _rule_ids('tracer.counter("lab.sample-count")\n') == ["RPR007"]

    def test_dynamic_name_flagged(self):
        assert _rule_ids(
            'tracer.counter(f"guard.violations.{contract}")\n'
        ) == ["RPR007"]
        assert _rule_ids("tracer.counter(name)\n") == ["RPR007"]

    def test_name_keyword_is_checked(self):
        assert _rule_ids('tracer.counter(name="BAD")\n') == ["RPR007"]

    def test_non_metric_receivers_ignored(self):
        assert _rule_ids('db.counter("whatever")\n') == []

    def test_obs_layer_is_exempt(self):
        assert _rule_ids(
            "tracer.counter(name)\n", path="src/repro/obs/tracer.py"
        ) == []

    def test_derived_gauge_first_arg_checked(self):
        assert _rule_ids(
            'tracer.derived_gauge("bad", "", "a.b", ("a.b",))\n'
        ) == ["RPR007"]

"""Static experiment validation: real registry clean, broken fixtures caught."""

from dataclasses import dataclass

from repro.analysis.lint import validate_experiments
from repro.lab.schedule import PhaseKind
from repro.lab.thermal_chamber import ThermalChamber


@dataclass
class FakeDescriptor:
    exp_id: str = "FAKE1"
    paper_artifact: str = "Figure X"
    description: str = "a fixture"
    runner: object = staticmethod(lambda: None)
    bench: str = "benchmarks/bench_fig1_behavioral.py"


@dataclass
class FakePhase:
    """Bypasses TestPhase's eager validation to feed the validator junk."""

    label: str = "FAKE"
    kind: PhaseKind = PhaseKind.STRESS
    duration: float = 3600.0
    temperature_c: float = 110.0
    supply_voltage: float = 1.2
    sampling_interval: float = 1200.0


_EMPTY = dict(
    registry={},
    cases=(),
    sequences={},
    knobs={},
    waveforms={},
    extra_phases=(),
)


def _messages(findings):
    return [finding.message for finding in findings]


class TestRealRegistryValidates:
    def test_zero_findings_without_running_a_simulation(self):
        # Imports the registry and Table 1 schedule only; finishes far
        # too fast to have simulated 170 chip-hours.
        assert validate_experiments() == []


class TestDescriptorValidation:
    def _validate(self, descriptor, key=None):
        kwargs = dict(_EMPTY)
        kwargs["registry"] = {key or descriptor.exp_id: descriptor}
        return validate_experiments(**kwargs)

    def test_good_descriptor_passes(self):
        assert self._validate(FakeDescriptor()) == []

    def test_lowercase_id_flagged(self):
        findings = self._validate(FakeDescriptor(exp_id="fig4"), key="fig4")
        assert any("uppercase" in m for m in _messages(findings))

    def test_key_mismatch_flagged(self):
        findings = self._validate(FakeDescriptor(exp_id="FAKE2"), key="FAKE1")
        assert any("registered under" in m for m in _messages(findings))

    def test_empty_description_flagged(self):
        findings = self._validate(FakeDescriptor(description=""))
        assert any("empty description" in m for m in _messages(findings))

    def test_missing_bench_file_flagged(self):
        findings = self._validate(FakeDescriptor(bench="benchmarks/bench_nope.py"))
        assert any("does not exist" in m for m in _messages(findings))

    def test_uncallable_runner_flagged(self):
        findings = self._validate(FakeDescriptor(runner=None))
        assert any("not callable" in m for m in _messages(findings))


class TestScheduleValidation:
    def _validate(self, cases, sequences):
        kwargs = dict(_EMPTY)
        kwargs["cases"] = cases
        kwargs["sequences"] = sequences
        return validate_experiments(**kwargs)

    def test_consistent_schedule_passes(self):
        cases = (("Active (Stress)", "AS110DC24", 1),)
        assert self._validate(cases, {1: ("AS110DC24",)}) == []

    def test_unparseable_case_name_flagged(self):
        findings = self._validate((("g", "BOGUS", 1),), {1: ("BOGUS",)})
        assert any("unrecognised" in m for m in _messages(findings))

    def test_duplicate_case_id_flagged(self):
        cases = (("g", "AS110DC24", 1), ("g", "AS110DC24", 1))
        findings = self._validate(cases, {1: ("AS110DC24",)})
        assert any("duplicate Table 1 case id" in m for m in _messages(findings))

    def test_sequence_case_missing_from_table_flagged(self):
        findings = self._validate(
            (("g", "AS110DC24", 1),), {1: ("AS110DC24", "R20Z6")}
        )
        assert any("not a Table 1 row" in m for m in _messages(findings))

    def test_table_row_missing_from_sequences_flagged(self):
        findings = self._validate(
            (("g", "AS110DC24", 1), ("g", "R20Z6", 1)), {1: ("AS110DC24",)}
        )
        assert any("missing from the chip execution" in m for m in _messages(findings))


class TestPhaseSanity:
    def _validate(self, phase, chamber=None):
        kwargs = dict(_EMPTY)
        kwargs["extra_phases"] = (("fixture", phase),)
        if chamber is not None:
            kwargs["chamber"] = chamber
        return validate_experiments(**kwargs)

    def test_sane_phase_passes(self):
        assert self._validate(FakePhase()) == []

    def test_zero_duration_flagged(self):
        findings = self._validate(FakePhase(duration=0.0))
        assert any("non-positive duration" in m for m in _messages(findings))

    def test_sampling_interval_exceeding_duration_flagged(self):
        findings = self._validate(FakePhase(duration=600.0, sampling_interval=1200.0))
        assert any("exceeds the phase duration" in m for m in _messages(findings))

    def test_positive_supply_recovery_flagged(self):
        phase = FakePhase(kind=PhaseKind.RECOVERY, supply_voltage=1.2)
        findings = self._validate(phase)
        assert any("Vdda <= 0" in m for m in _messages(findings))

    def test_zero_supply_stress_flagged(self):
        findings = self._validate(FakePhase(supply_voltage=0.0))
        assert any("non-positive supply" in m for m in _messages(findings))

    def test_unreachable_temperature_flagged(self):
        findings = self._validate(FakePhase(temperature_c=200.0))
        assert any("outside the thermal chamber" in m for m in _messages(findings))

    def test_chamber_limits_are_respected(self):
        wide = ThermalChamber(min_c=-100.0, max_c=250.0)
        assert self._validate(FakePhase(temperature_c=200.0), chamber=wide) == []


class TestKnobAndWaveformRanges:
    @dataclass
    class FakeKnobs:
        alpha: float = 4.0
        sleep_voltage: float = -0.3
        sleep_temperature_c: float = 110.0

    @dataclass
    class FakeWaveform:
        duty: float = 0.5

    def _validate(self, **overrides):
        kwargs = dict(_EMPTY)
        kwargs.update(overrides)
        return validate_experiments(**kwargs)

    def test_sane_knobs_pass(self):
        assert self._validate(knobs={"K": self.FakeKnobs()}) == []

    def test_nonpositive_alpha_flagged(self):
        findings = self._validate(knobs={"K": self.FakeKnobs(alpha=0.0)})
        assert any("alpha must be positive" in m for m in _messages(findings))

    def test_positive_sleep_voltage_flagged(self):
        findings = self._validate(knobs={"K": self.FakeKnobs(sleep_voltage=1.2)})
        assert any("must be <= 0 V" in m for m in _messages(findings))

    def test_unreachable_sleep_temperature_flagged(self):
        findings = self._validate(knobs={"K": self.FakeKnobs(sleep_temperature_c=400.0)})
        assert any("outside the thermal chamber" in m for m in _messages(findings))

    def test_duty_out_of_range_flagged(self):
        for duty in (0.0, 1.5, -0.1):
            findings = self._validate(waveforms={"W": self.FakeWaveform(duty=duty)})
            assert any("duty factor alpha" in m for m in _messages(findings)), duty

    def test_full_duty_dc_passes(self):
        assert self._validate(waveforms={"W": self.FakeWaveform(duty=1.0)}) == []

"""Engine behaviour: suppression, parse errors, path walking."""

import pytest

from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.lint.engine import noqa_rules_for_line
from repro.errors import ConfigurationError


class TestNoqaSuppression:
    def test_bracketed_noqa_suppresses_that_rule(self):
        result = lint_source("if x == 0.0:  # repro: noqa[RPR003]\n    pass\n", "f.py")
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["RPR003"]
        assert result.suppressed[0].suppressed

    def test_noqa_for_other_rule_does_not_suppress(self):
        result = lint_source("if x == 0.0:  # repro: noqa[RPR001]\n    pass\n", "f.py")
        assert [f.rule_id for f in result.findings] == ["RPR003"]

    def test_bare_noqa_suppresses_everything_on_the_line(self):
        source = "d = 3600.0 if x == 0.0 else 0.0  # repro: noqa\n"
        result = lint_source(source, "f.py")
        assert result.findings == []
        assert {f.rule_id for f in result.suppressed} == {"RPR001", "RPR003"}

    def test_comma_separated_rule_list(self):
        source = "d = 3600.0 if x == 0.0 else 0.0  # repro: noqa[RPR001, RPR003]\n"
        assert lint_source(source, "f.py").findings == []

    def test_plain_ruff_noqa_is_not_ours(self):
        result = lint_source("if x == 0.0:  # noqa\n    pass\n", "f.py")
        assert [f.rule_id for f in result.findings] == ["RPR003"]

    def test_noqa_on_other_line_does_not_leak(self):
        source = "# repro: noqa[RPR003]\nif x == 0.0:\n    pass\n"
        result = lint_source(source, "f.py")
        assert [f.rule_id for f in result.findings] == ["RPR003"]

    @pytest.mark.parametrize(
        "line, expected",
        [
            ("x = 1", None),
            ("x = 1  # repro: noqa", frozenset()),
            ("x = 1  # repro: noqa[RPR001]", frozenset({"RPR001"})),
            ("x = 1  # repro: noqa[rpr001, RPR005]", frozenset({"RPR001", "RPR005"})),
        ],
    )
    def test_noqa_parser(self, line, expected):
        assert noqa_rules_for_line(line) == expected


class TestParseErrors:
    def test_syntax_error_becomes_rpr000(self):
        result = lint_source("def broken(:\n", "bad.py")
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule_id == "RPR000"
        assert finding.path == "bad.py"
        assert "does not parse" in finding.message


class TestLintPaths:
    def test_directory_walk_and_relative_paths(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "clean.py").write_text("x = 1\n")
        (package / "dirty.py").write_text("d = 86400\n")
        result = lint_paths([package], root=tmp_path)
        assert result.files == 2
        assert [f.path for f in result.findings] == ["pkg/dirty.py"]
        assert result.findings[0].line == 1

    def test_pycache_is_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("d = 3600.0\n")
        assert lint_paths([tmp_path], root=tmp_path).findings == []

    def test_missing_target_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            lint_paths([tmp_path / "nope"], root=tmp_path)

    def test_single_file_target(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("t = 273.15\n")
        result = lint_paths([target], root=tmp_path)
        assert [f.rule_id for f in result.findings] == ["RPR001"]

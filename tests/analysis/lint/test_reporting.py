"""Text and JSON reporters."""

import json

from repro.analysis.lint import apply_baseline, lint_source, render_json, render_text
from repro.analysis.lint.baseline import Baseline, BaselineDiff


def _diff(source: str = "d = 3600.0\nif x == 0.0:\n    pass\n"):
    result = lint_source(source, "src/repro/fake.py")
    return apply_baseline(result.findings, Baseline()), result.suppressed


class TestTextReport:
    def test_one_line_per_finding_with_location(self):
        diff, suppressed = _diff()
        text = render_text(diff, suppressed)
        lines = text.splitlines()
        assert lines[0].startswith("src/repro/fake.py:1: RPR001")
        assert lines[1].startswith("src/repro/fake.py:2: RPR003")
        assert lines[-1] == "2 findings"

    def test_summary_counts_suppressed_and_baselined(self):
        result = lint_source(
            "d = 3600.0  # repro: noqa[RPR001]\n", "src/repro/fake.py"
        )
        diff = apply_baseline(result.findings, Baseline())
        text = render_text(diff, result.suppressed)
        assert "0 findings" in text and "1 suppressed" in text

    def test_stale_entries_mention_prune_baseline(self):
        diff = BaselineDiff(
            new=[],
            baselined=[],
            stale=[{"rule": "RPR001", "path": "a.py", "line": 3, "message": "m"}],
        )
        text = render_text(diff)
        assert "stale baseline entry" in text
        assert "--prune-baseline" in text


class TestJsonReport:
    def test_payload_shape(self):
        diff, suppressed = _diff()
        payload = json.loads(render_json(diff, suppressed))
        assert payload["ok"] is False
        assert payload["baselined"] == 0 and payload["suppressed"] == 0
        first = payload["findings"][0]
        assert set(first) == {
            "rule", "severity", "path", "line", "message", "suggestion", "fingerprint",
        }
        assert first["rule"] == "RPR001" and first["severity"] == "error"

    def test_clean_run_is_ok(self):
        diff = apply_baseline([], Baseline())
        payload = json.loads(render_json(diff))
        assert payload["ok"] is True and payload["findings"] == []

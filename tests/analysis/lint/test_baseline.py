"""Baseline round trip, drift tolerance, and stale detection."""

import json

import pytest

from repro.analysis.lint import (
    apply_baseline,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.baseline import Baseline
from repro.errors import ConfigurationError


def _findings(source: str, path: str = "src/repro/fake.py"):
    return lint_source(source, path).findings


class TestBaselineRoundTrip:
    def test_written_baseline_absorbs_the_findings(self, tmp_path):
        findings = _findings("d = 3600.0\n")
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        diff = apply_baseline(findings, load_baseline(path))
        assert diff.new == []
        assert len(diff.baselined) == 1
        assert diff.stale == []

    def test_line_drift_stays_baselined(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, _findings("d = 3600.0\n"))
        # Same finding, pushed two lines down by unrelated edits.
        moved = _findings("# comment\nx = 1\nd = 3600.0\n")
        diff = apply_baseline(moved, load_baseline(path))
        assert diff.new == [] and len(diff.baselined) == 1

    def test_new_finding_gates(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, _findings("d = 3600.0\n"))
        grown = _findings("d = 3600.0\nt = 273.15\n")
        diff = apply_baseline(grown, load_baseline(path))
        assert [f.rule_id for f in diff.new] == ["RPR001"]
        assert "273.15" in diff.new[0].message

    def test_fixed_finding_reports_stale_entry(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, _findings("d = 3600.0\n"))
        diff = apply_baseline([], load_baseline(path))
        assert diff.new == [] and diff.baselined == []
        assert len(diff.stale) == 1
        assert diff.stale[0]["rule"] == "RPR001"

    def test_duplicate_findings_need_matching_multiplicity(self, tmp_path):
        two = _findings("a = 3600.0\nb = 3600.0\n")
        # Identical fingerprints (same rule, path, message) — multiset.
        assert two[0].fingerprint == two[1].fingerprint
        path = tmp_path / "baseline.json"
        write_baseline(path, two[:1])
        diff = apply_baseline(two, load_baseline(path))
        assert len(diff.baselined) == 1 and len(diff.new) == 1

    def test_empty_baseline_gates_everything(self):
        diff = apply_baseline(_findings("d = 3600.0\n"), Baseline())
        assert len(diff.new) == 1


class TestBaselineFile:
    def test_file_is_sorted_and_versioned(self, tmp_path):
        findings = _findings("t = 273.15\nd = 3600.0\n")
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        lines = [entry["line"] for entry in payload["entries"]]
        assert lines == sorted(lines)

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_baseline(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ConfigurationError, match="version"):
            load_baseline(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_baseline(tmp_path / "absent.json")

    def test_entry_without_fingerprint_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": [{"rule": "RPR001"}]}))
        with pytest.raises(ConfigurationError, match="fingerprint"):
            load_baseline(path)

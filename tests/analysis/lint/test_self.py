"""The acceptance gate, as a test: this repo lints clean.

Every finding in ``src/`` is either fixed, suppressed with a documented
``# repro: noqa[RULE]``, or recorded in the committed baseline — and the
registered experiments validate statically.  If this test fails, so
will CI's ``repro lint`` step.
"""

from pathlib import Path

from repro.analysis.lint import (
    apply_baseline,
    lint_paths,
    load_baseline,
    validate_experiments,
)

REPO_ROOT = Path(__file__).resolve().parents[3]


class TestRepositoryLintsClean:
    def test_src_has_no_non_baselined_findings(self):
        result = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        diff = apply_baseline(result.findings, baseline)
        assert diff.new == [], "\n".join(str(f) for f in diff.new)

    def test_baseline_has_no_stale_entries(self):
        result = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        diff = apply_baseline(result.findings, baseline)
        assert diff.stale == [], "prune with: python -m repro lint --write-baseline"

    def test_registered_experiments_validate_statically(self):
        findings = validate_experiments(repo_root=REPO_ROOT)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_whole_tree_was_linted(self):
        # Guards against the walk silently skipping the package.
        result = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert result.files > 90

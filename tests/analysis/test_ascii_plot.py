"""ASCII line plots."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import line_plot
from repro.analysis.series import Series
from repro.errors import ConfigurationError


def make_series(label="s", n=20) -> Series:
    t = np.linspace(0.0, 10.0, n)
    return Series(label, t, np.log1p(t))


class TestLinePlot:
    def test_contains_markers_and_legend(self):
        text = line_plot([make_series("wearout")], title="demo")
        assert "demo" in text
        assert "*" in text
        assert "wearout" in text

    def test_multiple_series_distinct_markers(self):
        a = make_series("a")
        b = Series("b", a.times, a.values * 2.0)
        text = line_plot([a, b])
        assert "*" in text and "o" in text
        assert "a" in text and "b" in text

    def test_axis_ticks_present(self):
        text = line_plot([make_series()], y_label="dTd")
        assert "dTd" in text
        assert "0" in text and "10" in text

    def test_dimensions(self):
        text = line_plot([make_series()], width=30, height=8)
        plot_rows = [l for l in text.splitlines() if "|" in l]
        assert len(plot_rows) == 8

    def test_flat_series_does_not_crash(self):
        flat = Series("flat", np.array([0.0, 1.0]), np.array([2.0, 2.0]))
        assert "flat" in line_plot([flat])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_plot([])
        with pytest.raises(ConfigurationError):
            line_plot([make_series()], width=5)
        with pytest.raises(ConfigurationError):
            line_plot([make_series(str(i)) for i in range(9)])

"""CSV export."""

import csv

import numpy as np
import pytest

from repro.analysis.export import write_series_csv, write_table_csv
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.errors import ConfigurationError


class TestSeriesExport:
    def test_long_format(self, tmp_path):
        a = Series("a", np.array([0.0, 1.0]), np.array([1.0, 2.0]), units="ns")
        b = Series("b", np.array([0.0]), np.array([3.0]), units="ns")
        path = tmp_path / "series.csv"
        write_series_csv(path, [a, b])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["label", "time_s", "value", "units"]
        assert len(rows) == 4
        assert rows[3][0] == "b"

    def test_values_roundtrip_exactly(self, tmp_path):
        value = 1.2345678901234567e-9
        s = Series("x", np.array([0.0]), np.array([value]))
        path = tmp_path / "x.csv"
        write_series_csv(path, [s])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert float(rows[1][2]) == value

    def test_rejects_empty_list(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_series_csv(tmp_path / "nope.csv", [])


class TestTableExport:
    def test_header_and_rows(self, tmp_path):
        table = Table("T", ["case", "value"])
        table.add_row("AR110N6", 72.4)
        path = tmp_path / "table.csv"
        write_table_csv(path, table)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["case", "value"]
        assert rows[1] == ["AR110N6", "72.4"]

"""ASCII tables."""

import pytest

from repro.analysis.tables import Table, format_paper_comparison
from repro.errors import ConfigurationError


class TestTable:
    def test_render_alignment(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 4.0)
        table.add_row("beta", 0.5)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]

    def test_float_formatting(self):
        table = Table("T", ["x"], fmt="{:.1f}")
        table.add_row(3.14159)
        assert "3.1" in table.render()

    def test_bool_rendering(self):
        table = Table("T", ["ok"])
        table.add_row(True)
        table.add_row(False)
        text = table.render()
        assert "yes" in text and "no" in text

    def test_row_width_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_empty_table_renders_header(self):
        text = Table("Empty", ["col"]).render()
        assert "Empty" in text and "col" in text

    def test_print_smoke(self, capsys):
        table = Table("T", ["x"])
        table.add_row(1)
        table.print()
        assert "T" in capsys.readouterr().out


class TestPaperComparison:
    def test_columns(self):
        text = format_paper_comparison(
            "Fig. 4", [("AC/DC ratio", "~0.5", 0.55)]
        )
        assert "paper" in text and "measured" in text
        assert "~0.5" in text and "0.550" in text

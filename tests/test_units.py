"""Units and conversions."""


import math

import pytest

from repro import units
from repro.errors import ConfigurationError


def test_celsius_to_kelvin():
    assert units.celsius(0.0) == pytest.approx(273.15)
    assert units.celsius(110.0) == pytest.approx(383.15)


def test_celsius_roundtrip():
    assert units.to_celsius(units.celsius(37.5)) == pytest.approx(37.5)


def test_celsius_below_absolute_zero_rejected():
    with pytest.raises(ConfigurationError):
        units.celsius(-300.0)
    with pytest.raises(ConfigurationError):
        units.celsius(-273.15)  # exactly absolute zero is unphysical too
    with pytest.raises(ConfigurationError):
        units.celsius(math.nan)


def test_to_celsius_rejects_nonpositive_kelvin():
    with pytest.raises(ConfigurationError):
        units.to_celsius(0.0)
    with pytest.raises(ConfigurationError):
        units.to_celsius(-5.0)
    with pytest.raises(ConfigurationError):
        units.to_celsius(math.nan)
    assert units.to_celsius(273.15) == pytest.approx(0.0)


@pytest.mark.parametrize(
    "helper", [units.hours, units.minutes, units.days, units.nanoseconds]
)
def test_duration_helpers_reject_negative(helper):
    with pytest.raises(ConfigurationError):
        helper(-1.0)
    with pytest.raises(ConfigurationError):
        helper(math.nan)
    assert helper(0.0) == 0.0


def test_hours_minutes_days():
    assert units.hours(1.0) == 3600.0
    assert units.minutes(20.0) == 1200.0
    assert units.days(2.0) == 172800.0
    assert units.to_hours(units.hours(7.25)) == pytest.approx(7.25)


def test_nanoseconds_roundtrip():
    assert units.to_nanoseconds(units.nanoseconds(0.7)) == pytest.approx(0.7)


def test_megahertz_roundtrip():
    assert units.to_megahertz(units.megahertz(3.2)) == pytest.approx(3.2)


def test_millivolts_roundtrip():
    assert units.to_millivolts(units.millivolts(-300.0)) == pytest.approx(-300.0)


def test_boltzmann_constant_ev():
    # kT at room temperature is the textbook ~25.9 meV.
    assert units.BOLTZMANN_EV * units.celsius(27.0) == pytest.approx(0.02585, rel=1e-3)


def test_seconds_per_year():
    assert units.SECONDS_PER_YEAR == pytest.approx(365.25 * 86400)

"""Unit tests for the runtime physics-contract layer (repro.guard)."""

import json
import math

import numpy as np
import pytest

from repro.errors import ChipDropoutError, ConfigurationError, PhysicsViolationError
from repro.guard import (
    EXP_MAX,
    Guard,
    GuardConfig,
    GuardMode,
    get_guard,
    read_bundle,
    safe_exp,
    safe_exp_array,
    set_guard,
    use_guard,
    write_bundle,
)
from repro.obs import Tracer


class TestGuardConfig:
    def test_mode_accepts_strings(self):
        assert GuardConfig(mode="clamp").mode is GuardMode.CLAMP
        assert GuardConfig(mode="raise").mode is GuardMode.RAISE
        assert GuardConfig(mode="off").mode is GuardMode.OFF

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            GuardConfig(mode="maybe")

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            GuardConfig(violation_budget=-1)

    def test_negative_atol_rejected(self):
        with pytest.raises(ConfigurationError):
            GuardConfig(atol=-1e-9)


class TestSafeExp:
    def test_matches_exp_in_the_ordinary_range(self):
        for x in (-5.0, 0.0, 1.0, 100.0):
            assert safe_exp(x) == math.exp(x)

    def test_huge_exponent_saturates_finite(self):
        assert math.isfinite(safe_exp(1e6))
        assert safe_exp(1e6) == math.exp(EXP_MAX)

    def test_huge_negative_underflows_to_zero(self):
        assert safe_exp(-1e6) == 0.0

    def test_array_variant_saturates_elementwise(self):
        out = safe_exp_array(np.array([-1e6, 0.0, 1e6]))
        assert out[0] == 0.0
        assert out[1] == 1.0
        assert math.isfinite(out[2])


class TestRaiseMode:
    def test_array_violation_raises_typed_error(self):
        guard = Guard(GuardConfig(mode="raise", dump_dir=None))
        with pytest.raises(PhysicsViolationError) as excinfo:
            guard.check_array("bti.occupancy", np.array([0.5, 1.5]), 0.0, 1.0)
        assert excinfo.value.contract == "bti.occupancy"

    def test_nan_caught_even_inside_bounds(self):
        guard = Guard(GuardConfig(mode="raise", dump_dir=None))
        with pytest.raises(PhysicsViolationError):
            guard.check_array("bti.occupancy", np.array([0.5, float("nan")]), 0.0, 1.0)

    def test_inf_caught_against_infinite_upper_bound(self):
        guard = Guard(GuardConfig(mode="raise", dump_dir=None))
        with pytest.raises(PhysicsViolationError):
            guard.check_array("bti.rate", np.array([math.inf]), 0.0, math.inf)

    def test_scalar_and_positive_checks(self):
        guard = Guard(GuardConfig(mode="raise", dump_dir=None))
        assert guard.check_scalar("fpga.path_delay", 1.0, 0.5, 2.0) == 1.0
        with pytest.raises(PhysicsViolationError):
            guard.check_scalar("fpga.path_delay", 0.1, 0.5, 2.0)
        assert guard.positive_scalar("fpga.frequency", 5.0) == 5.0
        with pytest.raises(PhysicsViolationError):
            guard.positive_scalar("fpga.frequency", -1.0)
        with pytest.raises(PhysicsViolationError):
            guard.positive_scalar("fpga.frequency", float("nan"))

    def test_dust_within_tolerance_passes_untouched(self):
        guard = Guard(GuardConfig(mode="raise", dump_dir=None, atol=1e-9))
        values = np.array([0.0 - 1e-12, 1.0 + 1e-12])
        out = guard.check_array("bti.occupancy", values, 0.0, 1.0)
        assert out is values  # not copied, not snapped

    def test_bundle_written_on_violation(self, tmp_path):
        guard = Guard(GuardConfig(mode="raise", dump_dir=str(tmp_path)), owner="chip-9")
        bad = np.array([2.0])
        with pytest.raises(PhysicsViolationError) as excinfo:
            guard.check_array(
                "bti.occupancy", bad, 0.0, 1.0, inputs={"duty": 0.5}
            )
        bundle = read_bundle(excinfo.value.bundle_path)
        assert bundle.contract == "bti.occupancy"
        assert bundle.owner == "chip-9"
        assert bundle.inputs["duty"] == 0.5
        assert bundle.arrays["values"][0] == 2.0


class TestClampMode:
    def test_repairs_in_place_and_counts(self):
        tracer = Tracer()
        guard = Guard(GuardConfig(mode="clamp", dump_dir=None), tracer=tracer)
        values = np.array([-0.5, 0.5, 1.5, float("nan"), math.inf])
        out = guard.check_array("bti.occupancy", values, 0.0, 1.0)
        assert out is values
        np.testing.assert_array_equal(out, [0.0, 0.5, 1.0, 0.0, 1.0])
        assert guard.violations == 1
        assert tracer.metrics.value("guard.violations.bti.occupancy") == 1.0

    def test_scalar_clamped_to_domain(self):
        guard = Guard(GuardConfig(mode="clamp", dump_dir=None))
        assert guard.check_scalar("device.dvth", -0.1, 0.0, 1.0) == 0.0
        assert guard.check_scalar("device.dvth", float("nan"), 0.0, 1.0) == 0.0
        assert guard.positive_scalar("fpga.frequency", -3.0, clamp_to=0.0) == 0.0

    def test_budget_exhaustion_raises_dropout(self):
        guard = Guard(
            GuardConfig(mode="clamp", violation_budget=1, dump_dir=None),
            owner="chip-3",
        )
        guard.check_array("bti.occupancy", np.array([1.5]), 0.0, 1.0)
        with pytest.raises(ChipDropoutError) as excinfo:
            guard.check_array("bti.occupancy", np.array([1.5]), 0.0, 1.0)
        assert "chip-3" in str(excinfo.value)

    def test_span_annotated_with_violation(self):
        tracer = Tracer()
        guard = Guard(GuardConfig(mode="clamp", dump_dir=None), tracer=tracer)
        with tracer.span("case") as span:
            guard.check_array("bti.occupancy", np.array([1.5]), 0.0, 1.0)
        assert span.attributes["guard_violations"] == 1
        assert span.attributes["guard_contract"] == "bti.occupancy"


class TestOffMode:
    def test_no_checking_no_mutation(self):
        guard = Guard(GuardConfig(mode="off"))
        assert not guard.checking
        values = np.array([float("nan"), 5.0])
        out = guard.check_array("bti.occupancy", values, 0.0, 1.0)
        assert out is values
        assert math.isnan(out[0])
        assert guard.violations == 0


class TestAmbientGuard:
    def test_default_guard_raises_without_dumping(self):
        guard = get_guard()
        assert guard.mode is GuardMode.RAISE
        assert guard.config.dump_dir is None

    def test_set_and_reset(self):
        original = get_guard()
        replacement = Guard(GuardConfig(mode="off"))
        set_guard(replacement)
        try:
            assert get_guard() is replacement
        finally:
            set_guard(None)
        assert get_guard() is original

    def test_use_guard_scopes_and_restores(self):
        original = get_guard()
        scoped = Guard(GuardConfig(mode="clamp", dump_dir=None))
        with use_guard(scoped):
            assert get_guard() is scoped
        assert get_guard() is original


class TestBundles:
    def test_roundtrip_inputs_and_arrays(self, tmp_path):
        path = write_bundle(
            tmp_path,
            contract="bti.occupancy",
            owner="chip-1",
            message="occupancy out of [0, 1]",
            inputs={"duty": 0.5, "n": np.int64(3)},
            arrays={"occupancy": np.array([2.0, float("nan")])},
        )
        bundle = read_bundle(path)
        assert bundle.contract == "bti.occupancy"
        assert bundle.inputs == {"duty": 0.5, "n": 3}
        assert np.isnan(bundle.arrays["occupancy"][1])

    def test_sequential_names_never_collide(self, tmp_path):
        first = write_bundle(tmp_path, contract="c.x", owner="chip-1")
        second = write_bundle(tmp_path, contract="c.x", owner="chip-1")
        assert first != second
        assert first.name.endswith("-000")
        assert second.name.endswith("-001")

    def test_violation_json_is_sorted_and_parseable(self, tmp_path):
        path = write_bundle(
            tmp_path, contract="c.x", owner="o", inputs={"b": 2, "a": 1}
        )
        payload = json.loads((path / "violation.json").read_text())
        assert payload["inputs"] == {"a": 1, "b": 2}

"""Guard integration across the campaign engine and the model stack."""

import numpy as np
import pytest

from repro.errors import PhysicsViolationError
from repro.guard import Guard, GuardConfig, GuardMode, use_guard
from repro.lab.campaign import run_table1_campaign
from repro.lab.faults import FaultEvent, FaultKind, FaultPlan
from repro.units import celsius, hours

SEED = 11
N_CHIPS = 2


def _records(result):
    return list(result.log)


class TestBitIdentityAcrossModes:
    """A healthy campaign must not notice the guards at all."""

    def test_all_guard_modes_match_the_unguarded_run(self):
        reference = run_table1_campaign(seed=SEED, n_chips=N_CHIPS)
        for mode in ("raise", "clamp", "off"):
            guarded = run_table1_campaign(
                seed=SEED,
                n_chips=N_CHIPS,
                guard=GuardConfig(mode=mode, dump_dir=None),
            )
            assert _records(guarded) == _records(reference), mode
            assert guarded.fresh_delays == reference.fresh_delays

    def test_parallel_matches_sequential_under_guard(self):
        for mode in ("raise", "clamp", "off"):
            config = GuardConfig(mode=mode, dump_dir=None)
            sequential = run_table1_campaign(
                seed=SEED, n_chips=N_CHIPS, guard=config
            )
            parallel = run_table1_campaign(
                seed=SEED, n_chips=N_CHIPS, workers=2, guard=config
            )
            assert _records(parallel) == _records(sequential), mode


class TestFaultedCampaign:
    UPSET = FaultPlan(
        [
            FaultEvent(
                kind=FaultKind.TRAP_UPSET,
                chip_id="chip-1",
                start=hours(1.0),
                magnitude=float("nan"),
            )
        ]
    )

    def test_clamp_mode_completes_despite_upset(self):
        result = run_table1_campaign(
            seed=SEED,
            n_chips=N_CHIPS,
            faults=self.UPSET,
            guard=GuardConfig(mode="clamp", dump_dir=None),
        )
        assert result.complete
        assert not result.quarantined

    def test_raise_mode_fails_fast(self, tmp_path):
        with pytest.raises(PhysicsViolationError) as excinfo:
            run_table1_campaign(
                seed=SEED,
                n_chips=N_CHIPS,
                faults=self.UPSET,
                guard=GuardConfig(mode="raise", dump_dir=str(tmp_path)),
            )
        assert excinfo.value.contract == "bti.occupancy"
        assert excinfo.value.bundle_path is not None

    def test_unstruck_chip_identical_to_clean_run(self):
        clean = run_table1_campaign(seed=SEED, n_chips=N_CHIPS)
        faulted = run_table1_campaign(
            seed=SEED,
            n_chips=N_CHIPS,
            faults=self.UPSET,
            guard=GuardConfig(mode="clamp", dump_dir=None),
        )
        chip2_clean = [r for r in clean.log if r.chip_id == "chip-2"]
        chip2_faulted = [r for r in faulted.log if r.chip_id == "chip-2"]
        assert chip2_faulted == chip2_clean


class TestModelStackHooks:
    """Each guarded entry point trips on corrupted state."""

    def test_chip_evolve_trips_on_injected_nan(self):
        from repro.device.variation import ProcessVariation
        from repro.fpga.chip import FpgaChip

        chip = FpgaChip(
            "hook-test",
            n_stages=25,
            variation=ProcessVariation(),
            seed=0,
            guard=Guard(GuardConfig(mode="raise", dump_dir=None)),
        )
        chip.inject_trap_upset(float("nan"))
        with pytest.raises(PhysicsViolationError):
            chip.apply_stress(
                hours(1.0), temperature=celsius(110.0), supply_voltage=1.2
            )

    def test_chip_clamp_mode_repairs_injected_upset(self):
        from repro.device.variation import ProcessVariation
        from repro.fpga.chip import FpgaChip

        guard = Guard(GuardConfig(mode="clamp", dump_dir=None))
        chip = FpgaChip(
            "hook-clamp",
            n_stages=25,
            variation=ProcessVariation(),
            seed=0,
            guard=guard,
        )
        chip.inject_trap_upset(2.5)
        chip.apply_stress(hours(1.0), temperature=celsius(110.0), supply_voltage=1.2)
        assert guard.violations >= 1
        assert chip.oscillation_frequency() > 0.0

    def test_delay_model_clamps_dvth_in_clamp_mode(self):
        from repro.device.delay import AlphaPowerDelayModel

        model = AlphaPowerDelayModel(vdd=1.1, vth0=0.45)
        with use_guard(Guard(GuardConfig(mode="clamp", dump_dir=None))):
            shift = model.delay_shift(1e-9, np.array([-0.05, 0.05]))
            assert np.all(np.isfinite(shift))
            assert shift[0] == 0.0  # negative dVth clamped to the fresh corner

    def test_delay_model_raises_on_negative_dvth_in_raise_mode(self):
        from repro.device.delay import AlphaPowerDelayModel

        model = AlphaPowerDelayModel(vdd=1.1, vth0=0.45)
        with use_guard(Guard(GuardConfig(mode="raise", dump_dir=None))):
            with pytest.raises(PhysicsViolationError):
                model.delay_shift(1e-9, np.array([-0.05]))

    def test_thermal_grid_guard_bounds_temperatures(self):
        from repro.multicore.thermal import ThermalGrid

        grid = ThermalGrid(guard=Guard(GuardConfig(mode="raise", dump_dir=None)))
        with pytest.raises(PhysicsViolationError):
            # Megawatt per core: steady state far beyond the 1000 K cap.
            grid.steady_state(np.full(grid.n_cores, 1e6))

    def test_guard_mode_enum_coercion(self):
        assert GuardMode.coerce("clamp") is GuardMode.CLAMP
        assert GuardMode.coerce(GuardMode.OFF) is GuardMode.OFF

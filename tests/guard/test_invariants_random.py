"""Property-style randomized invariant tests (seeded, deterministic).

Each test drives a model through a seeded-random schedule with the
ambient guard in raise mode: the assertion is partly explicit (the
values stay in domain) and partly implicit (no
:class:`~repro.errors.PhysicsViolationError` escapes, i.e. the runtime
contracts agree the trajectory never left the physical envelope).
"""

import numpy as np

from repro.bti.traps import CyclePhase, TrapParameters, TrapPopulation
from repro.device.variation import ProcessVariation
from repro.fpga.chip import FpgaChip
from repro.fpga.ring_oscillator import StressMode
from repro.units import celsius, hours, minutes

N_SCHEDULES = 20


def _population(seed: int) -> TrapPopulation:
    return TrapPopulation(TrapParameters(mean_trap_count=40.0), n_owners=8, rng=seed)


class TestOccupancyDomain:
    def test_random_schedules_stay_in_unit_interval(self):
        rng = np.random.default_rng(2024)
        for trial in range(N_SCHEDULES):
            pop = _population(seed=trial)
            for _ in range(int(rng.integers(3, 10))):
                pop.evolve(
                    duration=float(rng.uniform(minutes(1.0), hours(48.0))),
                    stress_voltage=float(rng.uniform(-0.5, 0.5)),
                    temperature=float(rng.uniform(celsius(-40.0), celsius(150.0))),
                    duty=float(rng.uniform(0.0, 1.0)),
                    relax_voltage=float(rng.uniform(-0.3, 0.0)),
                )
                occupancy = pop.snapshot().occupancy
                assert np.all(occupancy >= 0.0)
                assert np.all(occupancy <= 1.0)

    def test_per_owner_voltage_vectors_stay_in_domain(self):
        rng = np.random.default_rng(7)
        pop = _population(seed=99)
        for _ in range(10):
            pop.evolve(
                duration=float(rng.uniform(minutes(10.0), hours(6.0))),
                stress_voltage=rng.uniform(-0.5, 0.5, size=pop.n_owners),
                temperature=float(rng.uniform(celsius(0.0), celsius(125.0))),
            )
            occupancy = pop.snapshot().occupancy
            assert np.all((occupancy >= 0.0) & (occupancy <= 1.0))


class TestCycleCompositionDomain:
    def test_closed_form_never_leaves_domain(self):
        rng = np.random.default_rng(4242)
        for trial in range(N_SCHEDULES):
            pop = _population(seed=1000 + trial)
            phases = [
                CyclePhase(
                    duration=float(rng.uniform(minutes(1.0), hours(2.0))),
                    stress_voltage=float(rng.uniform(-0.4, 0.4)),
                    temperature=float(rng.uniform(celsius(20.0), celsius(120.0))),
                    duty=float(rng.uniform(0.1, 1.0)),
                )
                for _ in range(int(rng.integers(1, 4)))
            ]
            pop.evolve_cycles(phases, n=int(rng.integers(1, 100_000)))
            occupancy = pop.snapshot().occupancy
            assert np.all((occupancy >= 0.0) & (occupancy <= 1.0))

    def test_compressed_matches_stepped_within_domain(self):
        phases = [
            CyclePhase(
                duration=hours(1.0),
                stress_voltage=0.3,
                temperature=celsius(110.0),
            ),
            CyclePhase(
                duration=hours(1.0),
                stress_voltage=-0.3,
                temperature=celsius(110.0),
            ),
        ]
        fast = _population(seed=5)
        slow = _population(seed=5)
        fast.evolve_cycles(phases, n=50)
        for _ in range(50):
            for phase in phases:
                slow.evolve(
                    phase.duration,
                    phase.stress_voltage,
                    phase.temperature,
                    duty=phase.duty,
                    relax_voltage=phase.relax_voltage,
                )
        np.testing.assert_allclose(
            fast.snapshot().occupancy, slow.snapshot().occupancy, rtol=1e-9
        )


class TestFrequencyPositivity:
    def test_random_valid_knobs_keep_frequency_positive(self):
        rng = np.random.default_rng(31337)
        for trial in range(8):
            chip = FpgaChip(
                f"prop-{trial}",
                n_stages=25,
                variation=ProcessVariation(),
                seed=int(rng.integers(2**31)),
            )
            fresh = chip.oscillation_frequency()
            assert fresh > 0.0
            for _ in range(int(rng.integers(2, 6))):
                if rng.random() < 0.6:
                    chip.apply_stress(
                        float(rng.uniform(minutes(30.0), hours(24.0))),
                        temperature=float(rng.uniform(celsius(25.0), celsius(125.0))),
                        supply_voltage=float(rng.uniform(0.9, 1.3)),
                        mode=StressMode.DC if rng.random() < 0.5 else StressMode.AC,
                    )
                else:
                    chip.apply_recovery(
                        float(rng.uniform(minutes(30.0), hours(12.0))),
                        temperature=float(rng.uniform(celsius(25.0), celsius(125.0))),
                        supply_voltage=float(rng.uniform(-0.5, 0.0)),
                    )
                frequency = chip.oscillation_frequency()
                assert frequency > 0.0
                # Degradation never drives the chip faster than fresh.
                assert frequency <= fresh * (1.0 + 1e-9)
                assert chip.path_delay() >= chip.fresh_path_delay * (1.0 - 1e-9)

"""Virtual 40 nm FPGA substrate: LUTs, routing, ring oscillator, chips.

This package is the stand-in for the paper's commercial FPGA hardware: a
transistor-level model of the pass-transistor 2-input LUT (paper Fig. 2),
the routing between LUTs, the 75-stage LUT ring oscillator with its 16-bit
readout counter (paper Fig. 3), and :class:`FpgaChip`, which ties the
netlist to the trap-level aging engine and process variation.
"""

from repro.fpga.chip import FpgaChip
from repro.fpga.counter import ReadoutCounter
from repro.fpga.fabric import Fabric, Location
from repro.fpga.lut import LutConfig, PassTransistorLut, INVERTER_ON_IN0
from repro.fpga.netlist import InverterChainNetlist
from repro.fpga.ring_oscillator import RingOscillator, StressMode
from repro.fpga.routing import RoutingBlock
from repro.fpga.sensors import OdometerReading, SiliconOdometer

__all__ = [
    "Fabric",
    "FpgaChip",
    "INVERTER_ON_IN0",
    "InverterChainNetlist",
    "Location",
    "LutConfig",
    "PassTransistorLut",
    "ReadoutCounter",
    "RingOscillator",
    "RoutingBlock",
    "OdometerReading",
    "SiliconOdometer",
    "StressMode",
]

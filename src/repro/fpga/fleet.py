"""A wafer lot of virtual FPGA chips behind one batched state.

:class:`FleetChip` owns N same-process chips as struct-of-arrays state
(:mod:`repro.bti.fleet`) plus per-chip variation columns (stage delay
multipliers, Vth offsets, fresh delays), so one call ages the whole lot.
Two fidelities:

* ``"exact"`` — flat per-trap state; every chip's trajectory is
  bit-identical to a standalone :class:`~repro.fpga.chip.FpgaChip` built
  from the same seed (the facade-equivalence contract, enforced by
  :meth:`FleetChip.view`'s :class:`ChipView` and the fleet test suite).
* ``"binned"`` — CET-grid quantised populations for 10k-chip lots;
  statistically faithful, not bit-identical (see
  :class:`~repro.bti.fleet.BinnedFleetTraps`).

Chip construction replays :class:`FpgaChip.__init__`'s generator draws in
the same order (variation sample, then the two population spawns), so an
exact-fidelity fleet chip and a standalone chip from the same seed hold
identical constants without sharing any code path at runtime.
"""

from __future__ import annotations

import numpy as np

from repro.bti.fleet import (
    BinnedFleetTraps,
    FleetCyclePhase,
    FleetTraps,
    TrapDraws,
    TrapGrid,
    draw_population,
)
from repro.device.technology import TechnologyParameters, TECH_40NM
from repro.device.variation import ProcessVariation
from repro.errors import ConfigurationError
from repro.fpga.chip import CycleSegment
from repro.fpga.netlist import InverterChainNetlist
from repro.fpga.ring_oscillator import StressMode
from repro.guard import get_guard
from repro.obs import get_tracer

#: Fidelity names accepted by :class:`FleetChip`.
FIDELITIES = ("exact", "binned")


class FleetChip:
    """N chips of one process, batched.

    Parameters
    ----------
    chip_ids / seeds:
        Parallel sequences naming each lot position and seeding its
        variation + trap draws (exactly like ``FpgaChip(seed=...)``).
    fidelity:
        ``"exact"`` (per-trap, bit-identical) or ``"binned"``
        (CET-grid, population-scale).
    bins_per_decade:
        Grid density of the binned fidelity; ignored for exact.
    guard:
        Fleet-level contract checker for batched calls; per-chip guards
        can still be threaded through the ``guard=`` argument of each
        method (the :class:`ChipView` facade does exactly that).
    """

    def __init__(
        self,
        chip_ids,
        seeds,
        *,
        tech: TechnologyParameters = TECH_40NM,
        variation: ProcessVariation | None = None,
        n_stages: int = 75,
        fidelity: str = "exact",
        bins_per_decade: float = 3.0,
        guard=None,
        tracer=None,
    ) -> None:
        if len(chip_ids) != len(seeds) or not chip_ids:
            raise ConfigurationError("chip_ids and seeds must be equal-length, non-empty")
        if fidelity not in FIDELITIES:
            raise ConfigurationError(f"fidelity must be one of {FIDELITIES}, got {fidelity!r}")
        self.chip_ids = list(chip_ids)
        self.n_chips = len(self.chip_ids)
        self.tech = tech
        self.fidelity = fidelity
        self.guard = guard if guard is not None else get_guard()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.netlist = InverterChainNetlist(n_stages=n_stages)
        variation = variation if variation is not None else ProcessVariation()

        is_pmos = self.netlist.owner_is_pmos
        self._pmos_owners = np.flatnonzero(is_pmos)
        self._nmos_owners = np.flatnonzero(~is_pmos)
        n_owners = self.netlist.n_owners
        base_weights = self.netlist.delay_weights(tech)

        self._weights = np.empty((self.n_chips, n_owners))
        self.fresh_path_delays = np.empty(self.n_chips)
        self._div_pmos = np.empty(self.n_chips)  # vdd - vth0_pmos per chip
        self._div_nmos = np.empty(self.n_chips)
        draws_p: list[TrapDraws] = []
        draws_n: list[TrapDraws] = []
        for index, seed in enumerate(seeds):
            # Replays FpgaChip.__init__'s draw order: variation sample
            # first, then the two population child streams.
            rng = np.random.default_rng(seed)
            sample = variation.sample(n_stages, rng=rng)
            stage_multiplier = sample.local_delay_multipliers * sample.delay_multiplier
            self._weights[index] = base_weights * stage_multiplier[self.netlist.owner_stage]
            self.fresh_path_delays[index] = float(tech.stage_delay * stage_multiplier.sum())
            self._div_pmos[index] = tech.vdd_nominal - (tech.vth0_pmos + sample.vth_offset)
            self._div_nmos[index] = tech.vdd_nominal - (tech.vth0_nmos + sample.vth_offset)
            pop_rng_p, pop_rng_n = rng.spawn(2)
            draws_p.append(draw_population(tech.nbti_traps, self._pmos_owners.size, pop_rng_p))
            draws_n.append(draw_population(tech.pbti_traps, self._nmos_owners.size, pop_rng_n))

        #: Per-chip simulated seconds (the ``FpgaChip.elapsed`` clock).
        self.elapsed = np.zeros(self.n_chips)
        self._trap_updates = self.tracer.counter(
            "bti.trap_updates", "per-transistor trap-population evolutions"
        )
        if fidelity == "exact":
            self._pmos = FleetTraps(
                tech.nbti_traps, self._pmos_owners.size, draws_p, guard=self.guard
            )
            self._nmos = FleetTraps(
                tech.pbti_traps, self._nmos_owners.size, draws_n, guard=self.guard
            )
            caps = np.zeros((self.n_chips, n_owners))
            caps[:, self._pmos_owners] = self._pmos.max_delta_vth()
            caps[:, self._nmos_owners] = self._nmos.max_delta_vth()
            self._dvth_caps = caps
        else:
            self._class_p, class_of_owner_p = self._owner_classes(self._pmos_owners)
            self._class_n, class_of_owner_n = self._owner_classes(self._nmos_owners)
            self._pmos = BinnedFleetTraps(
                TrapGrid(tech.nbti_traps, self._class_p.shape[0], bins_per_decade),
                self.n_chips,
                guard=self.guard,
            )
            self._nmos = BinnedFleetTraps(
                TrapGrid(tech.pbti_traps, self._class_n.shape[0], bins_per_decade),
                self.n_chips,
                guard=self.guard,
            )
            for index in range(self.n_chips):
                self._pmos.add_chip(
                    index,
                    draws_p[index],
                    class_of_owner_p,
                    self._weights[index, self._pmos_owners] / self._div_pmos[index],
                )
                self._nmos.add_chip(
                    index,
                    draws_n[index],
                    class_of_owner_n,
                    self._weights[index, self._nmos_owners] / self._div_nmos[index],
                )

    def _owner_classes(self, owners: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Bias classes of one polarity's owners.

        Two owners belong to one class iff their voltage fractions agree
        in every bias the schedule grammar can apply (DC pattern, both AC
        patterns) — then their traps see identical voltage histories and
        can share grid cells.  Returns ``(signatures, class_of_owner)``.
        """
        dc = self.netlist.dc_stress_fractions(1)
        ac_a, ac_b = self.netlist.ac_stress_fractions()
        signature = np.stack([dc[owners], ac_a[owners], ac_b[owners]], axis=1)
        unique, inverse = np.unique(signature, axis=0, return_inverse=True)
        return unique, inverse

    # ------------------------------------------------------------------ #
    # bias application (lock-step groups)
    # ------------------------------------------------------------------ #

    def _indices(self, chips: slice) -> tuple[int, int]:
        lo, hi, step = chips.indices(self.n_chips)
        if step != 1 or hi <= lo:
            raise ConfigurationError("fleet chip slices must be contiguous and non-empty")
        return lo, hi

    def _check_temperatures(self, temperatures: np.ndarray) -> np.ndarray:
        temperatures = np.asarray(temperatures, dtype=float)
        for temperature in temperatures:
            self.tech.check_temperature(float(temperature))
        return temperatures

    def apply_stress(
        self,
        duration: float,
        temperatures: np.ndarray,
        supplies: np.ndarray,
        mode: StressMode = StressMode.DC,
        chain_input: int = 1,
        chips: slice = slice(None),
        guard=None,
    ) -> None:
        """Stress a contiguous chip span for ``duration`` seconds.

        ``temperatures`` (kelvin) and ``supplies`` (volts) are per-chip
        delivered values; the bias pattern (DC freeze or AC oscillation)
        is shared — lock-step groups always run the same phase.
        """
        lo, hi = self._indices(chips)
        supplies = np.asarray(supplies, dtype=float)
        if np.any(supplies <= 0.0):
            raise ConfigurationError("stress requires a positive supply; use apply_recovery")
        temperatures = self._check_temperatures(temperatures)
        if mode is StressMode.DC:
            fractions = self.netlist.dc_stress_fractions(chain_input)
            v_full = supplies[:, None] * fractions
            duty, v_relax_full = 1.0, None
        elif mode is StressMode.AC:
            pattern_a, pattern_b = self.netlist.ac_stress_fractions()
            v_full = supplies[:, None] * pattern_a
            duty, v_relax_full = 0.5, supplies[:, None] * pattern_b
        else:
            raise ConfigurationError(f"unknown stress mode {mode!r}")
        self._evolve_span(duration, v_full, temperatures, duty, v_relax_full, lo, hi, guard)

    def apply_recovery(
        self,
        duration: float,
        temperatures: np.ndarray,
        supplies: np.ndarray,
        chips: slice = slice(None),
        guard=None,
    ) -> None:
        """Recover a contiguous chip span (0 V passive or negative rail)."""
        lo, hi = self._indices(chips)
        supplies = np.asarray(supplies, dtype=float)
        for supply in supplies:
            if supply > 0.0:
                raise ConfigurationError("recovery needs a non-positive supply voltage")
            self.tech.check_recovery_voltage(float(supply))
        temperatures = self._check_temperatures(temperatures)
        v_full = np.broadcast_to(
            supplies[:, None], (hi - lo, self.netlist.n_owners)
        ).copy()
        self._evolve_span(duration, v_full, temperatures, 1.0, None, lo, hi, guard)

    def _evolve_span(
        self,
        duration: float,
        v_full: np.ndarray,
        temperatures: np.ndarray,
        duty: float,
        v_relax_full: np.ndarray | None,
        lo: int,
        hi: int,
        guard,
    ) -> None:
        span = slice(lo, hi)
        if self.fidelity == "exact":
            relax_p = relax_n = None
            if v_relax_full is not None:
                relax_p = v_relax_full[:, self._pmos_owners]
                relax_n = v_relax_full[:, self._nmos_owners]
            self._pmos.evolve(
                duration, v_full[:, self._pmos_owners], temperatures,
                duty=duty, v_relax=relax_p, chips=span, guard=guard,
            )
            self._nmos.evolve(
                duration, v_full[:, self._nmos_owners], temperatures,
                duty=duty, v_relax=relax_n, chips=span, guard=guard,
            )
        else:
            # Class voltages: every owner of a class shares its fraction
            # row, so one representative owner's voltage stands for all.
            for pop, owners, classes in (
                (self._pmos, self._pmos_owners, self._class_p),
                (self._nmos, self._nmos_owners, self._class_n),
            ):
                rep = self._class_representatives(owners, classes)
                v_class = v_full[:, rep]
                v_relax_class = (
                    None if v_relax_full is None else v_relax_full[:, rep]
                )
                pop.evolve(
                    duration, v_class, temperatures,
                    duty=duty, v_class_relax=v_relax_class, chips=span,
                )
        self._trap_updates.inc(self.netlist.n_owners * (hi - lo))
        self.elapsed[span] += duration

    def _class_representatives(self, owners: np.ndarray, classes: np.ndarray) -> np.ndarray:
        """Global owner index of one representative per bias class."""
        # classes rows are unique (dc, ac_a, ac_b) signatures; find the
        # first owner carrying each signature.  Cached after first use.
        key = owners.tobytes()
        cache = getattr(self, "_rep_cache", None)
        if cache is None:
            cache = self._rep_cache = {}
        if key not in cache:
            dc = self.netlist.dc_stress_fractions(1)
            ac_a, ac_b = self.netlist.ac_stress_fractions()
            signature = np.stack([dc[owners], ac_a[owners], ac_b[owners]], axis=1)
            reps = np.empty(classes.shape[0], dtype=np.int64)
            for class_index, row in enumerate(classes):
                matches = np.flatnonzero((signature == row).all(axis=1))
                reps[class_index] = owners[matches[0]]
            cache[key] = reps
        return cache[key]

    # ------------------------------------------------------------------ #
    # observables
    # ------------------------------------------------------------------ #

    def delta_vth_all(self, chips: slice = slice(None), guard=None) -> np.ndarray:
        """Per-chip per-owner threshold shifts, ``(k, n_owners)`` (exact only)."""
        if self.fidelity != "exact":
            raise ConfigurationError("per-owner delta_vth needs the exact fidelity")
        lo, hi = self._indices(chips)
        span = slice(lo, hi)
        shifts = np.zeros((hi - lo, self.netlist.n_owners))
        shifts[:, self._pmos_owners] = self._pmos.delta_vth(span)
        shifts[:, self._nmos_owners] = self._nmos.delta_vth(span)
        guard = guard if guard is not None else self.guard
        if guard.checking:
            shifts = guard.check_array(
                "device.delta_vth",
                shifts,
                0.0,
                self._dvth_caps[span],
                inputs=lambda: {"fleet_chips": hi - lo, "first_chip": self.chip_ids[lo]},
            )
        return shifts

    def path_delays(self, chips: slice = slice(None), guard=None) -> np.ndarray:
        """Per-chip CUT delay in seconds, ``(k,)``.

        Exact fidelity replicates ``FpgaChip.path_delay`` operation for
        operation (including both guard contracts); binned fidelity reads
        the pooled linear observable of each population.
        """
        lo, hi = self._indices(chips)
        span = slice(lo, hi)
        guard = guard if guard is not None else self.guard
        if self.fidelity == "exact":
            shifts = self.delta_vth_all(chips, guard=guard)
            dv_p = shifts[:, self._pmos_owners]
            dv_n = shifts[:, self._nmos_owners]
            if guard.checking:
                dv_p = guard.check_array(
                    "device.dvth", dv_p, 0.0,
                    np.broadcast_to(self._div_pmos[span, None], dv_p.shape),
                )
                dv_n = guard.check_array(
                    "device.dvth", dv_n, 0.0,
                    np.broadcast_to(self._div_nmos[span, None], dv_n.shape),
                )
            shift_p = np.sum(
                self._weights[span][:, self._pmos_owners] * dv_p
                / self._div_pmos[span, None],
                axis=1,
            )
            shift_n = np.sum(
                self._weights[span][:, self._nmos_owners] * dv_n
                / self._div_nmos[span, None],
                axis=1,
            )
        else:
            shift_p = self._pmos.readout_shift(span)
            shift_n = self._nmos.readout_shift(span)
        delays = self.fresh_path_delays[span] + shift_p + shift_n
        if guard.checking:
            fresh = self.fresh_path_delays[span]
            delays = guard.check_array(
                "fpga.path_delay",
                delays,
                0.0,
                np.inf,
                tol=0.0,
                inputs=lambda: {"fleet_chips": hi - lo, "first_chip": self.chip_ids[lo]},
            )
            if np.any(delays < fresh - 1e-9 * fresh):
                bad = int(np.argmax(delays < fresh - 1e-9 * fresh))
                guard.check_scalar(
                    "fpga.path_delay",
                    float(delays[bad]),
                    float(fresh[bad]),
                    np.inf,
                    tol=1e-9 * float(fresh[bad]),
                    inputs=lambda: {"chip": self.chip_ids[lo + bad]},
                )
        return delays

    def frequencies(self, chips: slice = slice(None), guard=None) -> np.ndarray:
        """Per-chip noise-free RO frequency ``1 / (2 * path_delay)``."""
        return 1.0 / (2.0 * self.path_delays(chips, guard=guard))

    # ------------------------------------------------------------------ #
    # per-chip state (checkpoint / sanitizer / fault surface)
    # ------------------------------------------------------------------ #

    def export_chip_state(self, index: int) -> dict:
        """One chip's mutable state, key-compatible with ``FpgaChip.export_state``."""
        return {
            "pmos_occupancy": self._pmos.occupancy_row(index),
            "pmos_elapsed": float(self._pmos.elapsed[index]),
            "nmos_occupancy": self._nmos.occupancy_row(index),
            "nmos_elapsed": float(self._nmos.elapsed[index]),
            "elapsed": float(self.elapsed[index]),
        }

    def import_chip_state(self, index: int, state: dict) -> None:
        """Restore one chip's mutable state from :meth:`export_chip_state`."""
        self._pmos.set_occupancy_row(
            index, state["pmos_occupancy"], float(state["pmos_elapsed"])
        )
        self._nmos.set_occupancy_row(
            index, state["nmos_occupancy"], float(state["nmos_elapsed"])
        )
        self.elapsed[index] = float(state["elapsed"])

    def inject_trap_upset_chip(self, index: int, value: float, n_traps: int = 64) -> None:
        """Corrupt the leading trap occupancies of one chip's populations."""
        self._pmos.inject_upset(index, value, n_traps)
        self._nmos.inject_upset(index, value, n_traps)

    def view(self, index: int) -> "ChipView":
        """An :class:`FpgaChip`-compatible facade onto one lot position."""
        if self.fidelity != "exact":
            raise ConfigurationError("ChipView requires the exact fidelity")
        if not 0 <= index < self.n_chips:
            raise ConfigurationError(f"chip index {index} outside this fleet")
        return ChipView(self, index)


class ChipView:
    """One fleet position exposed through the :class:`FpgaChip` surface.

    Everything the campaign, guard, fault-injection, sanitizer and
    checkpoint layers call on a chip works unchanged here; the state it
    reads and writes is the fleet's batched arrays.  Exact fidelity only
    — views exist to *prove* facade equivalence and to host the
    resilience paths, not for throughput.
    """

    def __init__(self, fleet: FleetChip, index: int, guard=None) -> None:
        self._fleet = fleet
        self._index = index
        self.chip_id = fleet.chip_ids[index]
        self.tech = fleet.tech
        self.netlist = fleet.netlist
        self.guard = guard if guard is not None else fleet.guard
        self.fresh_path_delay = float(fleet.fresh_path_delays[index])

    @property
    def _span(self) -> slice:
        return slice(self._index, self._index + 1)

    @property
    def elapsed(self) -> float:
        return float(self._fleet.elapsed[self._index])

    @property
    def n_owners(self) -> int:
        return self._fleet.netlist.n_owners

    # observables ------------------------------------------------------- #

    def delta_vth(self) -> np.ndarray:
        """Per-owner threshold shift of this chip, as ``FpgaChip.delta_vth``."""
        return self._fleet.delta_vth_all(self._span, guard=self.guard)[0]

    def path_delay(self) -> float:
        """Current CUT path delay of this chip in seconds."""
        return float(self._fleet.path_delays(self._span, guard=self.guard)[0])

    def delta_path_delay(self) -> float:
        """Delay increase versus the fresh chip."""
        return self.path_delay() - self.fresh_path_delay

    def oscillation_frequency(self) -> float:
        """Ring-oscillator frequency ``1 / (2 Td)`` of this chip."""
        return 1.0 / (2.0 * self.path_delay())

    # bias -------------------------------------------------------------- #

    def apply_stress(
        self,
        duration: float,
        temperature: float,
        supply_voltage: float | None = None,
        mode: StressMode = StressMode.DC,
        chain_input: int = 1,
    ) -> None:
        """Apply a stress phase to this chip only (``FpgaChip.apply_stress``)."""
        supply = supply_voltage if supply_voltage is not None else self.tech.vdd_nominal
        self._fleet.apply_stress(
            duration,
            np.array([float(temperature)]),
            np.array([float(supply)]),
            mode=mode,
            chain_input=chain_input,
            chips=self._span,
            guard=self.guard,
        )

    def apply_recovery(
        self, duration: float, temperature: float, supply_voltage: float = 0.0
    ) -> None:
        """Apply a recovery phase to this chip only (``FpgaChip.apply_recovery``)."""
        self._fleet.apply_recovery(
            duration,
            np.array([float(temperature)]),
            np.array([float(supply_voltage)]),
            chips=self._span,
            guard=self.guard,
        )

    def apply_cycles(self, segments, n: int) -> None:
        """Closed-form N-cycle fast-forward through the fleet engine."""
        if n < 0:
            raise ConfigurationError(f"cycle count must be non-negative, got {n}")
        if not segments:
            raise ConfigurationError("apply_cycles needs at least one segment")
        if n == 0:
            return
        fleet = self._fleet
        phases_p: list[FleetCyclePhase] = []
        phases_n: list[FleetCyclePhase] = []
        period = 0.0
        for segment in segments:
            v_full, duty, v_relax_full = self._segment_profile(segment)
            relax = v_relax_full if v_relax_full is not None else np.zeros((1, self.n_owners))
            temps = np.array([float(segment.temperature)])
            for owners, phases in (
                (fleet._pmos_owners, phases_p),
                (fleet._nmos_owners, phases_n),
            ):
                phases.append(
                    FleetCyclePhase(
                        duration=segment.duration,
                        v_stress=v_full[:, owners],
                        temperatures=temps,
                        duty=duty,
                        v_relax=relax[:, owners],
                    )
                )
            period += segment.duration
        fleet._pmos.evolve_cycles(phases_p, n, chips=self._span, guard=self.guard)
        fleet._nmos.evolve_cycles(phases_n, n, chips=self._span, guard=self.guard)
        fleet._trap_updates.inc(self.n_owners * len(segments) * n)
        fleet.elapsed[self._index] += n * period

    def _segment_profile(self, segment: CycleSegment):
        """(1, n_owners) bias profile of one schedule segment."""
        fleet = self._fleet
        if segment.stress:
            supply = (
                segment.supply_voltage
                if segment.supply_voltage is not None
                else self.tech.vdd_nominal
            )
            if supply <= 0.0:
                raise ConfigurationError(
                    "stress requires a positive supply; use apply_recovery"
                )
            self.tech.check_temperature(segment.temperature)
            if segment.mode is StressMode.DC:
                fractions = fleet.netlist.dc_stress_fractions(segment.chain_input)
                return (fractions * supply)[None, :], 1.0, None
            pattern_a, pattern_b = fleet.netlist.ac_stress_fractions()
            return (pattern_a * supply)[None, :], 0.5, (pattern_b * supply)[None, :]
        supply = 0.0 if segment.supply_voltage is None else segment.supply_voltage
        if supply > 0.0:
            raise ConfigurationError("recovery needs a non-positive supply voltage")
        self.tech.check_recovery_voltage(supply)
        self.tech.check_temperature(segment.temperature)
        return np.full((1, self.n_owners), supply), 1.0, None

    # state ------------------------------------------------------------- #

    def export_state(self) -> dict:
        """This chip's trap state and clock in ``FpgaChip.export_state`` form."""
        return self._fleet.export_chip_state(self._index)

    def import_state(self, state: dict) -> None:
        """Replace this chip's state from an export/snapshot dict."""
        self._fleet.import_chip_state(self._index, state)

    def snapshot(self) -> dict:
        """Checkpoint form; the fleet facade uses the export dict directly."""
        return self.export_state()

    def restore(self, state: dict) -> None:
        """Rewind to a snapshot (alias of ``import_state`` on the facade)."""
        self.import_state(state)

    def reset(self) -> None:
        """Return this lot position to the fresh, unaged state."""
        fleet = self._fleet
        zeros_p = np.zeros_like(fleet._pmos.occupancy_row(self._index))
        zeros_n = np.zeros_like(fleet._nmos.occupancy_row(self._index))
        fleet._pmos.set_occupancy_row(self._index, zeros_p, 0.0)
        fleet._nmos.set_occupancy_row(self._index, zeros_n, 0.0)
        fleet.elapsed[self._index] = 0.0

    def inject_trap_upset(self, value: float, n_traps: int = 64) -> None:
        """Corrupt this chip's trap occupancies in place (fault injection)."""
        self._fleet.inject_trap_upset_chip(self._index, value, n_traps)

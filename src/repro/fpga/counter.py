"""16-bit readout counter for the ring oscillator (paper Fig. 3, Eq. 14).

The counter counts oscillator edges over one half-period of the reference
clock ``fref``; the paper's relation ``fosc = 2 * Cout * fref`` inverts the
readout.  The physical counter quantises and carries a small repeatability
error — the paper quotes counter variation "within +/-5" counts at
``fref = 500 Hz`` — which we reproduce so measured curves carry realistic
noise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, CounterOverflowError, MeasurementError


class ReadoutCounter:
    """Counts oscillator cycles against a reference clock.

    Parameters
    ----------
    fref:
        Reference clock frequency in Hz (paper uses 500 Hz).
    bits:
        Counter width; the paper's design uses 16 bits.
    noise_counts:
        Half-width of the uniform readout repeatability error in LSBs.
    """

    def __init__(self, fref: float = 500.0, bits: int = 16, noise_counts: int = 5) -> None:
        if fref <= 0.0:
            raise ConfigurationError(f"fref must be positive, got {fref}")
        if bits <= 0:
            raise ConfigurationError(f"bits must be positive, got {bits}")
        if noise_counts < 0:
            raise ConfigurationError(f"noise_counts must be non-negative, got {noise_counts}")
        self.fref = fref
        self.bits = bits
        self.noise_counts = noise_counts

    @property
    def max_count(self) -> int:
        """Largest representable count."""
        return (1 << self.bits) - 1

    def _check_overflow(self, highest: int) -> None:
        """Refuse any count past the register width.

        The single overflow gate shared by the scalar, burst and fleet
        readout paths: a hardware counter would silently wrap ``count mod
        2**bits`` and alias a fast oscillator to a bogus low frequency,
        so every virtual path must raise the same typed
        :class:`~repro.errors.CounterOverflowError`
        (a :class:`~repro.errors.MeasurementError`) instead.
        """
        if highest > self.max_count:
            raise CounterOverflowError(
                f"count {highest} exceeds the {self.bits}-bit counter range; "
                f"raise fref above {self.fref} Hz"
            )

    def ideal_count(self, fosc: float) -> int:
        """Noise-free count for an oscillator frequency (paper Eq. 14 inverted)."""
        if fosc <= 0.0:
            raise ConfigurationError(f"fosc must be positive, got {fosc}")
        return int(round(fosc / (2.0 * self.fref)))

    def read(self, fosc: float, rng: np.random.Generator | int | None = None) -> int:
        """One noisy counter readout for oscillator frequency ``fosc``.

        Raises :class:`CounterOverflowError` if the count would exceed the
        counter width — on hardware that readout would silently wrap, so
        the virtual instrument refuses instead.
        """
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        count = self.ideal_count(fosc)
        if self.noise_counts > 0:
            count += int(rng.integers(-self.noise_counts, self.noise_counts + 1))
        if count < 0:
            count = 0
        self._check_overflow(count)
        return count

    def read_many(
        self, fosc: float, n_reads: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """``n_reads`` noisy readouts at a fixed frequency, one RNG call.

        Draws the whole noise vector at once; the generator stream (and
        therefore every count) is identical to ``n_reads`` sequential
        :meth:`read` calls with the same generator.
        """
        if n_reads <= 0:
            raise ConfigurationError(f"n_reads must be positive, got {n_reads}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        counts = np.full(n_reads, self.ideal_count(fosc), dtype=np.int64)
        if self.noise_counts > 0:
            counts += rng.integers(
                -self.noise_counts, self.noise_counts + 1, size=n_reads
            )
        np.maximum(counts, 0, out=counts)
        self._check_overflow(int(counts.max()))
        return counts

    def frequency(self, count: int) -> float:
        """Oscillator frequency implied by a count (paper Eq. 14)."""
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        return 2.0 * count * self.fref

    def delay(self, count: int) -> float:
        """CUT delay implied by a count (paper Eq. 15): ``1/(4*Cout*fref)``.

        A zero count is a measurement outcome, not a configuration mistake
        — readout noise can clamp a near-zero-``fosc`` count to 0 — so it
        raises :class:`~repro.errors.MeasurementError`, which the retry
        layer treats as a re-readable fault.
        """
        if count <= 0:
            raise MeasurementError(
                f"count {count} implies no oscillation — the RO is stopped "
                "or fosc is below the counter resolution"
            )
        return 1.0 / (4.0 * count * self.fref)

"""On-chip aging sensors: the silicon-odometer RO pair.

Reactive recovery (paper Sec. 2.2) "needs to track changing threshold
voltages" — on real silicon that is done with an odometer-style sensor
(paper refs [7, 8]): two small ring oscillators, one *stressed* alongside
the mission logic and one *reference* kept power-gated except during
readouts.  The fractional beat between their frequencies estimates the
accumulated degradation without knowing the fresh frequency of either.

:class:`SiliconOdometer` is a self-contained virtual instrument: the
testbench (or any caller) mirrors the chip's bias history into
:meth:`experience`, and :meth:`measure` returns the degradation estimate
with realistic counter quantisation.  The reference RO is *not* perfectly
fresh — it ages a little during every readout burst — so the sensor has a
small, honest tracking error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.technology import TechnologyParameters, TECH_40NM
from repro.device.variation import ProcessVariation
from repro.errors import ConfigurationError
from repro.fpga.chip import FpgaChip
from repro.fpga.counter import ReadoutCounter
from repro.fpga.ring_oscillator import RingOscillator, StressMode
from repro.units import celsius


@dataclass(frozen=True)
class OdometerReading:
    """One sensor readout.

    ``degradation`` is the fractional frequency loss estimate
    ``(f_ref - f_stressed) / f_ref``; ``delay_shift_estimate`` converts it
    to a path-delay shift using the stressed RO's measured period.
    """

    stressed_frequency: float
    reference_frequency: float
    degradation: float
    delay_shift_estimate: float
    timestamp: float


class SiliconOdometer:
    """A stressed/reference RO pair measuring in-situ aging.

    Parameters
    ----------
    n_stages:
        Length of each sensor RO (small: sensors are meant to be cheap).
    tech:
        Process; defaults to the same 40 nm parameters as the mission
        chip so the sensor ages representatively.
    readout_overhead:
        Seconds both ROs run per readout (the reference's only stress).
    seed:
        Seeds both RO instances; they share process variation statistics
        but not the exact draw — as adjacent but distinct circuits do.
    """

    def __init__(
        self,
        n_stages: int = 15,
        tech: TechnologyParameters = TECH_40NM,
        readout_overhead: float = 3.0,
        counter: ReadoutCounter | None = None,
        seed: int | None = None,
    ) -> None:
        if readout_overhead < 0.0:
            raise ConfigurationError("readout_overhead must be non-negative")
        master = np.random.default_rng(seed)
        seed_a, seed_b = (int(s.integers(2**31)) for s in master.spawn(2))
        # The RO pair is laid out matched and adjacent (common-centroid),
        # so it sees far less mismatch than two arbitrary chips would.
        variation = ProcessVariation(
            chip_vth_sigma=0.002, chip_delay_sigma=0.004, local_delay_sigma=0.01
        )
        self._stressed = FpgaChip(
            "odometer-stressed", n_stages=n_stages, tech=tech,
            variation=variation, seed=seed_a,
        )
        self._reference = FpgaChip(
            "odometer-reference", n_stages=n_stages, tech=tech,
            variation=variation, seed=seed_b,
        )
        self._stressed_ro = RingOscillator(self._stressed, counter)
        self._reference_ro = RingOscillator(self._reference, counter)
        self.readout_overhead = readout_overhead
        self.tech = tech

    @property
    def elapsed(self) -> float:
        """Simulated seconds the sensor has lived through."""
        return self._stressed.elapsed

    def experience(
        self,
        duration: float,
        temperature: float,
        supply_voltage: float,
        mode: StressMode = StressMode.DC,
    ) -> None:
        """Mirror the mission logic's bias history into the sensor.

        The stressed RO sees whatever the chip sees; the reference RO sits
        power-gated (0 V) at the same temperature, so it only passively
        recovers between readouts.
        """
        if supply_voltage > 0.0:
            self._stressed.apply_stress(
                duration, temperature=temperature,
                supply_voltage=supply_voltage, mode=mode,
            )
        else:
            self._stressed.apply_recovery(
                duration, temperature=temperature, supply_voltage=supply_voltage
            )
        self._reference.apply_recovery(duration, temperature=temperature)

    def true_degradation(self) -> float:
        """Ground-truth fractional degradation of the stressed RO.

        Available only on the virtual bench — real silicon has no oracle;
        tests use it to bound the sensor's tracking error.
        """
        fresh = 1.0 / (2.0 * self._stressed.fresh_path_delay)
        return 1.0 - self._stressed.oscillation_frequency() / fresh

    def measure(
        self,
        temperature: float,
        rng: np.random.Generator | int | None = None,
    ) -> OdometerReading:
        """Wake both ROs, count both frequencies, estimate degradation.

        The estimate is differential: it needs no stored fresh frequency,
        which is the odometer's practical advantage — but it inherits the
        (small) mismatch between the two ROs' fresh frequencies as a fixed
        offset, just like hardware.
        """
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        if self.readout_overhead > 0.0:
            for chip in (self._stressed, self._reference):
                chip.apply_stress(
                    self.readout_overhead,
                    temperature=temperature,
                    supply_voltage=self.tech.vdd_nominal,
                    mode=StressMode.AC,
                )
        stressed = self._stressed_ro.measure_averaged(3, rng=rng)
        reference = self._reference_ro.measure_averaged(3, rng=rng)
        degradation = 1.0 - stressed.frequency / reference.frequency
        return OdometerReading(
            stressed_frequency=stressed.frequency,
            reference_frequency=reference.frequency,
            degradation=degradation,
            delay_shift_estimate=degradation * stressed.delay,
            timestamp=self._stressed.elapsed,
        )

    def calibrate(self, rng: np.random.Generator | int | None = None) -> float:
        """Fresh-pair offset: the reading a brand-new sensor reports.

        Measured once at time zero on hardware and subtracted from later
        readings; returns the offset so callers can do the same.
        """
        if self.elapsed > 0.0:
            raise ConfigurationError("calibrate the sensor before any stress")
        reading = self.measure(celsius(20.0), rng=rng)
        return reading.degradation

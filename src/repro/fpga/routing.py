"""Routing-block model: the pass transistors between LUT outputs and inputs.

The paper's POI (path of interest) runs "from the input of the LUT-based
inverter to the output of the routing blocks".  We model the routing
between consecutive LUTs as a chain of always-selected NMOS routing-mux
pass transistors.  Their gates are driven high by configuration SRAM, so a
routing transistor is PBTI-stressed exactly when the net it carries sits at
logic 0 (same data-dependent rule as the LUT pass tree).
"""

from __future__ import annotations

from repro.bti.conditions import StressPolarity
from repro.device.transistor import Transistor, TransistorRole
from repro.errors import ConfigurationError


class RoutingBlock:
    """Routing segment between two LUTs.

    Parameters
    ----------
    n_switches:
        Number of series routing-mux pass transistors on the segment.
    """

    def __init__(self, n_switches: int = 2) -> None:
        if n_switches <= 0:
            raise ConfigurationError(f"n_switches must be positive, got {n_switches}")
        share = 1.0 / n_switches
        self.transistors: tuple[Transistor, ...] = tuple(
            Transistor(f"R{i + 1}", StressPolarity.PBTI, TransistorRole.ROUTING, share)
            for i in range(n_switches)
        )

    @property
    def n_switches(self) -> int:
        """Number of series switches on the segment."""
        return len(self.transistors)

    def stressed_fractions(self, net_value: int) -> dict[str, float]:
        """Stress fractions for a static net value (all-or-nothing).

        Every switch carries the same net, so all are stressed when the net
        is 0 and none when it is 1.
        """
        if net_value not in (0, 1):
            raise ConfigurationError(f"net_value must be 0 or 1, got {net_value}")
        if net_value == 1:
            return {}
        return {t.name: 1.0 for t in self.transistors}

    def conducting_path(self) -> tuple[str, ...]:
        """All switches sit on the POI (they are in series with the net)."""
        return tuple(t.name for t in self.transistors)

"""Ring-oscillator test structure and measurement (paper Fig. 3).

The CUT is a 75-stage LUT inverter ring with an enable gate: enabled, it
free-runs (AC stress of its own stages); frozen, its nodes hold a static
alternating pattern (DC stress).  A :class:`ReadoutCounter` converts the
oscillation into a count, from which frequency and CUT delay follow via
paper Eqs. (14)-(15).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError
from repro.fpga.counter import ReadoutCounter
from repro.guard import get_guard
from repro.obs import get_tracer


class StressMode(enum.Enum):
    """How the ring oscillator is biased during a stress phase."""

    #: Enable held active — the ring oscillates and every node toggles.
    AC = "ac"
    #: Enable frozen — every node holds a static value (constant stress).
    DC = "dc"


@dataclass(frozen=True)
class RoMeasurement:
    """One readout of the ring oscillator.

    ``count`` is the raw counter value; ``frequency`` and ``delay`` are the
    quantities implied by Eqs. (14)-(15); ``timestamp`` is the chip's
    simulated elapsed time at the readout.
    """

    count: int
    frequency: float
    delay: float
    timestamp: float


class RingOscillator:
    """Measurement façade over a chip's inverter-chain CUT.

    Parameters
    ----------
    chip:
        Any object exposing ``oscillation_frequency()`` and ``elapsed`` —
        in practice :class:`repro.fpga.chip.FpgaChip`.
    counter:
        Readout counter; defaults to the paper's 16-bit / 500 Hz design.
    tracer:
        Telemetry sink; defaults to the process tracer (a no-op unless
        one was installed), and only counters are touched here.
    """

    def __init__(self, chip, counter: ReadoutCounter | None = None, tracer=None) -> None:
        self.chip = chip
        self.counter = counter or ReadoutCounter()
        # Share the chip's guard when it has one so violation counts and
        # budgets stay per chip; standalone CUTs fall back to the ambient.
        self._guard = getattr(chip, "guard", None) or get_guard()
        tracer = tracer if tracer is not None else get_tracer()
        self._evaluations = tracer.counter(
            "ro.evaluations", "counter readouts taken from ring oscillators"
        )

    def frequency(self) -> float:
        """Noise-free oscillation frequency of the CUT.

        Contract: strictly positive and finite (Eqs. 14-15 divide by
        it).  In ``clamp`` mode a violating frequency degrades to 0.0 —
        a dead oscillator — which the readout path already reports as a
        typed :class:`MeasurementError`, feeding the campaign's
        retry/quarantine machinery instead of poisoning the DataLog.
        """
        frequency = self.chip.oscillation_frequency()
        guard = self._guard
        if guard.checking:
            frequency = guard.positive_scalar(
                "fpga.frequency",
                frequency,
                clamp_to=0.0,
                inputs=lambda: {
                    "chip": str(getattr(self.chip, "chip_id", "")),
                    "elapsed": float(self.chip.elapsed),
                },
            )
        return frequency

    def _require_oscillation(self, count: float) -> None:
        """Refuse a readout that implies the ring is not oscillating.

        Noise can clamp a near-zero-``fosc`` count to 0; converting that to
        a delay would divide by zero (or, before this guard, surface as a
        misleading ``ConfigurationError`` deep inside a measurement).
        """
        if count <= 0:
            raise MeasurementError(
                f"chip {self.chip.chip_id}: readout count {count} implies no "
                "oscillation — RO stopped or fosc below counter resolution"
            )

    def measure(self, rng: np.random.Generator | int | None = None) -> RoMeasurement:
        """Take one counter readout (quantised, with repeatability noise)."""
        self._evaluations.inc()
        count = self.counter.read(self.frequency(), rng=rng)
        self._require_oscillation(count)
        return RoMeasurement(
            count=count,
            frequency=self.counter.frequency(count),
            delay=self.counter.delay(count),
            timestamp=self.chip.elapsed,
        )

    def measure_averaged(
        self, n_reads: int, rng: np.random.Generator | int | None = None
    ) -> RoMeasurement:
        """Average ``n_reads`` readouts taken from a stable time range.

        The paper reads the counter "from a certain time range that has
        stable values"; averaging several quantised readouts is the
        virtual equivalent.
        """
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self._evaluations.inc(n_reads)
        # The chip does not age between reads of one burst: evaluate the
        # noise-free frequency once and draw all readout noise in a single
        # vectorised call (stream-identical to sequential reads).
        counts = self.counter.read_many(self.frequency(), n_reads, rng=rng)
        mean_count = float(np.mean(counts))
        self._require_oscillation(mean_count)
        return RoMeasurement(
            count=int(round(mean_count)),
            frequency=2.0 * mean_count * self.counter.fref,
            delay=1.0 / (4.0 * mean_count * self.counter.fref),
            timestamp=self.chip.elapsed,
        )

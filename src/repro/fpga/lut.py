"""Pass-transistor 2-input LUT model (paper Fig. 2).

Netlist
-------

The paper notes the exact gate-level netlists of commercial FPGAs are
unavailable, so we use an explicit generic pass-transistor mux tree whose
behaviour satisfies the paper's two hypotheses by construction:

* level 1 — four NMOS pass transistors select a configuration bit by
  ``In0``:  M1 (branch In1=1, gate In0), M2 (branch In1=1, gate ~In0),
  M3 (branch In1=0, gate In0), M4 (branch In1=0, gate ~In0);
* level 2 — two NMOS pass transistors select the branch by ``In1``:
  M5 (gate In1), M6 (gate ~In1);
* output buffer — inverter-style level restorer: PMOS M7, NMOS M8.

Config bits are indexed ``bits[2*in1 + in0]`` and the LUT output is the
buffered (non-inverting) tree value.

Stress rules (data-dependent, the physical reason behind the paper's
Hypothesis 1):

* an NMOS pass transistor is PBTI-stressed iff its gate is high **and**
  it carries a logic 0 (gate high over a weak 1 leaves ``Vgs ~ Vth``);
* the buffer PMOS M7 is NBTI-stressed iff the tree output is 0;
* the buffer NMOS M8 is PBTI-stressed iff the tree output is a (weak) 1 —
  at reduced overdrive because pass transistors only pull to
  ``Vdd - Vth``.

For the paper's inverter example (bits 1010 in our indexing, ``In1 = 1``,
``In0 = 1``) the stressed devices *on the conducting path* are M1, M5 plus
the buffer — matching the paper's {M1, M5} up to the buffer bookkeeping
(see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bti.conditions import StressPolarity
from repro.device.transistor import Transistor, TransistorRole
from repro.errors import ConfigurationError

# Gate of the buffer NMOS sees a pass-transistor weak 1 (Vdd - Vth_pass),
# i.e. roughly this fraction of a full-rail stress.
_WEAK_ONE_STRESS_FRACTION = 0.67


@dataclass(frozen=True)
class LutConfig:
    """The four configuration bits of a 2-input LUT.

    ``bits[2*in1 + in0]`` is the LUT output for inputs ``(in1, in0)``.
    """

    bits: tuple[int, int, int, int]

    def __post_init__(self) -> None:
        if len(self.bits) != 4 or any(b not in (0, 1) for b in self.bits):
            raise ConfigurationError(f"bits must be four 0/1 values, got {self.bits}")

    def evaluate(self, in0: int, in1: int) -> int:
        """Logic value of the LUT for the given inputs."""
        _check_bit("in0", in0)
        _check_bit("in1", in1)
        return self.bits[2 * in1 + in0]


#: Inverter on In0 (output = NOT In0, independent of In1) — the paper's
#: ring-oscillator stage function.
INVERTER_ON_IN0 = LutConfig((1, 0, 1, 0))

#: Buffer on In0, used by tests as a contrast case.
BUFFER_ON_IN0 = LutConfig((0, 1, 0, 1))


def _check_bit(name: str, value: int) -> None:
    if value not in (0, 1):
        raise ConfigurationError(f"{name} must be 0 or 1, got {value}")


class PassTransistorLut:
    """One configured 2-input LUT with its eight aging transistors."""

    #: Share of the pass-tree delay attributed to each mux level.
    LEVEL_SHARE = 0.5
    #: Share of the buffer delay attributed to each buffer transistor
    #: (rising edges exercise the PMOS, falling edges the NMOS).
    BUFFER_SHARE = 0.5

    def __init__(self, config: LutConfig) -> None:
        self.config = config
        self.transistors: tuple[Transistor, ...] = (
            Transistor("M1", StressPolarity.PBTI, TransistorRole.PASS_LEVEL1, self.LEVEL_SHARE),
            Transistor("M2", StressPolarity.PBTI, TransistorRole.PASS_LEVEL1, self.LEVEL_SHARE),
            Transistor("M3", StressPolarity.PBTI, TransistorRole.PASS_LEVEL1, self.LEVEL_SHARE),
            Transistor("M4", StressPolarity.PBTI, TransistorRole.PASS_LEVEL1, self.LEVEL_SHARE),
            Transistor("M5", StressPolarity.PBTI, TransistorRole.PASS_LEVEL2, self.LEVEL_SHARE),
            Transistor("M6", StressPolarity.PBTI, TransistorRole.PASS_LEVEL2, self.LEVEL_SHARE),
            Transistor("M7", StressPolarity.NBTI, TransistorRole.BUFFER_PULLUP, self.BUFFER_SHARE),
            Transistor(
                "M8",
                StressPolarity.PBTI,
                TransistorRole.BUFFER_PULLDOWN,
                self.BUFFER_SHARE,
                stress_fraction=_WEAK_ONE_STRESS_FRACTION,
            ),
        )
        self._index = {t.name: i for i, t in enumerate(self.transistors)}

    def evaluate(self, in0: int, in1: int) -> int:
        """LUT output for the given inputs."""
        return self.config.evaluate(in0, in1)

    def stressed_fractions(self, in0: int, in1: int) -> dict[str, float]:
        """Per-transistor stress fraction under a static (DC) input.

        Returns a mapping from transistor name to the fraction of the full
        rail stress it sees; absent names are unstressed.  This covers
        *all* physically stressed devices, including those off the
        conducting path (e.g. M3 when ``In0 = 1``) — the paper's POI view
        is :meth:`conducting_path`.
        """
        _check_bit("in0", in0)
        _check_bit("in1", in1)
        bits = self.config.bits
        branch1 = bits[2 + in0]  # value presented by the In1=1 branch
        branch0 = bits[in0]  # value presented by the In1=0 branch
        tree_out = bits[2 * in1 + in0]
        stressed: dict[str, float] = {}
        if in0 == 1 and bits[3] == 0:
            stressed["M1"] = 1.0
        if in0 == 0 and bits[2] == 0:
            stressed["M2"] = 1.0
        if in0 == 1 and bits[1] == 0:
            stressed["M3"] = 1.0
        if in0 == 0 and bits[0] == 0:
            stressed["M4"] = 1.0
        if in1 == 1 and branch1 == 0:
            stressed["M5"] = 1.0
        if in1 == 0 and branch0 == 0:
            stressed["M6"] = 1.0
        if tree_out == 0:
            stressed["M7"] = 1.0
        else:
            stressed["M8"] = self.transistor("M8").stress_fraction
        return stressed

    def conducting_path(self, in0: int, in1: int) -> tuple[str, ...]:
        """Names of the transistors on the POI for the given inputs.

        The conducting (delay-relevant) path is: the selected level-1 pass
        transistor, the selected level-2 pass transistor, and both buffer
        devices (each edge polarity exercises one of them).
        """
        _check_bit("in0", in0)
        _check_bit("in1", in1)
        level1 = {(1, 1): "M1", (0, 1): "M2", (1, 0): "M3", (0, 0): "M4"}[(in0, in1)]
        level2 = "M5" if in1 == 1 else "M6"
        return (level1, level2, "M7", "M8")

    def transistor(self, name: str) -> Transistor:
        """Look up a transistor descriptor by netlist name."""
        try:
            return self.transistors[self._index[name]]
        except KeyError:
            raise ConfigurationError(f"no transistor named {name!r} in the LUT") from None

    def transistor_index(self, name: str) -> int:
        """Position of a transistor in :attr:`transistors`."""
        try:
            return self._index[name]
        except KeyError:
            raise ConfigurationError(f"no transistor named {name!r} in the LUT") from None

"""A virtual 40 nm FPGA chip: netlist + process variation + trap aging.

:class:`FpgaChip` is the library's replacement for the paper's physical
devices.  It carries one :class:`~repro.bti.traps.TrapPopulation` per BTI
polarity (NBTI for the PMOS devices, PBTI for the NMOS pass/pulldown
devices), wired to the inverter-chain netlist, and exposes the observables
the paper measures: CUT path delay and ring-oscillator frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bti.traps import CyclePhase, TrapPopulation, _PopulationState
from repro.device.delay import AlphaPowerDelayModel, FirstOrderDelayShift, GateDelayModel
from repro.device.technology import TechnologyParameters, TECH_40NM
from repro.device.variation import ProcessVariation, VariationSample
from repro.errors import ConfigurationError
from repro.fpga.fabric import Fabric, Location
from repro.fpga.netlist import InverterChainNetlist
from repro.fpga.ring_oscillator import StressMode
from repro.guard import get_guard
from repro.obs import get_tracer


@dataclass(frozen=True)
class CycleSegment:
    """One leg of a repeating chip schedule, in :meth:`FpgaChip.apply_stress`
    / :meth:`FpgaChip.apply_recovery` terms.

    Build with :meth:`active` (stress) or :meth:`sleep` (recovery); a
    sequence of segments repeated ``n`` times feeds
    :meth:`FpgaChip.apply_cycles`.
    """

    duration: float
    temperature: float
    supply_voltage: float | None
    stress: bool
    mode: StressMode = StressMode.DC
    chain_input: int = 1

    def __post_init__(self) -> None:
        if self.duration < 0.0:
            raise ConfigurationError(
                f"segment duration must be non-negative, got {self.duration}"
            )

    @classmethod
    def active(
        cls,
        duration: float,
        temperature: float,
        supply_voltage: float | None = None,
        mode: StressMode = StressMode.DC,
        chain_input: int = 1,
    ) -> "CycleSegment":
        """A stress leg; ``supply_voltage`` ``None`` means the nominal rail."""
        return cls(
            duration=duration,
            temperature=temperature,
            supply_voltage=supply_voltage,
            stress=True,
            mode=mode,
            chain_input=chain_input,
        )

    @classmethod
    def sleep(
        cls, duration: float, temperature: float, supply_voltage: float = 0.0
    ) -> "CycleSegment":
        """A recovery leg (power-gated at 0 V or a negative rail)."""
        return cls(
            duration=duration,
            temperature=temperature,
            supply_voltage=supply_voltage,
            stress=False,
        )


class FpgaChip:
    """One virtual chip under test.

    Parameters
    ----------
    chip_id:
        Label used in campaign data logs ("chip-1" .. "chip-5").
    n_stages:
        Ring-oscillator length (paper: 75 LUT inverters).
    tech:
        Process constants.
    variation:
        Statistical process spread; each chip samples its own instance so
        fresh frequencies differ chip to chip, as the paper observes.
    fabric / location:
        Optional placement of the CUT on the fabric; adds the systematic
        delay gradient of the location.
    delay_model:
        "first-order" for the paper's Eq. (6) linearisation (default) or
        "alpha-power" for the ablation model.
    seed:
        Seeds both the variation draw and the trap populations, making a
        chip fully reproducible.
    tracer:
        Telemetry sink counting trap-state updates; defaults to the
        process tracer (a no-op unless one was installed).
    """

    def __init__(
        self,
        chip_id: str = "chip-1",
        n_stages: int = 75,
        tech: TechnologyParameters = TECH_40NM,
        variation: ProcessVariation | None = None,
        fabric: Fabric | None = None,
        location: Location | None = None,
        delay_model: str = "first-order",
        enable_gated: bool = False,
        seed: int | None = None,
        tracer=None,
        guard=None,
    ) -> None:
        self.chip_id = chip_id
        self.tech = tech
        #: The chip's contract checker (shared with its trap populations
        #: and ring oscillator); defaults to the ambient process guard.
        self.guard = guard if guard is not None else get_guard()
        self.netlist = InverterChainNetlist(n_stages=n_stages, enable_gated=enable_gated)
        rng = np.random.default_rng(seed)
        variation = variation if variation is not None else ProcessVariation()
        self.variation_sample: VariationSample = variation.sample(n_stages, rng=rng)

        systematic = 1.0
        if fabric is not None:
            location = location if location is not None else fabric.center
            systematic = fabric.systematic_multiplier(location)
        elif location is not None:
            raise ConfigurationError("a location requires a fabric")
        self.fabric = fabric
        self.location = location

        stage_multiplier = (
            self.variation_sample.local_delay_multipliers
            * self.variation_sample.delay_multiplier
            * systematic
        )
        self._owner_multiplier = stage_multiplier[self.netlist.owner_stage]
        self._weights = self.netlist.delay_weights(tech) * self._owner_multiplier
        self.fresh_path_delay = float(tech.stage_delay * stage_multiplier.sum())

        vth_offset = self.variation_sample.vth_offset
        self._vth0_pmos = tech.vth0_pmos + vth_offset
        self._vth0_nmos = tech.vth0_nmos + vth_offset
        if delay_model == "first-order":
            self._pmos_delay: GateDelayModel = FirstOrderDelayShift(
                tech.vdd_nominal, self._vth0_pmos
            )
            self._nmos_delay: GateDelayModel = FirstOrderDelayShift(
                tech.vdd_nominal, self._vth0_nmos
            )
        elif delay_model == "alpha-power":
            self._pmos_delay = AlphaPowerDelayModel(tech.vdd_nominal, self._vth0_pmos)
            self._nmos_delay = AlphaPowerDelayModel(tech.vdd_nominal, self._vth0_nmos)
        else:
            raise ConfigurationError(
                f"delay_model must be 'first-order' or 'alpha-power', got {delay_model!r}"
            )

        is_pmos = self.netlist.owner_is_pmos
        self._pmos_owners = np.flatnonzero(is_pmos)
        self._nmos_owners = np.flatnonzero(~is_pmos)
        tracer = tracer if tracer is not None else get_tracer()
        pop_rng_p, pop_rng_n = rng.spawn(2)
        self._pmos_population = TrapPopulation(
            tech.nbti_traps, n_owners=self._pmos_owners.size, rng=pop_rng_p,
            tracer=tracer, guard=self.guard,
        )
        self._nmos_population = TrapPopulation(
            tech.pbti_traps, n_owners=self._nmos_owners.size, rng=pop_rng_n,
            tracer=tracer, guard=self.guard,
        )
        self._elapsed = 0.0
        self._trap_updates = tracer.counter(
            "bti.trap_updates", "per-transistor trap-population evolutions"
        )
        # Per-owner ceiling on delta_vth (every trap occupied) — the
        # domain bound the device.delta_vth contract checks against.
        caps = np.zeros(self.n_owners)
        caps[self._pmos_owners] = self._pmos_population.max_delta_vth()
        caps[self._nmos_owners] = self._nmos_population.max_delta_vth()
        self._dvth_caps = caps

    # ------------------------------------------------------------------ #
    # observables
    # ------------------------------------------------------------------ #

    @property
    def elapsed(self) -> float:
        """Simulated seconds the chip has lived through."""
        return self._elapsed

    @property
    def n_owners(self) -> int:
        """Total number of aging transistors on the CUT."""
        return self.netlist.n_owners

    def delta_vth(self) -> np.ndarray:
        """Per-owner expected threshold shift (volts), global owner order.

        Contract: each shift lives in ``[0, sum of that owner's trap
        impacts]`` — BTI only raises Vth, and a fully occupied population
        is the worst case.
        """
        shifts = np.zeros(self.n_owners)
        shifts[self._pmos_owners] = self._pmos_population.delta_vth()
        shifts[self._nmos_owners] = self._nmos_population.delta_vth()
        guard = self.guard
        if guard.checking:
            shifts = guard.check_array(
                "device.delta_vth",
                shifts,
                0.0,
                self._dvth_caps,
                inputs=lambda: {
                    "chip": self.chip_id,
                    "elapsed": float(self._elapsed),
                },
            )
        return shifts

    def path_delay(self) -> float:
        """Current CUT delay in seconds (half the oscillation period).

        Contract: finite and never below the fresh delay — aging only
        slows the CUT, and a full recovery asymptotically returns to (but
        never overshoots) the fresh chip.
        """
        shifts = self.delta_vth()
        pmos_shift = np.sum(
            self._pmos_delay.delay_shift(
                self._weights[self._pmos_owners], shifts[self._pmos_owners]
            )
        )
        nmos_shift = np.sum(
            self._nmos_delay.delay_shift(
                self._weights[self._nmos_owners], shifts[self._nmos_owners]
            )
        )
        delay = self.fresh_path_delay + float(pmos_shift) + float(nmos_shift)
        guard = self.guard
        if guard.checking:
            fresh = self.fresh_path_delay
            delay = guard.check_scalar(
                "fpga.path_delay",
                delay,
                fresh,
                np.inf,
                tol=1e-9 * fresh,
                inputs=lambda: {"chip": self.chip_id, "fresh": fresh,
                                "elapsed": float(self._elapsed)},
            )
        return delay

    def delta_path_delay(self) -> float:
        """Delay increase versus the fresh chip (paper's dTd)."""
        return self.path_delay() - self.fresh_path_delay

    def oscillation_frequency(self) -> float:
        """Ring-oscillator frequency ``1 / (2 * path_delay)`` in Hz."""
        return 1.0 / (2.0 * self.path_delay())

    # ------------------------------------------------------------------ #
    # bias application
    # ------------------------------------------------------------------ #

    def _evolve(
        self,
        duration: float,
        stress_voltage: np.ndarray,
        temperature: float,
        duty: float = 1.0,
        relax_voltage: np.ndarray | None = None,
    ) -> None:
        relax = relax_voltage if relax_voltage is not None else np.zeros(self.n_owners)
        self._pmos_population.evolve(
            duration,
            stress_voltage[self._pmos_owners],
            temperature,
            duty=duty,
            relax_voltage=relax[self._pmos_owners],
        )
        self._nmos_population.evolve(
            duration,
            stress_voltage[self._nmos_owners],
            temperature,
            duty=duty,
            relax_voltage=relax[self._nmos_owners],
        )
        self._trap_updates.inc(self.n_owners)
        self._elapsed += duration

    def _stress_profile(
        self,
        temperature: float,
        supply_voltage: float | None,
        mode: StressMode,
        chain_input: int,
    ) -> tuple[np.ndarray, float, np.ndarray | None]:
        """Validated per-owner ``(v_stress, duty, v_relax)`` for a stress bias."""
        supply = supply_voltage if supply_voltage is not None else self.tech.vdd_nominal
        if supply <= 0.0:
            raise ConfigurationError("stress requires a positive supply; use apply_recovery")
        self.tech.check_temperature(temperature)
        if mode is StressMode.DC:
            fractions = self.netlist.dc_stress_fractions(chain_input)
            return fractions * supply, 1.0, None
        if mode is StressMode.AC:
            pattern_a, pattern_b = self.netlist.ac_stress_fractions()
            return pattern_a * supply, 0.5, pattern_b * supply
        raise ConfigurationError(f"unknown stress mode {mode!r}")

    def _recovery_profile(
        self, temperature: float, supply_voltage: float
    ) -> tuple[np.ndarray, float, np.ndarray | None]:
        """Validated per-owner ``(v_stress, duty, v_relax)`` for a recovery bias."""
        if supply_voltage > 0.0:
            raise ConfigurationError("recovery needs a non-positive supply voltage")
        self.tech.check_recovery_voltage(supply_voltage)
        self.tech.check_temperature(temperature)
        return np.full(self.n_owners, supply_voltage), 1.0, None

    def apply_stress(
        self,
        duration: float,
        temperature: float,
        supply_voltage: float | None = None,
        mode: StressMode = StressMode.DC,
        chain_input: int = 1,
    ) -> None:
        """Stress the CUT for ``duration`` seconds.

        DC mode freezes the ring at ``chain_input``; AC mode lets it
        oscillate (50 % duty between the two complementary static
        patterns).  ``supply_voltage`` defaults to the nominal rail.
        """
        v_stress, duty, v_relax = self._stress_profile(
            temperature, supply_voltage, mode, chain_input
        )
        self._evolve(duration, v_stress, temperature, duty=duty, relax_voltage=v_relax)

    def apply_recovery(
        self, duration: float, temperature: float, supply_voltage: float = 0.0
    ) -> None:
        """Let the CUT recover for ``duration`` seconds.

        ``supply_voltage`` of 0 is passive recovery (power gated); a
        negative value is the paper's accelerated recovery.  Every device
        sees the recovery bias uniformly.
        """
        v_stress, duty, v_relax = self._recovery_profile(temperature, supply_voltage)
        self._evolve(duration, v_stress, temperature, duty=duty, relax_voltage=v_relax)

    def _segment_profile(
        self, segment: CycleSegment
    ) -> tuple[np.ndarray, float, np.ndarray | None]:
        """Per-owner bias profile of one schedule segment."""
        if segment.stress:
            return self._stress_profile(
                segment.temperature,
                segment.supply_voltage,
                segment.mode,
                segment.chain_input,
            )
        supply = 0.0 if segment.supply_voltage is None else segment.supply_voltage
        return self._recovery_profile(segment.temperature, supply)

    def apply_cycles(self, segments: Sequence[CycleSegment], n: int) -> None:
        """Advance through ``n`` repetitions of a fixed segment sequence.

        Uses the closed-form affine composition of
        :meth:`~repro.bti.traps.TrapPopulation.evolve_cycles` — exact (the
        same piecewise-constant physics as calling :meth:`apply_stress` /
        :meth:`apply_recovery` in a loop) but O(1) in ``n``.  Only valid
        when every cycle really is identical: any per-cycle feedback
        (adaptive duty, jittered instruments) must stay on the loop path.
        """
        if n < 0:
            raise ConfigurationError(f"cycle count must be non-negative, got {n}")
        if not segments:
            raise ConfigurationError("apply_cycles needs at least one segment")
        if n == 0:
            return
        phases_pmos: list[CyclePhase] = []
        phases_nmos: list[CyclePhase] = []
        period = 0.0
        for segment in segments:
            v_stress, duty, v_relax = self._segment_profile(segment)
            relax = v_relax if v_relax is not None else np.zeros(self.n_owners)
            for owners, phases in (
                (self._pmos_owners, phases_pmos),
                (self._nmos_owners, phases_nmos),
            ):
                phases.append(
                    CyclePhase(
                        duration=segment.duration,
                        stress_voltage=v_stress[owners],
                        temperature=segment.temperature,
                        duty=duty,
                        relax_voltage=relax[owners],
                    )
                )
            period += segment.duration
        self._pmos_population.evolve_cycles(phases_pmos, n)
        self._nmos_population.evolve_cycles(phases_nmos, n)
        self._trap_updates.inc(self.n_owners * len(segments) * n)
        self._elapsed += n * period

    # ------------------------------------------------------------------ #
    # state management
    # ------------------------------------------------------------------ #

    def snapshot(self) -> tuple:
        """Capture aging state for later :meth:`restore` (what-if runs)."""
        return (
            self._pmos_population.snapshot(),
            self._nmos_population.snapshot(),
            self._elapsed,
        )

    def restore(self, state: tuple) -> None:
        """Restore a snapshot taken on this chip."""
        pmos, nmos, elapsed = state
        self._pmos_population.restore(pmos)
        self._nmos_population.restore(nmos)
        self._elapsed = elapsed

    def reset(self) -> None:
        """Return the chip to the fresh, unaged state."""
        self._pmos_population.reset()
        self._nmos_population.reset()
        self._elapsed = 0.0

    def inject_trap_upset(self, value: float, n_traps: int = 64) -> None:
        """Corrupt the leading trap occupancies of both populations.

        Fault-injection hook for the lab's ``TRAP_UPSET`` events: writes
        ``value`` (typically NaN or an out-of-domain occupancy) straight
        into the state, bypassing the physics.  The corruption surfaces at
        the next evolve step through the :mod:`repro.guard` contracts.
        """
        self._pmos_population.inject_upset(value, n_traps)
        self._nmos_population.inject_upset(value, n_traps)

    def export_state(self) -> dict[str, np.ndarray | float]:
        """Aging state as plain arrays/floats, for on-disk checkpoints.

        Everything mutable lives here: the two trap occupancies and the
        three clocks.  The immutable parts (variation sample, netlist,
        weights) are reproduced exactly by rebuilding the chip from the
        same seed, so a checkpoint never stores them.
        """
        pmos, nmos, elapsed = self.snapshot()
        return {
            "pmos_occupancy": pmos.occupancy,
            "pmos_elapsed": pmos.elapsed,
            "nmos_occupancy": nmos.occupancy,
            "nmos_elapsed": nmos.elapsed,
            "elapsed": elapsed,
        }

    def import_state(self, state: dict) -> None:
        """Restore a state produced by :meth:`export_state`.

        The chip must have been built from the same seed/technology — the
        occupancy shapes are validated against this chip's populations.
        """
        self.restore(
            (
                _PopulationState(
                    occupancy=np.asarray(state["pmos_occupancy"], dtype=float),
                    elapsed=float(state["pmos_elapsed"]),
                ),
                _PopulationState(
                    occupancy=np.asarray(state["nmos_occupancy"], dtype=float),
                    elapsed=float(state["nmos_elapsed"]),
                ),
                float(state["elapsed"]),
            )
        )

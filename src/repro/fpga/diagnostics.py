"""Placement diagnostics: the paper's multi-location CUT survey.

"To pick this frequency, CUT is placed at different locations on the FPGA,
and a diagnostic program is run" (paper Sec. 4.2).  The survey builds the
same CUT at several fabric sites, measures each placement's fresh
frequency, and reports the spatial spread — the systematic within-die
variation that motivates per-chip normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import Table
from repro.device.technology import TechnologyParameters, TECH_40NM
from repro.device.variation import ProcessVariation
from repro.errors import ConfigurationError
from repro.fpga.chip import FpgaChip
from repro.fpga.counter import ReadoutCounter
from repro.fpga.fabric import Fabric, Location
from repro.fpga.ring_oscillator import RingOscillator


@dataclass(frozen=True)
class PlacementMeasurement:
    """One site of the survey."""

    location: Location
    frequency: float
    count: int


@dataclass(frozen=True)
class SurveyResult:
    """All surveyed placements of one CUT design."""

    measurements: tuple[PlacementMeasurement, ...]

    @property
    def frequencies(self) -> np.ndarray:
        """Measured frequencies across the surveyed sites."""
        return np.array([m.frequency for m in self.measurements])

    @property
    def spatial_spread(self) -> float:
        """(max - min) / mean of the placement frequencies."""
        freqs = self.frequencies
        return float((freqs.max() - freqs.min()) / freqs.mean())

    def best_site(self) -> PlacementMeasurement:
        """Fastest placement — where a performance-critical CUT belongs."""
        return max(self.measurements, key=lambda m: m.frequency)

    def table(self) -> Table:
        """Render the survey as a table."""
        table = Table(
            "Placement survey (diagnostic program)",
            ["site (row, col)", "frequency (MHz)", "count"],
            fmt="{:.4f}",
        )
        for m in self.measurements:
            table.add_row(
                f"({m.location.row}, {m.location.col})", m.frequency / 1e6, m.count
            )
        return table


def placement_survey(
    fabric: Fabric | None = None,
    n_sites: int = 8,
    n_stages: int = 75,
    tech: TechnologyParameters = TECH_40NM,
    variation: ProcessVariation | None = None,
    seed: int | None = 0,
) -> SurveyResult:
    """Run the diagnostic program: one CUT instance per surveyed site.

    All placements live on the *same die*: the die-level variation
    component is common mode (it cannot contribute to a within-die
    spread), so the survey models only what differs between sites — the
    systematic surface gradient and per-placement local mismatch.
    """
    if n_sites <= 0:
        raise ConfigurationError("n_sites must be positive")
    fabric = fabric or Fabric()
    rng = np.random.default_rng(seed)
    die_seed = int(rng.integers(2**31))
    sites = fabric.placement_sites(n_sites, rng=rng)
    counter = ReadoutCounter()
    if variation is None:
        base = ProcessVariation()
        variation = ProcessVariation(
            chip_vth_sigma=0.0,
            chip_delay_sigma=0.0,
            local_delay_sigma=base.local_delay_sigma,
        )
    measurements = []
    for index, location in enumerate(sites):
        chip = FpgaChip(
            f"survey-{index}",
            n_stages=n_stages,
            tech=tech,
            variation=variation,
            fabric=fabric,
            location=location,
            seed=die_seed + index,
        )
        ro = RingOscillator(chip, counter)
        reading = ro.measure_averaged(3, rng=rng)
        measurements.append(
            PlacementMeasurement(
                location=location, frequency=reading.frequency, count=reading.count
            )
        )
    return SurveyResult(measurements=tuple(measurements))

"""FPGA fabric: a grid of LUT sites with systematic spatial variation.

The paper places the CUT "at different locations on the FPGA" and runs a
diagnostic program per location.  The fabric models the spatial dimension:
a rows x columns grid of LUT sites whose delays carry a smooth systematic
process gradient, so placements at different locations measure slightly
different fresh frequencies — exactly why the paper normalises per chip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Location:
    """A LUT-site coordinate on the fabric."""

    row: int
    col: int


class Fabric:
    """Grid of LUT sites with a systematic delay gradient.

    Parameters
    ----------
    rows / cols:
        Fabric dimensions in LUT sites.
    gradient:
        Peak-to-centre relative delay excursion of the systematic surface
        (a bowl shape — dies are typically slower toward the edges).
    """

    def __init__(self, rows: int = 32, cols: int = 32, gradient: float = 0.015) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("fabric dimensions must be positive")
        if gradient < 0.0:
            raise ConfigurationError(f"gradient must be non-negative, got {gradient}")
        self.rows = rows
        self.cols = cols
        self.gradient = gradient

    @property
    def center(self) -> Location:
        """The centre site of the fabric."""
        return Location(self.rows // 2, self.cols // 2)

    def contains(self, location: Location) -> bool:
        """True if ``location`` is a valid site."""
        return 0 <= location.row < self.rows and 0 <= location.col < self.cols

    def systematic_multiplier(self, location: Location) -> float:
        """Delay multiplier of the systematic surface at ``location``.

        1.0 at the die centre, rising quadratically toward the corners up
        to ``1 + gradient``.
        """
        if not self.contains(location):
            raise ConfigurationError(
                f"location {location} outside the {self.rows}x{self.cols} fabric"
            )
        # Normalised offsets in [-1, 1] relative to the die centre.
        dr = (location.row - (self.rows - 1) / 2.0) / max((self.rows - 1) / 2.0, 1.0)
        dc = (location.col - (self.cols - 1) / 2.0) / max((self.cols - 1) / 2.0, 1.0)
        radial = 0.5 * (dr * dr + dc * dc)
        return 1.0 + self.gradient * radial

    def placement_sites(self, n_sites: int, rng: np.random.Generator | int | None = None) -> list[Location]:
        """Sample distinct candidate placements for a diagnostic sweep."""
        if n_sites <= 0 or n_sites > self.rows * self.cols:
            raise ConfigurationError(
                f"n_sites must be in 1..{self.rows * self.cols}, got {n_sites}"
            )
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        flat = rng.choice(self.rows * self.cols, size=n_sites, replace=False)
        return [Location(int(i) // self.cols, int(i) % self.cols) for i in flat]

"""Mapped ring-oscillator netlist: 75 LUT inverters plus routing.

The netlist is pure structure — which transistors exist, how they sit on
the path of interest (POI), and which of them a given static or toggling
pattern stresses.  Process variation and aging state are applied by
:class:`repro.fpga.chip.FpgaChip` on top.

Owner indexing
--------------

Every aging transistor of the chain is an "owner" for the trap populations.
Owners are numbered stage-major: stage 0's LUT transistors (M1..M8), stage
0's routing switches (R1..), then stage 1, and so on.  All per-owner arrays
produced here follow that order.
"""

from __future__ import annotations

import numpy as np

from repro.device.technology import TechnologyParameters
from repro.device.transistor import TransistorRole
from repro.errors import ConfigurationError
from repro.fpga.lut import INVERTER_ON_IN0, LutConfig, PassTransistorLut
from repro.fpga.routing import RoutingBlock

#: NAND configuration: ``out = NOT(In0 AND In1)`` — the paper's Fig. 3
#: enable stage.  With ``In1 = En = 1`` it inverts In0 (the ring runs);
#: with ``En = 0`` its output is forced to 1 (the ring freezes).
NAND_CONFIG = LutConfig((1, 1, 1, 0))

#: Probability that a transistor sits on the conducting path while the
#: oscillator toggles (inputs In0 = 0 and 1 visited equally, In1 fixed 1).
_POI_MEMBERSHIP = {
    "M1": 0.5,
    "M2": 0.5,
    "M3": 0.0,
    "M4": 0.0,
    "M5": 1.0,
    "M6": 0.0,
    "M7": 1.0,
    "M8": 1.0,
}


class InverterChainNetlist:
    """A chain of ``n_stages`` LUT inverters closed into a ring oscillator.

    Each stage is one :class:`PassTransistorLut` configured as an inverter
    on ``In0`` (``In1`` tied high, as in the paper's example) followed by a
    :class:`RoutingBlock` to the next stage.
    """

    def __init__(
        self,
        n_stages: int = 75,
        routing_switches: int = 2,
        config: LutConfig = INVERTER_ON_IN0,
        enable_gated: bool = False,
    ) -> None:
        if n_stages < 3 or n_stages % 2 == 0:
            raise ConfigurationError(
                f"a ring oscillator needs an odd stage count >= 3, got {n_stages}"
            )
        self.n_stages = n_stages
        self.lut = PassTransistorLut(config)
        # With enable gating, stage 0 is a NAND whose In1 is the enable:
        # En = 1 leaves it an inverter (ring runs), En = 0 forces its
        # output high (ring freezes with a defined pattern) — Fig. 3's En.
        self.enable_gated = enable_gated
        self._enable_lut = PassTransistorLut(NAND_CONFIG) if enable_gated else self.lut
        self.routing = RoutingBlock(routing_switches)
        self._stage_transistors = tuple(self.lut.transistors) + tuple(
            self.routing.transistors
        )
        per_stage = len(self._stage_transistors)
        self.owners_per_stage = per_stage
        self.n_owners = n_stages * per_stage

        names: list[str] = []
        stages = np.empty(self.n_owners, dtype=int)
        is_pmos = np.empty(self.n_owners, dtype=bool)
        stress_fraction = np.empty(self.n_owners)
        for stage in range(n_stages):
            for local, tr in enumerate(self._stage_transistors):
                idx = stage * per_stage + local
                names.append(f"S{stage}.{tr.name}")
                stages[idx] = stage
                is_pmos[idx] = tr.is_pmos
                stress_fraction[idx] = tr.stress_fraction
        self.owner_names: tuple[str, ...] = tuple(names)
        self.owner_stage = stages
        self.owner_is_pmos = is_pmos
        self.owner_stress_fraction = stress_fraction
        # The netlist is pure structure, so every stress pattern is fixed
        # at construction; campaigns request the same handful of patterns
        # thousands of times.  Memoise them as read-only arrays.
        self._dc_fractions: dict[int, np.ndarray] = {}
        self._ac_fractions: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def owner_index(self, stage: int, name: str) -> int:
        """Global owner index of transistor ``name`` in ``stage``."""
        if not 0 <= stage < self.n_stages:
            raise ConfigurationError(f"stage {stage} outside 0..{self.n_stages - 1}")
        for local, tr in enumerate(self._stage_transistors):
            if tr.name == name:
                return stage * self.owners_per_stage + local
        raise ConfigurationError(f"no transistor named {name!r} in a stage")

    def delay_weights(self, tech: TechnologyParameters) -> np.ndarray:
        """Per-owner delay sensitivity weight in seconds.

        ``weights[i]`` is the share of the fresh stage delay whose
        ``dVth``-sensitivity owner ``i`` carries while the oscillator is
        being measured: component fresh delay x within-component share x
        POI-membership probability (paper Eq. 7 with Ns realised per
        device).  Off-POI devices get zero weight — aging them never moves
        the measured frequency (paper Hypothesis 2's corollary).
        """
        component_delay = {
            TransistorRole.PASS_LEVEL1: tech.pass_tree_delay,
            TransistorRole.PASS_LEVEL2: tech.pass_tree_delay,
            TransistorRole.BUFFER_PULLUP: tech.buffer_delay,
            TransistorRole.BUFFER_PULLDOWN: tech.buffer_delay,
            TransistorRole.ROUTING: tech.routing_delay,
        }
        per_stage = np.array(
            [
                component_delay[tr.role]
                * tr.delay_weight
                * _POI_MEMBERSHIP.get(tr.name, 1.0)
                for tr in self._stage_transistors
            ]
        )
        return np.tile(per_stage, self.n_stages)

    # ------------------------------------------------------------------ #
    # stress patterns
    # ------------------------------------------------------------------ #

    def node_values(self, chain_input: int) -> np.ndarray:
        """Static logic value at each stage input when the ring is frozen.

        For a plain chain, ``chain_input`` is the value forced at stage
        0's input; inverters alternate it down the chain.  For an
        enable-gated chain the frozen pattern is fixed by the NAND stage
        (``En = 0`` forces stage 0's output high) and ``chain_input`` is
        ignored — as on hardware, where freezing the ring leaves exactly
        one consistent pattern.
        """
        if chain_input not in (0, 1):
            raise ConfigurationError(f"chain_input must be 0 or 1, got {chain_input}")
        values = np.empty(self.n_stages, dtype=int)
        if self.enable_gated:
            # Stage 0 (NAND, En = 0) outputs 1 whatever its In0; the odd
            # chain feeds a consistent 1 back to its input.
            values[0] = 1
            value = 1  # stage 1 sees stage 0's forced-high output
            for stage in range(1, self.n_stages):
                values[stage] = value
                value = 1 - value
            return values
        value = chain_input
        for stage in range(self.n_stages):
            values[stage] = value
            value = 1 - value
        return values

    def _stage_stressed(self, stage: int, in0: int, enable: int) -> dict[str, float]:
        """Stressed fractions of one stage's LUT for given inputs."""
        if stage == 0 and self.enable_gated:
            return self._enable_lut.stressed_fractions(in0, enable)
        return self.lut.stressed_fractions(in0, 1)

    def _stage_output(self, stage: int, in0: int, enable: int) -> int:
        """Logic output of one stage for given inputs."""
        if stage == 0 and self.enable_gated:
            return self._enable_lut.evaluate(in0, enable)
        return self.lut.evaluate(in0, 1)

    def dc_stress_fractions(self, chain_input: int = 1) -> np.ndarray:
        """Per-owner stress fraction for the frozen (DC) chain.

        0.0 means unstressed; otherwise the fraction of the full-rail
        overdrive the device sees.  Under DC the set is constant once the
        inputs are fixed — the paper's Hypothesis 1.  Enable-gated chains
        freeze with ``En = 0``.

        The pattern is a pure function of the netlist structure, so it is
        computed once per ``chain_input`` and returned as a read-only
        array; callers must copy before mutating.
        """
        cached = self._dc_fractions.get(chain_input)
        if cached is not None:
            return cached
        fractions = np.zeros(self.n_owners)
        inputs = self.node_values(chain_input)
        enable = 0  # frozen ring: En held low (only used when gated)
        for stage in range(self.n_stages):
            in0 = int(inputs[stage])
            out = self._stage_output(stage, in0, enable)
            for name, fraction in self._stage_stressed(stage, in0, enable).items():
                fractions[self.owner_index(stage, name)] = fraction
            for name, fraction in self.routing.stressed_fractions(out).items():
                fractions[self.owner_index(stage, name)] = fraction
        fractions.flags.writeable = False
        self._dc_fractions[chain_input] = fractions
        return fractions

    def _running_pattern(self, phase_input: int) -> np.ndarray:
        """One oscillation half-cycle's stress pattern (En = 1)."""
        fractions = np.zeros(self.n_owners)
        value = phase_input
        for stage in range(self.n_stages):
            in0 = value
            out = self._stage_output(stage, in0, 1)
            for name, fraction in self._stage_stressed(stage, in0, 1).items():
                fractions[self.owner_index(stage, name)] = fraction
            for name, fraction in self.routing.stressed_fractions(out).items():
                fractions[self.owner_index(stage, name)] = fraction
            value = out
        return fractions

    def ac_stress_fractions(self) -> tuple[np.ndarray, np.ndarray]:
        """The two complementary half-cycle stress patterns under AC.

        A free-running ring alternates between the two static patterns; a
        50 % duty cycle between them models the oscillation (the toggling
        period, ~100 ns, is far below any trap time constant).  Computed
        once and returned as read-only arrays; copy before mutating.
        """
        if self._ac_fractions is None:
            pattern_a = self._running_pattern(1)
            pattern_b = self._running_pattern(0)
            pattern_a.flags.writeable = False
            pattern_b.flags.writeable = False
            self._ac_fractions = (pattern_a, pattern_b)
        return self._ac_fractions

"""Trace query engine: ask a JSONL trace where the time went.

:class:`TraceModel` loads the records :class:`~repro.obs.exporter.JsonlExporter`
streamed (or takes a live :class:`~repro.obs.tracer.Tracer`) and builds an
indexed span tree, so tooling can answer the questions hand-grepping JSONL
cannot:

* **tree** — reconstruct the ``campaign -> case -> phase -> measurement``
  hierarchy with durations and attributes (:meth:`TraceModel.tree_render`);
* **top** — top-N span groups by *self* time (duration minus children) or
  cumulative time (:meth:`TraceModel.top`);
* **rollups** — counter/gauge families from the metric records
  (:meth:`TraceModel.metric_family_table`) and numeric span attributes
  summed by chip or by span path (:meth:`TraceModel.rollup`);
* **diff** — compare two runs of the same workload
  (:func:`diff_traces`): exact rows (span counts, counter values,
  histogram counts) flag any difference, timing rows flag only changes
  beyond both a relative and an absolute threshold, and rate gauges are
  informational.

Everything here is read-only over finished traces; nothing imports the
simulation stack, so the query engine also loads traces produced by
other repro versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.tables import Table
from repro.errors import MeasurementError
from repro.obs.exporter import load_trace

#: Metric name suffixes that accumulate wall-clock seconds (timing, not
#: logical counts — exact diffing would flag every run).
_TIMING_SUFFIXES = ("_seconds", ".seconds")


@dataclass
class SpanNode:
    """One span of a loaded trace, linked into its tree."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    start: float
    duration: float
    attrs: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def self_time(self) -> float:
        """Wall seconds spent in this span excluding its children."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    @property
    def sim_advanced(self) -> float:
        """Simulated seconds this span advanced (0 if not recorded)."""
        return float(self.attrs.get("sim_advanced", 0.0))

    @property
    def frame(self) -> str:
        """The flamegraph/grouping frame name for this span.

        Phase spans are refined by their kind (``phase:stress`` vs
        ``phase:recovery``) — the two have very different cost profiles.
        """
        kind = self.attrs.get("kind")
        return f"{self.name}:{kind}" if kind else self.name

    def attr_number(self, key: str) -> float | None:
        """A numeric attribute value, or None when absent/non-numeric."""
        value = self.attrs.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value)


@dataclass
class SpanGroup:
    """Aggregate over the spans that share one group key."""

    key: str
    count: int = 0
    total: float = 0.0
    self_time: float = 0.0
    sim_advanced: float = 0.0

    def add(self, span: SpanNode) -> None:
        """Fold one span into the aggregate."""
        self.count += 1
        self.total += span.duration
        self.self_time += span.self_time
        self.sim_advanced += span.sim_advanced


class TraceModel:
    """An indexed, queryable model of one finished trace."""

    def __init__(self, spans: list[SpanNode], metrics: dict[str, dict]) -> None:
        self.spans = spans
        self.metrics = metrics
        self.by_id: dict[int, SpanNode] = {s.span_id: s for s in spans}
        self.roots: list[SpanNode] = []
        for span in spans:
            parent = self.by_id.get(span.parent_id)
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
        self._paths: dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_records(cls, records: list[dict]) -> "TraceModel":
        """Build a model from already-parsed trace records."""
        spans: list[SpanNode] = []
        metrics: dict[str, dict] = {}
        for record in records:
            kind = record.get("type")
            if kind == "span":
                spans.append(
                    SpanNode(
                        name=record.get("name", "?"),
                        span_id=int(record["span_id"]),
                        parent_id=record.get("parent_id"),
                        depth=int(record.get("depth", 0)),
                        start=float(record.get("start_s", 0.0)),
                        duration=float(record.get("duration_s", 0.0)),
                        attrs=dict(record.get("attrs", {})),
                    )
                )
            elif kind == "metric":
                metrics[record["name"]] = record
        return cls(spans, metrics)

    @classmethod
    def load(cls, path: str | Path) -> "TraceModel":
        """Load a JSONL trace file into a model."""
        return cls.from_records(load_trace(path))

    @classmethod
    def from_tracer(cls, tracer) -> "TraceModel":
        """Snapshot a live in-memory tracer (finished spans + metrics)."""
        spans = [
            SpanNode(
                name=span.name,
                span_id=span.span_id,
                parent_id=span.parent_id,
                depth=span.depth,
                start=span.start,
                duration=span.duration,
                attrs=dict(span.attributes),
            )
            for span in tracer.finished
        ]
        metrics: dict[str, dict] = {}
        for name, value in tracer.metrics.snapshot().items():
            metric = tracer.metrics.get(name)
            record = {"type": "metric", "name": name, "kind": metric.kind,
                      "value": value}
            if hasattr(metric, "payload"):
                record.update(metric.payload())
            metrics[name] = record
        return cls(spans, metrics)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.spans)

    def path(self, span: SpanNode) -> str:
        """Root-to-span frame path, e.g. ``campaign;case;phase:stress``."""
        cached = self._paths.get(span.span_id)
        if cached is not None:
            return cached
        parent = self.by_id.get(span.parent_id)
        path = span.frame if parent is None else f"{self.path(parent)};{span.frame}"
        self._paths[span.span_id] = path
        return path

    def spans_named(self, name: str) -> list[SpanNode]:
        """Spans whose raw name is ``name``, in file order."""
        return [span for span in self.spans if span.name == name]

    def metric_value(self, name: str, default: float = 0.0) -> float:
        """The recorded value of one metric (``default`` when absent)."""
        record = self.metrics.get(name)
        return float(record["value"]) if record is not None else default

    def metrics_matching(self, prefix: str) -> dict[str, float]:
        """Name -> value for metrics under a dotted prefix, sorted."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {
            name: float(record["value"])
            for name, record in sorted(self.metrics.items())
            if name.startswith(dotted) or name == prefix
        }

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #

    def aggregate(self, group: str = "name") -> dict[str, SpanGroup]:
        """Span aggregates keyed by ``name`` (frame) or full ``path``."""
        if group not in ("name", "path"):
            raise MeasurementError(f"unknown span grouping {group!r}")
        groups: dict[str, SpanGroup] = {}
        for span in self.spans:
            key = span.frame if group == "name" else self.path(span)
            entry = groups.get(key)
            if entry is None:
                entry = groups[key] = SpanGroup(key)
            entry.add(span)
        return groups

    def top(self, n: int = 10, by: str = "self", group: str = "name") -> Table:
        """Top-``n`` span groups by self or cumulative (total) time."""
        if by not in ("self", "total"):
            raise MeasurementError(f"unknown top ordering {by!r}")
        groups = sorted(
            self.aggregate(group).values(),
            key=lambda g: (-(g.self_time if by == "self" else g.total), g.key),
        )
        total_self = sum(g.self_time for g in groups) or 1.0
        table = Table(
            f"Top {min(n, len(groups))} span groups by {by} time",
            [group, "count", "self s", "total s", "self %", "sim s"],
            fmt="{:,.3f}",
        )
        for entry in groups[:n]:
            table.add_row(
                entry.key,
                f"{entry.count}",
                entry.self_time,
                entry.total,
                100.0 * entry.self_time / total_self,
                entry.sim_advanced,
            )
        return table

    def rollup(self, attr: str, by: str = "chip") -> dict[str, float]:
        """Sum a numeric span attribute grouped by chip or span path.

        ``by="chip"`` groups on the ``chip_id`` attribute (spans without
        one land under ``"-"``); ``by="path"`` groups on the full frame
        path.  Missing/non-numeric values are skipped, so e.g. a
        ``guard_violations`` rollup only counts annotated spans.
        """
        if by not in ("chip", "path"):
            raise MeasurementError(f"unknown rollup grouping {by!r}")
        sums: dict[str, float] = {}
        for span in self.spans:
            value = span.attr_number(attr)
            if value is None:
                continue
            key = (
                str(span.attrs.get("chip_id", "-"))
                if by == "chip"
                else self.path(span)
            )
            sums[key] = sums.get(key, 0.0) + value
        return dict(sorted(sums.items()))

    def chip_table(self) -> Table:
        """Per-chip rollup: spans, wall/self time, sim time, measurements."""
        rows: dict[str, list[float]] = {}
        for span in self.spans:
            chip = str(span.attrs.get("chip_id", "-"))
            entry = rows.setdefault(chip, [0.0, 0.0, 0.0, 0.0])
            entry[0] += 1.0
            entry[1] += span.self_time
            if span.name == "case":
                entry[2] += span.sim_advanced
            if span.name == "measurement":
                entry[3] += 1.0
        table = Table(
            "Per-chip span rollup",
            ["chip", "spans", "self s", "sim s", "measurements"],
            fmt="{:,.3f}",
        )
        for chip in sorted(rows):
            count, self_s, sim_s, meas = rows[chip]
            table.add_row(chip, f"{int(count)}", self_s, sim_s, f"{int(meas)}")
        return table

    #: Families the campaign-health rollup pins: absent families still
    #: render (as a 0 row), so the ``repro stats`` output keeps a stable
    #: shape whether or not a run hit faults, retries or quarantines.
    HEALTH_FAMILIES = (
        "bti.rate_cache",
        "campaign.quarantines",
        "guard.violations",
        "lab.faults",
        "lab.sample_retries",
    )

    def metric_family_table(self, families: tuple[str, ...] | None = None) -> Table:
        """Metric records rolled up under their dotted family prefixes.

        With ``families=None`` every metric appears under its first
        dotted segment; passing explicit prefixes pins the rows (absent
        families render as 0, so the table shape is stable run to run).
        """
        table = Table(
            "Metric rollup by family",
            ["family", "metric", "kind", "value"],
            fmt="{:,.3f}",
        )
        if families is None:
            for name in sorted(self.metrics):
                record = self.metrics[name]
                table.add_row(
                    name.split(".", 1)[0], name, record.get("kind", "?"),
                    float(record["value"]),
                )
            return table
        for family in families:
            members = self.metrics_matching(family)
            if not members:
                table.add_row(family, f"{family}.*", "-", 0.0)
                continue
            for name, value in members.items():
                table.add_row(family, name, self.metrics[name].get("kind", "?"),
                              value)
        return table

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def tree_render(
        self, max_depth: int | None = None, min_duration: float = 0.0
    ) -> str:
        """The span tree as indented text with durations and key attrs."""
        lines: list[str] = []

        def visit(span: SpanNode) -> None:
            if max_depth is not None and span.depth > max_depth:
                return
            if span.duration < min_duration:
                return
            label = span.frame
            for key in ("chip_id", "case", "phase"):
                value = span.attrs.get(key)
                if value is not None:
                    label += f" {key}={value}"
            sim = span.sim_advanced
            suffix = f"  sim={sim:,.0f}s" if sim else ""
            lines.append(
                f"{'  ' * span.depth}{label}  [{1e3 * span.duration:,.1f} ms]{suffix}"
            )
            for child in span.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# diffing
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class DiffRow:
    """One compared quantity between trace A and trace B."""

    key: str
    #: ``exact`` (logical counts), ``timing`` (wall seconds) or ``rate``
    #: (throughput gauges — informational, never significant).
    category: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        """B minus A."""
        return self.b - self.a

    @property
    def rel(self) -> float:
        """Relative change of B vs A (inf when A is 0 and B is not)."""
        if self.a == 0.0:  # exact sentinel: metric absent in A  # repro: noqa[RPR003]
            return 0.0 if self.b == 0.0 else float("inf")  # repro: noqa[RPR003]
        return self.delta / self.a


@dataclass(frozen=True)
class HashRow:
    """One sanitizer ``state_hash`` span compared between trace A and B.

    ``seq`` is the chip-local phase index, so (chip_id, seq) identifies
    the same simulated phase in both runs regardless of worker
    scheduling.  An empty digest means the run recorded no hash for that
    phase (e.g. one side ran without ``--sanitize``).
    """

    chip_id: str
    seq: int
    case: str
    phase: str
    a: str
    b: str

    @property
    def match(self) -> bool:
        """Whether both runs produced the same digest for this phase."""
        return self.a == self.b


@dataclass
class TraceDiff:
    """All compared rows between two traces, plus significance rules."""

    rows: list[DiffRow]
    time_rel: float = 0.5
    time_abs: float = 0.5
    #: Sanitizer digests compared per (chip, phase seq); empty unless
    #: both traces carry ``state_hash`` spans.
    hash_rows: list[HashRow] = field(default_factory=list)

    def significant(self) -> list[DiffRow]:
        """Rows that represent a real difference between the runs.

        Exact rows (span counts, counter values, histogram counts) are
        significant on any difference; timing rows only when they moved
        by more than ``time_rel`` relatively *and* ``time_abs`` seconds
        absolutely; rate rows never (wall-clock noise).
        """
        flagged: list[DiffRow] = []
        for row in self.rows:
            if row.category == "exact":
                if row.a != row.b:
                    flagged.append(row)
            elif row.category == "timing":
                if abs(row.delta) > self.time_abs and abs(row.rel) > self.time_rel:
                    flagged.append(row)
        return flagged

    def hash_divergent(self) -> list[HashRow]:
        """Hash rows where the two runs disagree, in (seq, chip) order."""
        return sorted(
            (row for row in self.hash_rows if not row.match),
            key=lambda row: (row.seq, row.chip_id),
        )

    def first_divergence(self) -> HashRow | None:
        """The earliest phase (by chip-local seq) whose state diverged.

        Hashes are rolling, so every phase after the true divergence also
        mismatches — the first row is where the bug lives.
        """
        divergent = self.hash_divergent()
        return divergent[0] if divergent else None

    def hash_table(self) -> Table:
        """Render the sanitizer digest comparison."""
        divergent = self.hash_divergent()
        table = Table(
            f"State hashes — {len(divergent)} divergent of "
            f"{len(self.hash_rows)} compared",
            ["chip", "seq", "case", "phase", "A", "B", "match"],
        )
        for row in sorted(self.hash_rows, key=lambda r: (r.chip_id, r.seq)):
            table.add_row(
                row.chip_id,
                f"{row.seq}",
                row.case,
                row.phase,
                row.a or "-",
                row.b or "-",
                "yes" if row.match else "NO",
            )
        return table

    def table(self, significant_only: bool = False) -> Table:
        """Render the diff (optionally just the significant rows)."""
        rows = self.significant() if significant_only else self.rows
        title = (
            f"Trace diff — {len(self.significant())} significant of "
            f"{len(self.rows)} compared"
        )
        table = Table(title, ["quantity", "category", "A", "B", "delta", "rel %"],
                      fmt="{:,.3f}")
        for row in rows:
            rel = row.rel
            table.add_row(
                row.key,
                row.category,
                row.a,
                row.b,
                row.delta,
                "inf" if rel == float("inf") else f"{100.0 * rel:+.1f}",
            )
        return table


def _state_hash_index(model: TraceModel) -> dict[tuple[str, int], tuple[str, str, str]]:
    """(chip_id, seq) -> (case, phase, digest) from ``state_hash`` spans."""
    index: dict[tuple[str, int], tuple[str, str, str]] = {}
    for span in model.spans_named("state_hash"):
        key = (str(span.attrs.get("chip_id", "-")), int(span.attrs.get("seq", 0)))
        index[key] = (
            str(span.attrs.get("case", "")),
            str(span.attrs.get("phase", "")),
            str(span.attrs.get("state", "")),
        )
    return index


def _hash_rows(a: TraceModel, b: TraceModel) -> list[HashRow]:
    index_a = _state_hash_index(a)
    index_b = _state_hash_index(b)
    rows: list[HashRow] = []
    for key in sorted(set(index_a) | set(index_b)):
        case_a, phase_a, digest_a = index_a.get(key, ("", "", ""))
        case_b, phase_b, digest_b = index_b.get(key, ("", "", ""))
        rows.append(
            HashRow(
                chip_id=key[0],
                seq=key[1],
                case=case_a or case_b,
                phase=phase_a or phase_b,
                a=digest_a,
                b=digest_b,
            )
        )
    return rows


def _metric_category(name: str, kind: str) -> str:
    """How a metric should be compared between runs."""
    if kind in ("gauge", "derived"):
        return "rate"
    if kind == "counter" and name.endswith(_TIMING_SUFFIXES):
        return "timing"
    # counters and histogram observation counts are logical quantities
    return "exact"


def diff_traces(
    a: TraceModel,
    b: TraceModel,
    time_rel: float = 0.5,
    time_abs: float = 0.5,
) -> TraceDiff:
    """Compare two traces of the same workload, A as the baseline.

    Two seeded runs of the same campaign produce identical exact rows
    (span counts, counter values) and near-identical timing rows, so the
    diff reports zero significant deltas; a structural change (more
    spans, different counters) or a large slowdown is flagged.  Traces
    carrying sanitizer ``state_hash`` spans additionally get per-phase
    digest rows (:meth:`TraceDiff.first_divergence` pinpoints where two
    runs' chip state first disagreed).
    """
    rows: list[DiffRow] = []
    groups_a = a.aggregate("name")
    groups_b = b.aggregate("name")
    for key in sorted(set(groups_a) | set(groups_b)):
        left = groups_a.get(key, SpanGroup(key))
        right = groups_b.get(key, SpanGroup(key))
        rows.append(
            DiffRow(f"span:{key} count", "exact", float(left.count),
                    float(right.count))
        )
        rows.append(
            DiffRow(f"span:{key} self_s", "timing", left.self_time,
                    right.self_time)
        )
    names = sorted(set(a.metrics) | set(b.metrics))
    for name in names:
        kind = (a.metrics.get(name) or b.metrics.get(name)).get("kind", "gauge")
        rows.append(
            DiffRow(
                f"metric:{name}",
                _metric_category(name, kind),
                a.metric_value(name),
                b.metric_value(name),
            )
        )
    return TraceDiff(
        rows, time_rel=time_rel, time_abs=time_abs, hash_rows=_hash_rows(a, b)
    )

"""JSONL export of spans and metrics, and the matching loader.

The trace file is one JSON object per line, written as spans finish so a
crash still leaves a usable prefix.  Two record types share the stream:

``{"type": "span", "name", "span_id", "parent_id", "depth",
   "start_s", "duration_s", "attrs": {...}}``
    One finished span.  ``start_s`` is seconds since the tracer was
    created; ``parent_id`` is ``null`` for root spans.

``{"type": "metric", "name", "kind", "value"}``
    One counter or gauge, appended when the tracer is closed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import MeasurementError


def _jsonable(value):
    """Coerce numpy scalars and other oddballs into JSON-safe values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


class JsonlExporter:
    """Streams span/metric dicts to a JSON-lines file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            self._handle = open(self.path, "w")
        except OSError as error:
            raise MeasurementError(
                f"cannot open trace file {self.path}: {error}"
            ) from error
        self.n_lines = 0

    def _write(self, payload: dict) -> None:
        if self._handle is None:
            raise MeasurementError(f"trace exporter {self.path} is already closed")
        if "attrs" in payload:
            payload = dict(payload)
            payload["attrs"] = {
                key: _jsonable(val) for key, val in payload["attrs"].items()
            }
        self._handle.write(json.dumps(payload) + "\n")
        self.n_lines += 1

    def span(self, payload: dict) -> None:
        """Append one finished-span record."""
        self._write(payload)

    def metric(self, payload: dict) -> None:
        """Append one metric record."""
        self._write(payload)

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def load_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file back into a list of dicts.

    Raises :class:`~repro.errors.MeasurementError` with the file path and
    line number on malformed lines.
    """
    records: list[dict] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise MeasurementError(
                    f"{path}:{line_no}: malformed trace line ({error})"
                ) from error
    return records


def span_tree(records: list[dict]) -> dict[int | None, list[dict]]:
    """Group span records by ``parent_id`` for tree walking in tests."""
    children: dict[int | None, list[dict]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        children.setdefault(record.get("parent_id"), []).append(record)
    return children

"""Lightweight counters, gauges, histograms and derived gauges.

Metrics are deliberately simple: a :class:`Counter` accumulates a float,
a :class:`Gauge` holds the latest value, a :class:`Histogram` folds
observations into count/sum/min/max plus fixed buckets, and a
:class:`DerivedGauge` is a ratio of sibling metrics computed on read.  A
:class:`MetricsRegistry` owns one instance per name.  Hot paths cache
the metric object once at construction time, so recording a sample is a
single bound-method call — and the null variants make that call a no-op
when telemetry is off.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

from repro.analysis.tables import Table
from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing sum (events, records, seconds...)."""

    __slots__ = ("name", "description", "value")

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0.0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value:g})"


class Gauge:
    """A point-in-time value (throughput, queue depth, temperature...)."""

    __slots__ = ("name", "description", "value")

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the latest observation."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value:g})"


#: Default bucket upper bounds (decade grid); the last bucket is +inf.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0
)


class Histogram:
    """A distribution folded into count/sum/min/max and fixed buckets.

    Buckets are cumulative-style upper bounds (last is implicitly +inf);
    two histograms merge exactly — counts, sums and bucket tallies add in
    a fixed order, min/max take the extremes — so parallel workers fold
    into the same result as a sequential run.
    """

    __slots__ = ("name", "description", "bounds", "bucket_counts",
                 "count", "sum", "min", "max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        bounds: Sequence[float] | None = None,
    ) -> None:
        self.name = name
        self.description = description
        bounds = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be strictly increasing"
            )
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    @property
    def value(self) -> float:
        """The observation count (what snapshots and tables report)."""
        return float(self.count)

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def observe(self, value: float) -> None:
        """Fold one observation into the distribution."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram into this one (must share bounds)."""
        if other.bounds != self.bounds:
            raise ConfigurationError(
                f"histogram {self.name!r} bounds differ between registries"
            )
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, tally in enumerate(other.bucket_counts):
            self.bucket_counts[index] += tally

    def payload(self) -> dict:
        """Extra fields the JSONL metric record carries for histograms."""
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.sum,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, mean={self.mean:g})"
        )


class DerivedGauge:
    """A gauge computed on read as numerator / sum-of-denominators.

    The operands are *names* of sibling metrics in the owning registry,
    so a derived gauge survives merges for free: fold the underlying
    counters and the ratio is correct in the merged registry too.
    """

    __slots__ = ("name", "description", "numerator", "denominators", "_registry")

    kind = "derived"

    def __init__(
        self,
        name: str,
        description: str,
        numerator: str,
        denominators: Sequence[str],
        registry: "MetricsRegistry",
    ) -> None:
        if not denominators:
            raise ConfigurationError(
                f"derived gauge {name!r} needs at least one denominator"
            )
        self.name = name
        self.description = description
        self.numerator = numerator
        self.denominators = tuple(denominators)
        self._registry = registry

    @property
    def value(self) -> float:
        """numerator / sum(denominators), 0 when the denominator is 0."""
        denominator = sum(
            self._registry.value(name) for name in self.denominators
        )
        if denominator == 0.0:  # exact: counters start at literal 0.0  # repro: noqa[RPR003]
            return 0.0
        return self._registry.value(self.numerator) / denominator

    def payload(self) -> dict:
        """Extra fields the JSONL metric record carries for derived gauges."""
        return {
            "numerator": self.numerator,
            "denominators": list(self.denominators),
        }

    def __repr__(self) -> str:
        return f"DerivedGauge({self.name!r}, value={self.value:g})"


class NullCounter:
    """Counter stand-in whose :meth:`inc` does nothing."""

    __slots__ = ()

    kind = "counter"
    name = "null"
    description = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""


class NullGauge:
    """Gauge stand-in whose :meth:`set` does nothing."""

    __slots__ = ()

    kind = "gauge"
    name = "null"
    description = ""
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the observation."""


class NullHistogram:
    """Histogram stand-in whose :meth:`observe` does nothing."""

    __slots__ = ()

    kind = "histogram"
    name = "null"
    description = ""
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        """Discard the observation."""


class NullDerivedGauge:
    """Derived-gauge stand-in that always reads 0."""

    __slots__ = ()

    kind = "derived"
    name = "null"
    description = ""
    value = 0.0


#: Shared no-op instances handed out by the null tracer.
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
NULL_DERIVED_GAUGE = NullDerivedGauge()

Metric = Union[Counter, Gauge, Histogram, DerivedGauge]


class MetricsRegistry:
    """Get-or-create store of named metrics, queryable from tests."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        """The counter called ``name``, created on first use."""
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """The gauge called ``name``, created on first use."""
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        bounds: Sequence[float] | None = None,
    ) -> Histogram:
        """The histogram called ``name``, created on first use."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, description, bounds=bounds)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ConfigurationError(
                f"metric {name!r} is a {metric.kind}, not a histogram"
            )
        return metric

    def derived_gauge(
        self,
        name: str,
        description: str,
        numerator: str,
        denominators: Sequence[str],
    ) -> DerivedGauge:
        """The derived gauge called ``name``, created on first use.

        Re-registering must use the same operands — a derived gauge is a
        definition, not a stored value.
        """
        metric = self._metrics.get(name)
        if metric is None:
            metric = DerivedGauge(name, description, numerator, denominators, self)
            self._metrics[name] = metric
        elif not isinstance(metric, DerivedGauge):
            raise ConfigurationError(
                f"metric {name!r} is a {metric.kind}, not a derived gauge"
            )
        elif (metric.numerator, metric.denominators) != (
            numerator, tuple(denominators)
        ):
            raise ConfigurationError(
                f"derived gauge {name!r} re-registered with different operands"
            )
        return metric

    def _get_or_create(self, cls: type, name: str, description: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, description)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Metric | None:
        """The metric called ``name``, or ``None`` if never recorded."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """The current value of ``name`` (``default`` if absent)."""
        metric = self._metrics.get(name)
        return metric.value if metric is not None else default

    def snapshot(self) -> dict[str, float]:
        """Name -> value for every metric, sorted by name."""
        return {name: self._metrics[name].value for name in sorted(self._metrics)}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters accumulate (sums add); gauges take the other registry's
        value (it is the more recent observation when workers are merged
        after they finish); histograms fold exactly (counts, sums and
        bucket tallies add, min/max take the extremes); derived gauges
        re-register their definition, so they read correctly against the
        merged operands.  A name registered with a different kind in the
        two registries raises :class:`ConfigurationError`.
        """
        for name, metric in other._metrics.items():
            if metric.kind == "counter":
                self.counter(name, metric.description).inc(metric.value)
            elif metric.kind == "histogram":
                self.histogram(
                    name, metric.description, bounds=metric.bounds
                ).merge_from(metric)
            elif metric.kind == "derived":
                self.derived_gauge(
                    name, metric.description, metric.numerator, metric.denominators
                )
            else:
                self.gauge(name, metric.description).set(metric.value)

    def reset(self) -> None:
        """Drop every metric (a fresh run starts from zero)."""
        self._metrics.clear()

    def table(self, title: str = "Run metrics") -> Table:
        """Render every metric as an aligned text table."""
        table = Table(title, ["metric", "kind", "value", "description"], fmt="{:,.3f}")
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            table.add_row(name, metric.kind, metric.value, metric.description)
        return table

"""Lightweight counters and gauges for run telemetry.

Metrics are deliberately simple: a :class:`Counter` accumulates a float,
a :class:`Gauge` holds the latest value, and a :class:`MetricsRegistry`
owns one instance per name.  Hot paths cache the metric object once at
construction time, so recording a sample is a single bound-method call —
and the null variants make that call a no-op when telemetry is off.
"""

from __future__ import annotations

from typing import Union

from repro.analysis.tables import Table
from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing sum (events, records, seconds...)."""

    __slots__ = ("name", "description", "value")

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0.0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value:g})"


class Gauge:
    """A point-in-time value (throughput, queue depth, temperature...)."""

    __slots__ = ("name", "description", "value")

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the latest observation."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value:g})"


class NullCounter:
    """Counter stand-in whose :meth:`inc` does nothing."""

    __slots__ = ()

    kind = "counter"
    name = "null"
    description = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""


class NullGauge:
    """Gauge stand-in whose :meth:`set` does nothing."""

    __slots__ = ()

    kind = "gauge"
    name = "null"
    description = ""
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the observation."""


#: Shared no-op instances handed out by the null tracer.
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()

Metric = Union[Counter, Gauge]


class MetricsRegistry:
    """Get-or-create store of named metrics, queryable from tests."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        """The counter called ``name``, created on first use."""
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """The gauge called ``name``, created on first use."""
        return self._get_or_create(Gauge, name, description)

    def _get_or_create(self, cls: type, name: str, description: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, description)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Metric | None:
        """The metric called ``name``, or ``None`` if never recorded."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """The current value of ``name`` (``default`` if absent)."""
        metric = self._metrics.get(name)
        return metric.value if metric is not None else default

    def snapshot(self) -> dict[str, float]:
        """Name -> value for every metric, sorted by name."""
        return {name: self._metrics[name].value for name in sorted(self._metrics)}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters accumulate (sums add); gauges take the other registry's
        value (it is the more recent observation when workers are merged
        after they finish).  A name registered with a different kind in
        the two registries raises :class:`ConfigurationError`.
        """
        for name, metric in other._metrics.items():
            if metric.kind == "counter":
                self.counter(name, metric.description).inc(metric.value)
            else:
                self.gauge(name, metric.description).set(metric.value)

    def reset(self) -> None:
        """Drop every metric (a fresh run starts from zero)."""
        self._metrics.clear()

    def table(self, title: str = "Run metrics") -> Table:
        """Render every metric as an aligned text table."""
        table = Table(title, ["metric", "kind", "value", "description"], fmt="{:,.3f}")
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            table.add_row(name, metric.kind, metric.value, metric.description)
        return table

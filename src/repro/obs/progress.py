"""Human-facing progress lines for long campaign runs.

The five-chip Table-1 campaign simulates hundreds of hours of silicon
time and can take minutes of wall clock; the reporter prints one line per
completed unit of work so the operator can see chips/cases tick by::

    [   2.8s] chip-1  AS110AC24  done  (1/11 cases, 0/5 chips)
    [   5.5s] chip-1  AR110N6    done  (2/11 cases, 1/5 chips)

A disabled reporter (``enabled=False``) swallows everything, so callers
never need a null check.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO


class ProgressReporter:
    """Prints elapsed-stamped progress lines to a stream.

    Parameters
    ----------
    stream:
        Output stream; defaults to stderr so progress never pollutes
        piped CSV/JSON output on stdout.
    enabled:
        When false every method is a no-op.
    clock:
        Injectable monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self._clock = clock
        self._start = clock()
        self.n_lines = 0

    @property
    def elapsed(self) -> float:
        """Wall seconds since the reporter was created."""
        return self._clock() - self._start

    def line(self, message: str) -> None:
        """Print one ``[elapsed] message`` line."""
        if not self.enabled:
            return
        print(f"[{self.elapsed:7.1f}s] {message}", file=self.stream, flush=True)
        self.n_lines += 1

    @staticmethod
    def _resilience_suffix(retries: int, quarantined: int) -> str:
        """Live retry/quarantine tallies, shown only once either is nonzero."""
        if retries == 0 and quarantined == 0:
            return ""
        return f", {retries} retries, {quarantined} quarantined"

    def case_done(
        self,
        chip_id: str,
        case: str,
        cases_done: int,
        cases_total: int,
        chips_done: int,
        chips_total: int,
        retries: int = 0,
        quarantined: int = 0,
    ) -> None:
        """Report one completed test case with campaign-level progress.

        ``retries``/``quarantined`` are running campaign totals; they
        appear in the line as soon as either is nonzero, so the operator
        sees a flaky bench live instead of in the final result.
        """
        self.line(
            f"{chip_id:<8} {case:<10} done  "
            f"({cases_done}/{cases_total} cases, {chips_done}/{chips_total} chips"
            f"{self._resilience_suffix(retries, quarantined)})"
        )

    def chip_done(
        self,
        chip_id: str,
        chips_done: int,
        chips_total: int,
        retries: int = 0,
        quarantined: int = 0,
        quarantine_reason: str | None = None,
    ) -> None:
        """Report one chip finishing (or being pulled from) its schedule."""
        status = (
            f"QUARANTINED: {quarantine_reason}"
            if quarantine_reason is not None
            else "schedule complete"
        )
        self.line(
            f"{chip_id:<8} {status}  ({chips_done}/{chips_total} chips"
            f"{self._resilience_suffix(retries, quarantined)})"
        )


#: A reporter that discards everything — the default for library calls.
NULL_PROGRESS = ProgressReporter(enabled=False)

"""Observability: spans, counters and run telemetry.

The simulator's answer to the paper's in-situ measurement discipline —
"you cannot heal what you cannot monitor" applies to virtual silicon's
performance just as it does to real silicon's aging.  The subsystem has
four pieces:

* :class:`Tracer` / :class:`Span` — nestable timed units of work
  (``campaign -> case -> phase -> measurement``) with wall-clock
  duration, simulated-time advanced, and structured attributes;
* :class:`Counter` / :class:`Gauge` in a :class:`MetricsRegistry` —
  RO evaluations, trap-state updates, records appended, throughput;
* :class:`JsonlExporter` / :func:`load_trace` — a streamed JSONL trace
  plus the loader tests and tooling read it back with;
* :class:`ProgressReporter` — human-facing progress lines for
  multi-minute campaign runs.

The default tracer is :data:`NULL_TRACER`; uninstrumented runs pay a
no-op method call per event and nothing else (see
``benchmarks/bench_obs_overhead.py`` for the enforced budget).
"""

from repro.obs.exporter import JsonlExporter, load_trace, span_tree
from repro.obs.metrics import (
    Counter,
    DerivedGauge,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_DERIVED_GAUGE,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NullCounter,
    NullDerivedGauge,
    NullGauge,
    NullHistogram,
)
from repro.obs.progress import NULL_PROGRESS, ProgressReporter
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "DerivedGauge",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_DERIVED_GAUGE",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_PROGRESS",
    "NULL_TRACER",
    "NullCounter",
    "NullDerivedGauge",
    "NullGauge",
    "NullHistogram",
    "NullTracer",
    "ProgressReporter",
    "Span",
    "Tracer",
    "get_tracer",
    "load_trace",
    "set_tracer",
    "span_tree",
    "use_tracer",
]

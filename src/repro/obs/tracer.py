"""Nestable spans and the tracer that records them.

A :class:`Span` covers one unit of work — a campaign, a case, a phase, a
single measurement — and knows its wall-clock duration, the simulated
time it advanced, and arbitrary structured attributes (chip id, case,
Vdd, temperature).  Spans nest: the tracer keeps a stack, so a phase
span started inside a case span records the case as its parent, giving
JSONL consumers the full ``campaign -> case -> phase -> measurement``
tree.

The default tracer is :data:`NULL_TRACER`, whose spans and metrics are
shared no-op objects: uninstrumented runs pay a bound-method call and
nothing else.  Tracers are not thread-safe; use one per worker.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.analysis.tables import Table
from repro.obs.metrics import (
    Counter,
    DerivedGauge,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_DERIVED_GAUGE,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NullCounter,
    NullDerivedGauge,
    NullGauge,
    NullHistogram,
)


class Span:
    """One timed unit of work, with attributes and a parent.

    Spans are context managers: entering starts the clock, exiting stops
    it and hands the finished span back to the tracer.  ``sim_advanced``
    (simulated seconds covered by the work) is an ordinary attribute set
    by instrumentation via :meth:`set`.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "attributes",
        "start",
        "duration",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        depth: int,
        attributes: dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attributes = attributes
        self.start = 0.0
        self.duration = 0.0

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one structured attribute."""
        self.attributes[key] = value

    def incr(self, key: str, delta: float = 1.0) -> None:
        """Add ``delta`` to a numeric attribute (missing counts as 0)."""
        self.attributes[key] = self.attributes.get(key, 0) + delta

    @property
    def sim_advanced(self) -> float:
        """Simulated seconds this span advanced (0 if not recorded)."""
        return float(self.attributes.get("sim_advanced", 0.0))

    def __enter__(self) -> "Span":
        self.start = time.perf_counter() - self._tracer.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = (time.perf_counter() - self._tracer.epoch) - self.start
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._finish(self)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"duration={self.duration:.6f}s, attrs={self.attributes})"
        )


class _NullSpan:
    """Shared do-nothing span returned by the null tracer."""

    __slots__ = ()

    name = "null"
    span_id = -1
    parent_id = None
    depth = 0
    attributes: dict = {}
    start = 0.0
    duration = 0.0
    sim_advanced = 0.0

    def set(self, key: str, value) -> None:
        """Discard the attribute."""

    def incr(self, key: str, delta: float = 1.0) -> None:
        """Discard the increment."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records nested spans and owns the run's metrics registry.

    Parameters
    ----------
    exporter:
        Optional sink with ``span(dict)`` / ``metric(dict)`` / ``close()``
        methods (see :class:`repro.obs.exporter.JsonlExporter`).  Finished
        spans stream to it as they close; metrics are written on
        :meth:`close`.
    keep_spans:
        Keep finished spans in memory for querying (tests, summary
        tables).  Disable for very long runs that only need the JSONL.
    """

    enabled = True

    def __init__(self, exporter=None, keep_spans: bool = True) -> None:
        self.exporter = exporter
        self.keep_spans = keep_spans
        self.metrics = MetricsRegistry()
        self.finished: list[Span] = []
        self.epoch = time.perf_counter()
        self._stack: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------ #
    # spans
    # ------------------------------------------------------------------ #

    def span(self, name: str, **attributes) -> Span:
        """A new span nested under the currently open one (if any)."""
        parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(
            self,
            name,
            span_id=self._next_id,
            parent_id=parent_id,
            depth=len(self._stack),
            attributes=attributes,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self._record(span)

    def _record(self, span: Span) -> None:
        """Store and export one finished span."""
        if self.keep_spans:
            self.finished.append(span)
        if self.exporter is not None:
            self.exporter.span(
                {
                    "type": "span",
                    "name": span.name,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "depth": span.depth,
                    "start_s": round(span.start, 6),
                    "duration_s": round(span.duration, 6),
                    "attrs": span.attributes,
                }
            )

    def absorb(self, child: "Tracer") -> None:
        """Fold a finished worker tracer into this one.

        The child's spans are renumbered onto this tracer's id sequence,
        its root spans are re-parented under the currently open span (if
        any), depths shift accordingly, and start times are rebased from
        the child's epoch to this one's, so the merged trace reads as one
        consistent tree.  Counters accumulate; gauges take the child's
        value.

        Only call this after the child has finished every span (tracers
        are not thread-safe); absorbing workers in a fixed order keeps
        the merged trace deterministic however they were scheduled.
        """
        parent = self._stack[-1] if self._stack else None
        depth_offset = len(self._stack)
        epoch_offset = child.epoch - self.epoch
        id_map: dict[int, int] = {}
        # Children finish before their parents, so ids are assigned in a
        # first pass and parent links rewritten in a second.
        for span in child.finished:
            id_map[span.span_id] = self._next_id
            self._next_id += 1
        for span in child.finished:
            span.span_id = id_map[span.span_id]
            if span.parent_id is not None and span.parent_id in id_map:
                span.parent_id = id_map[span.parent_id]
            else:
                span.parent_id = parent.span_id if parent is not None else None
            span.depth += depth_offset
            span.start += epoch_offset
            span._tracer = self
            self._record(span)
        child.finished = []
        self.metrics.merge(child.metrics)

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def spans(self, name: str | None = None) -> list[Span]:
        """Finished spans, optionally only those called ``name``."""
        if name is None:
            return list(self.finished)
        return [span for span in self.finished if span.name == name]

    def children(self, span: Span) -> list[Span]:
        """Finished spans whose parent is ``span``."""
        return [s for s in self.finished if s.parent_id == span.span_id]

    def walk(self) -> Iterator[Span]:
        """Finished spans in completion order."""
        return iter(self.finished)

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #

    def counter(self, name: str, description: str = "") -> Counter:
        """Get-or-create a counter on this tracer's registry."""
        return self.metrics.counter(name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get-or-create a gauge on this tracer's registry."""
        return self.metrics.gauge(name, description)

    def histogram(self, name: str, description: str = "",
                  bounds=None) -> Histogram:
        """Get-or-create a histogram on this tracer's registry."""
        return self.metrics.histogram(name, description, bounds=bounds)

    def derived_gauge(self, name: str, description: str,
                      numerator: str, denominators) -> DerivedGauge:
        """Get-or-create a derived gauge on this tracer's registry."""
        return self.metrics.derived_gauge(name, description, numerator,
                                          denominators)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def summary_table(self, title: str = "Span timing summary") -> Table:
        """Aggregate finished spans by name: count, wall time, sim time.

        ``sim s/wall s`` is the simulated-seconds-per-wall-second
        throughput of each span family — the number a perf PR moves.
        """
        order: list[str] = []
        agg: dict[str, list[float]] = {}
        for span in self.finished:
            if span.name not in agg:
                agg[span.name] = [0.0, 0.0, 0.0]
                order.append(span.name)
            entry = agg[span.name]
            entry[0] += 1.0
            entry[1] += span.duration
            entry[2] += span.sim_advanced
        table = Table(
            title,
            ["span", "count", "wall s", "mean ms", "sim s", "sim s/wall s"],
            fmt="{:,.3f}",
        )
        for name in order:
            count, wall, sim = agg[name]
            table.add_row(
                name,
                f"{int(count)}",
                wall,
                1e3 * wall / count,
                sim,
                sim / wall if wall > 0.0 else 0.0,
            )
        return table

    def metrics_table(self, title: str = "Run metrics") -> Table:
        """The metrics registry rendered as a table."""
        return self.metrics.table(title)

    def close(self) -> None:
        """Flush metrics to the exporter (if any) and close it."""
        if self.exporter is not None:
            for name, value in sorted(self.metrics.snapshot().items()):
                metric = self.metrics.get(name)
                record = {
                    "type": "metric",
                    "name": name,
                    "kind": metric.kind,
                    "value": value,
                }
                if hasattr(metric, "payload"):
                    record.update(metric.payload())
                self.exporter.metric(record)
            self.exporter.close()
            self.exporter = None


class NullTracer:
    """Disabled tracer: every operation is a shared no-op.

    The instrumented hot paths hold a reference to either a real
    :class:`Tracer` or this object; the disabled cost is one attribute
    load plus a method call that immediately returns.
    """

    enabled = False
    metrics = MetricsRegistry()  # always empty; null metrics never register
    finished: list[Span] = []
    current = None

    def span(self, name: str, **attributes) -> _NullSpan:
        """The shared no-op span."""
        return _NULL_SPAN

    def counter(self, name: str, description: str = "") -> NullCounter:
        """The shared no-op counter."""
        return NULL_COUNTER

    def gauge(self, name: str, description: str = "") -> NullGauge:
        """The shared no-op gauge."""
        return NULL_GAUGE

    def histogram(self, name: str, description: str = "",
                  bounds=None) -> NullHistogram:
        """The shared no-op histogram."""
        return NULL_HISTOGRAM

    def derived_gauge(self, name: str, description: str,
                      numerator: str, denominators) -> NullDerivedGauge:
        """The shared no-op derived gauge."""
        return NULL_DERIVED_GAUGE

    def spans(self, name: str | None = None) -> list[Span]:
        """Always empty."""
        return []

    def children(self, span) -> list[Span]:
        """Always empty."""
        return []

    def summary_table(self, title: str = "Span timing summary") -> Table:
        """An empty summary table."""
        return Table(title, ["span", "count", "wall s", "mean ms", "sim s",
                             "sim s/wall s"])

    def metrics_table(self, title: str = "Run metrics") -> Table:
        """An empty metrics table."""
        return Table(title, ["metric", "kind", "value", "description"])

    def close(self) -> None:
        """Nothing to flush."""


#: The process-wide disabled tracer (also the default active tracer).
NULL_TRACER = NullTracer()

_active_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The currently active tracer (:data:`NULL_TRACER` by default)."""
    return _active_tracer


def set_tracer(tracer: Tracer | NullTracer | None) -> None:
    """Install ``tracer`` as the process default (``None`` resets)."""
    global _active_tracer
    _active_tracer = tracer if tracer is not None else NULL_TRACER


class use_tracer:
    """Context manager installing a tracer for the enclosed block::

        with use_tracer(Tracer()) as tracer:
            run_table1_campaign()
        tracer.summary_table().print()
    """

    def __init__(self, tracer: Tracer | NullTracer) -> None:
        self.tracer = tracer
        self._previous: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer | NullTracer:
        self._previous = get_tracer()
        set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        set_tracer(self._previous)

"""Deterministic hot-path profiler over finished traces.

Two halves:

* :class:`HotPathProfile` — pure aggregation over a
  :class:`~repro.obs.query.TraceModel`: per-phase self-time tables,
  flamegraph-style collapsed stacks (``campaign;case;phase:stress 1234``,
  value in microseconds of self time) and a throughput table read from
  the per-case histograms below;
* :class:`CaseThroughputSampler` — the *instrumentation* side: wrapped
  around each campaign case it derives throughput gauges from the
  existing counters (measurements/s, trap updates/s, rate-cache hit
  rate) and folds them into histograms, so a finished trace carries the
  distribution of per-case throughput, not just run totals.

The profiler is deterministic in structure: two seeded runs produce the
same stacks with the same shape; only the wall-clock values differ.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.tables import Table
from repro.obs.query import TraceModel

#: Histogram of per-case measurement throughput (samples per wall second).
MEAS_PER_S = "profile.case.meas_per_s"
#: Histogram of per-case trap-update throughput (updates per wall second).
TRAP_UPDATES_PER_S = "profile.case.trap_updates_per_s"
#: Derived gauge: fraction of rate lookups served fully from cache.
CACHE_HIT_RATE = "bti.rate_cache.hit_rate"

#: Operand counters the sampler reads (all pre-existing instrumentation).
_SAMPLES = "lab.samples"
_TRAP_UPDATES = "bti.trap_updates"
_CACHE_HITS = "bti.rate_cache.hits"
_CACHE_PARTIAL = "bti.rate_cache.partial_hits"
_CACHE_MISSES = "bti.rate_cache.misses"


class CaseThroughputSampler:
    """Derives per-case throughput metrics from counter deltas.

    Construct just before opening a case span (snapshots the counters),
    call :meth:`finish` with the closed span (reads its duration).  On a
    disabled tracer both steps are a single attribute check.
    """

    __slots__ = ("_tracer", "_samples0", "_updates0")

    def __init__(self, tracer) -> None:
        self._tracer = tracer
        if not tracer.enabled:
            return
        registry = tracer.metrics
        self._samples0 = registry.value(_SAMPLES)
        self._updates0 = registry.value(_TRAP_UPDATES)
        # Register up front so the trace carries the (possibly empty)
        # histograms even when no case span closes with a duration.
        tracer.histogram(MEAS_PER_S, "per-case measurement samples per wall second")
        tracer.histogram(TRAP_UPDATES_PER_S, "per-case trap updates per wall second")
        tracer.derived_gauge(
            CACHE_HIT_RATE,
            "fraction of rate lookups served fully from cache",
            _CACHE_HITS,
            (_CACHE_HITS, _CACHE_PARTIAL, _CACHE_MISSES),
        )

    def finish(self, span) -> None:
        """Fold the finished case span into the throughput histograms."""
        tracer = self._tracer
        if not tracer.enabled or span.duration <= 0.0:
            return
        registry = tracer.metrics
        tracer.histogram(
            MEAS_PER_S, "per-case measurement samples per wall second"
        ).observe((registry.value(_SAMPLES) - self._samples0) / span.duration)
        tracer.histogram(
            TRAP_UPDATES_PER_S, "per-case trap updates per wall second"
        ).observe((registry.value(_TRAP_UPDATES) - self._updates0) / span.duration)


class HotPathProfile:
    """Aggregated profile views over one finished trace."""

    def __init__(self, model: TraceModel) -> None:
        self.model = model

    @classmethod
    def from_tracer(cls, tracer) -> "HotPathProfile":
        """Profile a live in-memory tracer."""
        return cls(TraceModel.from_tracer(tracer))

    @classmethod
    def load(cls, path: str | Path) -> "HotPathProfile":
        """Profile a JSONL trace file."""
        return cls(TraceModel.load(path))

    def phase_table(self) -> Table:
        """Self time of each schedule phase label, busiest first.

        Groups the ``phase`` spans by their phase label and kind — the
        view that says which part of the Table-1 schedule burns the wall
        clock — with sim-throughput so a perf regression in one phase
        family stands out.
        """
        rows: dict[tuple[str, str], list[float]] = {}
        for span in self.model.spans_named("phase"):
            key = (
                str(span.attrs.get("phase", "?")),
                str(span.attrs.get("kind", "?")),
            )
            entry = rows.setdefault(key, [0.0, 0.0, 0.0])
            entry[0] += 1.0
            entry[1] += span.self_time
            entry[2] += span.sim_advanced
        table = Table(
            "Per-phase self time",
            ["phase", "kind", "count", "self s", "sim s", "sim s/wall s"],
            fmt="{:,.3f}",
        )
        for (label, kind), (count, self_s, sim_s) in sorted(
            rows.items(), key=lambda item: (-item[1][1], item[0])
        ):
            table.add_row(
                label, kind, f"{int(count)}", self_s, sim_s,
                sim_s / self_s if self_s > 0.0 else 0.0,
            )
        return table

    def collapsed(self) -> list[str]:
        """Flamegraph collapsed stacks: ``frame;frame;frame <usec>``.

        One line per distinct root-to-frame path, sorted by path, values
        in integer microseconds of self time — feed straight into any
        flamegraph renderer.  Every path in the span tree is emitted
        (zero-weight frames included) so two seeded runs always produce
        the same stack structure; only the values differ.
        """
        totals: dict[str, float] = {}
        for span in self.model.spans:
            path = self.model.path(span)
            totals[path] = totals.get(path, 0.0) + span.self_time
        return [
            f"{path} {int(round(1e6 * seconds))}"
            for path, seconds in sorted(totals.items())
        ]

    def throughput_table(self) -> Table:
        """The per-case throughput histograms and cache hit rate."""
        table = Table(
            "Derived throughput (per case)",
            ["metric", "cases", "mean", "min", "max"],
            fmt="{:,.1f}",
        )
        for name in (MEAS_PER_S, TRAP_UPDATES_PER_S):
            record = self.model.metrics.get(name)
            if record is None:
                table.add_row(name, "0", 0.0, 0.0, 0.0)
                continue
            count = int(record.get("count", record.get("value", 0)))
            table.add_row(
                name,
                f"{count}",
                float(record.get("mean", 0.0)),
                float(record.get("min") or 0.0),
                float(record.get("max") or 0.0),
            )
        hit_rate = self.model.metric_value(CACHE_HIT_RATE)
        table.add_row(CACHE_HIT_RATE, "-", 100.0 * hit_rate, "-", "-")
        return table

    def top_table(self, n: int = 10, by: str = "self") -> Table:
        """Convenience passthrough to :meth:`TraceModel.top`."""
        return self.model.top(n=n, by=by)

"""Units, conversions and physical constants.

All quantities inside the library use SI base units unless a suffix says
otherwise:

* time        — seconds
* temperature — kelvin (user-facing APIs accept Celsius via :func:`celsius`)
* voltage     — volts
* energy      — electron-volts for activation energies (paired with
  :data:`BOLTZMANN_EV`)
* delay       — seconds (helpers for nanoseconds are provided)

The paper quotes hours, degrees Celsius, nanoseconds and megahertz; the
helpers here keep that translation in one place.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

# Boltzmann constant in eV/K — activation energies in this library are in eV.
BOLTZMANN_EV = 8.617333262e-5

# Absolute zero offset between Celsius and Kelvin scales.
ZERO_CELSIUS_K = 273.15

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY


def _require_duration(value: float, unit: str) -> float:
    """Reject negative (or NaN) durations with a typed error."""
    if not value >= 0.0:
        raise ConfigurationError(f"duration must be >= 0 {unit}, got {value!r}")
    return value


def celsius(degrees_c: float) -> float:
    """Convert a temperature in degrees Celsius to kelvin."""
    kelvin = degrees_c + ZERO_CELSIUS_K
    # "not >" rather than "<=" so NaN is rejected too.
    if not kelvin > 0.0:
        raise ConfigurationError(
            f"temperature {degrees_c!r} degC is below absolute zero"
        )
    return kelvin


def to_celsius(kelvin: float) -> float:
    """Convert a temperature in kelvin to degrees Celsius."""
    if not kelvin > 0.0:
        raise ConfigurationError(
            f"temperature {kelvin!r} K is at or below absolute zero"
        )
    return kelvin - ZERO_CELSIUS_K


def hours(value: float) -> float:
    """Convert a duration in hours to seconds."""
    return _require_duration(value, "hours") * SECONDS_PER_HOUR


def minutes(value: float) -> float:
    """Convert a duration in minutes to seconds."""
    return _require_duration(value, "minutes") * SECONDS_PER_MINUTE


def days(value: float) -> float:
    """Convert a duration in days to seconds."""
    return _require_duration(value, "days") * SECONDS_PER_DAY


def to_hours(seconds: float) -> float:
    """Convert a duration in seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def nanoseconds(value: float) -> float:
    """Convert a delay in nanoseconds to seconds."""
    return _require_duration(value, "nanoseconds") * 1e-9


def to_nanoseconds(seconds: float) -> float:
    """Convert a delay in seconds to nanoseconds."""
    return seconds * 1e9


def megahertz(value: float) -> float:
    """Convert a frequency in MHz to Hz."""
    return value * 1e6


def to_megahertz(hertz: float) -> float:
    """Convert a frequency in Hz to MHz."""
    return hertz / 1e6


def millivolts(value: float) -> float:
    """Convert a voltage in millivolts to volts."""
    return value * 1e-3


def to_millivolts(volts: float) -> float:
    """Convert a voltage in volts to millivolts."""
    return volts * 1e3

"""Lifetime-vs-throughput Pareto frontiers over the recovery knobs.

The paper's knobs trade against each other: a small alpha sleeps more
(better rejuvenation, longer lifetime) but delivers less work per cycle
(throughput ``alpha / (1 + alpha)``).  This module groups a sweep's cells
by their (alpha, Vdda, Ta) coordinate and extracts the non-dominated set
maximising *both* projected active lifetime and throughput — the
configurations worth considering; everything else is dominated by a knob
setting that is at least as good on both axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependability.analyzer import SweepAnalysis


@dataclass(frozen=True)
class ParetoPoint:
    """One (alpha, Vdda, Ta) coordinate's aggregated trade-off point.

    ``lifetime_hours`` is the mean projected active lifetime over the
    coordinate's completed cells; censored projections (budget never
    crossed within the horizon) enter at the horizon, so they can only
    *understate* the point — a censored point on the frontier is really
    on it.  ``censored`` counts them.
    """

    alpha: float
    sleep_voltage: float
    sleep_temperature_c: float
    lifetime_hours: float
    throughput: float
    cells: int
    censored: int
    on_frontier: bool = False

    def dominates(self, other: "ParetoPoint") -> bool:
        """True when at least as good on both axes and better on one."""
        at_least = (
            self.lifetime_hours >= other.lifetime_hours
            and self.throughput >= other.throughput
        )
        better = (
            self.lifetime_hours > other.lifetime_hours
            or self.throughput > other.throughput
        )
        return at_least and better


def pareto_frontier(analysis: SweepAnalysis) -> tuple[ParetoPoint, ...]:
    """All knob coordinates with lifetime data, frontier members flagged.

    Returns every aggregated point (sorted by throughput, then lifetime)
    with ``on_frontier`` set on the non-dominated ones, so reports can
    plot the dominated cloud *and* the frontier line from one call.
    Cells that degraded or ran with lifetime projection disabled
    contribute nothing; an empty tuple means no frontier is available.
    """
    groups: dict[tuple[float, float, float], list] = {}
    for row in analysis.ok_rows:
        stats = row.outcome.stats
        if "throughput_active_fraction" not in stats:
            continue  # lifetime projection disabled for this cell
        groups.setdefault(row.cell.knob_key, []).append(row)

    points = []
    for (alpha, voltage, temperature), rows in sorted(groups.items()):
        horizon = rows[0].cell.lifetime.horizon_hours
        lifetimes = [
            row.lifetime_hours if row.lifetime_hours is not None else horizon
            for row in rows
        ]
        censored = sum(1 for row in rows if row.lifetime_hours is None)
        points.append(
            ParetoPoint(
                alpha=alpha,
                sleep_voltage=voltage,
                sleep_temperature_c=temperature,
                lifetime_hours=sum(lifetimes) / len(lifetimes),
                throughput=rows[0].throughput,
                cells=len(rows),
                censored=censored,
            )
        )

    flagged = tuple(
        ParetoPoint(
            alpha=point.alpha,
            sleep_voltage=point.sleep_voltage,
            sleep_temperature_c=point.sleep_temperature_c,
            lifetime_hours=point.lifetime_hours,
            throughput=point.throughput,
            cells=point.cells,
            censored=point.censored,
            on_frontier=not any(
                other.dominates(point) for other in points if other is not point
            ),
        )
        for point in sorted(points, key=lambda p: (p.throughput, p.lifetime_hours))
    )
    return flagged

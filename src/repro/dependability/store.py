"""Crash-safe persistence for sweep progress.

Layout under the sweep directory::

    sweep.json            # spec + digest + grid size  (atomic write)
    cells/cell-0000.json  # one file per finished cell (atomic write)
    cells/cell-0001.json
    ...

Every write goes through :func:`repro.lab.resilience.atomic_write_json`
(tmp + fsync + rename), so a SIGKILL at any instant leaves either the
previous committed state or the new one — never a torn file.  Orphaned
``*.tmp`` files from an interrupted write are discarded with a warning
when the store is (re)opened, mirroring :class:`CheckpointStore`.

A cell file records the *outcome* — including failures and timeouts —
so resume knows exactly which cells remain.  Only infrastructure
problems (missing manifest, spec digest mismatch) raise
:class:`~repro.errors.SweepError`; a bad individual cell file is
skipped with a warning and the cell simply re-runs.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from repro.errors import SweepError
from repro.lab.resilience import atomic_write_json, discard_orphan_tmp
from repro.dependability.spec import SweepSpec

SWEEP_VERSION = 1


class SweepStore:
    """Persistent progress ledger for one sweep directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.cells_dir = self.directory / "cells"
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        discard_orphan_tmp(self.directory)
        discard_orphan_tmp(self.cells_dir)

    def _manifest_path(self) -> Path:
        return self.directory / "sweep.json"

    # -- manifest ---------------------------------------------------------

    def initialise(self, spec: SweepSpec) -> None:
        """Write the sweep manifest for a fresh run.

        Refuses to clobber a manifest for a *different* spec — that is a
        resume-into-the-wrong-directory mistake, not a fresh start.
        """
        manifest_path = self._manifest_path()
        if manifest_path.exists():
            existing = self._read_manifest()
            if existing["spec_digest"] != spec.digest():
                raise SweepError(
                    f"{self.directory} already holds sweep "
                    f"{existing.get('name', '?')!r} with a different spec "
                    f"(digest {existing['spec_digest']} != {spec.digest()}); "
                    "use a fresh directory or resume with the original spec"
                )
            return  # same spec: idempotent, keep finished cells
        atomic_write_json(
            manifest_path,
            {
                "version": SWEEP_VERSION,
                "name": spec.name,
                "spec": spec.to_dict(),
                "spec_digest": spec.digest(),
                "n_cells": spec.n_cells,
            },
        )

    def _read_manifest(self) -> dict:
        manifest_path = self._manifest_path()
        if not manifest_path.exists():
            raise SweepError(
                f"{self.directory} has no sweep.json manifest — nothing to resume"
            )
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SweepError(f"unreadable sweep manifest {manifest_path}: {exc}") from exc
        if manifest.get("version") != SWEEP_VERSION:
            raise SweepError(
                f"sweep manifest version {manifest.get('version')!r} is not "
                f"the supported version {SWEEP_VERSION}"
            )
        return manifest

    def load_spec(self) -> SweepSpec:
        """Reload the spec a directory was initialised with."""
        manifest = self._read_manifest()
        spec = SweepSpec.from_dict(manifest["spec"])
        if spec.digest() != manifest["spec_digest"]:
            raise SweepError(
                f"sweep manifest {self._manifest_path()} is internally "
                "inconsistent (spec does not match its recorded digest)"
            )
        return spec

    def check_spec(self, spec: SweepSpec) -> None:
        """Assert ``spec`` matches what the directory was initialised with."""
        manifest = self._read_manifest()
        if manifest["spec_digest"] != spec.digest():
            raise SweepError(
                f"spec digest {spec.digest()} does not match the sweep "
                f"directory's {manifest['spec_digest']}; resuming with a "
                "modified spec would silently mix incompatible cells"
            )

    # -- cells ------------------------------------------------------------

    def _cell_path(self, cell_id: str) -> Path:
        return self.cells_dir / f"{cell_id}.json"

    def write_cell(self, cell_id: str, payload: dict) -> None:
        """Atomically persist one finished cell outcome."""
        atomic_write_json(self._cell_path(cell_id), payload)

    def load_cells(self) -> dict[str, dict]:
        """All persisted cell outcomes, keyed by cell id.

        A corrupt cell file (torn by a crash predating the atomic-write
        discipline, or hand-edited) is skipped with a warning so resume
        degrades to re-running that cell instead of refusing to start.
        """
        outcomes: dict[str, dict] = {}
        for path in sorted(self.cells_dir.glob("cell-*.json")):
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                warnings.warn(
                    f"{path}: skipping unreadable cell file ({exc}); "
                    "the cell will be re-run on resume",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(payload, dict) or "cell_id" not in payload:
                warnings.warn(
                    f"{path}: skipping malformed cell file (no cell_id); "
                    "the cell will be re-run on resume",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            outcomes[payload["cell_id"]] = payload
        return outcomes

"""Declarative sweep specifications and their deterministic cell grids.

A :class:`SweepSpec` names the axes of a dependability experiment — fault
rates, dropout/upset probabilities, guard modes, the paper's recovery
knobs (alpha, Vdda, Ta) and seeds — and :meth:`SweepSpec.expand` turns it
into a flat, ordered grid of :class:`SweepCell` configurations.  The
expansion is pure arithmetic: same spec, same grid, same per-cell seeds,
on every machine and every resume.

Static validation plugs into the RPR1xx descriptor pipeline:

==========  =========================================================
RPR105      sweep grid shape (axes non-empty, no duplicates, bounded)
RPR106      sweep value domains (probabilities, knobs, engine support)
==========  =========================================================
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field, fields

from repro.analysis.lint.findings import Finding, Severity
from repro.errors import ConfigurationError

_SPEC_PATH = "<sweep-spec>"

#: Axis expansion order for :meth:`SweepSpec.expand` — outermost first.
#: Part of the resume contract: cell indices (and hence cell ids and
#: per-cell seeds) never change for a fixed spec.
AXIS_ORDER = (
    "fault_rate",
    "dropout_prob",
    "upset_prob",
    "guard_mode",
    "alpha",
    "sleep_voltage",
    "sleep_temperature_c",
    "seed",
)

_GUARD_MODES = ("raise", "clamp", "off")
_ENGINES = ("table1", "fleet")

#: Refuse to expand absurd grids up front instead of melting the bench.
MAX_CELLS = 10_000

#: The chamber on the virtual bench (lab.thermal_chamber defaults).
_CHAMBER_MIN_C = -60.0
_CHAMBER_MAX_C = 150.0


def _finding(rule_id: str, message: str, suggestion: str = "") -> Finding:
    return Finding(
        rule_id=rule_id,
        severity=Severity.ERROR,
        path=_SPEC_PATH,
        line=0,
        message=message,
        suggestion=suggestion,
    )


@dataclass(frozen=True)
class LifetimeSettings:
    """How each cell projects lifetime for the Pareto axes.

    ``budget_fraction`` is the tolerable delay shift as a fraction of the
    fresh path delay (the timing guardband); ``horizon_hours`` bounds the
    projection in *active* hours; ``period_hours`` is the circadian cycle
    length handed to :class:`repro.core.policies.ProactivePolicy`.
    """

    enabled: bool = True
    budget_fraction: float = 0.005
    horizon_hours: float = 48.0
    period_hours: float = 2.5


@dataclass(frozen=True)
class SweepCell:
    """One fully-resolved campaign configuration in the grid.

    ``fault_seed`` decorrelates the fault plan from the campaign RNG and
    from neighbouring cells; both derive deterministically from the spec
    so a resumed sweep regenerates byte-identical cells.
    """

    index: int
    cell_id: str
    engine: str
    n_chips: int
    include_baseline: bool
    fault_rate: float
    dropout_prob: float
    upset_prob: float
    guard_mode: str
    guard_budget: int
    alpha: float
    sleep_voltage: float
    sleep_temperature_c: float
    seed: int
    fault_seed: int
    lifetime: LifetimeSettings

    @property
    def has_faults(self) -> bool:
        """True when any fault axis is non-zero for this cell."""
        return self.fault_rate > 0.0 or self.dropout_prob > 0.0 or self.upset_prob > 0.0

    @property
    def knob_key(self) -> tuple[float, float, float]:
        """The (alpha, Vdda, Ta) coordinate this cell contributes to."""
        return (self.alpha, self.sleep_voltage, self.sleep_temperature_c)

    def config_digest(self) -> str:
        """Short stable digest of everything that determines the result."""
        payload = asdict(self)
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a dependability sweep.

    Scalar fields apply to every cell; tuple fields are axes whose cross
    product (in :data:`AXIS_ORDER`) forms the grid.  ``retries`` and
    ``retry_backoff_s`` configure the *measurement* retry policy inside
    each campaign, not the runner's per-cell retries.
    """

    name: str = "sweep"
    engine: str = "table1"
    n_chips: int = 2
    include_baseline: bool = False
    workers: int = 1
    retries: int = 3
    retry_backoff_s: float = 5.0
    guard_budget: int = 2
    fault_rates: tuple[float, ...] = (0.0,)
    dropout_probs: tuple[float, ...] = (0.0,)
    upset_probs: tuple[float, ...] = (0.0,)
    guard_modes: tuple[str, ...] = ("clamp",)
    alphas: tuple[float, ...] = (4.0,)
    sleep_voltages: tuple[float, ...] = (-0.3,)
    sleep_temperatures_c: tuple[float, ...] = (110.0,)
    seeds: tuple[int, ...] = (0,)
    lifetime: LifetimeSettings = field(default_factory=LifetimeSettings)

    _AXES = (
        ("fault_rates", "fault_rate"),
        ("dropout_probs", "dropout_prob"),
        ("upset_probs", "upset_prob"),
        ("guard_modes", "guard_mode"),
        ("alphas", "alpha"),
        ("sleep_voltages", "sleep_voltage"),
        ("sleep_temperatures_c", "sleep_temperature_c"),
        ("seeds", "seed"),
    )

    @classmethod
    def from_dict(cls, payload: dict) -> SweepSpec:
        """Build a spec from parsed JSON, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"sweep spec must be a JSON object, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls) if not f.name.startswith("_")}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown sweep spec keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        kwargs = dict(payload)
        if "lifetime" in kwargs and isinstance(kwargs["lifetime"], dict):
            lifetime_known = {f.name for f in fields(LifetimeSettings)}
            lifetime_unknown = sorted(set(kwargs["lifetime"]) - lifetime_known)
            if lifetime_unknown:
                raise ConfigurationError(
                    f"unknown lifetime keys: {', '.join(lifetime_unknown)}"
                )
            kwargs["lifetime"] = LifetimeSettings(**kwargs["lifetime"])
        for axis_field, _ in cls._AXES:
            if axis_field in kwargs and isinstance(kwargs[axis_field], list):
                kwargs[axis_field] = tuple(kwargs[axis_field])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> SweepSpec:
        """Parse a spec from a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"sweep spec is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def to_dict(self) -> dict:
        """JSON-serialisable form (tuples become lists)."""
        payload = asdict(self)
        for axis_field, _ in self._AXES:
            payload[axis_field] = list(payload[axis_field])
        return payload

    def digest(self) -> str:
        """Stable digest of the whole spec — the resume compatibility key."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    @property
    def n_cells(self) -> int:
        """Number of cells the spec expands to."""
        count = 1
        for axis_field, _ in self._AXES:
            count *= len(getattr(self, axis_field))
        return count

    def expand(self) -> tuple[SweepCell, ...]:
        """Expand the axes into the deterministic, ordered cell grid."""
        require_valid(self)
        axes = [getattr(self, axis_field) for axis_field, _ in self._AXES]
        cells = []
        for index, values in enumerate(itertools.product(*axes)):
            point = dict(zip([cell_field for _, cell_field in self._AXES], values))
            seed = int(point["seed"])
            cells.append(
                SweepCell(
                    index=index,
                    cell_id=f"cell-{index:04d}",
                    engine=self.engine,
                    n_chips=self.n_chips,
                    include_baseline=self.include_baseline,
                    guard_budget=self.guard_budget,
                    fault_seed=1_000_003 * seed + 7 * index + 1,
                    lifetime=self.lifetime,
                    **point,
                )
            )
        return tuple(cells)


def validate_sweep_spec(spec: SweepSpec) -> list[Finding]:
    """Static RPR105/RPR106 validation of a sweep spec.

    RPR105 covers grid *shape* (axes present, no duplicate values, the
    expansion bounded); RPR106 covers value *domains* (probabilities in
    [0, 1], knobs the physics accepts, combinations the chosen engine
    actually supports).  Returns findings instead of raising so the lint
    CLI can aggregate them with the descriptor rules.
    """
    findings: list[Finding] = []

    if not spec.name or not spec.name.replace("-", "").replace("_", "").isalnum():
        findings.append(
            _finding(
                "RPR105",
                f"sweep name {spec.name!r} must be a non-empty slug",
                "use letters, digits, '-' and '_' only",
            )
        )
    if spec.engine not in _ENGINES:
        findings.append(
            _finding(
                "RPR105",
                f"unknown engine {spec.engine!r}",
                f"choose one of {', '.join(_ENGINES)}",
            )
        )
    if spec.n_chips < 1:
        findings.append(_finding("RPR105", f"n_chips must be >= 1, got {spec.n_chips}"))
    if spec.workers < 1:
        findings.append(_finding("RPR105", f"workers must be >= 1, got {spec.workers}"))
    if spec.retries < 1:
        findings.append(_finding("RPR105", f"retries must be >= 1, got {spec.retries}"))
    if spec.retry_backoff_s < 0.0:
        findings.append(
            _finding("RPR105", f"retry_backoff_s must be >= 0, got {spec.retry_backoff_s}")
        )
    if spec.guard_budget < 0:
        findings.append(
            _finding("RPR105", f"guard_budget must be >= 0, got {spec.guard_budget}")
        )

    for axis_field, _ in SweepSpec._AXES:
        values = getattr(spec, axis_field)
        if not values:
            findings.append(
                _finding(
                    "RPR105",
                    f"axis {axis_field!r} is empty — the grid would have zero cells",
                    "list at least one value per axis",
                )
            )
        elif len(set(values)) != len(values):
            findings.append(
                _finding(
                    "RPR105",
                    f"axis {axis_field!r} has duplicate values {values!r}",
                    "duplicates multiply the grid without adding information",
                )
            )
    if 0 < MAX_CELLS < spec.n_cells:
        findings.append(
            _finding(
                "RPR105",
                f"grid expands to {spec.n_cells} cells, above the {MAX_CELLS} bound",
                "trim an axis or split the sweep",
            )
        )

    for rate in spec.fault_rates:
        if rate < 0.0:
            findings.append(
                _finding("RPR106", f"fault rate must be >= 0 per day, got {rate}")
            )
    for axis_field, low, high in (
        ("dropout_probs", 0.0, 1.0),
        ("upset_probs", 0.0, 1.0),
    ):
        for prob in getattr(spec, axis_field):
            if not low <= prob <= high:
                findings.append(
                    _finding(
                        "RPR106",
                        f"{axis_field} value {prob} outside [{low}, {high}]",
                    )
                )
    for mode in spec.guard_modes:
        if mode not in _GUARD_MODES:
            findings.append(
                _finding(
                    "RPR106",
                    f"unknown guard mode {mode!r}",
                    f"choose from {', '.join(_GUARD_MODES)}",
                )
            )
    for alpha in spec.alphas:
        if alpha <= 0.0:
            findings.append(_finding("RPR106", f"alpha must be positive, got {alpha}"))
    for voltage in spec.sleep_voltages:
        if voltage > 0.0:
            findings.append(
                _finding(
                    "RPR106",
                    f"sleep voltage must be non-positive, got {voltage}",
                    "0 V is passive sleep; negative actively reverses stress",
                )
            )
    for temp in spec.sleep_temperatures_c:
        if not _CHAMBER_MIN_C <= temp <= _CHAMBER_MAX_C:
            findings.append(
                _finding(
                    "RPR106",
                    f"sleep temperature {temp} degC outside the chamber range "
                    f"[{_CHAMBER_MIN_C}, {_CHAMBER_MAX_C}] degC",
                )
            )
    for seed in spec.seeds:
        if not isinstance(seed, int) or seed < 0:
            findings.append(
                _finding("RPR106", f"seeds must be non-negative integers, got {seed!r}")
            )

    lifetime = spec.lifetime
    if lifetime.enabled:
        if not 0.0 < lifetime.budget_fraction < 1.0:
            findings.append(
                _finding(
                    "RPR106",
                    f"lifetime budget_fraction must be in (0, 1), "
                    f"got {lifetime.budget_fraction}",
                )
            )
        if lifetime.horizon_hours <= 0.0:
            findings.append(
                _finding(
                    "RPR106",
                    f"lifetime horizon must be positive hours, got {lifetime.horizon_hours}",
                )
            )
        if lifetime.period_hours <= 0.0:
            findings.append(
                _finding(
                    "RPR106",
                    f"lifetime period must be positive hours, got {lifetime.period_hours}",
                )
            )

    if spec.engine == "fleet":
        # The fleet path supports only TRAP_UPSET faultloads and budget-less
        # guards — see run_fleet_campaign's docstring for the contract.
        if any(rate > 0.0 for rate in spec.fault_rates):
            findings.append(
                _finding(
                    "RPR106",
                    "engine 'fleet' does not support rate-driven fault kinds "
                    "(thermal drift, supply droop, relay chatter, readout faults)",
                    "set fault_rates to (0.0,) or use engine 'table1'",
                )
            )
        if any(prob > 0.0 for prob in spec.dropout_probs):
            findings.append(
                _finding(
                    "RPR106",
                    "engine 'fleet' does not support chip dropout faults",
                    "set dropout_probs to (0.0,) or use engine 'table1'",
                )
            )
        if spec.guard_budget > 0:
            findings.append(
                _finding(
                    "RPR106",
                    "engine 'fleet' does not support per-chip guard violation budgets",
                    "set guard_budget to 0 or use engine 'table1'",
                )
            )

    return findings


def require_valid(spec: SweepSpec) -> None:
    """Raise :class:`ConfigurationError` listing every finding, if any."""
    findings = validate_sweep_spec(spec)
    if findings:
        lines = "; ".join(f"{f.rule_id}: {f.message}" for f in findings)
        raise ConfigurationError(f"invalid sweep spec {spec.name!r}: {lines}")


def demo_spec() -> SweepSpec:
    """The DEPEND experiment's small demonstration sweep (12 cells).

    Two faultload levels x two guard modes x three recovery-knob settings
    — enough cells for Wilson intervals and a non-trivial Pareto frontier
    while staying under a minute on one core.
    """
    return SweepSpec(
        name="depend-demo",
        engine="table1",
        n_chips=2,
        include_baseline=False,
        fault_rates=(0.0, 24.0),
        dropout_probs=(0.0,),
        upset_probs=(0.25,),
        guard_modes=("clamp", "off"),
        alphas=(1.0, 2.0, 4.0),
        sleep_voltages=(-0.3,),
        sleep_temperatures_c=(110.0,),
        seeds=(7,),
        lifetime=LifetimeSettings(
            # 0.4% of the fresh path delay: tight enough that the default
            # CLI seed (0) and the demo seed (7) both cross the budget
            # inside the horizon, so the Pareto axis carries real numbers.
            enabled=True, budget_fraction=0.004, horizon_hours=24.0, period_hours=2.5
        ),
    )

"""DAVOS-style dependability evaluation on top of the lab stack.

PR4/PR5/PR8 built the *mechanisms* — seeded fault injection, retry,
quarantine, guard violation budgets, checkpointing, the batched fleet
engine.  This package builds the *system* on top of them, the way a
fault-injection campaign manager (DAVOS) sits on top of a simulator:

* :mod:`repro.dependability.spec` — a declarative sweep specification
  (fault rates x dropout/upset probabilities x guard modes x recovery
  knobs alpha/Vdda/Ta x seeds) expanded into a deterministic grid of
  campaign cells, statically validated through the RPR1xx pipeline;
* :mod:`repro.dependability.store` — crash-safe sweep manifests and
  per-cell result files (atomic writes, orphan-tmp tolerant), so a
  SIGKILLed sweep resumes cell-exactly;
* :mod:`repro.dependability.runner` — a resilient batch runner with
  per-cell process isolation, wall-clock timeouts and bounded retries;
  a failed or timed-out cell is *recorded*, never raised, and the sweep
  completes on the survivors;
* :mod:`repro.dependability.analyzer` — per-cell failure / quarantine /
  retry / guard-violation / lifetime statistics with bootstrap and
  Wilson confidence intervals, plus cross-cell sensitivity tables;
* :mod:`repro.dependability.pareto` — lifetime-vs-throughput frontiers
  over the recovery-knob axes.

The HTML/JSON rendering lives in :mod:`repro.report.dependability`; the
CLI surface is ``repro sweep run|resume|report`` and the registered
``DEPEND`` experiment.
"""

from repro.dependability.analyzer import SweepAnalysis, analyze_sweep
from repro.dependability.pareto import ParetoPoint, pareto_frontier
from repro.dependability.runner import CellOutcome, SweepResult, SweepRunner
from repro.dependability.spec import (
    LifetimeSettings,
    SweepCell,
    SweepSpec,
    demo_spec,
    validate_sweep_spec,
)
from repro.dependability.store import SweepStore

__all__ = [
    "CellOutcome",
    "LifetimeSettings",
    "ParetoPoint",
    "SweepAnalysis",
    "SweepCell",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SweepStore",
    "analyze_sweep",
    "demo_spec",
    "pareto_frontier",
    "validate_sweep_spec",
]

"""Resilient batch execution of a sweep grid.

The runner walks the cell grid in index order and executes each cell's
campaign with three layers of protection:

* **process isolation** (default): the cell runs in a forked child and
  reports back over a pipe, so a hard crash (segfault, OOM kill, an
  injected SIGKILL) loses one cell, not the sweep;
* **wall-clock timeout**: a hung cell is killed and recorded as
  ``timeout`` after ``timeout_s`` seconds;
* **bounded per-cell retries**: transient crashes get ``cell_retries``
  attempts before the cell is declared failed.

The graceful-degradation contract (DESIGN.md): a failing cell is
*recorded* — status, error, attempts, seed — never raised, and the sweep
always completes on the surviving cells.  Every finished cell persists
through :class:`~repro.dependability.store.SweepStore` before the next
cell starts, so a SIGKILL of the *runner* costs at most the cell in
flight, and ``resume`` re-runs only unfinished cells.  Cell results are
deterministic (wall-clock fields are excluded from the digest), so a
resumed sweep is bit-identical on every cell that already ran.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.dependability.spec import SweepCell, SweepSpec
from repro.units import hours
from repro.dependability.store import SweepStore
from repro.errors import ConfigurationError
from repro.obs import NULL_PROGRESS, NULL_TRACER, Tracer
from repro.units import SECONDS_PER_HOUR

#: Injection hooks for tests and smoke benchmarks: ``cell_id -> mode``.
#: ``crash`` kills the cell on every attempt, ``crash-once`` only on the
#: first (exercising the retry path), ``hang`` sleeps past the timeout
#: (process isolation only).
INJECT_MODES = ("crash", "crash-once", "hang")


@dataclass(frozen=True)
class CellOutcome:
    """What happened to one cell, successful or not."""

    cell_id: str
    status: str  # "ok" | "failed" | "timeout"
    attempts: int
    error: str = ""
    wall_s: float = 0.0
    stats: dict = field(default_factory=dict)
    digest: str = ""  # digest of the deterministic part of ``stats``

    @property
    def ok(self) -> bool:
        """True when the cell's campaign completed."""
        return self.status == "ok"

    def to_dict(self) -> dict:
        """JSON-serialisable form for the cell store."""
        return {
            "cell_id": self.cell_id,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "wall_s": self.wall_s,
            "stats": self.stats,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> CellOutcome:
        """Rehydrate a persisted outcome."""
        return cls(
            cell_id=payload["cell_id"],
            status=payload["status"],
            attempts=payload.get("attempts", 1),
            error=payload.get("error", ""),
            wall_s=payload.get("wall_s", 0.0),
            stats=payload.get("stats", {}),
            digest=payload.get("digest", ""),
        )


@dataclass(frozen=True)
class SweepResult:
    """A finished (possibly degraded) sweep: one outcome per cell."""

    spec: SweepSpec
    directory: str
    cells: tuple[SweepCell, ...]
    outcomes: tuple[CellOutcome, ...]

    @property
    def ok_cells(self) -> tuple[CellOutcome, ...]:
        """Outcomes of cells whose campaign completed."""
        return tuple(outcome for outcome in self.outcomes if outcome.ok)

    @property
    def degraded_cells(self) -> tuple[CellOutcome, ...]:
        """Outcomes recorded as failed or timed out."""
        return tuple(outcome for outcome in self.outcomes if not outcome.ok)

    @property
    def complete(self) -> bool:
        """True when no cell degraded."""
        return not self.degraded_cells


def _stats_digest(stats: dict) -> str:
    """Digest of the deterministic part of a cell's stats.

    Wall-clock-derived fields can never be bit-identical across runs, so
    they are excluded — this digest is the resume/bit-identity contract.
    """
    import json

    payload = {k: v for k, v in stats.items() if k not in ("wall_s", "sim_per_wall")}
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _lifetime_stats(cell: SweepCell) -> dict:
    """Project lifetime under this cell's recovery knobs (Pareto axes)."""
    from repro.bti.traps import TrapParameters
    from repro.core.knobs import OperatingPoint, RecoveryKnobs
    from repro.core.lifetime import project_lifetime
    from repro.core.policies import ProactivePolicy
    from repro.device.technology import TechnologyParameters
    from repro.device.variation import ProcessVariation
    from repro.fpga.chip import FpgaChip

    settings = cell.lifetime
    # Small trap populations keep the projection sub-second per cell while
    # preserving the stress/recovery physics the knobs act on.
    tech = TechnologyParameters(
        nbti_traps=TrapParameters(mean_trap_count=12.0),
        pbti_traps=TrapParameters(mean_trap_count=12.0, impact_mean_volts=2.56e-3),
    )
    chip = FpgaChip(
        f"pareto-{cell.cell_id}",
        n_stages=5,
        tech=tech,
        variation=ProcessVariation(0.0, 0.0, 0.0),
        seed=cell.seed,
    )
    knobs = RecoveryKnobs(
        alpha=cell.alpha,
        sleep_voltage=cell.sleep_voltage,
        sleep_temperature_c=cell.sleep_temperature_c,
    )
    budget = settings.budget_fraction * chip.path_delay()
    report = project_lifetime(
        chip,
        ProactivePolicy(knobs, period=settings.period_hours * SECONDS_PER_HOUR),
        budget=budget,
        horizon_active_time=settings.horizon_hours * SECONDS_PER_HOUR,
        operating=OperatingPoint(temperature_c=110.0),
        max_segment=SECONDS_PER_HOUR,
    )
    survived = report.survived_horizon
    return {
        "lifetime_active_hours": (
            None if survived else report.active_lifetime / SECONDS_PER_HOUR
        ),
        "lifetime_survived_horizon": survived,
        "lifetime_horizon_hours": settings.horizon_hours,
        "throughput_active_fraction": knobs.active_fraction,
    }


def _campaign_stats(cell: SweepCell, retries: int, backoff_s: float, workers: int) -> dict:
    """Run the cell's campaign and fold it into a deterministic stats dict."""
    from repro.guard.contracts import GuardConfig
    from repro.lab.campaign import run_table1_campaign, table1_horizon
    from repro.lab.faults import FaultPlan
    from repro.lab.fleet import run_fleet_campaign
    from repro.lab.resilience import RetryPolicy

    tracer = Tracer()
    chip_ids = [f"chip-{number}" for number in range(1, cell.n_chips + 1)]
    faults = None
    if cell.has_faults:
        faults = FaultPlan.generate(
            cell.fault_seed,
            chip_ids,
            table1_horizon(cell.n_chips, cell.include_baseline),
            rate_per_day=cell.fault_rate,
            dropout_probability=cell.dropout_prob,
            upset_probability=cell.upset_prob,
        )
    budget = cell.guard_budget if cell.guard_mode == "clamp" and cell.guard_budget else None
    guard = GuardConfig(mode=cell.guard_mode, violation_budget=budget, dump_dir=None)

    if cell.engine == "fleet":
        result = run_fleet_campaign(
            seed=cell.seed,
            n_chips=cell.n_chips,
            include_baseline=cell.include_baseline,
            faults=faults,
            guard=GuardConfig(mode=cell.guard_mode, dump_dir=None),
            tracer=tracer,
        )
        measurements = result.total_measurements
    else:
        result = run_table1_campaign(
            seed=cell.seed,
            n_chips=cell.n_chips,
            include_baseline=cell.include_baseline,
            workers=workers,
            faults=faults,
            retry=RetryPolicy(max_attempts=retries, backoff_seconds=backoff_s)
            if faults is not None
            else None,
            guard=guard,
            tracer=tracer,
        )
        measurements = len(result.log)

    log_hash = hashlib.sha256()
    for record in result.log:
        log_hash.update(repr(record).encode())
    metrics = tracer.metrics.snapshot()
    guard_violations = {
        name.removeprefix("guard.violations."): value
        for name, value in metrics.items()
        if name.startswith("guard.violations.")
    }
    stats = {
        "engine": cell.engine,
        "config_digest": cell.config_digest(),
        "n_chips": cell.n_chips,
        "measurements": measurements,
        "quarantined": sorted(result.quarantined),
        "quarantined_count": len(result.quarantined),
        "sample_retries": metrics.get("lab.sample_retries", 0.0),
        "quarantine_events": metrics.get("campaign.quarantines", 0.0),
        "guard_violations": guard_violations,
        "guard_violations_total": sum(guard_violations.values()),
        "faults_planned": len(faults) if faults is not None else 0,
        "log_digest": log_hash.hexdigest()[:16],
        "degradation": {
            chip_id: chip.delta_path_delay()
            for chip_id, chip in sorted(result.chips.items())
        },
    }
    if cell.lifetime.enabled:
        stats.update(_lifetime_stats(cell))
    return stats


def _execute_cell(
    cell: SweepCell, retries: int, backoff_s: float, workers: int, inject: str | None
) -> dict:
    """One attempt at one cell, with optional failure injection."""
    if inject in ("crash", "crash-once"):
        if multiprocessing.parent_process() is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        raise RuntimeError(f"injected crash in {cell.cell_id}")
    if inject == "hang":
        if multiprocessing.parent_process() is None:
            raise RuntimeError(
                f"injected hang in {cell.cell_id} (inline isolation cannot "
                "time out; use process isolation)"
            )
        time.sleep(hours(1.0))
    return _campaign_stats(cell, retries, backoff_s, workers)


def _child_main(connection, cell, retries, backoff_s, workers, inject) -> None:
    """Entry point of the forked per-cell worker."""
    try:
        stats = _execute_cell(cell, retries, backoff_s, workers, inject)
        connection.send(("ok", stats))
    except BaseException as exc:  # report, never propagate: the pipe is the result
        connection.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        connection.close()


class SweepRunner:
    """Executes a sweep grid with per-cell isolation, timeout and retry.

    Parameters
    ----------
    spec:
        The sweep to run (validated on expansion).
    directory:
        Progress ledger location; pass the same directory to resume.
    timeout_s:
        Wall-clock budget per cell attempt (process isolation only).
    cell_retries:
        Attempts per cell before recording it as failed.
    isolation:
        ``"process"`` forks a worker per cell (crash/timeout-proof);
        ``"inline"`` runs in-process (faster for tiny demo sweeps, but a
        hard crash takes the runner with it).
    inject:
        Optional ``cell_id -> mode`` failure injection (see
        :data:`INJECT_MODES`) for tests and smoke benchmarks.
    """

    def __init__(
        self,
        spec: SweepSpec,
        directory: str | Path,
        *,
        timeout_s: float = 600.0,
        cell_retries: int = 2,
        isolation: str = "process",
        tracer=None,
        progress=None,
        inject: dict[str, str] | None = None,
    ) -> None:
        if timeout_s <= 0.0:
            raise ConfigurationError(f"timeout_s must be positive, got {timeout_s}")
        if cell_retries < 1:
            raise ConfigurationError(f"cell_retries must be >= 1, got {cell_retries}")
        if isolation not in ("process", "inline"):
            raise ConfigurationError(
                f"isolation must be 'process' or 'inline', got {isolation!r}"
            )
        for cell_id, mode in (inject or {}).items():
            if mode not in INJECT_MODES:
                raise ConfigurationError(
                    f"unknown inject mode {mode!r} for {cell_id} "
                    f"(choose from {', '.join(INJECT_MODES)})"
                )
        self.spec = spec
        self.directory = Path(directory)
        self.timeout_s = timeout_s
        self.cell_retries = cell_retries
        self.isolation = isolation
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.progress = progress if progress is not None else NULL_PROGRESS
        self.inject = dict(inject or {})

    # -- attempts ---------------------------------------------------------

    def _attempt_inline(self, cell: SweepCell, inject: str | None) -> tuple[str, object]:
        try:
            stats = _execute_cell(
                cell, self.spec.retries, self.spec.retry_backoff_s, self.spec.workers, inject
            )
        except Exception as exc:
            return "error", f"{type(exc).__name__}: {exc}"
        return "ok", stats

    def _attempt_process(self, cell: SweepCell, inject: str | None) -> tuple[str, object]:
        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe(duplex=False)
        worker = context.Process(
            target=_child_main,
            args=(
                child_conn,
                cell,
                self.spec.retries,
                self.spec.retry_backoff_s,
                self.spec.workers,
                inject,
            ),
            daemon=True,
        )
        worker.start()
        child_conn.close()
        try:
            if not parent_conn.poll(self.timeout_s):
                worker.terminate()
                worker.join(5.0)
                if worker.is_alive():
                    worker.kill()
                    worker.join()
                return "timeout", f"cell exceeded the {self.timeout_s:g} s wall-clock budget"
            try:
                kind, payload = parent_conn.recv()
            except EOFError:
                worker.join()
                return (
                    "error",
                    f"cell worker died without reporting (exit code {worker.exitcode})",
                )
            worker.join()
            return ("ok", payload) if kind == "ok" else ("error", payload)
        finally:
            parent_conn.close()
            if worker.is_alive():
                worker.kill()
                worker.join()

    def _run_cell(self, cell: SweepCell) -> CellOutcome:
        """All attempts at one cell, folding to a single outcome."""
        failures = self.tracer.counter(
            "sweep.cell_failures", "sweep cells that exhausted their attempts"
        )
        timeouts = self.tracer.counter(
            "sweep.cell_timeouts", "sweep cell attempts killed on timeout"
        )
        retries = self.tracer.counter(
            "sweep.cell_retries", "extra attempts after a failed cell attempt"
        )
        started = time.monotonic()
        last_error, last_status = "", "failed"
        for attempt in range(1, self.cell_retries + 1):
            inject = self.inject.get(cell.cell_id)
            if inject == "crash-once" and attempt > 1:
                inject = None
            if attempt > 1:
                retries.inc()
            with self.tracer.span(
                "sweep_cell", cell=cell.cell_id, attempt=attempt, engine=cell.engine
            ):
                if self.isolation == "process":
                    kind, payload = self._attempt_process(cell, inject)
                else:
                    kind, payload = self._attempt_inline(cell, inject)
            if kind == "ok":
                stats = payload
                return CellOutcome(
                    cell_id=cell.cell_id,
                    status="ok",
                    attempts=attempt,
                    wall_s=time.monotonic() - started,
                    stats=stats,
                    digest=_stats_digest(stats),
                )
            last_error = str(payload)
            last_status = "timeout" if kind == "timeout" else "failed"
            if kind == "timeout":
                timeouts.inc()
        failures.inc()
        return CellOutcome(
            cell_id=cell.cell_id,
            status=last_status,
            attempts=self.cell_retries,
            error=last_error,
            wall_s=time.monotonic() - started,
        )

    # -- whole-sweep entry points -----------------------------------------

    def run(self, resume: bool = False) -> SweepResult:
        """Execute every unfinished cell and return the complete grid.

        With ``resume=True`` the directory must already hold a manifest
        for this spec; finished cells are loaded, not re-run.  Without it
        the directory is initialised (idempotently, so ``run`` on a
        partially-complete directory also picks up where it left off).
        """
        store = SweepStore(self.directory)
        if resume:
            store.check_spec(self.spec)
        else:
            store.initialise(self.spec)
        cells = self.spec.expand()
        finished = store.load_cells()
        outcomes: dict[str, CellOutcome] = {
            cell_id: CellOutcome.from_dict(payload)
            for cell_id, payload in finished.items()
        }
        pending = [cell for cell in cells if cell.cell_id not in outcomes]
        cells_counter = self.tracer.counter("sweep.cells", "sweep cells executed")
        with self.tracer.span(
            "sweep",
            sweep=self.spec.name,
            n_cells=len(cells),
            pending=len(pending),
            resumed=len(outcomes),
        ):
            for number, cell in enumerate(pending, start=1):
                outcome = self._run_cell(cell)
                store.write_cell(cell.cell_id, outcome.to_dict())
                outcomes[cell.cell_id] = outcome
                cells_counter.inc()
                self.progress.line(
                    f"{cell.cell_id:<10} {outcome.status:<8} "
                    f"({number}/{len(pending)} pending cells"
                    + (f", error: {outcome.error}" if outcome.error else "")
                    + ")"
                )
        return SweepResult(
            spec=self.spec,
            directory=str(self.directory),
            cells=cells,
            outcomes=tuple(outcomes[cell.cell_id] for cell in cells),
        )

    @classmethod
    def resume(
        cls,
        directory: str | Path,
        *,
        timeout_s: float = 600.0,
        cell_retries: int = 2,
        isolation: str = "process",
        tracer=None,
        progress=None,
        inject: dict[str, str] | None = None,
    ) -> SweepResult:
        """Reload a sweep directory's spec and finish its unfinished cells."""
        store = SweepStore(directory)
        spec = store.load_spec()
        runner = cls(
            spec,
            directory,
            timeout_s=timeout_s,
            cell_retries=cell_retries,
            isolation=isolation,
            tracer=tracer,
            progress=progress,
            inject=inject,
        )
        return runner.run(resume=True)

"""Statistical analysis of a finished (possibly degraded) sweep.

Per-cell rows carry the raw dependability observables (quarantine,
retries, guard violations, degradation, lifetime); rates over small
counts get Wilson score intervals (2 quarantined of 5 chips must not
produce a [0.4, 0.4] "interval"), and cross-chip means get bootstrap
intervals.  Sensitivity tables marginalise each swept axis so the
operator can read off which knob actually moves a metric before
trusting the Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.stats import bootstrap_ci, wilson_ci
from repro.analysis.tables import Table
from repro.dependability.runner import CellOutcome, SweepResult
from repro.dependability.spec import SweepCell, SweepSpec
from repro.dependability.store import SweepStore
from repro.errors import ConfigurationError

#: Axes a sensitivity table marginalises over (swept spec fields).
SENSITIVITY_AXES = (
    ("fault_rates", "fault_rate"),
    ("dropout_probs", "dropout_prob"),
    ("upset_probs", "upset_prob"),
    ("guard_modes", "guard_mode"),
    ("alphas", "alpha"),
    ("sleep_voltages", "sleep_voltage"),
    ("sleep_temperatures_c", "sleep_temperature_c"),
)


@dataclass(frozen=True)
class CellRow:
    """One cell's configuration joined with its outcome statistics."""

    cell: SweepCell
    outcome: CellOutcome

    @property
    def ok(self) -> bool:
        """True when the cell's campaign completed."""
        return self.outcome.ok

    @property
    def quarantine_rate(self) -> float | None:
        """Quarantined fraction of the cell's lot (None when degraded)."""
        if not self.ok:
            return None
        return self.outcome.stats.get("quarantined_count", 0) / self.cell.n_chips

    @property
    def lifetime_hours(self) -> float | None:
        """Projected active lifetime, None when degraded or censored."""
        if not self.ok:
            return None
        return self.outcome.stats.get("lifetime_active_hours")

    @property
    def throughput(self) -> float | None:
        """Active fraction delivered by the cell's recovery knobs."""
        if not self.ok:
            return None
        return self.outcome.stats.get("throughput_active_fraction")

    @property
    def mean_degradation(self) -> float | None:
        """Mean final delay shift across the cell's surviving chips."""
        if not self.ok:
            return None
        degradation = self.outcome.stats.get("degradation", {})
        if not degradation:
            return None
        return sum(degradation.values()) / len(degradation)


@dataclass(frozen=True)
class SweepAnalysis:
    """Everything the report and CLI need from a finished sweep."""

    spec: SweepSpec
    rows: tuple[CellRow, ...]
    #: Wilson interval on the cell failure rate (degraded of total).
    cell_failure_ci: tuple[float, float]
    #: Wilson interval on the pooled chip quarantine rate.
    quarantine_ci: tuple[float, float]
    #: Bootstrap interval on the mean finite lifetime (None if < 2 points).
    lifetime_ci: tuple[float, float] | None
    #: axis field -> value -> metric name -> marginal mean (or None).
    sensitivity: dict = field(default_factory=dict)

    @property
    def ok_rows(self) -> tuple[CellRow, ...]:
        """Rows whose campaign completed."""
        return tuple(row for row in self.rows if row.ok)

    @property
    def degraded_rows(self) -> tuple[CellRow, ...]:
        """Rows recorded as failed or timed out."""
        return tuple(row for row in self.rows if not row.ok)

    @property
    def n_cells(self) -> int:
        """Total cells in the grid."""
        return len(self.rows)

    def table(self) -> Table:
        """Per-cell summary table for the CLI."""
        table = Table(
            f"Dependability sweep '{self.spec.name}' "
            f"({len(self.ok_rows)}/{self.n_cells} cells ok)",
            [
                "cell", "status", "fault/day", "dropout", "upset", "guard",
                "alpha", "quar", "retries", "violations", "life (h)",
            ],
        )
        for row in self.rows:
            cell, outcome = row.cell, row.outcome
            stats = outcome.stats
            lifetime = row.lifetime_hours
            if not row.ok:
                life_text = "-"
            elif lifetime is None:
                life_text = f">{cell.lifetime.horizon_hours:g}"
            else:
                life_text = f"{lifetime:.2f}"
            table.add_row(
                cell.cell_id,
                outcome.status,
                f"{cell.fault_rate:g}",
                f"{cell.dropout_prob:g}",
                f"{cell.upset_prob:g}",
                cell.guard_mode,
                f"{cell.alpha:g}",
                str(stats.get("quarantined_count", "-")) if row.ok else "-",
                f"{stats.get('sample_retries', 0):g}" if row.ok else "-",
                f"{stats.get('guard_violations_total', 0):g}" if row.ok else "-",
                life_text,
            )
        return table


def _marginal_means(rows, axis_cell_field: str) -> dict:
    """metric means of the ok rows, grouped by one axis's values."""
    groups: dict = {}
    for row in rows:
        groups.setdefault(getattr(row.cell, axis_cell_field), []).append(row)
    marginals: dict = {}
    for value, members in sorted(groups.items(), key=lambda item: str(item[0])):
        ok = [row for row in members if row.ok]
        quarantine = [row.quarantine_rate for row in ok if row.quarantine_rate is not None]
        lifetimes = [row.lifetime_hours for row in ok if row.lifetime_hours is not None]
        degradations = [
            row.mean_degradation for row in ok if row.mean_degradation is not None
        ]
        violations = [row.outcome.stats.get("guard_violations_total", 0.0) for row in ok]
        marginals[value] = {
            "cells": len(members),
            "ok_cells": len(ok),
            "quarantine_rate": sum(quarantine) / len(quarantine) if quarantine else None,
            "lifetime_hours": sum(lifetimes) / len(lifetimes) if lifetimes else None,
            "degradation": sum(degradations) / len(degradations) if degradations else None,
            "guard_violations": sum(violations) / len(violations) if violations else None,
        }
    return marginals


def analyze_sweep(result: SweepResult | str | Path) -> SweepAnalysis:
    """Compute dependability statistics from a result or a sweep directory.

    Accepts the in-memory :class:`SweepResult` of a run, or a directory
    path — in which case the persisted manifest and cell files are
    reloaded (cells never executed are treated as degraded with a
    ``never ran`` error, so analysing an interrupted sweep still works).
    """
    if not isinstance(result, SweepResult):
        directory = Path(result)
        store = SweepStore(directory)
        spec = store.load_spec()
        cells = spec.expand()
        persisted = store.load_cells()
        outcomes = tuple(
            CellOutcome.from_dict(persisted[cell.cell_id])
            if cell.cell_id in persisted
            else CellOutcome(
                cell_id=cell.cell_id,
                status="failed",
                attempts=0,
                error="never ran (sweep interrupted before this cell)",
            )
            for cell in cells
        )
        result = SweepResult(
            spec=spec, directory=str(directory), cells=cells, outcomes=outcomes
        )

    if len(result.cells) != len(result.outcomes):
        raise ConfigurationError(
            f"sweep result is inconsistent: {len(result.cells)} cells but "
            f"{len(result.outcomes)} outcomes"
        )
    rows = tuple(
        CellRow(cell=cell, outcome=outcome)
        for cell, outcome in zip(result.cells, result.outcomes)
    )

    ok_rows = [row for row in rows if row.ok]
    cell_failure_ci = wilson_ci(len(rows) - len(ok_rows), len(rows))
    total_chips = sum(row.cell.n_chips for row in ok_rows)
    total_quarantined = sum(
        row.outcome.stats.get("quarantined_count", 0) for row in ok_rows
    )
    quarantine_ci = (
        wilson_ci(total_quarantined, total_chips) if total_chips else (0.0, 1.0)
    )
    lifetimes = [row.lifetime_hours for row in ok_rows if row.lifetime_hours is not None]
    lifetime_ci = bootstrap_ci(lifetimes) if len(lifetimes) >= 2 else None

    sensitivity = {
        axis_field: _marginal_means(rows, cell_field)
        for axis_field, cell_field in SENSITIVITY_AXES
        if len(getattr(result.spec, axis_field)) > 1
    }
    return SweepAnalysis(
        spec=result.spec,
        rows=rows,
        cell_failure_ci=cell_failure_ci,
        quarantine_ci=quarantine_ci,
        lifetime_ci=lifetime_ci,
        sensitivity=sensitivity,
    )


"""Command-line interface: run and inspect the paper's experiments.

Usage::

    python -m repro list                    # all experiments
    python -m repro info FIG4               # one experiment's description
    python -m repro run FIG4 [--seed N]     # regenerate an artefact
    python -m repro campaign [--csv out.csv] [--trace out.jsonl] [--quiet]
    python -m repro campaign --report out.html   # + health report (HTML + JSON)
    python -m repro stats [--seed N]        # campaign timing + metric summary
    python -m repro trace summary run.jsonl # inspect an exported trace
    python -m repro trace diff a.jsonl b.jsonl
    python -m repro report [--out out.html] # campaign health report
    python -m repro report --experiments    # legacy markdown experiment report
    python -m repro bench --check           # compare BENCH json vs history
    python -m repro sweep run spec.json --dir sweep/   # dependability sweep
    python -m repro sweep resume --dir sweep/          # finish unfinished cells
    python -m repro sweep report --dir sweep/ --out sweep.html
    python -m repro calibration             # print the acceptance bands
    python -m repro lint [paths...]         # domain lint (RPR rules + baseline)
    python -m repro lint --deep             # + cross-module flow passes
    python -m repro lint --prune-baseline   # drop stale baseline entries
    python -m repro lint --experiments      # static experiment validation
    python -m repro campaign --sanitize     # hash chip state per phase
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import __version__
from repro.analysis.tables import Table
from repro.errors import ReproError
from repro.experiments.calibration import PAPER_TARGETS
from repro.experiments.registry import EXPERIMENTS, get_experiment


def _cmd_list(args: argparse.Namespace) -> int:
    table = Table(
        f"repro {__version__} — reproducible paper artefacts",
        ["id", "artefact", "description"],
    )
    for descriptor in EXPERIMENTS.values():
        table.add_row(descriptor.exp_id, descriptor.paper_artifact, descriptor.description)
    table.print()
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    descriptor = get_experiment(args.experiment)
    print(f"{descriptor.exp_id} — {descriptor.paper_artifact}")
    print(f"  {descriptor.description}")
    print(f"  bench: {descriptor.bench}")
    return 0


def _print_result(result) -> None:
    """Print whatever tables a runner's result object can render."""
    printed = False
    for attr in ("table", "stress_table", "recovery_table", "schedule_table"):
        method = getattr(result, attr, None)
        if callable(method):
            method().print()
            printed = True
    if not printed:
        print(result)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.registry import run_experiment

    descriptor = get_experiment(args.experiment)
    print(f"running {descriptor.exp_id} ({descriptor.paper_artifact})...\n")
    result = run_experiment(descriptor.exp_id, seed=args.seed)
    if descriptor.exp_id == "TAB1":
        from repro.experiments.table1 import schedule_table

        schedule_table().print()
        print(f"measurements recorded: {len(result.log)}")
    elif descriptor.exp_id == "TAB1F":
        from repro.experiments.table1_fleet import distribution_table

        distribution_table(result).print()
        print(f"measurements recorded: {result.total_measurements}")
    elif descriptor.exp_id == "TAB3":
        result.stress_table().print()
        result.recovery_table().print()
    else:
        _print_result(result)
    return 0


def _resilience_kwargs(args: argparse.Namespace, n_chips: int | None = None) -> dict:
    """Translate the campaign CLI's resilience flags into run kwargs."""
    from repro.lab.campaign import table1_horizon
    from repro.lab.faults import FaultPlan
    from repro.lab.resilience import RetryPolicy

    count = n_chips if n_chips is not None else args.chips
    kwargs: dict = {}
    if args.fault_seed is not None:
        chip_ids = [f"chip-{i + 1}" for i in range(count)]
        kwargs["faults"] = FaultPlan.generate(
            args.fault_seed,
            chip_ids,
            table1_horizon(count),
            rate_per_day=args.fault_rate,
            dropout_probability=args.dropout_prob,
            upset_probability=args.upset_prob,
        )
    if args.guard_mode is not None:
        from repro.guard import GuardConfig

        kwargs["guard"] = GuardConfig(
            mode=args.guard_mode,
            violation_budget=args.guard_budget,
            dump_dir=args.guard_dumps,
        )
    if args.retries is not None or args.retry_backoff is not None:
        kwargs["retry"] = RetryPolicy(
            max_attempts=args.retries if args.retries is not None else 3,
            backoff_seconds=(
                args.retry_backoff if args.retry_backoff is not None else 5.0
            ),
        )
    if args.resume is not None:
        kwargs["checkpoint"] = args.resume
        kwargs["resume"] = True
    elif args.checkpoint is not None:
        kwargs["checkpoint"] = args.checkpoint
    if getattr(args, "sanitize", False):
        kwargs["sanitize"] = True
    return kwargs


def _print_sanitizer(result) -> None:
    """One line of sanitizer output: digest count + final digest per chip."""
    if not result.state_hashes:
        return
    final: dict[str, str] = {}
    for key in sorted(result.state_hashes):
        chip_id = key.partition("/")[0]
        final[chip_id] = result.state_hashes[key]
    shown = sorted(final.items())[:8]
    summary = " ".join(f"{chip}={digest}" for chip, digest in shown)
    if len(final) > len(shown):
        summary += f" ... (+{len(final) - len(shown)} more chips)"
    print(f"sanitizer: {len(result.state_hashes)} phase hashes; final {summary}")


def _print_quarantine(result) -> None:
    """One line per chip the campaign had to pull from the bench."""
    for chip_id, report in result.quarantined.items():
        print(
            f"quarantined: {chip_id} during {report.case} at "
            f"t={report.sim_time:.0f} s — {report.reason}"
        )


def _write_health_report(result, tracer, out: str, seed: int) -> None:
    """Build and write the campaign health report (HTML + JSON sibling)."""
    from repro.obs.query import TraceModel
    from repro.report import build_campaign_report

    model = TraceModel.from_tracer(tracer) if tracer is not None else None
    report = build_campaign_report(result, model, seed=seed)
    path = report.write(out)
    print(f"health report written to {path} (+ {path.with_suffix('.json').name})")


def _write_fleet_report(result, tracer, out: str, seed: int) -> None:
    """Build and write the fleet distribution report (HTML + JSON sibling)."""
    from repro.obs.query import TraceModel
    from repro.report import build_fleet_report

    model = TraceModel.from_tracer(tracer) if tracer is not None else None
    report = build_fleet_report(result, model, seed=seed)
    path = report.write(out)
    print(f"fleet report written to {path} (+ {path.with_suffix('.json').name})")


def _cmd_fleet_campaign(args: argparse.Namespace) -> int:
    """The --fleet branch of `repro campaign`: batched wafer-lot run.

    Resilience flags are passed straight through to
    :func:`~repro.lab.fleet.run_fleet_campaign`, which raises a typed
    :class:`~repro.errors.ConfigurationError` naming any option the fleet
    engine does not support (retry loops, checkpoints, rate-driven fault
    kinds, guard budgets) — the CLI no longer second-guesses the contract.
    """
    from repro.lab.fleet import run_fleet_campaign
    from repro.obs import JsonlExporter, ProgressReporter, Tracer

    kwargs = _resilience_kwargs(args, n_chips=args.fleet)
    kwargs.pop("sanitize", None)  # passed explicitly below
    tracer = None
    if args.trace:
        tracer = Tracer(exporter=JsonlExporter(args.trace))
    elif args.report:
        tracer = Tracer()
    progress = ProgressReporter(enabled=args.progress)
    print(
        f"running the Table 1 fleet campaign on {args.fleet} chips "
        f"({args.fidelity} fidelity, {args.shard} shard(s))..."
    )
    result = run_fleet_campaign(
        seed=args.seed,
        n_chips=args.fleet,
        fidelity=args.fidelity,
        shards=args.shard,
        sanitize=args.sanitize,
        collect=args.collect,
        tracer=tracer,
        progress=progress,
        **kwargs,
    )
    print(
        f"done: {result.total_measurements} measurements over "
        f"{len(result.summaries)} chips "
        f"(fidelity {result.fidelity}, {len(result.log)} records kept)"
    )
    _print_sanitizer(result)
    if args.csv:
        result.log.write_csv(args.csv)
        print(f"log written to {args.csv}")
    if args.report:
        _write_fleet_report(result, tracer, args.report, args.seed)
    if tracer is not None:
        n_spans = len(tracer.finished)
        tracer.close()
        if args.trace:
            print(f"trace written to {args.trace} ({n_spans} spans)")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.lab.campaign import run_table1_campaign
    from repro.obs import JsonlExporter, ProgressReporter, Tracer

    if args.fleet is not None:
        return _cmd_fleet_campaign(args)
    tracer = None
    if args.trace:
        tracer = Tracer(exporter=JsonlExporter(args.trace))
    elif args.report:
        # The health report reads trace metrics; give it an in-memory tracer.
        tracer = Tracer()
    progress = ProgressReporter(enabled=args.progress)
    print(f"running the Table 1 campaign on {args.chips} chips...")
    result = run_table1_campaign(seed=args.seed, n_chips=args.chips,
                                 tracer=tracer, progress=progress,
                                 workers=args.workers,
                                 **_resilience_kwargs(args))
    print(f"done: {len(result.log)} measurements over {len(result.chips)} chips")
    _print_quarantine(result)
    _print_sanitizer(result)
    if args.csv:
        result.log.write_csv(args.csv)
        print(f"log written to {args.csv}")
    if args.report:
        _write_health_report(result, tracer, args.report, args.seed)
    if tracer is not None:
        n_spans = len(tracer.finished)
        tracer.close()
        if args.trace:
            print(f"trace written to {args.trace} ({n_spans} spans)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.lab.campaign import run_table1_campaign
    from repro.obs import JsonlExporter, ProgressReporter, Tracer

    exporter = JsonlExporter(args.trace) if args.trace else None
    tracer = Tracer(exporter=exporter)
    progress = ProgressReporter(enabled=args.progress)
    print(f"running the Table 1 campaign on {args.chips} chips (instrumented)...")
    result = run_table1_campaign(seed=args.seed, n_chips=args.chips,
                                 tracer=tracer, progress=progress,
                                 workers=args.workers,
                                 **_resilience_kwargs(args))
    print(f"done: {len(result.log)} measurements over {len(result.chips)} chips")
    _print_quarantine(result)
    _print_sanitizer(result)
    print()
    tracer.summary_table(
        "Per-span timing (campaign -> case -> phase -> measurement)"
    ).print()
    tracer.metrics_table("Campaign run metrics").print()
    from repro.obs.query import TraceModel

    model = TraceModel.from_tracer(tracer)
    model.metric_family_table(TraceModel.HEALTH_FAMILIES).print()
    tracer.close()
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0


def _cmd_calibration(args: argparse.Namespace) -> int:
    table = Table(
        "Calibration acceptance bands (single source of truth for all benches)",
        ["quantity", "paper", "low", "high"],
        fmt="{:.2f}",
    )
    for name, band in PAPER_TARGETS.items():
        table.add_row(name, band.paper_value, band.low, band.high)
    table.print()
    return 0


#: Default committed baseline location (repo root).
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def _cmd_lint(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.lint import (
        Baseline,
        BaselineDiff,
        apply_baseline,
        lint_paths,
        load_baseline,
        render_json,
        render_text,
        validate_experiments,
        write_baseline,
    )

    if args.experiments:
        findings = validate_experiments()
        suppressed: list = []
    else:
        result = lint_paths(args.paths or ["src"])
        if args.deep:
            from repro.analysis.flow import analyze_paths

            deep = analyze_paths(args.paths or ["src"])
            result.findings.extend(deep.findings)
            result.suppressed.extend(deep.suppressed)
            result.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
        findings = result.findings
        suppressed = result.suppressed
    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline with {len(findings)} entries written to {args.baseline}")
        return 0
    if args.experiments or args.no_baseline or (
        args.baseline == DEFAULT_BASELINE and not os.path.exists(args.baseline)
    ):
        # Semantic experiment findings always gate; the baseline only
        # covers AST findings.
        baseline = Baseline()
    else:
        baseline = load_baseline(args.baseline)
    diff = apply_baseline(findings, baseline)
    if args.prune_baseline and not args.no_baseline and os.path.exists(args.baseline):
        write_baseline(args.baseline, diff.baselined)
        print(
            f"pruned {len(diff.stale)} stale entr"
            f"{'ies' if len(diff.stale) != 1 else 'y'} from {args.baseline} "
            f"({len(diff.baselined)} kept)"
        )
        diff = BaselineDiff(new=diff.new, baselined=diff.baselined, stale=[])
    renderer = render_json if args.format == "json" else render_text
    print(renderer(diff, suppressed))
    return 1 if diff.new else 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.experiments:
        from repro.experiments.report import build_report

        text = build_report(seed=args.seed)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"report written to {args.out}")
        else:
            print(text)
        return 0

    from repro.lab.campaign import run_table1_campaign
    from repro.obs import ProgressReporter, Tracer

    tracer = Tracer()
    progress = ProgressReporter(enabled=args.progress)
    print(f"running the Table 1 campaign on {args.chips} chips (instrumented)...")
    result = run_table1_campaign(seed=args.seed, n_chips=args.chips,
                                 tracer=tracer, progress=progress,
                                 workers=args.workers,
                                 **_resilience_kwargs(args))
    print(f"done: {len(result.log)} measurements over {len(result.chips)} chips")
    _print_quarantine(result)
    _write_health_report(result, tracer, args.out or "report.html", args.seed)
    tracer.close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.profile import HotPathProfile
    from repro.obs.query import TraceModel, diff_traces

    if args.trace_command == "diff":
        diff = diff_traces(
            TraceModel.load(args.trace_a), TraceModel.load(args.trace_b)
        )
        diff.table(significant_only=not args.all).print()
        significant = diff.significant()
        print(f"significant: {len(significant)} of {len(diff.rows)} compared")
        divergent = []
        if diff.hash_rows:
            divergent = diff.hash_divergent()
            if divergent or args.all:
                diff.hash_table().print()
            first = diff.first_divergence()
            if first is not None:
                print(
                    f"first state divergence: {first.chip_id} seq {first.seq} "
                    f"({first.case} / {first.phase}): "
                    f"{first.a or '-'} vs {first.b or '-'}"
                )
            else:
                print(
                    f"state hashes: all {len(diff.hash_rows)} phase digests match"
                )
        return 1 if (significant or divergent) and args.strict else 0

    model = TraceModel.load(args.trace_file)
    if args.trace_command == "summary":
        model.top(n=args.top).print()
        model.chip_table().print()
        model.metric_family_table(TraceModel.HEALTH_FAMILIES).print()
    elif args.trace_command == "top":
        model.top(n=args.top, by=args.by, group=args.group).print()
    elif args.trace_command == "tree":
        print(model.tree_render(max_depth=args.max_depth,
                                min_duration=args.min_duration))
    elif args.trace_command == "flame":
        for line in HotPathProfile(model).collapsed():
            print(line)
    elif args.trace_command == "profile":
        profile = HotPathProfile(model)
        profile.phase_table().print()
        profile.throughput_table().print()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as _json

    from repro.report import bench

    try:
        with open(args.input, encoding="utf-8") as handle:
            entry = _json.load(handle)
    except FileNotFoundError:
        print(f"error: benchmark result {args.input!r} not found — run "
              "benchmarks/bench_obs_overhead.py first", file=sys.stderr)
        return 2
    verdict = bench.check(entry, history_dir=args.history,
                          threshold=args.threshold, window=args.window)
    regressed = False
    if verdict is None:
        print(f"no matching history in {args.history} for "
              f"{entry.get('bench', '?')} — nothing to compare against")
    else:
        verdict.table().print()
        regressed = not verdict.ok
        if regressed:
            names = ", ".join(v.metric for v in verdict.regressions)
            print(f"WARNING: possible regression in {names} "
                  "(warn-only; pass --strict to gate)")
    if args.record:
        path = bench.record(entry, history_dir=args.history, stamp=args.stamp)
        print(f"recorded as entry #{bench.load_history(path)[-1]['sequence']} "
              f"in {path}")
    return 1 if regressed and args.strict else 0


def _load_sweep_spec(path: str):
    """Read a sweep spec file; the literal ``demo`` means the built-in demo."""
    from repro.dependability import SweepSpec, demo_spec
    from repro.errors import ConfigurationError

    if path == "demo":
        return demo_spec()
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ConfigurationError(f"cannot read sweep spec {path!r}: {exc}") from exc
    return SweepSpec.from_json(text)


def _write_sweep_report(analysis, out: str) -> None:
    """Build and write the dependability report (HTML + JSON sibling)."""
    from repro.report import build_dependability_report

    report = build_dependability_report(analysis)
    path = report.write(out)
    print(f"dependability report written to {path} (+ {path.with_suffix('.json').name})")


def _print_sweep_summary(result) -> None:
    ok, degraded = result.ok_cells, result.degraded_cells
    print(
        f"sweep {result.spec.name!r}: {len(ok)}/{len(result.outcomes)} cells "
        f"completed" + ("" if not degraded else f", {len(degraded)} degraded")
    )
    for outcome in degraded:
        print(f"  degraded: {outcome.cell_id} ({outcome.status}) — {outcome.error}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.dependability import SweepRunner, SweepStore, analyze_sweep

    if args.sweep_command == "init":
        from repro.dependability import validate_sweep_spec

        spec = _load_sweep_spec(args.spec)
        findings = validate_sweep_spec(spec)
        if findings:
            for finding in findings:
                print(f"{finding.rule_id}: {finding.message}", file=sys.stderr)
            return 1
        SweepStore(args.dir).initialise(spec)
        print(
            f"sweep {spec.name!r} initialised in {args.dir}: "
            f"{spec.n_cells} cells ({spec.engine} engine, digest {spec.digest()})"
        )
        return 0

    if args.sweep_command == "report":
        analysis = analyze_sweep(args.dir)
        analysis.table().print()
        _write_sweep_report(analysis, args.out or "sweep-report.html")
        return 0

    # run | resume
    from repro.obs import JsonlExporter, ProgressReporter, Tracer

    tracer = Tracer(exporter=JsonlExporter(args.trace)) if args.trace else None
    progress = ProgressReporter(enabled=args.progress)
    runner_kwargs = dict(
        timeout_s=args.timeout,
        cell_retries=args.cell_retries,
        isolation=args.isolation,
        tracer=tracer,
        progress=progress,
    )
    if args.sweep_command == "resume":
        print(f"resuming sweep in {args.dir} (unfinished cells only)...")
        result = SweepRunner.resume(args.dir, **runner_kwargs)
    else:
        spec = _load_sweep_spec(args.spec)
        print(
            f"running sweep {spec.name!r}: {spec.n_cells} cells "
            f"({spec.engine} engine, {args.isolation} isolation)..."
        )
        runner = SweepRunner(spec, args.dir, **runner_kwargs)
        result = runner.run()
    _print_sweep_summary(result)
    if args.report:
        _write_sweep_report(analyze_sweep(result), args.report)
    if tracer is not None:
        n_spans = len(tracer.finished)
        tracer.close()
        print(f"trace written to {args.trace} ({n_spans} spans)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Accelerated self-healing reproduction (Guo et al., DAC 2014)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments").set_defaults(
        func=_cmd_list
    )

    info = sub.add_parser("info", help="describe one experiment")
    info.add_argument("experiment", help="experiment id, e.g. FIG4")
    info.set_defaults(func=_cmd_info)

    run = sub.add_parser("run", help="regenerate one experiment's artefact")
    run.add_argument("experiment", help="experiment id, e.g. FIG4")
    run.add_argument("--seed", type=int, default=0, help="campaign seed")
    run.set_defaults(func=_cmd_run)

    def add_campaign_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--seed", type=int, default=0, help="campaign seed")
        parser.add_argument(
            "--chips", type=int, default=5, help="number of chips on the bench"
        )
        parser.add_argument(
            "--workers",
            type=int,
            default=1,
            help="worker threads running chips concurrently (bit-identical "
            "to sequential for the same seed)",
        )
        parser.add_argument("--trace", help="write a JSONL span trace to this file")
        parser.add_argument(
            "--checkpoint",
            metavar="DIR",
            help="snapshot each chip to this directory after every completed "
            "case (trap state, RNG state, DataLog shards)",
        )
        parser.add_argument(
            "--resume",
            metavar="DIR",
            help="resume a killed campaign from its checkpoint directory "
            "(finished chips are not replayed; implies --checkpoint DIR)",
        )
        parser.add_argument(
            "--fault-seed",
            type=int,
            metavar="N",
            help="inject a deterministic instrument-fault plan drawn with "
            "this seed (chamber drift, supply droop, readout faults, "
            "chip dropout)",
        )
        parser.add_argument(
            "--fault-rate",
            type=float,
            default=1.0,
            metavar="X",
            help="mean instrument faults per chip per simulated day "
            "(default: 1.0; only with --fault-seed)",
        )
        parser.add_argument(
            "--dropout-prob",
            type=float,
            default=0.0,
            metavar="P",
            help="per-chip probability of a permanent mid-campaign dropout "
            "(default: 0.0; only with --fault-seed)",
        )
        parser.add_argument(
            "--retries",
            type=int,
            metavar="N",
            help="sample attempts before a chip is quarantined (default: 3)",
        )
        parser.add_argument(
            "--retry-backoff",
            type=float,
            metavar="SECONDS",
            help="simulated seconds before the first sample retry, doubling "
            "per attempt (default: 5)",
        )
        parser.add_argument(
            "--upset-prob",
            type=float,
            default=0.0,
            metavar="P",
            help="per-chip probability of a trap-state upset (NaN or "
            "out-of-domain occupancy) caught by the physics guards "
            "(default: 0.0; only with --fault-seed)",
        )
        parser.add_argument(
            "--guard-mode",
            choices=["raise", "clamp", "off"],
            metavar="MODE",
            help="physics-contract enforcement: 'raise' aborts on the "
            "first violation with a repro bundle, 'clamp' repairs values "
            "in place and counts violations, 'off' disables the checks "
            "(default: ambient guard, which raises without dumping)",
        )
        parser.add_argument(
            "--guard-budget",
            type=int,
            metavar="N",
            help="clamp-mode violations tolerated per chip before it is "
            "quarantined (default: unlimited; only with --guard-mode clamp)",
        )
        parser.add_argument(
            "--guard-dumps",
            metavar="DIR",
            default="guard-dumps",
            help="directory receiving raise-mode repro bundles "
            "(default: guard-dumps)",
        )
        parser.add_argument(
            "--sanitize",
            action="store_true",
            help="hash per-chip state (records, trap occupancy, bench RNG) "
            "at every phase boundary; digests land in state_hash trace "
            "spans and must be identical across sequential/parallel runs "
            "of one seed",
        )
        verbosity = parser.add_mutually_exclusive_group()
        verbosity.add_argument(
            "--progress",
            dest="progress",
            action="store_true",
            default=True,
            help="print per-case progress lines (default)",
        )
        verbosity.add_argument(
            "--quiet",
            dest="progress",
            action="store_false",
            help="suppress progress lines",
        )

    campaign = sub.add_parser("campaign", help="run the full Table 1 campaign")
    campaign.add_argument("--csv", help="write the measurement log to CSV")
    campaign.add_argument(
        "--report",
        metavar="HTML",
        help="write the campaign health report here (JSON sibling alongside); "
        "with --fleet this is the distribution/outlier report instead",
    )
    campaign.add_argument(
        "--fleet",
        type=int,
        metavar="N",
        help="run the Table 1 schedule over an N-chip lot through the "
        "batched fleet engine instead of the per-chip bench "
        "(bit-identical to the sequential campaign in exact fidelity)",
    )
    campaign.add_argument(
        "--shard",
        type=int,
        default=1,
        metavar="K",
        help="fan the fleet out to K worker processes over contiguous "
        "chip ranges; the merged result is bit-identical to --shard 1 "
        "(default: 1; only with --fleet)",
    )
    campaign.add_argument(
        "--fidelity",
        choices=["auto", "exact", "binned"],
        default="auto",
        help="fleet physics fidelity: 'exact' matches the scalar chip "
        "bit-for-bit, 'binned' pools traps on a (tau_c, tau_e) grid for "
        "population scale, 'auto' picks exact for small lots "
        "(default: auto; only with --fleet)",
    )
    campaign.add_argument(
        "--collect",
        choices=["records", "summary"],
        default="records",
        help="'records' keeps the full measurement log, 'summary' keeps "
        "phase-boundary records only (memory-bounded 10k-chip runs; "
        "per-chip summaries always cover the full stream) "
        "(default: records; only with --fleet)",
    )
    add_campaign_options(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    stats = sub.add_parser(
        "stats", help="run an instrumented campaign and print its telemetry"
    )
    add_campaign_options(stats)
    stats.set_defaults(func=_cmd_stats)

    sub.add_parser(
        "calibration", help="print the paper-shape acceptance bands"
    ).set_defaults(func=_cmd_calibration)

    lint = sub.add_parser(
        "lint", help="run the domain linter (AST rules or --experiments validation)"
    )
    lint.add_argument(
        "paths", nargs="*", help="files/directories to lint (default: src)"
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    lint.add_argument(
        "--experiments",
        action="store_true",
        help="statically validate the experiment registry and schedules "
        "instead of linting files",
    )
    lint.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="gate on every finding, ignoring the baseline",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit",
    )
    lint.add_argument(
        "--deep",
        action="store_true",
        help="additionally run the cross-module flow passes (RNG stream "
        "ownership RPR2xx, thread-shared state RPR3xx)",
    )
    lint.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline file without its stale entries "
        "(fingerprints matching no current finding)",
    )
    lint.set_defaults(func=_cmd_lint)

    report = sub.add_parser(
        "report",
        help="run a campaign and write its health report (HTML + JSON); "
        "--experiments writes the legacy markdown experiment report",
    )
    report.add_argument(
        "--out",
        help="output file (default: report.html; markdown mode: stdout)",
    )
    report.add_argument(
        "--experiments",
        action="store_true",
        help="run every experiment and emit the markdown comparison report",
    )
    add_campaign_options(report)
    report.set_defaults(func=_cmd_report)

    trace = sub.add_parser(
        "trace", help="query an exported JSONL span trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def add_trace_file(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("trace_file", help="JSONL trace written by --trace")

    t_summary = trace_sub.add_parser(
        "summary", help="top spans, per-chip rollup and health metric families"
    )
    add_trace_file(t_summary)
    t_summary.add_argument("--top", type=int, default=10, help="rows in the top table")

    t_top = trace_sub.add_parser("top", help="hottest span groups")
    add_trace_file(t_top)
    t_top.add_argument("--top", type=int, default=10, help="rows to print")
    t_top.add_argument(
        "--by", choices=("self", "total"), default="self", help="ranking key"
    )
    t_top.add_argument(
        "--group",
        choices=("name", "path"),
        default="name",
        help="aggregate by span name or full root-to-span path",
    )

    t_tree = trace_sub.add_parser("tree", help="the span tree as indented text")
    add_trace_file(t_tree)
    t_tree.add_argument("--max-depth", type=int, help="prune below this depth")
    t_tree.add_argument(
        "--min-duration",
        type=float,
        default=0.0,
        help="hide spans shorter than this many seconds",
    )

    t_flame = trace_sub.add_parser(
        "flame", help="flamegraph collapsed stacks (frame;frame <usec>)"
    )
    add_trace_file(t_flame)

    t_profile = trace_sub.add_parser(
        "profile", help="per-phase self time and derived throughput"
    )
    add_trace_file(t_profile)

    t_diff = trace_sub.add_parser(
        "diff", help="compare two traces (exact / timing / rate categories)"
    )
    t_diff.add_argument("trace_a", help="baseline trace")
    t_diff.add_argument("trace_b", help="candidate trace")
    t_diff.add_argument(
        "--all",
        action="store_true",
        help="show every compared row, not just significant ones",
    )
    t_diff.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when significant deltas exist",
    )
    trace.set_defaults(func=_cmd_trace)

    bench = sub.add_parser(
        "bench",
        help="check a benchmark result against its rolling history baseline",
    )
    bench.add_argument(
        "--input",
        default="BENCH_campaign.json",
        help="benchmark result JSON (default: BENCH_campaign.json)",
    )
    bench.add_argument(
        "--history",
        default="benchmarks/history",
        help="history ledger directory (default: benchmarks/history)",
    )
    bench.add_argument(
        "--record",
        action="store_true",
        help="append the result to the history ledger after checking",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare against the rolling baseline (default behaviour)",
    )
    bench.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on regression instead of warning",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative change flagged as a regression (default: 0.10)",
    )
    bench.add_argument(
        "--window",
        type=int,
        default=8,
        help="history entries in the rolling baseline (default: 8)",
    )
    bench.add_argument(
        "--stamp",
        help="provenance marker stored with --record (e.g. a git SHA)",
    )
    bench.set_defaults(func=_cmd_bench)

    sweep = sub.add_parser(
        "sweep",
        help="dependability sweeps: faultload matrices with graceful degradation",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    def add_sweep_dir(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--dir",
            default="sweep",
            metavar="DIR",
            help="sweep progress directory (default: sweep)",
        )

    def add_sweep_run_options(parser: argparse.ArgumentParser) -> None:
        add_sweep_dir(parser)
        parser.add_argument(
            "--timeout",
            type=float,
            default=600.0,
            metavar="SECONDS",
            help="wall-clock budget per cell attempt (default: 600)",
        )
        parser.add_argument(
            "--cell-retries",
            type=int,
            default=2,
            metavar="N",
            help="attempts per cell before recording it as failed (default: 2)",
        )
        parser.add_argument(
            "--isolation",
            choices=["process", "inline"],
            default="process",
            help="'process' forks a crash/timeout-proof worker per cell, "
            "'inline' runs in-process (default: process)",
        )
        parser.add_argument(
            "--report",
            metavar="HTML",
            help="write the dependability report here after the sweep "
            "(JSON sibling alongside)",
        )
        parser.add_argument("--trace", help="write a JSONL span trace to this file")
        verbosity = parser.add_mutually_exclusive_group()
        verbosity.add_argument(
            "--progress",
            dest="progress",
            action="store_true",
            default=True,
            help="print per-cell progress lines (default)",
        )
        verbosity.add_argument(
            "--quiet",
            dest="progress",
            action="store_false",
            help="suppress progress lines",
        )

    s_init = sweep_sub.add_parser(
        "init", help="validate a sweep spec and initialise its directory"
    )
    s_init.add_argument(
        "spec", help="sweep spec JSON file, or 'demo' for the built-in demo sweep"
    )
    add_sweep_dir(s_init)

    s_run = sweep_sub.add_parser(
        "run", help="run every cell of a sweep spec (resumable, crash-safe)"
    )
    s_run.add_argument(
        "spec", help="sweep spec JSON file, or 'demo' for the built-in demo sweep"
    )
    add_sweep_run_options(s_run)

    s_resume = sweep_sub.add_parser(
        "resume", help="finish the unfinished cells of an interrupted sweep"
    )
    add_sweep_run_options(s_resume)

    s_report = sweep_sub.add_parser(
        "report", help="analyze a sweep directory and write its report"
    )
    add_sweep_dir(s_report)
    s_report.add_argument(
        "--out", help="output HTML file (default: sweep-report.html)"
    )
    sweep.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        code = args.func(args)
        # Flush inside the try: small outputs (`repro lint | head`) may
        # still sit in the stdio buffer, and the EPIPE would otherwise
        # surface as an unhandled error during interpreter shutdown.
        sys.stdout.flush()
        return code
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        bundle = getattr(error, "bundle_path", None)
        if bundle:
            print(f"repro bundle: {bundle}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # The reader closed stdout early (`repro trace flame | head`):
        # not an error.  Detach stdout so the interpreter's shutdown
        # flush does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Runtime physical-contract enforcement for the model stack.

The paper's claims rest on physical invariants — trap occupancy lives in
[0, 1] (Eqs. 1-4), delays and oscillation frequencies are positive
(Eqs. 5-13), recovery never overshoots the fresh device — but floating
point does not enforce them: an extreme Arrhenius exponent overflows to
``inf``, a NaN propagates silently into DataLogs and benchmark JSON.
:class:`Guard` turns those invariants into runtime contracts checked at
the hot entry points of ``bti``, ``device``, ``fpga`` and ``multicore``,
with three modes selected per campaign (``--guard-mode``):

* ``raise`` — throw :class:`~repro.errors.PhysicsViolationError`
  carrying a crash-dump *repro bundle* (offending inputs + trap-state
  ``.npz``) for offline replay;
* ``clamp`` — degrade gracefully: clamp the value into its domain,
  count ``guard.violations.*``, annotate the active obs span, and after
  a configurable violation budget hand the chip to the campaign's
  quarantine machinery so the run completes on survivors;
* ``off`` — every check is a single attribute load and branch.

The ambient default (:func:`get_guard`) is a raising guard that writes
no bundles, so library users fail fast on unphysical values without any
configuration.
"""

from repro.guard.bundle import ReproBundle, read_bundle, write_bundle
from repro.guard.contracts import (
    EXP_MAX,
    Guard,
    GuardConfig,
    GuardMode,
    get_guard,
    safe_exp,
    safe_exp_array,
    set_guard,
    use_guard,
)

__all__ = [
    "EXP_MAX",
    "Guard",
    "GuardConfig",
    "GuardMode",
    "ReproBundle",
    "get_guard",
    "read_bundle",
    "safe_exp",
    "safe_exp_array",
    "set_guard",
    "use_guard",
    "write_bundle",
]

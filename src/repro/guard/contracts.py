"""Guard modes, contract checks and the ambient guard.

A :class:`Guard` is cheap enough to consult on the model hot paths: in
``off`` mode every check is one attribute load and a branch; in the
checking modes an array contract costs two reductions (``min``/``max``
are NaN-poisoning, so a single pair of comparisons also catches NaN and
Inf) and a scalar contract costs two comparisons.  All the expensive
work — building messages, snapshotting arrays, writing bundles — lives
on the violation slow path.

Guards are not thread-safe (violation counts and budgets are per chip);
campaigns build one guard per chip, mirroring the one-tracer-per-worker
rule in :mod:`repro.obs`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.errors import (
    ChipDropoutError,
    ConfigurationError,
    PhysicsViolationError,
)
from repro.guard.bundle import write_bundle

#: Largest exponent fed to ``exp``: ``exp(709.8)`` overflows float64, so
#: clamping at 700 leaves headroom for one further multiplication before
#: a product can reach ``inf``.  Underflow on the negative side is
#: harmless (denormals, then exact 0.0).
EXP_MAX = 700.0


def safe_exp(exponent: float) -> float:
    """``exp`` with the argument clamped to :data:`EXP_MAX`.

    The guard-approved way to exponentiate an Arrhenius or field
    exponent: a huge ``Ea/kT`` saturates at a huge-but-finite rate
    instead of overflowing to ``inf`` and poisoning downstream state
    with NaN.
    """
    return math.exp(min(float(exponent), EXP_MAX))


def safe_exp_array(exponent: np.ndarray) -> np.ndarray:
    """Vectorised :func:`safe_exp` (returns a new array)."""
    return np.exp(np.minimum(exponent, EXP_MAX))


class GuardMode(enum.Enum):
    """What a tripped contract does."""

    #: Throw :class:`~repro.errors.PhysicsViolationError` with a bundle.
    RAISE = "raise"
    #: Clamp into the domain, count, annotate the span, honour the budget.
    CLAMP = "clamp"
    #: Reduce every check to a no-op (the perf path).
    OFF = "off"

    @classmethod
    def coerce(cls, value: "GuardMode | str") -> "GuardMode":
        """Accept a :class:`GuardMode` or its string name/value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            choices = ", ".join(mode.value for mode in cls)
            raise ConfigurationError(
                f"unknown guard mode {value!r} (choose from: {choices})"
            ) from None


@dataclass(frozen=True)
class GuardConfig:
    """Immutable guard policy, shared by every chip in a campaign."""

    #: What a violation does (``raise`` / ``clamp`` / ``off``).
    mode: GuardMode = GuardMode.RAISE
    #: ``clamp`` mode: violations tolerated per chip before the chip is
    #: handed to quarantine via :class:`~repro.errors.ChipDropoutError`
    #: (``None`` = unlimited).
    violation_budget: int | None = None
    #: ``raise`` mode: directory for repro bundles (``None`` = no dump).
    dump_dir: str | None = "guard-dumps"
    #: Absolute tolerance: float dust within ``atol`` of a bound is not a
    #: violation and is left untouched, so all three modes stay
    #: bit-identical on healthy runs.
    atol: float = 1e-9
    #: Ceiling for core/chamber temperatures (kelvin).
    max_temperature: float = 1000.0
    #: Ceiling for capture/emission rates (1/s); physically "instant".
    rate_cap: float = 1e300

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", GuardMode.coerce(self.mode))
        if self.violation_budget is not None and self.violation_budget < 0:
            raise ConfigurationError(
                f"violation_budget must be >= 0 or None, got "
                f"{self.violation_budget}"
            )
        if self.atol < 0.0:
            raise ConfigurationError(f"atol must be >= 0, got {self.atol}")


class Guard:
    """Per-chip contract checker (see the module docstring for modes)."""

    __slots__ = ("config", "checking", "owner", "violations", "_tracer",
                 "_counters")

    def __init__(
        self,
        config: GuardConfig | None = None,
        *,
        tracer=None,
        owner: str = "",
    ) -> None:
        from repro.obs import NULL_TRACER

        self.config = config if config is not None else GuardConfig()
        #: False only in ``off`` mode; hot paths branch on this once.
        self.checking = self.config.mode is not GuardMode.OFF
        self.owner = owner
        #: Total violations seen by this guard (all contracts).
        self.violations = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._counters: dict = {}

    @property
    def mode(self) -> GuardMode:
        """The configured :class:`GuardMode`."""
        return self.config.mode

    # -- contract checks -------------------------------------------------

    def check_array(
        self,
        contract: str,
        values: np.ndarray,
        lo: float,
        hi,
        *,
        tol: float | None = None,
        inputs: Mapping | Callable[[], Mapping] | None = None,
        arrays: Mapping | Callable[[], Mapping] | None = None,
    ) -> np.ndarray:
        """Require every element of ``values`` in ``[lo, hi]`` and finite.

        ``hi`` may be a scalar or a per-element array (e.g. the per-owner
        maximum ΔVth).  In ``clamp`` mode the array is repaired *in
        place* (NaN to ``lo``, then clipped), so callers must pass a
        writeable array.  Returns the (possibly repaired) array.
        """
        if not self.checking or values.size == 0:
            return values
        if tol is None:
            tol = self.config.atol
        if isinstance(hi, np.ndarray):
            ok = bool(np.all(values >= lo - tol)) and bool(
                np.all(values <= hi + tol)
            )
        else:
            # min/max are NaN-poisoning reductions: a single NaN makes
            # both comparisons False, so this pair also catches NaN, and
            # the strict < inf catches +inf even under an infinite bound.
            vmax = values.max()
            ok = (values.min() >= lo - tol) and (vmax <= hi + tol) and (
                vmax < math.inf
            )
        if ok:
            return values
        return self._violated(
            contract,
            message=self._array_message(contract, values, lo, hi),
            fix=lambda: _clip_array(values, lo, hi),
            inputs=inputs,
            arrays=arrays,
            fallback_arrays={"values": values},
        )

    def check_scalar(
        self,
        contract: str,
        value: float,
        lo: float = -math.inf,
        hi: float = math.inf,
        *,
        tol: float | None = None,
        clamp_lo: float | None = None,
        clamp_hi: float | None = None,
        inputs: Mapping | Callable[[], Mapping] | None = None,
        arrays: Mapping | Callable[[], Mapping] | None = None,
    ) -> float:
        """Require ``lo <= value <= hi`` (within ``tol``) and finite.

        ``clamp_lo``/``clamp_hi`` override the repair targets in
        ``clamp`` mode (default: the bounds themselves).
        """
        if not self.checking:
            return value
        if tol is None:
            tol = self.config.atol
        if lo - tol <= value <= hi + tol and math.isfinite(value):
            return value
        return self._violated(
            contract,
            message=(
                f"{contract}: value {value!r} outside [{lo:g}, {hi:g}]"
                + (f" on {self.owner}" if self.owner else "")
            ),
            fix=lambda: _clip_scalar(
                value,
                lo if clamp_lo is None else clamp_lo,
                hi if clamp_hi is None else clamp_hi,
            ),
            inputs=inputs,
            arrays=arrays,
        )

    def positive_scalar(
        self,
        contract: str,
        value: float,
        *,
        clamp_to: float = 0.0,
        inputs: Mapping | Callable[[], Mapping] | None = None,
        arrays: Mapping | Callable[[], Mapping] | None = None,
    ) -> float:
        """Require ``value`` strictly positive and finite.

        In ``clamp`` mode the repaired value is ``clamp_to`` (default
        0.0 — e.g. a dead oscillator rather than a negative frequency),
        which downstream layers already treat as a measurement failure.
        """
        if not self.checking:
            return value
        if value > 0.0 and math.isfinite(value):
            return value
        return self._violated(
            contract,
            message=(
                f"{contract}: value {value!r} is not a positive finite number"
                + (f" on {self.owner}" if self.owner else "")
            ),
            fix=lambda: clamp_to,
            inputs=inputs,
            arrays=arrays,
        )

    # -- violation slow path ---------------------------------------------

    def _array_message(self, contract, values, lo, hi) -> str:
        hi_repr = "per-element bound" if isinstance(hi, np.ndarray) else f"{hi:g}"
        nonfinite = int(np.count_nonzero(~np.isfinite(values)))
        return (
            f"{contract}: {values.size} values span "
            f"[{float(values.min()):g}, {float(values.max()):g}] "
            f"with {nonfinite} non-finite, outside [{lo:g}, {hi_repr}]"
            + (f" on {self.owner}" if self.owner else "")
        )

    def _violated(
        self,
        contract: str,
        *,
        message: str,
        fix: Callable[[], object],
        inputs,
        arrays,
        fallback_arrays: Mapping | None = None,
    ):
        if self.config.mode is GuardMode.CLAMP:
            repaired = fix()
            self._note(contract, enforce_budget=True)
            return repaired
        bundle_path = self._dump(contract, message, inputs, arrays,
                                 fallback_arrays)
        self._note(contract, enforce_budget=False)
        raise PhysicsViolationError(
            message, contract=contract, bundle_path=bundle_path
        )

    def _note(self, contract: str, *, enforce_budget: bool) -> None:
        self.violations += 1
        counter = self._counters.get(contract)
        if counter is None:
            # Deliberate dynamic family (baselined RPR007): one counter per
            # contract name, bounded by the fixed contract set.
            counter = self._tracer.counter(
                f"guard.violations.{contract}",
                f"physics contract {contract} violations",
            )
            self._counters[contract] = counter
        counter.inc()
        span = getattr(self._tracer, "current", None)
        if span is not None:
            span.incr("guard_violations")
            span.set("guard_contract", contract)
        budget = self.config.violation_budget
        if enforce_budget and budget is not None and self.violations > budget:
            raise ChipDropoutError(
                f"{self.owner or 'chip'}: guard violation budget exhausted "
                f"({self.violations} violations > budget {budget})"
            )

    def _dump(self, contract, message, inputs, arrays, fallback_arrays):
        dump_dir = self.config.dump_dir
        if dump_dir is None:
            return None
        inputs = dict(inputs() if callable(inputs) else (inputs or {}))
        arrays = dict(arrays() if callable(arrays) else (arrays or {}))
        if not arrays and fallback_arrays:
            arrays = dict(fallback_arrays)
        path = write_bundle(
            dump_dir,
            contract=contract,
            owner=self.owner,
            message=message,
            inputs=inputs,
            arrays=arrays,
        )
        return str(path)


def _clip_array(values: np.ndarray, lo: float, hi) -> np.ndarray:
    """Repair ``values`` in place into ``[lo, hi]`` (NaN becomes ``lo``)."""
    hi_fill = float(np.max(hi)) if isinstance(hi, np.ndarray) else float(hi)
    if not math.isfinite(hi_fill):
        hi_fill = lo
    np.nan_to_num(values, copy=False, nan=lo, posinf=hi_fill, neginf=lo)
    np.clip(values, lo, hi, out=values)
    return values


def _clip_scalar(value: float, lo: float, hi: float) -> float:
    """Repair a scalar into ``[lo, hi]`` (NaN becomes the lower target)."""
    if math.isnan(value):
        return lo if math.isfinite(lo) else 0.0
    if value < lo:
        return lo
    if value > hi:
        return hi
    if not math.isfinite(value):  # +/-inf inside an infinite bound
        return lo if math.isfinite(lo) else 0.0
    return float(value)


# -- ambient guard (mirrors repro.obs.get_tracer/set_tracer/use_tracer) --

#: The default policy: fail fast on unphysical values, write no bundles.
_DEFAULT_GUARD = Guard(GuardConfig(mode=GuardMode.RAISE, dump_dir=None))

_active_guard: Guard = _DEFAULT_GUARD


def get_guard() -> Guard:
    """The currently active ambient guard (raising, bundle-less default)."""
    return _active_guard


def set_guard(guard: Guard | None) -> None:
    """Install ``guard`` as the process default (``None`` resets)."""
    global _active_guard
    _active_guard = guard if guard is not None else _DEFAULT_GUARD


class use_guard:
    """Context manager installing a guard for the enclosed block::

        with use_guard(Guard(GuardConfig(mode="clamp"))) as guard:
            chip.apply_stress(...)
        print(guard.violations)
    """

    def __init__(self, guard: Guard) -> None:
        self.guard = guard
        self._previous: Guard | None = None

    def __enter__(self) -> Guard:
        self._previous = get_guard()
        set_guard(self.guard)
        return self.guard

    def __exit__(self, exc_type, exc, tb) -> None:
        set_guard(self._previous)

"""Crash-dump repro bundles for physics-contract violations.

When a guard in ``raise`` mode trips, it writes the offending inputs and
the relevant model arrays (trap state, rate arrays, bias waveform) to a
bundle directory before throwing, so the violation can be replayed
offline long after the campaign process is gone::

    bundle = read_bundle(err.bundle_path)
    occupancy = bundle.arrays["occupancy"]   # the out-of-domain state
    bundle.inputs["temperature"]             # the knobs that produced it

Bundle directories are named deterministically from the contract, the
owning chip and a sequence number — never from the wall clock — so a
replayed campaign produces byte-identical bundle paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: Upper bound on same-name bundles before the writer reuses the last slot.
_MAX_SEQUENCE = 1000


def _jsonable(value):
    """JSON fallback: numpy scalars to Python, everything else to str."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


@dataclass(frozen=True)
class ReproBundle:
    """A violation bundle read back from disk (see :func:`read_bundle`)."""

    path: Path
    contract: str
    owner: str
    message: str
    inputs: dict
    arrays: dict = field(default_factory=dict)


def write_bundle(
    dump_dir: str | Path,
    *,
    contract: str,
    owner: str = "",
    message: str = "",
    inputs: dict | None = None,
    arrays: dict | None = None,
) -> Path:
    """Write a violation bundle and return its directory.

    The bundle is a directory ``<contract>-<owner>-<seq>/`` holding
    ``violation.json`` (contract, owner, message, scalar inputs) and,
    when ``arrays`` is non-empty, ``state.npz`` with the model arrays.
    ``seq`` is the first free sequence number, probed with exclusive
    directory creation so concurrent workers never collide.
    """
    root = Path(dump_dir)
    root.mkdir(parents=True, exist_ok=True)
    slug = "-".join(part for part in (contract.replace(".", "-"), owner) if part)
    path = root / f"{slug}-{_MAX_SEQUENCE - 1:03d}"
    for seq in range(_MAX_SEQUENCE):
        candidate = root / f"{slug}-{seq:03d}"
        try:
            candidate.mkdir(exist_ok=False)
        except FileExistsError:
            continue
        path = candidate
        break
    arrays = {key: np.asarray(value) for key, value in (arrays or {}).items()}
    meta = {
        "contract": contract,
        "owner": owner,
        "message": message,
        "inputs": dict(inputs or {}),
        "arrays": sorted(arrays),
    }
    (path / "violation.json").write_text(
        json.dumps(meta, indent=2, sort_keys=True, default=_jsonable) + "\n"
    )
    if arrays:
        with open(path / "state.npz", "wb") as handle:
            np.savez(handle, **arrays)
    return path


def read_bundle(path: str | Path) -> ReproBundle:
    """Load a bundle written by :func:`write_bundle` for replay."""
    path = Path(path)
    meta = json.loads((path / "violation.json").read_text())
    arrays: dict = {}
    npz = path / "state.npz"
    if npz.exists():
        with np.load(npz) as data:
            arrays = {key: data[key].copy() for key in data.files}
    return ReproBundle(
        path=path,
        contract=str(meta.get("contract", "")),
        owner=str(meta.get("owner", "")),
        message=str(meta.get("message", "")),
        inputs=dict(meta.get("inputs", {})),
        arrays=arrays,
    )

"""Statistical aging prediction across device populations.

The TD model the paper builds on (Velamala et al., DAC 2012: "Physics
Matters: Statistical Aging Prediction under Trapping/Detrapping") is
fundamentally statistical: small devices hold a handful of traps, so two
identical transistors age differently and the *distribution* of dVth —
not just its mean — sets the design margin.  This module provides the
population view:

* :func:`sample_device_shifts` — Monte Carlo dVth samples across device
  instances after an arbitrary bias schedule;
* :func:`shift_statistics` — mean/sigma/quantiles of the population;
* :func:`margin_at_quantile` — the guardband needed to cover a given
  fraction of devices (3-sigma-style margining);
* :func:`sigma_mu_relation` — how relative variability falls with device
  size (trap count), the hallmark TD-statistics result.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.bti.conditions import BiasPhase
from repro.bti.traps import TrapParameters, TrapPopulation
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ShiftStatistics:
    """Population statistics of device threshold shifts (volts)."""

    n_devices: int
    mean: float
    std: float
    quantiles: dict[float, float]

    @property
    def relative_sigma(self) -> float:
        """sigma/mu — the relative variability of the population."""
        # Exact sentinel: a literally unstressed population reduces to
        # mean 0.0 with no rounding; near-zero means legitimately blow
        # up sigma/mu and must not be masked.
        if self.mean == 0.0:  # repro: noqa[RPR003]
            return float("nan")
        return self.std / self.mean


def sample_device_shifts(
    phases: list[BiasPhase],
    n_devices: int,
    params: TrapParameters | None = None,
    rng: np.random.Generator | int | None = None,
    stochastic: bool = True,
) -> np.ndarray:
    """Per-device dVth after running ``phases`` on ``n_devices`` devices.

    Each device gets its own trap draw (count, time constants, impacts).
    With ``stochastic=True`` trap occupancies are additionally Bernoulli
    sampled at readout — the full statistical picture; with ``False`` the
    expected (mean-field) shift per device is returned, isolating the
    draw-to-draw variability.
    """
    if n_devices <= 0:
        raise ConfigurationError(f"n_devices must be positive, got {n_devices}")
    if not phases:
        raise ConfigurationError("at least one bias phase is required")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    population = TrapPopulation(params or TrapParameters(), n_owners=n_devices, rng=rng)
    for phase in phases:
        population.evolve_phase(phase)
    if stochastic:
        return population.sample_delta_vth(rng)
    return population.delta_vth()


def shift_statistics(
    shifts: np.ndarray, quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)
) -> ShiftStatistics:
    """Reduce a population of shifts to its margin-relevant statistics."""
    shifts = np.asarray(shifts, dtype=float)
    if shifts.ndim != 1 or shifts.size == 0:
        raise ConfigurationError("shifts must be a non-empty 1-D array")
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile {q} outside [0, 1]")
    return ShiftStatistics(
        n_devices=shifts.size,
        mean=float(shifts.mean()),
        std=float(shifts.std(ddof=1)) if shifts.size > 1 else 0.0,
        quantiles={q: float(np.quantile(shifts, q)) for q in quantiles},
    )


def margin_at_quantile(shifts: np.ndarray, coverage: float = 0.99) -> float:
    """Guardband (volts) covering ``coverage`` of the device population.

    Designing for the mean leaves half the devices out of margin; the
    paper's motivation — margins keep growing with variability — is this
    number's growth over the mean.
    """
    if not 0.0 < coverage < 1.0:
        raise ConfigurationError(f"coverage must be in (0, 1), got {coverage}")
    shifts = np.asarray(shifts, dtype=float)
    if shifts.ndim != 1 or shifts.size == 0:
        raise ConfigurationError("shifts must be a non-empty 1-D array")
    return float(np.quantile(shifts, coverage))


def sigma_mu_relation(
    phases: list[BiasPhase],
    trap_counts: tuple[float, ...] = (10.0, 40.0, 160.0),
    n_devices: int = 400,
    params: TrapParameters | None = None,
    rng: np.random.Generator | int | None = 0,
) -> dict[float, float]:
    """Relative sigma vs device size (mean trap count).

    For independent traps, sigma/mu falls like 1/sqrt(N): scaled-down
    devices (fewer traps) age *less predictably*, which is why statistical
    aging prediction matters more at every new node.  Returns
    ``{trap_count: sigma/mu}``.
    """
    base = params or TrapParameters()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    relation: dict[float, float] = {}
    for count in trap_counts:
        scaled = replace(base, mean_trap_count=count)
        shifts = sample_device_shifts(
            phases, n_devices, params=scaled, rng=rng.spawn(1)[0]
        )
        stats = shift_statistics(shifts)
        relation[count] = stats.relative_sigma
    return relation

"""Capture/emission-time (CET) analysis: trap spectroscopy.

The TD literature characterises BTI with CET maps — the joint density of
trap capture and emission time constants — and extracts emission spectra
from measured recovery transients (the log-time derivative of recovered
delay picks out the traps emitting at each timescale).  This module
provides both views:

* :func:`cet_map` — the *oracle* view: a 2-D impact-weighted histogram of
  the population's effective (tau_c, tau_e) at given conditions;
* :func:`emission_spectrum` — the *measured* view: d(RD)/d(log t) from a
  recovery series, the spectral density of whatever emitted;
* :func:`occupied_emission_histogram` — the oracle prediction of that
  spectrum, for validation.

Together they close the loop: the spectrum recovered from the virtual
lab's measurements matches the trap population that generated them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bti.conditions import BiasCondition
from repro.bti.traps import TrapPopulation
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CetMap:
    """Impact-weighted joint histogram of effective time constants.

    ``density[i, j]`` is the summed dVth impact of traps whose effective
    capture time falls in bin i and effective emission time in bin j
    (log10-spaced edges).
    """

    capture_edges: np.ndarray
    emission_edges: np.ndarray
    density: np.ndarray

    @property
    def total_impact(self) -> float:
        """Total dVth impact represented by the map (volts)."""
        return float(self.density.sum())

    def marginal_emission(self) -> np.ndarray:
        """Impact per emission-time decade bin (sums over capture)."""
        return self.density.sum(axis=0)


def _effective_taus(
    population: TrapPopulation, condition: BiasCondition
) -> tuple[np.ndarray, np.ndarray]:
    """Per-trap effective (tau_c, tau_e) at a bias point."""
    voltage = population._expand(condition.stress_voltage)
    capture, emission = population._rates(voltage, condition.temperature)
    return 1.0 / capture, 1.0 / emission


def cet_map(
    population: TrapPopulation,
    condition: BiasCondition,
    n_bins: int = 24,
    bounds_decades: tuple[float, float] = (-2.0, 12.0),
) -> CetMap:
    """Build the population's CET map at a bias/temperature point."""
    if n_bins <= 1:
        raise ConfigurationError("n_bins must exceed 1")
    lo, hi = bounds_decades
    if lo >= hi:
        raise ConfigurationError("bounds_decades must be ordered")
    tau_c, tau_e = _effective_taus(population, condition)
    edges = np.linspace(lo, hi, n_bins + 1)
    density, __, __ = np.histogram2d(
        np.clip(np.log10(tau_c), lo, hi),
        np.clip(np.log10(tau_e), lo, hi),
        bins=[edges, edges],
        weights=population.impact,
    )
    return CetMap(capture_edges=edges, emission_edges=edges, density=density)


@dataclass(frozen=True)
class EmissionSpectrum:
    """Spectral density of recovery: impact emitted per log-time decade."""

    log10_time_centers: np.ndarray
    density: np.ndarray

    @property
    def peak_decade(self) -> float:
        """log10(seconds) where the strongest emission activity sits."""
        return float(self.log10_time_centers[int(np.argmax(self.density))])


def emission_spectrum(times, recovered) -> EmissionSpectrum:
    """d(RD)/d(log10 t) from a measured recovery transient.

    ``times`` are seconds since stress removal (strictly positive after
    the first sample), ``recovered`` the recovered-delay series RD(t).
    Each finite-difference slope is the impact emitted in that log-time
    interval per decade — the standard recovery-spectroscopy estimator.
    """
    times = np.asarray(times, dtype=float)
    recovered = np.asarray(recovered, dtype=float)
    if times.shape != recovered.shape or times.ndim != 1:
        raise ConfigurationError("times and recovered must be matching 1-D arrays")
    positive = times > 0.0
    times = times[positive]
    recovered = recovered[positive]
    if times.size < 3:
        raise ConfigurationError("need at least three positive-time samples")
    log_t = np.log10(times)
    slopes = np.diff(recovered) / np.diff(log_t)
    centers = 0.5 * (log_t[:-1] + log_t[1:])
    return EmissionSpectrum(log10_time_centers=centers, density=slopes)


def occupied_emission_histogram(
    population: TrapPopulation,
    condition: BiasCondition,
    edges_log10: np.ndarray,
) -> np.ndarray:
    """Oracle prediction of the emission spectrum's integral per bin.

    Sums occupancy-weighted impact of traps whose *effective emission
    time at the recovery condition* falls in each bin — what a perfect
    recovery transient would emit in that log-time window.
    """
    edges_log10 = np.asarray(edges_log10, dtype=float)
    if edges_log10.ndim != 1 or edges_log10.size < 2:
        raise ConfigurationError("edges_log10 must hold at least two edges")
    __, tau_e = _effective_taus(population, condition)
    weights = population.occupancy * population.impact
    histogram, __ = np.histogram(np.log10(tau_e), bins=edges_log10, weights=weights)
    return histogram

"""Temperature and field acceleration factors shared by the BTI models.

Both the trap ensemble and the paper's first-order closed forms scale their
rates with temperature (Arrhenius) and gate overdrive (exponential field
dependence); keeping the two factors here guarantees the models agree on
what "110 degC" or "-0.3 V" means.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.guard import safe_exp
from repro.units import BOLTZMANN_EV


def arrhenius_factor(
    activation_energy_ev: float, temperature: float, reference_temperature: float
) -> float:
    """Rate multiplier for a thermally activated process.

    Returns ``exp(-Ea/k * (1/T - 1/Tref))`` — the factor by which a rate
    with activation energy ``activation_energy_ev`` (eV) speeds up when the
    temperature moves from ``reference_temperature`` to ``temperature``
    (both kelvin).  The factor is 1.0 at the reference temperature and
    greater than 1.0 above it for positive activation energies.
    """
    if temperature <= 0.0 or reference_temperature <= 0.0:
        raise ConfigurationError("temperatures must be positive kelvin values")
    exponent = (-activation_energy_ev / BOLTZMANN_EV) * (
        1.0 / temperature - 1.0 / reference_temperature
    )
    # As T -> 0 K the exponent diverges (|Ea|/kT ~ 1e4 already at 1 K);
    # saturate instead of overflowing to inf.  Underflow to 0.0 on the
    # cold side of a positive-Ea process is the physically right limit.
    return safe_exp(exponent)


def field_factor(gamma_per_volt: float, voltage: float, reference_voltage: float) -> float:
    """Rate multiplier for an exponential field-accelerated process.

    Returns ``exp(gamma * (V - Vref))``.  ``gamma_per_volt`` expresses how
    strongly the process (trap capture, trap emission) responds to the gate
    overdrive along the stressing polarity; see
    :class:`repro.bti.conditions.BiasCondition` for the sign convention.
    """
    return safe_exp(gamma_per_volt * (voltage - reference_voltage))

"""Struct-of-arrays trap engine: one ``evolve`` call ages a wafer lot.

:class:`TrapPopulation` simulates one chip's traps; campaigns over many
chips pay the full numpy dispatch and guard overhead once per chip per
chunk.  This module batches the same physics across chips:

* :class:`FleetTraps` — the *exact* engine.  Per-chip trap arrays (drawn
  with :func:`draw_population`, stream-identical to
  ``TrapPopulation.__init__``) are concatenated into flat struct-of-arrays
  state with a global owner index, so one elementwise update advances
  every trap of every chip.  Because the update is elementwise and numpy
  elementwise kernels are value-identical across slicing/concatenation,
  the exact engine is bit-identical to evolving each chip's
  :class:`TrapPopulation` on its own — the fleet facade-equivalence
  contract (see ``tests/fleet``).

* :class:`BinnedFleetTraps` — the *population-scale* engine.  Each chip's
  traps are quantised onto a shared log-log (tau_c, tau_e) grid per
  bias-class (owners whose voltage history is identical in every phase
  pool their traps), so occupancy state shrinks from ~43k traps to a few
  thousand cells per chip and the whole lot evolves as one
  ``(n_chips, n_cells)`` array.  Tau quantisation (default 3 bins per
  decade, a <15 % rounding of log-uniformly drawn constants) is the only
  approximation; it is statistically invisible in population
  distributions but *not* bit-identical to the exact engine — use it for
  10k-chip fleets, never for bit-identity checks.

Both engines share the Arrhenius/field-acceleration rate model of
:class:`TrapPopulation` verbatim.  The exact engine computes the scalar
Arrhenius factors with ``safe_exp`` (``math.exp``) per chip, exactly as
the scalar path does — ``np.exp`` differs from ``math.exp`` by one ULP on
~4 % of inputs, which would silently break bit-identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bti.traps import TrapParameters, _log_uniform
from repro.errors import ConfigurationError
from repro.guard import get_guard, safe_exp, safe_exp_array
from repro.units import BOLTZMANN_EV


@dataclass(frozen=True)
class TrapDraws:
    """One chip-population's frozen random draws (no mutable state).

    Drawn by :func:`draw_population` in exactly the order
    ``TrapPopulation.__init__`` consumes its generator, so a fleet built
    from the same child streams holds bit-identical trap constants.
    """

    owner: np.ndarray
    tau_c0: np.ndarray
    tau_e0: np.ndarray
    impact: np.ndarray

    @property
    def n_traps(self) -> int:
        return self.owner.size


def draw_population(
    params: TrapParameters, n_owners: int, rng: np.random.Generator
) -> TrapDraws:
    """Draw one population's constants, stream-identical to ``TrapPopulation``."""
    counts = rng.poisson(params.mean_trap_count, size=n_owners)
    owner = np.repeat(np.arange(n_owners), counts)
    n_traps = int(counts.sum())
    tau_c0 = _log_uniform(rng, params.tau_capture_bounds, n_traps)
    tau_e0 = _log_uniform(rng, params.tau_emission_bounds, n_traps)
    impact = rng.exponential(params.impact_mean_volts, size=n_traps)
    return TrapDraws(owner=owner, tau_c0=tau_c0, tau_e0=tau_e0, impact=impact)


def _arrhenius_factors(
    params: TrapParameters, temperatures: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-chip scalar Arrhenius factors, one ``safe_exp`` pair per chip.

    Scalar ``math.exp`` on purpose: the single-chip path uses it, and
    bit-identity of the exact engine hinges on matching it exactly.
    """
    arr_c = np.empty(temperatures.size)
    arr_e = np.empty(temperatures.size)
    inv_kt_ref = 1.0 / (BOLTZMANN_EV * params.reference_temperature)
    for index, temperature in enumerate(temperatures):
        inv_kt = 1.0 / (BOLTZMANN_EV * float(temperature))
        arr_c[index] = safe_exp(-params.ea_capture_ev * (inv_kt - inv_kt_ref))
        arr_e[index] = safe_exp(-params.ea_emission_ev * (inv_kt - inv_kt_ref))
    return arr_c, arr_e


@dataclass(frozen=True)
class FleetCyclePhase:
    """One leg of a repeating fleet schedule (``evolve_cycles`` terms).

    Voltages are per-chip-per-owner matrices of the sub-fleet the cycles
    run on; the phase is piecewise constant, so the batched update is the
    same exact affine map as the single-chip closed form.
    """

    duration: float
    v_stress: np.ndarray
    temperatures: np.ndarray
    duty: float = 1.0
    v_relax: np.ndarray | None = None


class FleetTraps:
    """Exact struct-of-arrays ensemble: N same-netlist chips, one polarity.

    Parameters
    ----------
    params:
        Shared :class:`TrapParameters` (all chips are the same process).
    n_owners:
        Owners *per chip* for this polarity.
    draws:
        One :class:`TrapDraws` per chip, in fleet order.
    guard:
        Contract checker for the batched updates; defaults to the
        ambient guard.  Per-call override via the ``guard=`` argument of
        the evolve methods keeps per-chip budgets possible through the
        :class:`~repro.fpga.fleet.ChipView` facade.
    """

    def __init__(
        self,
        params: TrapParameters,
        n_owners: int,
        draws: Sequence[TrapDraws],
        guard=None,
    ) -> None:
        if n_owners <= 0:
            raise ConfigurationError(f"n_owners must be positive, got {n_owners}")
        if not draws:
            raise ConfigurationError("a fleet needs at least one chip")
        self.params = params
        self.n_owners = n_owners
        self.n_chips = len(draws)
        trap_counts = np.array([d.n_traps for d in draws], dtype=np.int64)
        self.trap_counts = trap_counts
        #: trap_offsets[i]:trap_offsets[i+1] is chip i's span in the flat arrays.
        self.trap_offsets = np.concatenate(([0], np.cumsum(trap_counts)))
        self.owner_global = np.concatenate(
            [d.owner + index * n_owners for index, d in enumerate(draws)]
        )
        tau_c0 = np.concatenate([d.tau_c0 for d in draws])
        tau_e0 = np.concatenate([d.tau_e0 for d in draws])
        self.impact = np.concatenate([d.impact for d in draws])
        self._inv_tau_c0 = 1.0 / tau_c0
        self._inv_tau_e0 = 1.0 / tau_e0
        n_total = int(trap_counts.sum())
        self.occupancy = np.zeros(n_total)
        #: Per-chip simulated seconds, advanced exactly like
        #: ``TrapPopulation.elapsed`` (same scalar additions, same order).
        self.elapsed = np.zeros(self.n_chips)
        self._scratch_total = np.empty(n_total)
        self._scratch_pinf = np.empty(n_total)
        self._scratch_weights = np.empty(n_total)
        self._guard = guard if guard is not None else get_guard()

    # ------------------------------------------------------------------ #
    # spans
    # ------------------------------------------------------------------ #

    @property
    def n_traps(self) -> int:
        """Total trap count across the whole fleet."""
        return self.owner_global.size

    def _span(self, chips: slice) -> tuple[slice, int, int]:
        """(trap span, first chip, chip count) of a contiguous chip slice."""
        lo, hi, step = chips.indices(self.n_chips)
        if step != 1 or hi <= lo:
            raise ConfigurationError("fleet chip slices must be contiguous and non-empty")
        return slice(int(self.trap_offsets[lo]), int(self.trap_offsets[hi])), lo, hi - lo

    def _gather_index(self, trap_span: slice, lo: int) -> np.ndarray:
        """Owner-gather index local to a chip span's flat owner block."""
        if lo == 0:
            return self.owner_global[trap_span]
        return self.owner_global[trap_span] - lo * self.n_owners

    # ------------------------------------------------------------------ #
    # physics
    # ------------------------------------------------------------------ #

    def _base_rates(
        self, v_owner_flat: np.ndarray, trap_span: slice, lo: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Temperature-free rate bases, op-for-op the scalar ``_base_rates``.

        ``v_owner_flat`` is the raveled ``(k, n_owners)`` voltage block of
        the span.  The voltage factor is computed at owner resolution and
        expanded by gather, exactly like the single-chip path (which is
        what makes the result bit-identical to per-chip evaluation).
        """
        p = self.params
        vfac_c = safe_exp_array(
            p.gamma_capture_per_volt * (v_owner_flat - p.reference_stress_voltage)
        )
        vfac_e = safe_exp_array(
            -p.gamma_emission_per_volt * (v_owner_flat - p.reference_recovery_voltage)
        )
        gather = self._gather_index(trap_span, lo)
        base_c = self._inv_tau_c0[trap_span] * vfac_c[gather]
        base_e = self._inv_tau_e0[trap_span] * vfac_e[gather]
        return base_c, base_e

    def _effective_rates(
        self,
        v_stress: np.ndarray,
        temperatures: np.ndarray,
        duty: float,
        v_relax: np.ndarray | None,
        trap_span: slice,
        lo: int,
        guard,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Duty-averaged per-trap rates for a contiguous chip span."""
        base_c, base_e = self._base_rates(np.ravel(v_stress), trap_span, lo)
        if duty >= 1.0:
            comb_c, comb_e = base_c, base_e
        else:
            relax = (
                np.zeros_like(v_stress) if v_relax is None else np.asarray(v_relax)
            )
            relax_c, relax_e = self._base_rates(np.ravel(relax), trap_span, lo)
            suppression = self.params.ac_capture_suppression ** (1.0 - duty)
            comb_c = duty * suppression * base_c + (1.0 - duty) * relax_c
            comb_e = duty * base_e + (1.0 - duty) * relax_e
        arr_c, arr_e = _arrhenius_factors(self.params, temperatures)
        counts = self.trap_counts[lo : lo + temperatures.size]
        capture = comb_c * np.repeat(arr_c, counts)
        emission = comb_e * np.repeat(arr_e, counts)
        if guard.checking:
            rate_cap = guard.config.rate_cap
            inputs = {"duty": float(duty), "fleet_chips": int(temperatures.size)}
            capture = guard.check_array("bti.rate", capture, 0.0, rate_cap, inputs=inputs)
            emission = guard.check_array("bti.rate", emission, 0.0, rate_cap, inputs=inputs)
        return capture, emission

    def evolve(
        self,
        duration: float,
        v_stress: np.ndarray,
        temperatures: np.ndarray,
        duty: float = 1.0,
        v_relax: np.ndarray | None = None,
        chips: slice = slice(None),
        guard=None,
    ) -> None:
        """Advance every trap of a chip span through one phase.

        ``v_stress`` / ``v_relax`` are ``(k, n_owners)`` per-chip voltage
        patterns and ``temperatures`` the per-chip delivered kelvin.  The
        update sequence mirrors ``TrapPopulation.evolve`` operation for
        operation (scratch buffers included), so each chip's occupancy
        row is bit-identical to evolving it alone.
        """
        if duration < 0.0:
            raise ConfigurationError(f"duration must be non-negative, got {duration}")
        if not 0.0 <= duty <= 1.0:
            raise ConfigurationError(f"duty must be within [0, 1], got {duty}")
        if duration <= 0.0:
            return
        guard = guard if guard is not None else self._guard
        trap_span, lo, k = self._span(chips)
        temperatures = np.asarray(temperatures, dtype=float)
        if temperatures.shape != (k,):
            raise ConfigurationError(
                f"temperatures must have shape ({k},), got {temperatures.shape}"
            )
        capture, emission = self._effective_rates(
            v_stress, temperatures, duty, v_relax, trap_span, lo, guard
        )
        total = np.add(capture, emission, out=self._scratch_total[trap_span])
        p_inf = np.divide(capture, total, out=self._scratch_pinf[trap_span])
        np.multiply(total, -duration, out=total)
        # total = -(capture+emission)*duration <= 0: underflow-only, safe.
        decay = np.exp(total, out=total)  # repro: noqa[RPR006]
        occupancy = self.occupancy[trap_span]
        np.subtract(occupancy, p_inf, out=occupancy)
        np.multiply(occupancy, decay, out=occupancy)
        np.add(occupancy, p_inf, out=occupancy)
        self.elapsed[lo : lo + k] += duration
        if guard.checking:
            guard.check_array(
                "bti.occupancy",
                occupancy,
                0.0,
                1.0,
                inputs=lambda: {
                    "op": "fleet.evolve",
                    "duration": float(duration),
                    "duty": float(duty),
                    "fleet_chips": int(k),
                },
                arrays=lambda: {
                    "occupancy": occupancy,
                    "temperatures": temperatures,
                },
            )

    def evolve_cycles(
        self, phases: Sequence[FleetCyclePhase], n: int, chips: slice = slice(None), guard=None
    ) -> None:
        """``n`` repetitions of a fixed phase sequence, O(1) in ``n``.

        Same affine-composition closed form as
        ``TrapPopulation.evolve_cycles``, evaluated on the batched
        arrays; per-chip rows are bit-identical to the single-chip path.
        """
        if n < 0:
            raise ConfigurationError(f"cycle count must be non-negative, got {n}")
        if not phases:
            raise ConfigurationError("evolve_cycles needs at least one phase")
        if n == 0:
            return
        guard = guard if guard is not None else self._guard
        trap_span, lo, k = self._span(chips)
        n_span = trap_span.stop - trap_span.start
        exponent = np.zeros(n_span)
        offset = np.zeros(n_span)
        period = 0.0
        for phase in phases:
            period += phase.duration
            if phase.duration <= 0.0:
                continue
            capture, emission = self._effective_rates(
                phase.v_stress,
                np.asarray(phase.temperatures, dtype=float),
                phase.duty,
                phase.v_relax,
                trap_span,
                lo,
                guard,
            )
            total = capture + emission
            x = total * phase.duration
            # x >= 0, so exp(-x) <= 1: underflow-only, safe.
            offset = offset * np.exp(-x) + (capture / total) * -np.expm1(-x)  # repro: noqa[RPR006]
            exponent = exponent + x
        one_minus_ac = -np.expm1(-exponent)
        ratio = np.where(
            one_minus_ac > 0.0,
            -np.expm1(-n * exponent) / np.where(one_minus_ac > 0.0, one_minus_ac, 1.0),
            float(n),
        )
        # exponent >= 0 and n >= 1, so exp(-n*exponent) <= 1: safe.
        self.occupancy[trap_span] = (
            np.exp(-n * exponent) * self.occupancy[trap_span] + offset * ratio  # repro: noqa[RPR006]
        )
        self.elapsed[lo : lo + k] += n * period
        if guard.checking:
            guard.check_array(
                "bti.occupancy",
                self.occupancy[trap_span],
                0.0,
                1.0,
                inputs=lambda: {
                    "op": "fleet.evolve_cycles",
                    "n": int(n),
                    "period": float(period),
                    "fleet_chips": int(k),
                },
            )

    # ------------------------------------------------------------------ #
    # observables / state
    # ------------------------------------------------------------------ #

    def delta_vth(self, chips: slice = slice(None)) -> np.ndarray:
        """Per-chip per-owner expected threshold shift, ``(k, n_owners)``.

        One bincount over the span's traps; row ``i`` is bit-identical to
        ``TrapPopulation.delta_vth`` on chip ``lo + i`` alone.
        """
        trap_span, lo, k = self._span(chips)
        weights = np.multiply(
            self.occupancy[trap_span],
            self.impact[trap_span],
            out=self._scratch_weights[trap_span],
        )
        counts = np.bincount(
            self._gather_index(trap_span, lo),
            weights=weights,
            minlength=k * self.n_owners,
        )
        return counts.reshape(k, self.n_owners)

    def max_delta_vth(self, chips: slice = slice(None)) -> np.ndarray:
        """Per-chip per-owner ceiling on :meth:`delta_vth` (all traps occupied)."""
        trap_span, lo, k = self._span(chips)
        counts = np.bincount(
            self._gather_index(trap_span, lo),
            weights=self.impact[trap_span],
            minlength=k * self.n_owners,
        )
        return counts.reshape(k, self.n_owners)

    def occupancy_row(self, index: int) -> np.ndarray:
        """Copy of one chip's occupancy slice (checkpoint/export form)."""
        span = slice(int(self.trap_offsets[index]), int(self.trap_offsets[index + 1]))
        return self.occupancy[span].copy()

    def set_occupancy_row(self, index: int, occupancy: np.ndarray, elapsed: float) -> None:
        """Restore one chip's occupancy slice (checkpoint/import form)."""
        span = slice(int(self.trap_offsets[index]), int(self.trap_offsets[index + 1]))
        occupancy = np.asarray(occupancy, dtype=float)
        if occupancy.shape != (span.stop - span.start,):
            raise ConfigurationError("snapshot does not match this fleet population")
        self.occupancy[span] = occupancy
        self.elapsed[index] = float(elapsed)

    def inject_upset(self, index: int, value: float, n_traps: int = 64) -> None:
        """Fault-injection hook: corrupt the head of one chip's trap span."""
        start = int(self.trap_offsets[index])
        count = min(int(n_traps), int(self.trap_counts[index]))
        self.occupancy[start : start + count] = value


# ---------------------------------------------------------------------- #
# population-scale (binned) engine
# ---------------------------------------------------------------------- #


class TrapGrid:
    """Shared log-log (tau_c, tau_e) x bias-class grid for one polarity.

    The grid covers exactly the draw bounds of ``params`` (draws are
    log-uniform inside them by construction).  A cell's representative
    time constants are the geometric centres of its bin; quantising a
    trap onto its cell moves each tau by at most half a bin width.
    """

    def __init__(
        self, params: TrapParameters, n_classes: int, bins_per_decade: float = 3.0
    ) -> None:
        if n_classes <= 0:
            raise ConfigurationError(f"n_classes must be positive, got {n_classes}")
        if bins_per_decade <= 0.0:
            raise ConfigurationError("bins_per_decade must be positive")
        self.params = params
        self.n_classes = n_classes
        self.bins_per_decade = bins_per_decade
        self._log_lo_c, self._n_c, centres_c = self._axis(params.tau_capture_bounds)
        self._log_lo_e, self._n_e, centres_e = self._axis(params.tau_emission_bounds)
        per_class = self._n_c * self._n_e
        self.n_cells = n_classes * per_class
        # Representative rates, tiled (class, tau_c, tau_e) row-major.
        inv_c = np.repeat(1.0 / centres_c, self._n_e)
        inv_e = np.tile(1.0 / centres_e, self._n_c)
        self.inv_tau_c = np.tile(inv_c, n_classes)
        self.inv_tau_e = np.tile(inv_e, n_classes)
        self.class_of_cell = np.repeat(np.arange(n_classes), per_class)

    def _axis(self, bounds: tuple[float, float]) -> tuple[float, int, np.ndarray]:
        lo, hi = bounds
        decades = np.log10(hi) - np.log10(lo)
        n_bins = max(1, int(np.ceil(decades * self.bins_per_decade)))
        width = decades / n_bins
        centres = 10.0 ** (np.log10(lo) + (np.arange(n_bins) + 0.5) * width)
        return np.log10(lo), n_bins, centres

    def cell_ids(
        self, draws: TrapDraws, class_of_owner: np.ndarray
    ) -> np.ndarray:
        """Cell index of every trap in ``draws`` (for weight accumulation)."""
        decades_c = np.log10(self.params.tau_capture_bounds[1]) - self._log_lo_c
        decades_e = np.log10(self.params.tau_emission_bounds[1]) - self._log_lo_e
        ic = np.floor(
            (np.log10(draws.tau_c0) - self._log_lo_c) / decades_c * self._n_c
        ).astype(np.int64)
        ie = np.floor(
            (np.log10(draws.tau_e0) - self._log_lo_e) / decades_e * self._n_e
        ).astype(np.int64)
        np.clip(ic, 0, self._n_c - 1, out=ic)
        np.clip(ie, 0, self._n_e - 1, out=ie)
        cls = class_of_owner[draws.owner]
        return (cls * self._n_c + ic) * self._n_e + ie


class BinnedFleetTraps:
    """Quantised-ensemble fleet state: ``(n_chips, n_cells)`` occupancy.

    Each chip contributes per-cell *readout weights* (sums of
    impact x delay-sensitivity over the traps that landed in the cell),
    so the chip-level observable collapses to one dot product per chip.
    Rates are computed per (chip, bias-class) and gathered per cell —
    the same Arrhenius/field model as the exact engine, evaluated at the
    cell's representative time constants.
    """

    def __init__(
        self,
        grid: TrapGrid,
        n_chips: int,
        dtype=np.float32,
        guard=None,
    ) -> None:
        if n_chips <= 0:
            raise ConfigurationError(f"n_chips must be positive, got {n_chips}")
        self.grid = grid
        self.n_chips = n_chips
        self.dtype = np.dtype(dtype)
        self.occupancy = np.zeros((n_chips, grid.n_cells), dtype=self.dtype)
        self.readout_weight = np.zeros((n_chips, grid.n_cells), dtype=self.dtype)
        self.elapsed = np.zeros(n_chips)
        self._inv_c = grid.inv_tau_c.astype(self.dtype)
        self._inv_e = grid.inv_tau_e.astype(self.dtype)
        self._guard = guard if guard is not None else get_guard()
        shape = (n_chips, grid.n_cells)
        self._b_rc = np.empty(shape, dtype=self.dtype)
        self._b_re = np.empty(shape, dtype=self.dtype)
        self._b_tmp = np.empty(shape, dtype=self.dtype)
        self._b_tmp2 = np.empty(shape, dtype=self.dtype)

    def add_chip(
        self, index: int, draws: TrapDraws, class_of_owner: np.ndarray, owner_weight: np.ndarray
    ) -> None:
        """Bin one chip's draws: readout weight = impact x owner sensitivity."""
        cells = self.grid.cell_ids(draws, class_of_owner)
        weights = draws.impact * owner_weight[draws.owner]
        row = np.bincount(cells, weights=weights, minlength=self.grid.n_cells)
        self.readout_weight[index] = row.astype(self.dtype)

    def _class_factors(
        self, v_class: np.ndarray, arr_c: np.ndarray, arr_e: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(chip, class) capture/emission factors for a class-voltage matrix."""
        p = self.grid.params
        fac_c = safe_exp_array(
            p.gamma_capture_per_volt * (v_class - p.reference_stress_voltage)
        ) * arr_c[:, None]
        fac_e = safe_exp_array(
            -p.gamma_emission_per_volt * (v_class - p.reference_recovery_voltage)
        ) * arr_e[:, None]
        return fac_c.astype(self.dtype), fac_e.astype(self.dtype)

    def _rates_into(
        self,
        fac_c: np.ndarray,
        fac_e: np.ndarray,
        rc: np.ndarray,
        re: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Expand class factors to per-cell rates, one pass per class.

        Cells are laid out class-major (``class_of_cell`` is a repeat of
        ``arange(n_classes)``), so the gather collapses to a broadcast
        multiply per contiguous class segment — no index arrays.
        """
        per_class = self.grid.n_cells // self.grid.n_classes
        for class_index in range(self.grid.n_classes):
            seg = slice(class_index * per_class, (class_index + 1) * per_class)
            np.multiply(
                self._inv_c[seg], fac_c[:, class_index : class_index + 1], out=rc[:, seg]
            )
            np.multiply(
                self._inv_e[seg], fac_e[:, class_index : class_index + 1], out=re[:, seg]
            )
        return rc, re

    def evolve(
        self,
        duration: float,
        v_class: np.ndarray,
        temperatures: np.ndarray,
        duty: float = 1.0,
        v_class_relax: np.ndarray | None = None,
        chips: slice = slice(None),
    ) -> None:
        """Advance a chip span; ``v_class`` is ``(k, n_classes)`` volts.

        With ``duty < 1`` the off fraction sits at ``v_class_relax`` and
        the duty-averaged rate combination (including the AC capture
        suppression) matches ``TrapPopulation._effective_rates``.
        """
        if duration <= 0.0:
            if duration < 0.0:
                raise ConfigurationError(f"duration must be non-negative, got {duration}")
            return
        lo, hi, _ = chips.indices(self.n_chips)
        temperatures = np.asarray(temperatures, dtype=float)
        p = self.grid.params
        inv_kt = 1.0 / (BOLTZMANN_EV * temperatures)
        inv_kt_ref = 1.0 / (BOLTZMANN_EV * p.reference_temperature)
        # Population-scale engine: vectorised exp is deliberate — the
        # binned fidelity never claims bit-identity with the scalar path.
        arr_c = np.exp(np.minimum(-p.ea_capture_ev * (inv_kt - inv_kt_ref), 700.0))  # repro: noqa[RPR006]
        arr_e = np.exp(np.minimum(-p.ea_emission_ev * (inv_kt - inv_kt_ref), 700.0))  # repro: noqa[RPR006]
        fac_c, fac_e = self._class_factors(np.asarray(v_class, dtype=float), arr_c, arr_e)
        rc, re = self._rates_into(fac_c, fac_e, self._b_rc[lo:hi], self._b_re[lo:hi])
        if duty < 1.0:
            relax = (
                np.zeros_like(v_class)
                if v_class_relax is None
                else np.asarray(v_class_relax, dtype=float)
            )
            fac_rc, fac_re = self._class_factors(relax, arr_c, arr_e)
            tmp = self._b_tmp[lo:hi]
            tmp2 = self._b_tmp2[lo:hi]
            self._rates_into(fac_rc, fac_re, tmp, tmp2)
            suppression = self.dtype.type(
                p.ac_capture_suppression ** (1.0 - duty)
            )
            off_weight = self.dtype.type(1.0 - duty)
            np.multiply(rc, self.dtype.type(duty) * suppression, out=rc)
            np.multiply(tmp, off_weight, out=tmp)
            rc += tmp
            np.multiply(re, self.dtype.type(duty), out=re)
            np.multiply(tmp2, off_weight, out=tmp2)
            re += tmp2
        total = np.add(rc, re, out=re)
        p_inf = np.divide(rc, total, out=rc)
        np.multiply(total, self.dtype.type(-duration), out=total)
        decay = np.exp(total, out=total)  # repro: noqa[RPR006]
        occupancy = self.occupancy[lo:hi]
        np.subtract(occupancy, p_inf, out=occupancy)
        np.multiply(occupancy, decay, out=occupancy)
        np.add(occupancy, p_inf, out=occupancy)
        self.elapsed[lo:hi] += duration
        guard = self._guard
        if guard.checking:
            guard.check_array(
                "bti.occupancy",
                occupancy,
                0.0,
                1.0,
                inputs=lambda: {
                    "op": "fleet.binned_evolve",
                    "duration": float(duration),
                    "duty": float(duty),
                    "fleet_chips": int(hi - lo),
                },
            )

    def readout_shift(self, chips: slice = slice(None)) -> np.ndarray:
        """Per-chip delay shift: one dot product of occupancy x weights."""
        lo, hi, _ = chips.indices(self.n_chips)
        shift = np.einsum(
            "ij,ij->i", self.occupancy[lo:hi], self.readout_weight[lo:hi]
        )
        return shift.astype(float)

    def occupancy_row(self, index: int) -> np.ndarray:
        """Copy of one chip's cell occupancy (export form)."""
        return self.occupancy[index].copy()

    def set_occupancy_row(self, index: int, occupancy: np.ndarray, elapsed: float) -> None:
        """Restore one chip's cell occupancy (import form)."""
        occupancy = np.asarray(occupancy, dtype=self.dtype)
        if occupancy.shape != (self.grid.n_cells,):
            raise ConfigurationError("snapshot does not match this binned fleet")
        self.occupancy[index] = occupancy
        self.elapsed[index] = float(elapsed)

    def inject_upset(self, index: int, value: float, n_cells: int = 64) -> None:
        """Fault-injection hook: corrupt the head of one chip's cell row."""
        count = min(int(n_cells), self.grid.n_cells)
        self.occupancy[index, :count] = value

"""Device-level BTI (bias temperature instability) aging and recovery models.

Three model families live here:

* :mod:`repro.bti.traps` — a microscopic trapping/detrapping ensemble with
  exact closed-form occupancy evolution per bias phase.  This is the
  library's "virtual silicon": everything the virtual FPGA testbed measures
  is ultimately produced by these traps.
* :mod:`repro.bti.firstorder` — the paper's first-order closed forms
  (Eqs. 1–4 at device level, Eqs. 8–13 at path-delay level), used for
  parameter extraction and model-vs-measurement validation exactly as the
  paper uses them against real silicon.
* :mod:`repro.bti.rd_model` — a classic reaction–diffusion power-law model,
  kept as a baseline comparator.
"""

from repro.bti.acceleration import arrhenius_factor, field_factor
from repro.bti.cet import CetMap, EmissionSpectrum, cet_map, emission_spectrum
from repro.bti.conditions import (
    AC_FIFTY_FIFTY,
    DC,
    BiasCondition,
    BiasPhase,
    StressPolarity,
    Waveform,
)
from repro.bti.device_model import DeviceAgingModel
from repro.bti.firstorder import (
    FirstOrderBtiModel,
    FirstOrderDelayModel,
    RecoveryParameters,
    StressParameters,
)
from repro.bti.rd_model import ReactionDiffusionModel
from repro.bti.statistical import (
    ShiftStatistics,
    margin_at_quantile,
    sample_device_shifts,
    shift_statistics,
    sigma_mu_relation,
)
from repro.bti.traps import TrapParameters, TrapPopulation

__all__ = [
    "AC_FIFTY_FIFTY",
    "DC",
    "BiasCondition",
    "CetMap",
    "EmissionSpectrum",
    "BiasPhase",
    "DeviceAgingModel",
    "FirstOrderBtiModel",
    "FirstOrderDelayModel",
    "ReactionDiffusionModel",
    "ShiftStatistics",
    "RecoveryParameters",
    "StressParameters",
    "StressPolarity",
    "TrapParameters",
    "TrapPopulation",
    "Waveform",
    "arrhenius_factor",
    "cet_map",
    "emission_spectrum",
    "margin_at_quantile",
    "sample_device_shifts",
    "shift_statistics",
    "sigma_mu_relation",
    "field_factor",
]

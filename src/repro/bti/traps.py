"""Microscopic trapping/detrapping (TD) ensemble — the virtual silicon.

The aggregate log(1+Ct) stress law and fast-then-logarithmic recovery that
the paper's first-order model (Eqs. 1-4) captures emerge microscopically
from an ensemble of independent oxide traps whose capture and emission time
constants are distributed log-uniformly over many decades [Velamala et al.,
DAC 2012].  This module implements that ensemble directly:

* each trap ``i`` has a capture time constant ``tau_c0[i]`` (at the
  reference stress bias) and an emission time constant ``tau_e0[i]`` (at
  the reference recovery bias), both drawn log-uniformly;
* its occupancy probability ``p`` obeys ``dp/dt = (1-p)*rc - p*re`` with
  bias/temperature dependent rates, which has an exact exponential solution
  over any piecewise-constant phase — no time-stepping error;
* an occupied trap shifts the owning transistor's threshold voltage by an
  exponentially distributed amount ``impact[i]``.

The population is vectorised across *all* transistors of a chip: traps are
stored in flat arrays with an ``owner`` index, so evolving a 75-LUT ring
oscillator over a 24 h phase is a handful of numpy operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bti.conditions import BiasCondition, BiasPhase
from repro.errors import ConfigurationError
from repro.units import BOLTZMANN_EV, celsius


@dataclass(frozen=True)
class TrapParameters:
    """Statistical description of a transistor's trap population.

    Parameters
    ----------
    mean_trap_count:
        Poisson mean of the number of traps per transistor.
    tau_capture_bounds / tau_emission_bounds:
        (min, max) in seconds of the log-uniform distributions for the
        capture time constant at the reference stress bias and the emission
        time constant at the reference recovery bias.
    impact_mean_volts:
        Mean of the exponential per-trap threshold-voltage impact.
    ea_capture_ev / ea_emission_ev:
        Arrhenius activation energies of capture and emission.
    gamma_capture_per_volt / gamma_emission_per_volt:
        Exponential field-acceleration coefficients.  Capture speeds up
        with stress overdrive; emission speeds up as the overdrive drops
        below (and especially beyond, i.e. negative) the recovery
        reference.
    reference_stress_voltage / reference_recovery_voltage:
        Overdrives at which ``tau_c0`` / ``tau_e0`` are quoted.
    reference_temperature:
        Temperature (kelvin) at which both are quoted.
    """

    mean_trap_count: float = 80.0
    tau_capture_bounds: tuple[float, float] = (5e6, 1e12)
    tau_emission_bounds: tuple[float, float] = (10.0, 2.0e9)
    impact_mean_volts: float = 3.2e-3
    ea_capture_ev: float = 0.90
    ea_emission_ev: float = 0.60
    gamma_capture_per_volt: float = 5.0
    gamma_emission_per_volt: float = 8.2
    reference_stress_voltage: float = 1.2
    reference_recovery_voltage: float = 0.0
    reference_temperature: float = celsius(20.0)
    # AC duty-factor correction: duty-averaged rate equations alone
    # under-predict the measured gap between AC and DC stress, because
    # capture under fast toggling is additionally suppressed by sub-cycle
    # emission dynamics that rate averaging cannot see.  The stress-bias
    # capture rate is multiplied by ``ac_capture_suppression**(1 - duty)``
    # (1.0 under DC, the full suppression as duty -> 0), the standard
    # shape of measured AC-BTI duty-factor curves.
    ac_capture_suppression: float = 0.01

    def __post_init__(self) -> None:
        if self.mean_trap_count <= 0.0:
            raise ConfigurationError("mean_trap_count must be positive")
        for name in ("tau_capture_bounds", "tau_emission_bounds"):
            lo, hi = getattr(self, name)
            if lo <= 0.0 or hi <= lo:
                raise ConfigurationError(f"{name} must satisfy 0 < min < max")
        if self.impact_mean_volts <= 0.0:
            raise ConfigurationError("impact_mean_volts must be positive")
        if not 0.0 < self.ac_capture_suppression <= 1.0:
            raise ConfigurationError("ac_capture_suppression must be in (0, 1]")
        if self.reference_temperature <= 0.0:
            raise ConfigurationError("reference_temperature must be positive kelvin")


def _log_uniform(rng: np.random.Generator, bounds: tuple[float, float], size: int) -> np.ndarray:
    lo, hi = bounds
    return np.exp(rng.uniform(np.log(lo), np.log(hi), size=size))


@dataclass
class _PopulationState:
    """Snapshot of the mutable part of a population (occupancies + time)."""

    occupancy: np.ndarray
    elapsed: float = 0.0


class TrapPopulation:
    """Trap ensemble shared by a group of transistors ("owners").

    Each owner is one aging transistor; the population tracks which traps
    belong to which owner so that a phase can apply a *different* stress
    voltage per owner (the LUT model decides who is stressed) while the
    whole chip still evolves in one vectorised update.
    """

    def __init__(
        self,
        params: TrapParameters,
        n_owners: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_owners <= 0:
            raise ConfigurationError(f"n_owners must be positive, got {n_owners}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.params = params
        self.n_owners = n_owners

        counts = rng.poisson(params.mean_trap_count, size=n_owners)
        self.owner = np.repeat(np.arange(n_owners), counts)
        n_traps = int(counts.sum())
        self.tau_c0 = _log_uniform(rng, params.tau_capture_bounds, n_traps)
        self.tau_e0 = _log_uniform(rng, params.tau_emission_bounds, n_traps)
        self.impact = rng.exponential(params.impact_mean_volts, size=n_traps)
        self._state = _PopulationState(occupancy=np.zeros(n_traps))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def n_traps(self) -> int:
        """Total trap count across all owners."""
        return self.owner.size

    @property
    def elapsed(self) -> float:
        """Simulated wall-clock seconds accumulated by ``evolve`` calls."""
        return self._state.elapsed

    @property
    def occupancy(self) -> np.ndarray:
        """Per-trap occupancy probabilities (read-only view)."""
        view = self._state.occupancy.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------ #
    # physics
    # ------------------------------------------------------------------ #

    def _rates(self, stress_voltage: np.ndarray, temperature: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-trap capture and emission rates (1/s) at a bias point.

        ``stress_voltage`` is broadcast per trap (already expanded from the
        per-owner vector by the caller).
        """
        p = self.params
        inv_kt = 1.0 / (BOLTZMANN_EV * temperature)
        inv_kt_ref = 1.0 / (BOLTZMANN_EV * p.reference_temperature)
        arr_c = np.exp(-p.ea_capture_ev * (inv_kt - inv_kt_ref))
        arr_e = np.exp(-p.ea_emission_ev * (inv_kt - inv_kt_ref))
        capture = (
            (1.0 / self.tau_c0)
            * arr_c
            * np.exp(p.gamma_capture_per_volt * (stress_voltage - p.reference_stress_voltage))
        )
        emission = (
            (1.0 / self.tau_e0)
            * arr_e
            * np.exp(
                -p.gamma_emission_per_volt
                * (stress_voltage - p.reference_recovery_voltage)
            )
        )
        return capture, emission

    def _expand(self, per_owner: np.ndarray | float) -> np.ndarray:
        """Broadcast a per-owner vector (or scalar) to per-trap."""
        arr = np.asarray(per_owner, dtype=float)
        if arr.ndim == 0:
            return np.full(self.n_traps, float(arr))
        if arr.shape != (self.n_owners,):
            raise ConfigurationError(
                f"per-owner vector must have shape ({self.n_owners},), got {arr.shape}"
            )
        return arr[self.owner]

    def evolve(
        self,
        duration: float,
        stress_voltage: np.ndarray | float,
        temperature: float,
        duty: float = 1.0,
        relax_voltage: np.ndarray | float = 0.0,
    ) -> None:
        """Advance every trap through one piecewise-constant phase.

        ``stress_voltage`` may be a scalar or a per-owner vector; with a
        duty cycle below 1.0 the off fraction sits at ``relax_voltage``.
        The update is the exact solution of the occupancy ODE with
        duty-averaged rates: ``p' = p_inf + (p - p_inf) * exp(-(rc+re)*dt)``.
        """
        if duration < 0.0:
            raise ConfigurationError(f"duration must be non-negative, got {duration}")
        if not 0.0 <= duty <= 1.0:
            raise ConfigurationError(f"duty must be within [0, 1], got {duty}")
        if duration <= 0.0:  # zero-length phase is a no-op (negatives raise above)
            return
        v_stress = self._expand(stress_voltage)
        if duty >= 1.0:  # validated <= 1.0 above, so this is the pure-DC branch
            capture, emission = self._rates(v_stress, temperature)
        else:
            v_relax = self._expand(relax_voltage)
            cap_s, emi_s = self._rates(v_stress, temperature)
            cap_r, emi_r = self._rates(v_relax, temperature)
            suppression = self.params.ac_capture_suppression ** (1.0 - duty)
            capture = duty * suppression * cap_s + (1.0 - duty) * cap_r
            emission = duty * emi_s + (1.0 - duty) * emi_r
        total = capture + emission
        p_inf = capture / total
        decay = np.exp(-total * duration)
        state = self._state
        state.occupancy = p_inf + (state.occupancy - p_inf) * decay
        state.elapsed += duration

    def evolve_phase(self, phase: BiasPhase, stress_mask: np.ndarray | None = None) -> None:
        """Advance through a :class:`BiasPhase`.

        ``stress_mask`` (per owner, boolean) selects which owners actually
        see the phase's stress voltage; unmasked owners sit at the phase's
        relax bias for the whole duration.  This is how the LUT model
        expresses "only M1 and M5 are under stress".
        """
        relax = phase.effective_relax_bias
        if stress_mask is None:
            v_stress: np.ndarray | float = phase.bias.stress_voltage
            v_relax: np.ndarray | float = relax.stress_voltage
        else:
            mask = np.asarray(stress_mask, dtype=bool)
            if mask.shape != (self.n_owners,):
                raise ConfigurationError(
                    f"stress_mask must have shape ({self.n_owners},), got {mask.shape}"
                )
            v_stress = np.where(mask, phase.bias.stress_voltage, relax.stress_voltage)
            v_relax = np.full(self.n_owners, relax.stress_voltage)
        self.evolve(
            phase.duration,
            v_stress,
            phase.bias.temperature,
            duty=phase.waveform.duty,
            relax_voltage=v_relax,
        )

    # ------------------------------------------------------------------ #
    # observables
    # ------------------------------------------------------------------ #

    def delta_vth(self) -> np.ndarray:
        """Expected per-owner threshold-voltage shift (volts, mean-field)."""
        return np.bincount(
            self.owner, weights=self._state.occupancy * self.impact, minlength=self.n_owners
        )

    def sample_delta_vth(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """One stochastic per-owner shift: each trap is occupied or not.

        Use this for statistical-aging studies; the mean over many samples
        converges to :meth:`delta_vth`.
        """
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        occupied = rng.random(self.n_traps) < self._state.occupancy
        return np.bincount(
            self.owner, weights=occupied * self.impact, minlength=self.n_owners
        )

    def equilibrium_delta_vth(
        self, condition: BiasCondition
    ) -> np.ndarray:
        """Per-owner shift if the population equilibrated at ``condition``."""
        v = self._expand(condition.stress_voltage)
        capture, emission = self._rates(v, condition.temperature)
        p_inf = capture / (capture + emission)
        return np.bincount(self.owner, weights=p_inf * self.impact, minlength=self.n_owners)

    # ------------------------------------------------------------------ #
    # state management
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Return every trap to the fresh (empty) state and zero the clock."""
        self._state = _PopulationState(occupancy=np.zeros(self.n_traps))

    def snapshot(self) -> _PopulationState:
        """Capture the mutable state for later :meth:`restore` (what-if runs)."""
        return _PopulationState(
            occupancy=self._state.occupancy.copy(), elapsed=self._state.elapsed
        )

    def restore(self, state: _PopulationState) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        if state.occupancy.shape != (self.n_traps,):
            raise ConfigurationError("snapshot does not match this population")
        self._state = _PopulationState(
            occupancy=state.occupancy.copy(), elapsed=state.elapsed
        )

"""Microscopic trapping/detrapping (TD) ensemble — the virtual silicon.

The aggregate log(1+Ct) stress law and fast-then-logarithmic recovery that
the paper's first-order model (Eqs. 1-4) captures emerge microscopically
from an ensemble of independent oxide traps whose capture and emission time
constants are distributed log-uniformly over many decades [Velamala et al.,
DAC 2012].  This module implements that ensemble directly:

* each trap ``i`` has a capture time constant ``tau_c0[i]`` (at the
  reference stress bias) and an emission time constant ``tau_e0[i]`` (at
  the reference recovery bias), both drawn log-uniformly;
* its occupancy probability ``p`` obeys ``dp/dt = (1-p)*rc - p*re`` with
  bias/temperature dependent rates, which has an exact exponential solution
  over any piecewise-constant phase — no time-stepping error;
* an occupied trap shifts the owning transistor's threshold voltage by an
  exponentially distributed amount ``impact[i]``.

The population is vectorised across *all* transistors of a chip: traps are
stored in flat arrays with an ``owner`` index, so evolving a 75-LUT ring
oscillator over a 24 h phase is a handful of numpy operations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bti.conditions import BiasCondition, BiasPhase
from repro.errors import ConfigurationError
from repro.guard import get_guard, safe_exp, safe_exp_array
from repro.obs import get_tracer
from repro.units import BOLTZMANN_EV, celsius

#: Default number of bias points the per-population rate cache retains.
#: A campaign touches a handful of distinct patterns (frozen DC, the two
#: AC half-cycles, passive/negative recovery); 32 covers every schedule
#: in the repo with room for ablation sweeps.
RATE_CACHE_SIZE = 32


@dataclass(frozen=True)
class TrapParameters:
    """Statistical description of a transistor's trap population.

    Parameters
    ----------
    mean_trap_count:
        Poisson mean of the number of traps per transistor.
    tau_capture_bounds / tau_emission_bounds:
        (min, max) in seconds of the log-uniform distributions for the
        capture time constant at the reference stress bias and the emission
        time constant at the reference recovery bias.
    impact_mean_volts:
        Mean of the exponential per-trap threshold-voltage impact.
    ea_capture_ev / ea_emission_ev:
        Arrhenius activation energies of capture and emission.
    gamma_capture_per_volt / gamma_emission_per_volt:
        Exponential field-acceleration coefficients.  Capture speeds up
        with stress overdrive; emission speeds up as the overdrive drops
        below (and especially beyond, i.e. negative) the recovery
        reference.
    reference_stress_voltage / reference_recovery_voltage:
        Overdrives at which ``tau_c0`` / ``tau_e0`` are quoted.
    reference_temperature:
        Temperature (kelvin) at which both are quoted.
    """

    mean_trap_count: float = 80.0
    tau_capture_bounds: tuple[float, float] = (5e6, 1e12)
    tau_emission_bounds: tuple[float, float] = (10.0, 2.0e9)
    impact_mean_volts: float = 3.2e-3
    ea_capture_ev: float = 0.90
    ea_emission_ev: float = 0.60
    gamma_capture_per_volt: float = 5.0
    gamma_emission_per_volt: float = 8.2
    reference_stress_voltage: float = 1.2
    reference_recovery_voltage: float = 0.0
    reference_temperature: float = celsius(20.0)
    # AC duty-factor correction: duty-averaged rate equations alone
    # under-predict the measured gap between AC and DC stress, because
    # capture under fast toggling is additionally suppressed by sub-cycle
    # emission dynamics that rate averaging cannot see.  The stress-bias
    # capture rate is multiplied by ``ac_capture_suppression**(1 - duty)``
    # (1.0 under DC, the full suppression as duty -> 0), the standard
    # shape of measured AC-BTI duty-factor curves.
    ac_capture_suppression: float = 0.01

    def __post_init__(self) -> None:
        if self.mean_trap_count <= 0.0:
            raise ConfigurationError("mean_trap_count must be positive")
        for name in ("tau_capture_bounds", "tau_emission_bounds"):
            lo, hi = getattr(self, name)
            if lo <= 0.0 or hi <= lo:
                raise ConfigurationError(f"{name} must satisfy 0 < min < max")
        if self.impact_mean_volts <= 0.0:
            raise ConfigurationError("impact_mean_volts must be positive")
        if not 0.0 < self.ac_capture_suppression <= 1.0:
            raise ConfigurationError("ac_capture_suppression must be in (0, 1]")
        if self.reference_temperature <= 0.0:
            raise ConfigurationError("reference_temperature must be positive kelvin")


def _log_uniform(rng: np.random.Generator, bounds: tuple[float, float], size: int) -> np.ndarray:
    lo, hi = bounds
    # Bounded by construction: the exponent is a draw in [log lo, log hi].
    return np.exp(rng.uniform(np.log(lo), np.log(hi), size=size))  # repro: noqa[RPR006]


@dataclass
class _PopulationState:
    """Snapshot of the mutable part of a population (occupancies + time)."""

    occupancy: np.ndarray
    elapsed: float = 0.0


@dataclass(frozen=True)
class CyclePhase:
    """One leg of a repeating bias cycle, in :meth:`TrapPopulation.evolve` terms.

    ``stress_voltage`` and ``relax_voltage`` follow the same per-owner
    (or scalar) convention as ``evolve``; the phase is piecewise constant
    so its occupancy update is an exact affine map.
    """

    duration: float
    stress_voltage: np.ndarray | float
    temperature: float
    duty: float = 1.0
    relax_voltage: np.ndarray | float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0.0:
            raise ConfigurationError(
                f"cycle phase duration must be non-negative, got {self.duration}"
            )
        if not 0.0 <= self.duty <= 1.0:
            raise ConfigurationError(f"duty must be within [0, 1], got {self.duty}")


class _LruCache:
    """A tiny bounded LRU map (the rate caches; not thread-safe)."""

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ConfigurationError(f"cache size must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()

    def get(self, key):
        """The cached value, refreshed as most recent, or ``None``."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        """Insert a value, evicting the least recently used past the bound."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class TrapPopulation:
    """Trap ensemble shared by a group of transistors ("owners").

    Each owner is one aging transistor; the population tracks which traps
    belong to which owner so that a phase can apply a *different* stress
    voltage per owner (the LUT model decides who is stressed) while the
    whole chip still evolves in one vectorised update.
    """

    def __init__(
        self,
        params: TrapParameters,
        n_owners: int,
        rng: np.random.Generator | int | None = None,
        tracer=None,
        rate_cache_size: int = RATE_CACHE_SIZE,
        guard=None,
    ) -> None:
        if n_owners <= 0:
            raise ConfigurationError(f"n_owners must be positive, got {n_owners}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.params = params
        self.n_owners = n_owners

        counts = rng.poisson(params.mean_trap_count, size=n_owners)
        self.owner = np.repeat(np.arange(n_owners), counts)
        n_traps = int(counts.sum())
        self.tau_c0 = _log_uniform(rng, params.tau_capture_bounds, n_traps)
        self.tau_e0 = _log_uniform(rng, params.tau_emission_bounds, n_traps)
        self.impact = rng.exponential(params.impact_mean_volts, size=n_traps)
        self._state = _PopulationState(occupancy=np.zeros(n_traps))

        # Rates factor as (1/tau) * arrhenius(T) * exp(gamma * dV): the
        # 1/tau arrays are immutable, the temperature factor is a scalar,
        # and campaigns replay a handful of voltage patterns thousands of
        # times.  Three memo levels, coarse to fine:
        #   base:     voltage pattern -> (1/tau)*exp(gamma*dV) per trap
        #   combined: (stress, relax, duty) -> duty-averaged base rates
        #   full:     (combined key, temperature) -> final rate arrays
        # Instrument jitter re-samples voltage and temperature per chunk,
        # so the outer levels hit even when the inner one cannot.
        self._inv_tau_c0 = 1.0 / self.tau_c0
        self._inv_tau_e0 = 1.0 / self.tau_e0
        self._base_cache = _LruCache(rate_cache_size)
        self._comb_cache = _LruCache(rate_cache_size)
        self._full_cache = _LruCache(rate_cache_size)
        self._scratch_total = np.empty(n_traps)
        self._scratch_pinf = np.empty(n_traps)
        self._scratch_weights = np.empty(n_traps)
        self._guard = guard if guard is not None else get_guard()
        tracer = tracer if tracer is not None else get_tracer()
        self._cache_hits = tracer.counter(
            "bti.rate_cache.hits", "rate lookups served fully from cache"
        )
        self._cache_partial_hits = tracer.counter(
            "bti.rate_cache.partial_hits",
            "rate lookups that reused cached voltage factors",
        )
        self._cache_misses = tracer.counter(
            "bti.rate_cache.misses", "rate lookups that recomputed voltage factors"
        )
        self._cycles_compressed = tracer.counter(
            "bti.cycles_compressed", "schedule cycles folded by evolve_cycles"
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def n_traps(self) -> int:
        """Total trap count across all owners."""
        return self.owner.size

    @property
    def elapsed(self) -> float:
        """Simulated wall-clock seconds accumulated by ``evolve`` calls."""
        return self._state.elapsed

    @property
    def occupancy(self) -> np.ndarray:
        """Per-trap occupancy probabilities (read-only view)."""
        view = self._state.occupancy.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------ #
    # physics
    # ------------------------------------------------------------------ #

    def _arrhenius(self, temperature: float) -> tuple[float, float]:
        """Scalar capture/emission Arrhenius factors relative to reference."""
        p = self.params
        inv_kt = 1.0 / (BOLTZMANN_EV * temperature)
        inv_kt_ref = 1.0 / (BOLTZMANN_EV * p.reference_temperature)
        # safe_exp: as T -> 0 K the exponent diverges; saturate rather
        # than overflow to inf (which would NaN-poison the rate product).
        arr_c = safe_exp(-p.ea_capture_ev * (inv_kt - inv_kt_ref))
        arr_e = safe_exp(-p.ea_emission_ev * (inv_kt - inv_kt_ref))
        return arr_c, arr_e

    def _rates(self, stress_voltage: np.ndarray, temperature: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-trap capture and emission rates (1/s) at a bias point.

        ``stress_voltage`` is broadcast per trap (already expanded from the
        per-owner vector by the caller).  This is the uncached reference
        path; hot loops go through :meth:`_rates_for`.
        """
        p = self.params
        arr_c, arr_e = self._arrhenius(temperature)
        capture = (
            (1.0 / self.tau_c0)
            * arr_c
            * safe_exp_array(
                p.gamma_capture_per_volt
                * (stress_voltage - p.reference_stress_voltage)
            )
        )
        emission = (
            (1.0 / self.tau_e0)
            * arr_e
            * safe_exp_array(
                -p.gamma_emission_per_volt
                * (stress_voltage - p.reference_recovery_voltage)
            )
        )
        return capture, emission

    def _canonical_bias(self, per_owner: np.ndarray | float) -> np.ndarray:
        """Normalise a bias argument to its canonical array form.

        Accepted shapes are a scalar / 0-d array (uniform bias), a
        length-1 vector (also a uniform bias — the shape a batched
        broadcast or an ``np.atleast_1d`` caller naturally produces) and
        a full ``(n_owners,)`` pattern.  0-d and ``(1,)`` collapse to the
        same canonical 0-d array so the scalar and array paths share one
        cache key and one expansion rule; anything else is a shape bug.
        """
        arr = np.asarray(per_owner, dtype=float)
        if arr.ndim == 0:
            return arr
        if arr.shape == (1,) and self.n_owners != 1:
            return arr.reshape(())
        if arr.shape != (self.n_owners,):
            raise ConfigurationError(
                f"per-owner vector must have shape ({self.n_owners},), got {arr.shape}"
            )
        return arr

    @staticmethod
    def _bias_key(per_owner: np.ndarray) -> tuple[tuple[int, ...], bytes]:
        """Hashable fingerprint of a *canonical* voltage pattern."""
        arr = np.asarray(per_owner, dtype=float)
        return (arr.shape, arr.tobytes())

    def _base_rates(
        self, per_owner_voltage: np.ndarray | float, key
    ) -> tuple[np.ndarray, np.ndarray]:
        """Temperature-free per-trap rate bases ``(1/tau) * exp(gamma*dV)``.

        The voltage factor is computed at owner resolution and expanded by
        gather — ``exp(x)[owner]`` equals ``exp(x[owner])`` bit-for-bit at
        a fraction of the exp cost, since owners are ~100x fewer than
        traps.  Returned arrays are read-only and shared; do not mutate.
        """
        base = self._base_cache.get(key)
        if base is not None:
            return base
        p = self.params
        arr = self._canonical_bias(per_owner_voltage)
        if arr.ndim == 0:
            v_owner = np.full(self.n_owners, float(arr))
        else:
            v_owner = arr
        vfac_c = safe_exp_array(
            p.gamma_capture_per_volt * (v_owner - p.reference_stress_voltage)
        )
        vfac_e = safe_exp_array(
            -p.gamma_emission_per_volt * (v_owner - p.reference_recovery_voltage)
        )
        base_c = self._inv_tau_c0 * vfac_c[self.owner]
        base_e = self._inv_tau_e0 * vfac_e[self.owner]
        base_c.flags.writeable = False
        base_e.flags.writeable = False
        base = (base_c, base_e)
        self._base_cache.put(key, base)
        return base

    def _effective_rates(
        self,
        stress_voltage: np.ndarray | float,
        temperature: float,
        duty: float,
        relax_voltage: np.ndarray | float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Duty-averaged per-trap rates for one piecewise-constant phase.

        Returned arrays are read-only and may be shared with the cache;
        callers must not mutate them.
        """
        stress_voltage = self._canonical_bias(stress_voltage)
        key_s = self._bias_key(stress_voltage)
        if duty >= 1.0:  # callers validate duty <= 1.0, so this is pure DC
            comb_key = (key_s, None, 1.0)
        else:
            relax_voltage = self._canonical_bias(relax_voltage)
            comb_key = (key_s, self._bias_key(relax_voltage), duty)
        full_key = (comb_key, float(temperature))
        cached = self._full_cache.get(full_key)
        if cached is not None:
            self._cache_hits.inc()
            return cached
        comb = self._comb_cache.get(comb_key)
        if comb is not None:
            self._cache_partial_hits.inc()
        else:
            self._cache_misses.inc()
            base_c, base_e = self._base_rates(stress_voltage, key_s)
            if duty >= 1.0:
                comb = (base_c, base_e)
            else:
                # The scalar Arrhenius factors are common to both legs of
                # the duty average, so they distribute over the mix and the
                # combination itself is temperature-free.
                relax_c, relax_e = self._base_rates(relax_voltage, comb_key[1])
                suppression = self.params.ac_capture_suppression ** (1.0 - duty)
                comb_c = duty * suppression * base_c + (1.0 - duty) * relax_c
                comb_e = duty * base_e + (1.0 - duty) * relax_e
                comb_c.flags.writeable = False
                comb_e.flags.writeable = False
                comb = (comb_c, comb_e)
            self._comb_cache.put(comb_key, comb)
        arr_c, arr_e = self._arrhenius(temperature)
        capture = comb[0] * arr_c
        emission = comb[1] * arr_e
        guard = self._guard
        if guard.checking:
            # Each factor is exp-clamped, but their product can still
            # overflow to inf; repair/raise before the arrays are frozen
            # and cached.
            rate_cap = guard.config.rate_cap
            inputs = {"temperature": float(temperature), "duty": float(duty)}
            capture = guard.check_array(
                "bti.rate", capture, 0.0, rate_cap, inputs=inputs
            )
            emission = guard.check_array(
                "bti.rate", emission, 0.0, rate_cap, inputs=inputs
            )
        capture.flags.writeable = False
        emission.flags.writeable = False
        self._full_cache.put(full_key, (capture, emission))
        return capture, emission

    def _expand(self, per_owner: np.ndarray | float) -> np.ndarray:
        """Broadcast a per-owner vector (or scalar) to per-trap."""
        arr = self._canonical_bias(per_owner)
        if arr.ndim == 0:
            return np.full(self.n_traps, float(arr))
        return arr[self.owner]

    def evolve(
        self,
        duration: float,
        stress_voltage: np.ndarray | float,
        temperature: float,
        duty: float = 1.0,
        relax_voltage: np.ndarray | float = 0.0,
    ) -> None:
        """Advance every trap through one piecewise-constant phase.

        ``stress_voltage`` may be a scalar or a per-owner vector; with a
        duty cycle below 1.0 the off fraction sits at ``relax_voltage``.
        The update is the exact solution of the occupancy ODE with
        duty-averaged rates: ``p' = p_inf + (p - p_inf) * exp(-(rc+re)*dt)``.
        """
        if duration < 0.0:
            raise ConfigurationError(f"duration must be non-negative, got {duration}")
        if not 0.0 <= duty <= 1.0:
            raise ConfigurationError(f"duty must be within [0, 1], got {duty}")
        if duration <= 0.0:  # zero-length phase is a no-op (negatives raise above)
            return
        capture, emission = self._effective_rates(
            stress_voltage, temperature, duty, relax_voltage
        )
        # Allocation-free update in scratch buffers: the occupancy arrays
        # are ~30k doubles, so these elementwise ops are memory-bound.
        total = np.add(capture, emission, out=self._scratch_total)
        p_inf = np.divide(capture, total, out=self._scratch_pinf)
        np.multiply(total, -duration, out=total)
        # total = -(capture+emission)*duration <= 0: underflow-only, safe.
        decay = np.exp(total, out=total)  # repro: noqa[RPR006]
        state = self._state
        occupancy = state.occupancy
        np.subtract(occupancy, p_inf, out=occupancy)
        np.multiply(occupancy, decay, out=occupancy)
        np.add(occupancy, p_inf, out=occupancy)
        state.elapsed += duration
        guard = self._guard
        if guard.checking:
            guard.check_array(
                "bti.occupancy",
                occupancy,
                0.0,
                1.0,
                inputs=lambda: {
                    "op": "evolve",
                    "duration": float(duration),
                    "temperature": float(temperature),
                    "duty": float(duty),
                    "elapsed": float(state.elapsed),
                },
                arrays=lambda: self._bundle_arrays(stress_voltage, relax_voltage),
            )

    def evolve_cycles(self, phases: Sequence[CyclePhase], n: int) -> None:
        """Advance through ``n`` repetitions of a fixed phase sequence, O(1) in ``n``.

        Every :meth:`evolve` is an elementwise affine map ``p' = a*p + b``
        with ``a = exp(-(rc+re)*dt)`` and ``b = p_inf*(1 - a)``, so one
        full cycle composes to an affine map ``p' = a_c*p + b_c`` and N
        identical cycles to the exact closed form::

            p' = a_c**N * p  +  b_c * (1 - a_c**N) / (1 - a_c)

        The cycle decay is accumulated as an exponent sum (``a_c =
        exp(-X)`` with ``X = sum((rc+re)*dt)``) and ``1 - a_c`` is
        evaluated via ``expm1`` so slow traps keep full precision.
        """
        if n < 0:
            raise ConfigurationError(f"cycle count must be non-negative, got {n}")
        if not phases:
            raise ConfigurationError("evolve_cycles needs at least one phase")
        if n == 0:
            return
        exponent = np.zeros(self.n_traps)
        offset = np.zeros(self.n_traps)
        period = 0.0
        for phase in phases:
            period += phase.duration
            if phase.duration <= 0.0:
                continue
            capture, emission = self._effective_rates(
                phase.stress_voltage,
                phase.temperature,
                phase.duty,
                phase.relax_voltage,
            )
            total = capture + emission
            x = total * phase.duration
            # Affine compose: p -> a*p + p_inf*(1-a) with a = exp(-x).
            # x >= 0, so exp(-x) <= 1: underflow-only, safe.
            offset = offset * np.exp(-x) + (capture / total) * -np.expm1(-x)  # repro: noqa[RPR006]
            exponent = exponent + x
        one_minus_ac = -np.expm1(-exponent)
        # Geometric-series ratio (1 - a_c**n)/(1 - a_c); when the cycle
        # decay underflows to the identity the series degenerates to n.
        ratio = np.where(
            one_minus_ac > 0.0,
            -np.expm1(-n * exponent) / np.where(one_minus_ac > 0.0, one_minus_ac, 1.0),
            float(n),
        )
        state = self._state
        # exponent >= 0 and n >= 1, so exp(-n*exponent) <= 1: safe.
        state.occupancy = np.exp(-n * exponent) * state.occupancy + offset * ratio  # repro: noqa[RPR006]
        state.elapsed += n * period
        self._cycles_compressed.inc(n)
        guard = self._guard
        if guard.checking:
            guard.check_array(
                "bti.occupancy",
                state.occupancy,
                0.0,
                1.0,
                inputs=lambda: {
                    "op": "evolve_cycles",
                    "n": int(n),
                    "period": float(period),
                    "elapsed": float(state.elapsed),
                },
                arrays=lambda: self._bundle_arrays(None, None),
            )

    def evolve_phase(self, phase: BiasPhase, stress_mask: np.ndarray | None = None) -> None:
        """Advance through a :class:`BiasPhase`.

        ``stress_mask`` (per owner, boolean) selects which owners actually
        see the phase's stress voltage; unmasked owners sit at the phase's
        relax bias for the whole duration.  This is how the LUT model
        expresses "only M1 and M5 are under stress".
        """
        relax = phase.effective_relax_bias
        if stress_mask is None:
            v_stress: np.ndarray | float = phase.bias.stress_voltage
            v_relax: np.ndarray | float = relax.stress_voltage
        else:
            mask = np.asarray(stress_mask, dtype=bool)
            if mask.shape != (self.n_owners,):
                raise ConfigurationError(
                    f"stress_mask must have shape ({self.n_owners},), got {mask.shape}"
                )
            v_stress = np.where(mask, phase.bias.stress_voltage, relax.stress_voltage)
            v_relax = np.full(self.n_owners, relax.stress_voltage)
        self.evolve(
            phase.duration,
            v_stress,
            phase.bias.temperature,
            duty=phase.waveform.duty,
            relax_voltage=v_relax,
        )

    # ------------------------------------------------------------------ #
    # observables
    # ------------------------------------------------------------------ #

    def delta_vth(self) -> np.ndarray:
        """Expected per-owner threshold-voltage shift (volts, mean-field)."""
        weights = np.multiply(
            self._state.occupancy, self.impact, out=self._scratch_weights
        )
        return np.bincount(self.owner, weights=weights, minlength=self.n_owners)

    def max_delta_vth(self) -> np.ndarray:
        """Per-owner ceiling on :meth:`delta_vth` (every trap occupied)."""
        return np.bincount(self.owner, weights=self.impact, minlength=self.n_owners)

    def sample_delta_vth(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """One stochastic per-owner shift: each trap is occupied or not.

        Use this for statistical-aging studies; the mean over many samples
        converges to :meth:`delta_vth`.
        """
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        occupied = rng.random(self.n_traps) < self._state.occupancy
        return np.bincount(
            self.owner, weights=occupied * self.impact, minlength=self.n_owners
        )

    def equilibrium_delta_vth(
        self, condition: BiasCondition
    ) -> np.ndarray:
        """Per-owner shift if the population equilibrated at ``condition``."""
        v = self._expand(condition.stress_voltage)
        capture, emission = self._rates(v, condition.temperature)
        p_inf = capture / (capture + emission)
        return np.bincount(self.owner, weights=p_inf * self.impact, minlength=self.n_owners)

    # ------------------------------------------------------------------ #
    # state management
    # ------------------------------------------------------------------ #

    def _bundle_arrays(self, stress_voltage, relax_voltage) -> dict:
        """Model arrays for a guard repro bundle (violation slow path)."""
        arrays = {
            "occupancy": self._state.occupancy,
            "tau_c0": self.tau_c0,
            "tau_e0": self.tau_e0,
            "impact": self.impact,
            "owner": self.owner,
        }
        if stress_voltage is not None:
            arrays["stress_voltage"] = np.asarray(stress_voltage, dtype=float)
        if relax_voltage is not None:
            arrays["relax_voltage"] = np.asarray(relax_voltage, dtype=float)
        return arrays

    def inject_upset(self, value: float, n_traps: int = 64) -> None:
        """Fault-injection hook: overwrite the first ``n_traps`` occupancies.

        Bypasses the physics on purpose — campaigns use this (via
        ``FaultKind.TRAP_UPSET``) to model a corrupted readout/state
        upset and exercise the guard's detect/clamp/quarantine path.  The
        poked values (NaN, >1, <0 ...) are caught by the ``bti.occupancy``
        contract on the next ``evolve``.
        """
        count = min(int(n_traps), self.n_traps)
        self._state.occupancy[:count] = value

    def reset(self) -> None:
        """Return every trap to the fresh (empty) state and zero the clock."""
        self._state = _PopulationState(occupancy=np.zeros(self.n_traps))
        self._invalidate_rate_cache()

    def snapshot(self) -> _PopulationState:
        """Capture the mutable state for later :meth:`restore` (what-if runs)."""
        return _PopulationState(
            occupancy=self._state.occupancy.copy(), elapsed=self._state.elapsed
        )

    def restore(self, state: _PopulationState) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        if state.occupancy.shape != (self.n_traps,):
            raise ConfigurationError("snapshot does not match this population")
        self._state = _PopulationState(
            occupancy=state.occupancy.copy(), elapsed=state.elapsed
        )
        self._invalidate_rate_cache()

    def _invalidate_rate_cache(self) -> None:
        """Drop every memoised rate array (state transitions must not
        observe entries built for a previous trajectory)."""
        self._base_cache.clear()
        self._comb_cache.clear()
        self._full_cache.clear()

    @property
    def rate_cache_entries(self) -> int:
        """Live entries across all rate-cache levels (introspection)."""
        return len(self._base_cache) + len(self._comb_cache) + len(self._full_cache)

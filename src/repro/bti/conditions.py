"""Bias conditions, waveforms and phases driving BTI stress and recovery.

Sign convention
---------------

``BiasCondition.stress_voltage`` is the gate overdrive *along the aging
polarity* of the transistor:

* ``+1.2`` — the device is fully stressed (Vgs = -Vdd for a PMOS under
  NBTI, Vgs = +Vdd for an NMOS under PBTI).
* ``0.0``  — the gate is unbiased; the device passively recovers.
* ``-0.3`` — the bias is *reversed* (the paper's negative supply during
  sleep), which actively accelerates detrapping.

This folds NBTI and PBTI into one scalar per transistor: the LUT model in
:mod:`repro.fpga.lut` decides, per input vector, which transistors see which
stress voltage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError, ScheduleError
from repro.units import celsius


class StressPolarity(enum.Enum):
    """Which BTI flavour ages a transistor."""

    NBTI = "nbti"  # PMOS, negative gate-source stress
    PBTI = "pbti"  # NMOS, positive gate-source stress


@dataclass(frozen=True)
class BiasCondition:
    """A constant electrical/thermal operating point.

    Parameters
    ----------
    stress_voltage:
        Gate overdrive along the aging polarity, in volts (see module
        docstring for the sign convention).
    temperature:
        Absolute temperature in kelvin.  Use :func:`repro.units.celsius`
        for the paper's Celsius values.
    """

    stress_voltage: float
    temperature: float

    def __post_init__(self) -> None:
        if self.temperature <= 0.0:
            raise ConfigurationError(
                f"temperature must be positive kelvin, got {self.temperature}"
            )

    @classmethod
    def at_celsius(cls, stress_voltage: float, degrees_c: float) -> "BiasCondition":
        """Build a condition from a Celsius temperature."""
        return cls(stress_voltage=stress_voltage, temperature=celsius(degrees_c))

    def with_voltage(self, stress_voltage: float) -> "BiasCondition":
        """Copy of this condition at a different stress voltage."""
        return BiasCondition(stress_voltage=stress_voltage, temperature=self.temperature)

    def with_temperature(self, temperature: float) -> "BiasCondition":
        """Copy of this condition at a different temperature (kelvin)."""
        return BiasCondition(stress_voltage=self.stress_voltage, temperature=temperature)


@dataclass(frozen=True)
class Waveform:
    """Duty-cycled stress waveform.

    ``duty`` is the fraction of time spent at the stress bias; the remainder
    is spent at the relax bias.  ``duty=1.0`` is DC stress (the paper's
    frozen ring oscillator), ``duty=0.5`` models AC stress from a free
    running oscillator whose nodes toggle with a 50 % duty cycle.

    ``frequency`` is informational: the closed-form occupancy evolution uses
    rate averaging, which is exact in the limit where the toggling period is
    much shorter than the trap time constants — true for any realistic
    oscillator (MHz) against BTI traps (milliseconds and up).
    """

    duty: float = 1.0
    frequency: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty <= 1.0:
            raise ConfigurationError(f"duty must be within [0, 1], got {self.duty}")
        if self.frequency is not None and self.frequency <= 0.0:
            raise ConfigurationError(f"frequency must be positive, got {self.frequency}")

    @property
    def is_dc(self) -> bool:
        """True when the waveform never leaves the stress bias."""
        return self.duty >= 1.0  # duty is validated within [0, 1]


DC = Waveform(duty=1.0)
AC_FIFTY_FIFTY = Waveform(duty=0.5)


@dataclass(frozen=True)
class BiasPhase:
    """One piecewise-constant segment of a stress/recovery schedule.

    During the ``waveform.duty`` fraction of the phase the device sits at
    ``bias``; during the rest it sits at ``relax_bias`` (defaults to the
    same temperature with zero stress voltage).
    """

    duration: float
    bias: BiasCondition
    waveform: Waveform = DC
    relax_bias: BiasCondition | None = None

    def __post_init__(self) -> None:
        if self.duration < 0.0:
            raise ScheduleError(f"phase duration must be non-negative, got {self.duration}")
        if (
            self.relax_bias is not None
            and self.relax_bias.temperature != self.bias.temperature
        ):
            raise ScheduleError(
                "relax bias must share the phase temperature: the thermal "
                "chamber cannot follow the waveform"
            )

    @property
    def effective_relax_bias(self) -> BiasCondition:
        """The bias applied during the off part of the duty cycle."""
        if self.relax_bias is not None:
            return self.relax_bias
        return self.bias.with_voltage(0.0)

"""The paper's first-order BTI closed forms (Eqs. 1-4 and 8-13).

Stress (wearout) phase, paper Eq. (1)-(2)::

    dVth(t1)  = phi1 * (A + log(1 + C*t1))
    phi1      ~ K1 * exp(-E0 / kT) * exp(B * Vdds / (k*T*tox))

Recovery (sleep) phase, paper Eq. (3)-(4)::

    dVth(t1+t2) = phi2 * (A + log(1 + C*t2))
                + dVth(t1) * (1 - (1 + k1*log(1 + C*t2))
                                 / (1 + k2*log(1 + C*(t1+t2))))

and the same algebra at path-delay level (Eqs. 8-12) with ``beta`` in place
of ``phi1``.  The recovery form has the properties the paper describes: for
``t2 << t1`` the second component dominates and recovery starts fast; as
``t2`` grows the first component (re-equilibration at the sleep bias) takes
over and grows logarithmically, so the shift can never fully recover.

As printed, Eq. (3) has a small step at ``t2 = 0+`` — the well-known fast
sub-second recovery component folded into the log terms.  We implement the
printed form literally; the trap ensemble in :mod:`repro.bti.traps` is
continuous and serves as ground truth, with these forms *fitted* to it
(see :mod:`repro.core.fitting`) exactly as the paper fits them to silicon.

The prefactors scale across conditions via Arrhenius/field factors
(:class:`PhysicsScaling`), which is how one fitted model predicts both the
100 degC and 110 degC curves in the paper's Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.guard import safe_exp
from repro.units import BOLTZMANN_EV


@dataclass(frozen=True)
class PhysicsScaling:
    """Condition dependence of a first-order prefactor (Eqs. 2, 4, 13).

    ``prefactor(V, T) = k_prefactor * exp(-e0_ev/kT) * exp(b_field * V / kT)``

    ``b_field_ev_per_volt`` bundles the paper's ``B/tox`` into a single
    coefficient with units of eV/V so the exponent is dimensionless.
    """

    k_prefactor: float
    e0_ev: float = 0.08
    b_field_ev_per_volt: float = 0.05

    def prefactor(self, voltage: float, temperature: float) -> float:
        """Evaluate the prefactor at a (voltage, temperature) point."""
        if temperature <= 0.0:
            raise ConfigurationError("temperature must be positive kelvin")
        kt = BOLTZMANN_EV * temperature
        # One combined exponent: as T -> 0 K the field term alone would
        # overflow while the barrier term underflows; their sum saturates.
        exponent = (self.b_field_ev_per_volt * voltage - self.e0_ev) / kt
        return float(self.k_prefactor * safe_exp(exponent))


@dataclass(frozen=True)
class StressParameters:
    """Fitted stress-phase parameters: ``shift = prefactor*(A + log(1+C*t))``.

    ``prefactor`` carries the units of the modelled quantity (volts for
    dVth, seconds for path delay); ``offset_a`` is dimensionless;
    ``rate_c`` is 1/s.
    """

    prefactor: float
    offset_a: float
    rate_c: float

    def __post_init__(self) -> None:
        if self.rate_c <= 0.0:
            raise ConfigurationError(f"rate_c must be positive, got {self.rate_c}")

    def shift(self, t: np.ndarray | float) -> np.ndarray | float:
        """Accumulated shift after stressing a fresh device for ``t`` seconds."""
        t = np.asarray(t, dtype=float)
        result = self.prefactor * (self.offset_a + np.log1p(self.rate_c * t))
        return float(result) if result.ndim == 0 else result

    def effective_stress_time(self, shift: float) -> float:
        """Invert :meth:`shift`: stress seconds that would produce ``shift``.

        Used to splice recovery residue back into a subsequent stress phase
        (the unrecovered part "will be added to the next stress phase",
        paper Fig. 1).  Shifts at or below the t=0 value map to 0.
        """
        if self.prefactor <= 0.0:
            raise ConfigurationError("effective_stress_time needs a positive prefactor")
        exponent = shift / self.prefactor - self.offset_a
        if exponent <= 0.0:
            return 0.0
        return float(np.expm1(exponent) / self.rate_c)


@dataclass(frozen=True)
class RecoveryParameters:
    """Fitted recovery-phase parameters of paper Eq. (3)/(11).

    ``prefactor`` is phi2 (re-equilibration magnitude at the sleep bias);
    ``k1``/``k2`` shape the decay of the stress residue, with ``k1/k2`` the
    asymptotically unrecoverable fraction of the residue term.
    """

    prefactor: float
    offset_a: float
    rate_c: float
    k1: float
    k2: float

    def __post_init__(self) -> None:
        if self.rate_c <= 0.0:
            raise ConfigurationError(f"rate_c must be positive, got {self.rate_c}")
        if self.k1 < 0.0 or self.k2 <= 0.0:
            raise ConfigurationError("k1 must be >= 0 and k2 > 0")

    def residual(
        self,
        shift_at_stress_end: float,
        stress_time: float,
        recovery_time: np.ndarray | float,
    ) -> np.ndarray | float:
        """Remaining shift after ``recovery_time`` seconds of sleep.

        ``shift_at_stress_end`` is dVth(t1) (or dTd(t1)); ``stress_time``
        is t1.
        """
        t2 = np.asarray(recovery_time, dtype=float)
        log_t2 = np.log1p(self.rate_c * t2)
        log_total = np.log1p(self.rate_c * (stress_time + t2))
        requilibration = self.prefactor * (self.offset_a + log_t2)
        survival = 1.0 - (1.0 + self.k1 * log_t2) / (1.0 + self.k2 * log_total)
        result = requilibration + shift_at_stress_end * survival
        return float(result) if result.ndim == 0 else result


class FirstOrderBtiModel:
    """Composable stress + recovery first-order model (device or delay level).

    The same algebra serves dVth (paper Eqs. 1-4) and path delay (Eqs.
    8-12); only the prefactor units differ.  :class:`FirstOrderDelayModel`
    is a thin alias that documents the delay-level usage.
    """

    def __init__(self, stress: StressParameters, recovery: RecoveryParameters) -> None:
        self.stress = stress
        self.recovery = recovery

    # -- single-phase forms ------------------------------------------- #

    def stress_shift(self, t: np.ndarray | float) -> np.ndarray | float:
        """Shift after stressing a fresh device for ``t`` seconds (Eq. 1/10)."""
        return self.stress.shift(t)

    def recovery_shift(
        self, stress_time: float, recovery_time: np.ndarray | float
    ) -> np.ndarray | float:
        """Shift after ``stress_time`` of stress then ``recovery_time`` of sleep."""
        peak = float(np.asarray(self.stress.shift(stress_time)))
        return self.recovery.residual(peak, stress_time, recovery_time)

    def recovered(
        self, stress_time: float, recovery_time: np.ndarray | float
    ) -> np.ndarray | float:
        """Recovered amount RD = shift(t1) - shift(t1+t2) (paper Eq. 16)."""
        peak = float(np.asarray(self.stress.shift(stress_time)))
        residual = self.recovery_shift(stress_time, recovery_time)
        return peak - residual

    # -- periodic schedules (Eq. 12, Fig. 9) --------------------------- #

    def simulate_cycles(
        self, active_time: float, sleep_time: float, n_cycles: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Iterate stress/recovery cycles; returns (peaks, troughs).

        Each cycle stresses for ``active_time`` starting from the residue of
        the previous cycle (spliced in via the effective-stress-time trick)
        and then sleeps for ``sleep_time``.  ``peaks[i]`` is the shift at
        the end of cycle i's active phase, ``troughs[i]`` at the end of its
        sleep phase.  With ``alpha = active_time / sleep_time`` this
        realises the paper's Eq. (12) schedule.
        """
        if n_cycles <= 0:
            raise ConfigurationError(f"n_cycles must be positive, got {n_cycles}")
        peaks = np.empty(n_cycles)
        troughs = np.empty(n_cycles)
        residue = 0.0
        for cycle in range(n_cycles):
            t_eq = self.stress.effective_stress_time(residue)
            total_stress = t_eq + active_time
            peak = float(np.asarray(self.stress.shift(total_stress)))
            residue = float(
                np.asarray(self.recovery.residual(peak, total_stress, sleep_time))
            )
            residue = max(residue, 0.0)
            peaks[cycle] = peak
            troughs[cycle] = residue
        return peaks, troughs

    def is_monotonic_recovery(
        self, stress_time: float, horizon: float, n_points: int = 64
    ) -> bool:
        """Check the fitted recovery curve decreases over ``(0, horizon]``.

        The printed Eq. (3) only recovers for sensible parameter ranges;
        fitting can in principle land outside them, so validation code
        calls this before trusting a fit.
        """
        times = np.linspace(horizon / n_points, horizon, n_points)
        residuals = np.asarray(self.recovery_shift(stress_time, times))
        return bool(np.all(np.diff(residuals) <= 1e-12))


class FirstOrderDelayModel(FirstOrderBtiModel):
    """Path-delay level first-order model (paper Eqs. 8-12).

    Identical algebra to :class:`FirstOrderBtiModel` with the prefactor
    ``beta`` in seconds of path delay; exists so call sites read correctly.
    """

"""Reaction-diffusion (RD) BTI model — the classic power-law baseline.

The paper's model builds on trapping/detrapping physics (log-like in time);
the older reaction-diffusion picture predicts a power law ``dVth ~ K * t^n``
with ``n ~ 1/6`` and a square-root-in-time fractional recovery.  We keep an
RD implementation as a baseline so the benchmarks can show *why* the TD
closed forms fit log-like virtual-silicon data better (the same argument
the TD literature makes against RD on measured data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bti.acceleration import arrhenius_factor, field_factor
from repro.errors import ConfigurationError
from repro.units import celsius


@dataclass(frozen=True)
class ReactionDiffusionModel:
    """Power-law stress with square-root recovery.

    Stress:    ``dVth(t) = k_rd * AF(V, T) * t**exponent``
    Recovery:  ``dVth(t1 + t2) = dVth(t1) * (1 - sqrt(xi * t2 / (t1 + t2)))``
    floored at zero.

    ``AF`` combines an Arrhenius factor and an exponential field factor so
    the model can be compared against TD fits across the paper's
    conditions.
    """

    k_rd: float = 1.0e-3
    exponent: float = 1.0 / 6.0
    xi: float = 0.5
    ea_ev: float = 0.1
    gamma_per_volt: float = 2.0
    reference_voltage: float = 1.2
    reference_temperature: float = celsius(20.0)

    def __post_init__(self) -> None:
        if not 0.0 < self.exponent < 1.0:
            raise ConfigurationError(f"exponent must be in (0, 1), got {self.exponent}")
        if not 0.0 < self.xi <= 1.0:
            raise ConfigurationError(f"xi must be in (0, 1], got {self.xi}")

    def acceleration(self, voltage: float, temperature: float) -> float:
        """Combined voltage/temperature acceleration factor."""
        return arrhenius_factor(
            self.ea_ev, temperature, self.reference_temperature
        ) * field_factor(self.gamma_per_volt, voltage, self.reference_voltage)

    def stress_shift(
        self, t: np.ndarray | float, voltage: float, temperature: float
    ) -> np.ndarray | float:
        """Threshold shift after stressing a fresh device for ``t`` seconds."""
        t = np.asarray(t, dtype=float)
        result = self.k_rd * self.acceleration(voltage, temperature) * np.power(t, self.exponent)
        return float(result) if result.ndim == 0 else result

    def recovery_shift(
        self,
        shift_at_stress_end: float,
        stress_time: float,
        recovery_time: np.ndarray | float,
    ) -> np.ndarray | float:
        """Residual shift after ``recovery_time`` seconds unstressed."""
        if stress_time <= 0.0:
            raise ConfigurationError("stress_time must be positive for RD recovery")
        t2 = np.asarray(recovery_time, dtype=float)
        fraction = 1.0 - np.sqrt(self.xi * t2 / (stress_time + t2))
        result = np.maximum(shift_at_stress_end * fraction, 0.0)
        return float(result) if result.ndim == 0 else result

    def effective_stress_time(self, shift: float, voltage: float, temperature: float) -> float:
        """Invert :meth:`stress_shift` for splicing cycles together."""
        if shift <= 0.0:
            return 0.0
        scale = self.k_rd * self.acceleration(voltage, temperature)
        return float((shift / scale) ** (1.0 / self.exponent))

"""Explicit toggled-waveform simulation — validates the duty-cycle model.

The trap ensemble handles AC stress with duty-averaged rates (one evolve
per phase).  That averaging is exact in the limit where the toggling
period is far below every trap time constant; this module simulates the
waveform *explicitly* — alternating short constant-bias segments — so the
averaging can be checked rather than trusted (DESIGN.md ablation list).

Note the averaged path also applies the empirical AC capture-suppression
correction (``TrapParameters.ac_capture_suppression``); the explicit
simulation is pure rate physics.  For apples-to-apples comparison build
the population with ``ac_capture_suppression=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bti.traps import TrapPopulation
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ToggleComparison:
    """Outcome of an explicit-vs-averaged consistency run."""

    explicit_shift: np.ndarray
    averaged_shift: np.ndarray

    @property
    def max_relative_error(self) -> float:
        """Worst per-owner relative disagreement (against the averaged run)."""
        scale = float(np.max(np.abs(self.averaged_shift)))
        # Exact sentinel: max|shift| of an untouched population is 0.0
        # bit-for-bit; anything else must divide to a relative error.
        if scale == 0.0:  # repro: noqa[RPR003]
            return float(np.max(np.abs(self.explicit_shift)))
        return float(np.max(np.abs(self.explicit_shift - self.averaged_shift)) / scale)


def simulate_toggled(
    population: TrapPopulation,
    duration: float,
    toggle_period: float,
    stress_voltage,
    relax_voltage,
    temperature: float,
    duty: float = 0.5,
) -> None:
    """Evolve a population under an explicitly toggled square waveform.

    Each period spends ``duty * toggle_period`` at ``stress_voltage`` and
    the remainder at ``relax_voltage``.  A trailing partial period is
    split with the same duty.  O(duration / toggle_period) evolve calls —
    use for validation horizons, not MHz realism.
    """
    if duration <= 0.0 or toggle_period <= 0.0:
        raise ConfigurationError("duration and toggle_period must be positive")
    if toggle_period > duration:
        raise ConfigurationError("toggle_period must not exceed the duration")
    if not 0.0 < duty < 1.0:
        raise ConfigurationError("duty must be strictly inside (0, 1)")
    remaining = duration
    while remaining > 1e-12:
        period = min(toggle_period, remaining)
        population.evolve(period * duty, stress_voltage, temperature)
        population.evolve(period * (1.0 - duty), relax_voltage, temperature)
        remaining -= period


def duty_factor_curve(
    make_population,
    duration: float,
    stress_voltage,
    temperature: float,
    duties=(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
    relax_voltage=0.0,
) -> dict[float, float]:
    """Aggregate dVth vs stress duty cycle — the classic AC-BTI plot.

    Each duty gets a freshly drawn (identically seeded) population via
    ``make_population``.  Real devices show an S-shaped curve with a jump
    toward the DC point; the calibrated AC capture-suppression reproduces
    that shape.  Returns ``{duty: total dVth}``.
    """
    if duration <= 0.0:
        raise ConfigurationError("duration must be positive")
    curve: dict[float, float] = {}
    for duty in duties:
        if not 0.0 <= duty <= 1.0:
            raise ConfigurationError(f"duty {duty} outside [0, 1]")
        population = make_population()
        population.evolve(
            duration, stress_voltage, temperature, duty=duty,
            relax_voltage=relax_voltage,
        )
        curve[duty] = float(population.delta_vth().sum())
    return curve


def compare_toggled_vs_averaged(
    make_population,
    duration: float,
    toggle_period: float,
    stress_voltage,
    relax_voltage,
    temperature: float,
    duty: float = 0.5,
) -> ToggleComparison:
    """Run both models from identical initial populations and compare.

    ``make_population`` is a zero-argument factory returning identically
    seeded :class:`TrapPopulation` instances (so both runs see the same
    trap draws).
    """
    explicit = make_population()
    simulate_toggled(
        explicit, duration, toggle_period, stress_voltage, relax_voltage,
        temperature, duty,
    )
    averaged = make_population()
    averaged.evolve(
        duration, stress_voltage, temperature, duty=duty, relax_voltage=relax_voltage
    )
    return ToggleComparison(
        explicit_shift=explicit.delta_vth(), averaged_shift=averaged.delta_vth()
    )

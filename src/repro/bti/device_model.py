"""Single-transistor convenience wrapper over the trap ensemble.

:class:`DeviceAgingModel` is what you reach for in device-level studies
(threshold-voltage trajectories, statistical aging across device samples);
the FPGA substrate uses the underlying :class:`~repro.bti.traps.TrapPopulation`
directly so a whole chip evolves in one vectorised update.
"""

from __future__ import annotations

import numpy as np

from repro.bti.conditions import BiasCondition, BiasPhase, StressPolarity, Waveform, DC
from repro.bti.traps import TrapParameters, TrapPopulation


class DeviceAgingModel:
    """BTI aging state of one transistor.

    Parameters
    ----------
    params:
        Statistical trap-population description.
    polarity:
        NBTI (PMOS) or PBTI (NMOS); informational — the stress-voltage sign
        convention of :class:`BiasCondition` already folds the polarity in.
    rng:
        Seed or generator for sampling the trap population.
    """

    def __init__(
        self,
        params: TrapParameters | None = None,
        polarity: StressPolarity = StressPolarity.NBTI,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.params = params or TrapParameters()
        self.polarity = polarity
        self._population = TrapPopulation(self.params, n_owners=1, rng=rng)

    @property
    def population(self) -> TrapPopulation:
        """The underlying trap ensemble."""
        return self._population

    @property
    def elapsed(self) -> float:
        """Simulated seconds accumulated so far."""
        return self._population.elapsed

    @property
    def delta_vth(self) -> float:
        """Current expected threshold-voltage shift in volts."""
        return float(self._population.delta_vth()[0])

    def stress(
        self, duration: float, condition: BiasCondition, waveform: Waveform = DC
    ) -> float:
        """Apply a stress phase; returns the resulting ``delta_vth``."""
        self._population.evolve_phase(
            BiasPhase(duration=duration, bias=condition, waveform=waveform)
        )
        return self.delta_vth

    def recover(self, duration: float, condition: BiasCondition) -> float:
        """Apply a recovery phase; returns the resulting ``delta_vth``.

        ``condition.stress_voltage`` should be <= 0: zero for passive
        recovery (gated supply), negative for the paper's accelerated
        recovery.
        """
        return self.stress(duration, condition)

    def run_schedule(self, phases: list[BiasPhase]) -> np.ndarray:
        """Apply phases in order; returns ``delta_vth`` after each phase."""
        results = np.empty(len(phases))
        for index, phase in enumerate(phases):
            self._population.evolve_phase(phase)
            results[index] = self.delta_vth
        return results

    def trajectory(
        self, phase: BiasPhase, n_samples: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evolve through ``phase`` sampling ``delta_vth`` along the way.

        Returns ``(times, shifts)`` where ``times`` are offsets from the
        start of the phase (the endpoint included, 0 excluded).
        """
        step = phase.duration / n_samples
        times = np.empty(n_samples)
        shifts = np.empty(n_samples)
        sub = BiasPhase(
            duration=step,
            bias=phase.bias,
            waveform=phase.waveform,
            relax_bias=phase.relax_bias,
        )
        for index in range(n_samples):
            self._population.evolve_phase(sub)
            times[index] = (index + 1) * step
            shifts[index] = self.delta_vth
        return times, shifts

    def reset(self) -> None:
        """Return the device to the fresh state."""
        self._population.reset()

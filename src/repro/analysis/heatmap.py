"""ASCII heatmaps for matrices: thermal fields, CET maps, fabric surveys."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Shade ramp from cold to hot.
_RAMP = " .:-=+*#%@"


def render_heatmap(
    matrix,
    title: str = "",
    row_labels: Sequence[str] | None = None,
    col_labels: Sequence[str] | None = None,
    cell_width: int = 3,
) -> str:
    """Render a 2-D array as a shaded character grid with a scale legend.

    Values are normalised over the whole matrix; each cell prints the
    shade character ``cell_width`` times so the grid reads roughly square
    in a terminal.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.size == 0:
        raise ConfigurationError("heatmap needs a non-empty 2-D matrix")
    if cell_width < 1:
        raise ConfigurationError("cell_width must be at least 1")
    lo = float(matrix.min())
    hi = float(matrix.max())
    span = hi - lo if hi > lo else 1.0
    levels = np.clip(
        ((matrix - lo) / span * (len(_RAMP) - 1)).round().astype(int),
        0,
        len(_RAMP) - 1,
    )
    rows, cols = matrix.shape
    if row_labels is not None and len(row_labels) != rows:
        raise ConfigurationError("row_labels must match the matrix height")
    if col_labels is not None and len(col_labels) != cols:
        raise ConfigurationError("col_labels must match the matrix width")

    label_width = max((len(l) for l in row_labels), default=0) if row_labels else 0
    lines: list[str] = []
    if title:
        lines.append(title)
    if col_labels is not None:
        header = " " * (label_width + 1) + "".join(
            label[:cell_width].center(cell_width) for label in col_labels
        )
        lines.append(header)
    for r in range(rows):
        prefix = (row_labels[r].rjust(label_width) + " ") if row_labels else ""
        cells = "".join(_RAMP[levels[r, c]] * cell_width for c in range(cols))
        lines.append(prefix + cells)
    lines.append(f"scale: '{_RAMP[0]}' = {lo:.4g}  ..  '{_RAMP[-1]}' = {hi:.4g}")
    return "\n".join(lines)

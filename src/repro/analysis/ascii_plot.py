"""Terminal line plots for benchmark output.

The benchmarks print the *data* of every figure; for the curves a small
ASCII rendering makes the shapes (fast-then-slow wearout, the recovery
fan, the circadian saw-tooth) visible straight from the test log without
a plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.series import Series
from repro.errors import ConfigurationError

_MARKERS = "*o+x#@%&"


def line_plot(
    series: Sequence[Series],
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "time",
    y_label: str = "value",
) -> str:
    """Render one or more series into an ASCII grid.

    Each series gets a marker from ``*o+x#@%&``; the legend maps markers
    to labels.  Points are nearest-cell rasterised; later series overwrite
    earlier ones where they collide.
    """
    if not series:
        raise ConfigurationError("line_plot needs at least one series")
    if width < 16 or height < 4:
        raise ConfigurationError("plot must be at least 16 x 4 cells")
    if len(series) > len(_MARKERS):
        raise ConfigurationError(f"at most {len(_MARKERS)} series supported")

    x_min = min(float(s.times.min()) for s in series)
    x_max = max(float(s.times.max()) for s in series)
    y_min = min(float(s.values.min()) for s in series)
    y_max = max(float(s.values.max()) for s in series)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for __ in range(height)]
    for marker, s in zip(_MARKERS, series):
        cols = np.round(
            (s.times - x_min) / (x_max - x_min) * (width - 1)
        ).astype(int)
        rows = np.round(
            (s.values - y_min) / (y_max - y_min) * (height - 1)
        ).astype(int)
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_tick = f"{y_max:.3g}"
    bottom_tick = f"{y_min:.3g}"
    tick_width = max(len(top_tick), len(bottom_tick), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_tick.rjust(tick_width)
        elif i == height - 1:
            prefix = bottom_tick.rjust(tick_width)
        elif i == height // 2:
            prefix = y_label.rjust(tick_width)
        else:
            prefix = " " * tick_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * tick_width + " +" + "-" * width
    lines.append(axis)
    x_axis = f"{x_min:.3g}".ljust(width - 8) + f"{x_max:.3g}"
    lines.append(" " * (tick_width + 2) + x_axis + f"  ({x_label})")
    legend = "   ".join(
        f"{marker} {s.label}" for marker, s in zip(_MARKERS, series)
    )
    lines.append(" " * (tick_width + 2) + legend)
    return "\n".join(lines)

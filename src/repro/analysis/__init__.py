"""Analysis helpers: time series, summary statistics, tables, CSV export.

The domain linter and static experiment validator live in the
:mod:`repro.analysis.lint` subpackage (imported lazily by ``repro
lint`` so the data helpers stay dependency-light).
"""

from repro.analysis.ascii_plot import line_plot
from repro.analysis.export import write_series_csv, write_table_csv
from repro.analysis.heatmap import render_heatmap
from repro.analysis.series import Series, downsample, nearest_index, resample
from repro.analysis.stats import bootstrap_ci, summary
from repro.analysis.tables import Table, format_paper_comparison

__all__ = [
    "Series",
    "Table",
    "bootstrap_ci",
    "downsample",
    "format_paper_comparison",
    "line_plot",
    "render_heatmap",
    "nearest_index",
    "resample",
    "summary",
    "write_series_csv",
    "write_table_csv",
]

"""CSV export of experiment series and tables."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.errors import ConfigurationError


def write_series_csv(path: str | Path, series: Sequence[Series]) -> None:
    """Write several series to one CSV (long format: label, time, value).

    Long format keeps series with different time axes in one file, which
    is how the per-figure benchmark data is archived.
    """
    if not series:
        raise ConfigurationError("write_series_csv needs at least one series")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", "time_s", "value", "units"])
        for s in series:
            for t, v in zip(s.times, s.values):
                writer.writerow([s.label, repr(float(t)), repr(float(v)), s.units])


def write_table_csv(path: str | Path, table: Table) -> None:
    """Write a :class:`Table` to CSV with its header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(table.columns))
        for row in table.rows:
            writer.writerow(row)

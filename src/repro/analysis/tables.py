"""ASCII table rendering for benchmark output.

Every benchmark prints the rows/series the corresponding paper table or
figure reports; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError


@dataclass
class Table:
    """A simple aligned text table.

    ``title`` is printed above the header; cells are stringified with
    ``fmt`` when numeric (pass pre-formatted strings to opt out).
    """

    title: str
    columns: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)
    fmt: str = "{:.3f}"

    def add_row(self, *cells: object) -> None:
        """Append one row; must match the column count."""
        if len(cells) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(cells)} cells for {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def _render_cell(self, cell: object) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return self.fmt.format(cell)
        return str(cell)

    def render(self) -> str:
        """The table as an aligned multi-line string."""
        header = [str(c) for c in self.columns]
        body = [[self._render_cell(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table followed by a blank line."""
        print(self.render())
        print()


def format_paper_comparison(
    title: str,
    rows: Sequence[tuple[str, object, object]],
    paper_label: str = "paper",
    measured_label: str = "measured",
) -> str:
    """Side-by-side paper-vs-measured table used in EXPERIMENTS.md.

    ``rows`` are (quantity, paper value, measured value); values may be
    strings ("~half", "n/a") or numbers.
    """
    table = Table(title, ["quantity", paper_label, measured_label])
    for name, paper, measured in rows:
        table.add_row(name, paper, measured)
    return table.render()

"""Baseline: let pre-existing findings ride while new ones gate.

The baseline file (committed at the repo root as
``.repro-lint-baseline.json``) records the fingerprint of every
accepted finding.  ``repro lint`` subtracts baselined findings from the
gate, reports entries that no longer match anything (stale — prune
them), and ``--write-baseline`` regenerates the file from the current
tree.

Matching is by :attr:`Finding.fingerprint` (rule + path + message), a
multiset so two identical findings need two entries.  Line numbers in
the file are informational only — a finding that merely moves stays
baselined.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.analysis.lint.findings import Finding

_VERSION = 1


@dataclass
class Baseline:
    """Accepted findings, keyed by fingerprint (multiset)."""

    counts: Counter = field(default_factory=Counter)
    #: fingerprint -> one representative entry dict, for stale reporting.
    entries: dict[str, dict] = field(default_factory=dict)

    def __len__(self) -> int:
        return sum(self.counts.values())


@dataclass
class BaselineDiff:
    """Findings split against a baseline.

    ``new`` gate CI; ``baselined`` matched an entry; ``stale`` are
    baseline entries whose finding no longer exists (prune them with
    ``--write-baseline``).
    """

    new: list[Finding]
    baselined: list[Finding]
    stale: list[dict]


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; raises :class:`ConfigurationError` if malformed."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(f"cannot read baseline {path}: {error}") from None
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ConfigurationError(
            f"baseline {path} is not a version-{_VERSION} repro-lint baseline"
        )
    baseline = Baseline()
    for entry in payload.get("entries", []):
        fingerprint = entry.get("fingerprint")
        if not fingerprint:
            raise ConfigurationError(f"baseline {path} has an entry without fingerprint")
        baseline.counts[fingerprint] += 1
        baseline.entries.setdefault(fingerprint, entry)
    return baseline


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, human-reviewable)."""
    entries = [
        {
            "fingerprint": finding.fingerprint,
            "rule": finding.rule_id,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule_id))
    ]
    payload = {"version": _VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(findings: list[Finding], baseline: Baseline) -> BaselineDiff:
    """Split ``findings`` into new vs baselined and spot stale entries."""
    remaining = Counter(baseline.counts)
    new: list[Finding] = []
    matched: list[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale = [
        baseline.entries[fingerprint]
        for fingerprint, count in sorted(remaining.items())
        if count > 0
    ]
    return BaselineDiff(new=new, baselined=matched, stale=stale)

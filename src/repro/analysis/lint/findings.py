"""The unit of lint output: one finding at one location."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is; ``ERROR`` findings gate CI."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative with forward slashes so findings (and the
    baseline entries derived from them) are stable across checkouts.
    ``suggestion`` tells the author how to fix or suppress; ``line`` is
    1-based (0 for whole-file or semantic findings).
    """

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str
    suggestion: str = ""
    suppressed: bool = field(default=False, compare=False)

    @property
    def location(self) -> str:
        """``file:line`` — clickable in most terminals."""
        return f"{self.path}:{self.line}"

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes the line number: a baselined finding that
        merely moves (code added above it) stays baselined; one whose
        message changes is new.
        """
        digest = hashlib.sha256(
            f"{self.rule_id}|{self.path}|{self.message}".encode()
        )
        return digest.hexdigest()[:16]

    def __str__(self) -> str:
        text = f"{self.location}: {self.rule_id} [{self.severity.value}] {self.message}"
        if self.suggestion:
            text += f" ({self.suggestion})"
        return text

"""Domain lint: AST rules and the static experiment validator.

The reproduction's correctness rests on invariants the test suite can
only sample — SI-unit discipline, seeded randomness, physically sane
schedules.  This package checks them *statically*:

* :mod:`repro.analysis.lint.engine` walks Python sources once per file
  and dispatches registered :class:`Rule` subclasses over the AST;
* :mod:`repro.analysis.lint.builtin` holds the RPR0xx rules grounded in
  this repo's conventions (unit literals, nondeterminism, float
  equality, Celsius-into-Kelvin slips, span hygiene);
* :mod:`repro.analysis.lint.validator` imports the experiment registry
  and validates every descriptor and schedule without running a single
  simulation step (the RPR1xx findings);
* :mod:`repro.analysis.lint.baseline` lets pre-existing findings ride in
  a committed baseline file while new ones fail CI.

Entry point: ``repro lint`` (see :mod:`repro.cli`).
"""

from repro.analysis.lint.baseline import (
    Baseline,
    BaselineDiff,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.builtin import BUILTIN_RULES
from repro.analysis.lint.engine import LintResult, lint_paths, lint_source
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.reporting import render_json, render_text
from repro.analysis.lint.rules import Rule, RuleContext
from repro.analysis.lint.validator import validate_experiments

__all__ = [
    "BUILTIN_RULES",
    "Baseline",
    "BaselineDiff",
    "Finding",
    "LintResult",
    "Rule",
    "RuleContext",
    "Severity",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_text",
    "validate_experiments",
    "write_baseline",
]

"""The lint engine: file walking, AST dispatch, noqa suppression.

One parse per file; every node is offered to the rules registered for
its type.  Suppression is per line: ``# repro: noqa[RPR003]`` silences
the listed rule(s) on that line, bare ``# repro: noqa`` silences them
all.  Suppressed findings are kept (marked ``suppressed``) so reporters
can count them, but they never gate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.analysis.lint.builtin import BUILTIN_RULES
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.rules import Rule, RuleContext, validate_rules

#: ``# repro: noqa`` or ``# repro: noqa[RPR001]`` / ``[RPR001, RPR003]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9,\s]+)\])?")


@dataclass
class LintResult:
    """Everything one lint run produced.

    ``findings`` are the active (non-suppressed) violations;
    ``suppressed`` the ones silenced by an in-line noqa; ``files``
    counts how many files were parsed.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0

    def extend(self, other: "LintResult") -> None:
        """Fold another result into this one."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files += other.files


def noqa_rules_for_line(line: str) -> frozenset[str] | None:
    """Rule ids suppressed by ``line``'s noqa comment.

    Returns ``None`` when the line carries no repro-noqa, an empty set
    for the bare form (suppress everything), else the listed ids.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    listed = match.group(1)
    if listed is None:
        return frozenset()
    return frozenset(part.strip().upper() for part in listed.split(",") if part.strip())


def _is_suppressed(finding: Finding, source_lines: Sequence[str]) -> bool:
    if not 1 <= finding.line <= len(source_lines):
        return False
    rules = noqa_rules_for_line(source_lines[finding.line - 1])
    if rules is None:
        return False
    return not rules or finding.rule_id in rules


def lint_source(
    source: str, path: str, rules: Iterable[Rule] | None = None
) -> LintResult:
    """Lint one Python source string as if it lived at ``path``.

    A file that does not parse yields a single ``RPR000`` finding at the
    syntax error's location rather than crashing the run.
    """
    active = validate_rules(BUILTIN_RULES if rules is None else rules)
    result = LintResult(files=1)
    source_lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        result.findings.append(
            Finding(
                rule_id="RPR000",
                severity=Severity.ERROR,
                path=path,
                line=error.lineno or 0,
                message=f"file does not parse: {error.msg}",
                suggestion="fix the syntax error",
            )
        )
        return result
    ctx = RuleContext(path, tree, source_lines)
    dispatch: dict[type[ast.AST], list[Rule]] = {}
    for rule in active:
        if not rule.applies_to(path):
            continue
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    if not dispatch:
        return result
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            for finding in rule.check(node, ctx):
                if _is_suppressed(finding, source_lines):
                    result.suppressed.append(replace(finding, suppressed=True))
                else:
                    result.findings.append(finding)
    # ast.walk order is breadth-first; sort so same-line findings come
    # out in rule-id order regardless of nesting depth.
    result.findings.sort(key=lambda f: (f.line, f.rule_id))
    result.suppressed.sort(key=lambda f: (f.line, f.rule_id))
    return result


def _python_files(target: Path) -> list[Path]:
    if target.is_file():
        return [target]
    if target.is_dir():
        return sorted(p for p in target.rglob("*.py") if "__pycache__" not in p.parts)
    raise ConfigurationError(f"lint target {target} does not exist")


def lint_paths(
    paths: Sequence[str | Path],
    rules: Iterable[Rule] | None = None,
    root: str | Path | None = None,
) -> LintResult:
    """Lint files/directories, reporting paths relative to ``root``.

    ``root`` (default: the current directory) anchors the repo-relative
    finding paths that the baseline keys on.
    """
    root = Path(root if root is not None else ".").resolve()
    result = LintResult()
    for raw in paths:
        for file_path in _python_files(Path(raw)):
            resolved = file_path.resolve()
            try:
                relative = resolved.relative_to(root).as_posix()
            except ValueError:
                relative = resolved.as_posix()
            source = file_path.read_text(encoding="utf-8")
            result.extend(lint_source(source, relative, rules=rules))
    return result

"""The built-in RPR0xx rules, grounded in this repo's conventions.

==========  ====================================================
RPR001      unit literal that must come from :mod:`repro.units`
RPR002      nondeterminism on a simulation path
RPR003      ``==``/``!=`` against a float literal
RPR004      Celsius-looking literal passed to a kelvin parameter
RPR005      ``tracer.span(...)`` opened outside a ``with`` block
RPR006      raw ``exp`` (or division by one) on a guarded physics path
RPR007      metric name that breaks the dotted-lowercase convention
==========  ====================================================

Suppress a deliberate violation with ``# repro: noqa[RPR00X]`` on the
offending line, or record it in the committed baseline (see
:mod:`repro.analysis.lint.baseline`).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.rules import Rule, RuleContext

#: Magic values RPR001 hunts for, mapped to the `repro.units` spelling.
UNIT_LITERALS: dict[float, str] = {
    3600.0: "units.SECONDS_PER_HOUR",
    86400.0: "units.SECONDS_PER_DAY",
    273.15: "units.ZERO_CELSIUS_K (or units.celsius/to_celsius)",
    8.617e-5: "units.BOLTZMANN_EV",
    8.617333262e-5: "units.BOLTZMANN_EV",
}

#: Legacy global-state numpy.random functions (forbidden everywhere).
_NP_RANDOM_GLOBALS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "uniform",
        "normal",
        "choice",
        "shuffle",
        "permutation",
    }
)

#: Wall-clock reads that make a simulation path nondeterministic.
_WALL_CLOCK_ATTRS = frozenset({"now", "utcnow", "today"})


def _dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of a call target ("np.random.default_rng")."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(_dotted_name(node.func) + "()")
    return ".".join(reversed(parts))


def _numeric_literal(node: ast.AST) -> float | None:
    """The value of a (possibly negated) int/float literal, else None."""
    sign = 1.0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        sign = -1.0
        node = node.operand
    if isinstance(node, ast.Constant) and type(node.value) in (int, float):
        return sign * float(node.value)
    return None


class UnitLiteralRule(Rule):
    """RPR001: a magic number that `repro.units` already names.

    ``3600`` in a duration or ``273.15`` in a conversion is a silent
    fork of the unit system; the constant keeps every conversion in one
    audited place.
    """

    rule_id = "RPR001"
    title = "unit-literal"
    severity = Severity.ERROR
    node_types = (ast.Constant,)

    def applies_to(self, path: str) -> bool:
        """`repro/units.py` defines these literals; the linter names them."""
        return not (path.endswith("repro/units.py") or "analysis/lint/" in path)

    def check(self, node: ast.Constant, ctx: RuleContext) -> Iterator[Finding]:
        """Flag int/float constants equal to a known unit literal."""
        if type(node.value) not in (int, float):
            return
        value = float(node.value)
        for magic, replacement in UNIT_LITERALS.items():
            if value == magic:
                yield self.finding(
                    node,
                    ctx,
                    f"magic unit literal {node.value!r}",
                    f"use {replacement} from repro.units",
                )
                return


class NondeterminismRule(Rule):
    """RPR002: wall clocks and unseeded RNGs on simulation paths.

    Every stochastic component threads an explicit
    ``np.random.Generator``; experiments are functions of a seed.  Wall
    clocks belong to the telemetry layer (`repro/obs/`), which is
    allowlisted.
    """

    rule_id = "RPR002"
    title = "nondeterminism"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        """`repro/obs/` measures wall time by design."""
        return "/obs/" not in path

    def check(self, node: ast.Call, ctx: RuleContext) -> Iterator[Finding]:
        """Flag wall-clock reads, global RNG use, and seedless default_rng()."""
        name = _dotted_name(node.func)
        if not name:
            return
        head, _, tail = name.rpartition(".")
        if name == "time.time":
            yield self.finding(
                node,
                ctx,
                "wall-clock read time.time() on a simulation path",
                "thread simulated time explicitly (or move to repro.obs)",
            )
        elif tail in _WALL_CLOCK_ATTRS and (
            head.endswith("datetime") or head.endswith("date")
        ):
            yield self.finding(
                node,
                ctx,
                f"wall-clock read {name}() on a simulation path",
                "derive timestamps from the seed-driven simulation clock",
            )
        elif head == "random" or name.startswith("random."):
            yield self.finding(
                node,
                ctx,
                f"stdlib global RNG {name}()",
                "use a seeded np.random.Generator threaded from the caller",
            )
        elif tail in _NP_RANDOM_GLOBALS and head.endswith("random") and "." in head:
            yield self.finding(
                node,
                ctx,
                f"legacy numpy global RNG {name}()",
                "use a seeded np.random.Generator threaded from the caller",
            )
        elif tail == "default_rng" and not node.args and not node.keywords:
            yield self.finding(
                node,
                ctx,
                "default_rng() with no seed",
                "accept an rng/seed parameter and pass it through",
            )


class FloatEqualityRule(Rule):
    """RPR003: ``==``/``!=`` against a float literal.

    Computed floats rarely land exactly on a literal; use
    ``math.isclose``, an ordering, or suppress with a comment explaining
    why the value is an exact sentinel (e.g. survives a CSV round trip).
    """

    rule_id = "RPR003"
    title = "float-equality"
    severity = Severity.ERROR
    node_types = (ast.Compare,)

    def check(self, node: ast.Compare, ctx: RuleContext) -> Iterator[Finding]:
        """Flag Eq/NotEq comparisons where either side is a float literal."""
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                value = _numeric_literal(side)
                if value is not None and isinstance(
                    side.operand.value if isinstance(side, ast.UnaryOp) else side.value,
                    float,
                ):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        node,
                        ctx,
                        f"float equality `{symbol} {value}`",
                        "use math.isclose/an ordering, or document the exact "
                        "sentinel and add `# repro: noqa[RPR003]`",
                    )
                    break


class CelsiusKelvinRule(Rule):
    """RPR004: a Celsius-looking literal passed to a kelvin parameter.

    Kelvin-typed parameters in this repo are named ``temperature`` /
    ``*_temperature`` / ``temp_k`` (Celsius ones end in ``_c``).  Any
    literal below 200 K handed to one is almost certainly a Celsius slip
    — silicon is not tested at cryogenic temperatures here.
    """

    rule_id = "RPR004"
    title = "celsius-kelvin"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    #: Below this many kelvin a literal is assumed to be Celsius.
    MIN_PLAUSIBLE_K = 200.0

    def check(self, node: ast.Call, ctx: RuleContext) -> Iterator[Finding]:
        """Flag suspiciously small literals bound to kelvin keywords."""
        for keyword in node.keywords:
            name = keyword.arg
            if name is None:
                continue
            if not (name == "temp_k" or name == "temperature"
                    or name.endswith("_temperature")):
                continue
            value = _numeric_literal(keyword.value)
            if value is not None and value < self.MIN_PLAUSIBLE_K:
                yield self.finding(
                    node,
                    ctx,
                    f"literal {value:g} passed to kelvin parameter {name!r} "
                    "looks like Celsius",
                    "wrap it in repro.units.celsius(...)",
                )


class SpanHygieneRule(Rule):
    """RPR005: ``tracer.span(...)`` opened outside a ``with`` block.

    A span only records its duration when its context manager exits; a
    bare call leaves it on the tracer's stack forever, corrupting the
    parentage of every later span.
    """

    rule_id = "RPR005"
    title = "span-hygiene"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    @staticmethod
    def _receiver_name(func: ast.Attribute) -> str:
        """Terminal name of the object `.span` is called on."""
        value = func.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
        if isinstance(value, ast.Call):
            return _dotted_name(value.func).rpartition(".")[2]
        return ""

    def check(self, node: ast.Call, ctx: RuleContext) -> Iterator[Finding]:
        """Flag tracer span calls that are not a `with` context expression."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "span"):
            return
        receiver = self._receiver_name(func)
        if not receiver.endswith("tracer"):
            return
        parent = ctx.parent(node)
        if isinstance(parent, ast.withitem) and parent.context_expr is node:
            return
        yield self.finding(
            node,
            ctx,
            f"{receiver}.span(...) opened outside a `with` block",
            "use `with tracer.span(...):` so the span closes and unwinds",
        )


class UnguardedExpRule(Rule):
    """RPR006: raw ``exp`` on a guarded physics path.

    The model stack's hot modules (``bti``, ``device``, ``fpga``,
    ``multicore``) compute their rate factors through
    :func:`repro.guard.safe_exp` / ``safe_exp_array`` so extreme
    temperatures and fields saturate instead of overflowing to inf —
    which the runtime physics contracts would then trip on at a far less
    helpful distance from the cause.  An ``exp`` whose argument is
    already clamped (``min`` / ``np.minimum`` / ``np.clip``) passes;
    deliberate negative-exponent sites carry ``# repro: noqa[RPR006]``
    or live in the committed baseline.  Division *by* an exponential is
    flagged separately: the denominator underflowing to 0.0 turns a
    saturation into a ZeroDivisionError/inf — multiply by the negated
    exponent instead.
    """

    rule_id = "RPR006"
    title = "unguarded-exp"
    severity = Severity.ERROR
    node_types = (ast.Call, ast.BinOp)

    #: Module path segments whose physics is under runtime guard contracts.
    GUARDED_SEGMENTS = ("/bti/", "/device/", "/fpga/", "/multicore/")

    #: Call names that bound the exponent before the exp.
    _CLAMPING = frozenset({"min", "minimum", "clip"})

    #: Exponential spellings a denominator must never be.
    _EXP_NAMES = frozenset({"exp", "expm1", "exp2", "safe_exp", "safe_exp_array"})

    def applies_to(self, path: str) -> bool:
        """Only the guarded model modules; the guard package defines the helpers."""
        return any(segment in path for segment in self.GUARDED_SEGMENTS)

    @staticmethod
    def _call_tail(node: ast.AST) -> str:
        """Terminal attribute name of a call target, or empty."""
        if not isinstance(node, ast.Call):
            return ""
        return _dotted_name(node.func).rpartition(".")[2]

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        """Flag unclamped exp calls and divisions by an exponential."""
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div) and self._call_tail(node.right) in self._EXP_NAMES:
                yield self.finding(
                    node,
                    ctx,
                    "division by an exponential on a guarded physics path",
                    "an underflowing denominator turns into 0.0 -> inf; "
                    "multiply by the negated-exponent form instead",
                )
            return
        name = _dotted_name(node.func)
        head, _, tail = name.rpartition(".")
        if tail != "exp" or head not in ("math", "np", "numpy"):
            return
        if node.args and self._call_tail(node.args[0]) in self._CLAMPING:
            return
        yield self.finding(
            node,
            ctx,
            f"raw {name}() on a guarded physics path",
            "use repro.guard.safe_exp/safe_exp_array (or clamp the exponent) "
            "so extreme conditions saturate instead of overflowing",
        )


class MetricNameRule(Rule):
    """RPR007: counter/gauge names must follow the metric convention.

    Every metric is a dotted lowercase path —
    ``<subsystem>.<noun>[.<verb>]`` like ``bti.trap_updates`` or
    ``guard.violations.monotonic_occupancy`` — so the trace query
    engine's family rollups (``bti.rate_cache.*``) and the stats CLI
    sort stably.  A literal that breaks the pattern fragments the
    namespace; a *dynamic* name (f-string, variable) creates an
    unbounded metric family the rollups cannot pin — deliberate dynamic
    families (the guard's per-contract violation counters) live in the
    committed baseline.
    """

    rule_id = "RPR007"
    title = "metric-naming"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    #: Registry/tracer factory methods whose first argument is the name.
    _FACTORIES = frozenset({"counter", "gauge", "histogram", "derived_gauge"})

    #: dotted lowercase, at least two segments.
    _NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

    def applies_to(self, path: str) -> bool:
        """The obs layer itself forwards names it did not choose."""
        return "/obs/" not in path and "analysis/lint/" not in path

    def check(self, node: ast.Call, ctx: RuleContext) -> Iterator[Finding]:
        """Flag malformed literal names and dynamic name expressions."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in self._FACTORIES):
            return
        receiver = SpanHygieneRule._receiver_name(func)
        if not receiver.endswith(("tracer", "metrics", "registry")):
            return
        name_node: ast.AST | None = node.args[0] if node.args else None
        if name_node is None:
            for keyword in node.keywords:
                if keyword.arg == "name":
                    name_node = keyword.value
                    break
        if name_node is None:
            return
        if isinstance(name_node, ast.Constant) and isinstance(name_node.value, str):
            if not self._NAME_PATTERN.match(name_node.value):
                yield self.finding(
                    node,
                    ctx,
                    f"metric name {name_node.value!r} breaks the "
                    "<subsystem>.<noun>[.<verb>] convention",
                    "use dotted lowercase with at least two segments, "
                    "e.g. 'bti.trap_updates'",
                )
        else:
            yield self.finding(
                node,
                ctx,
                f"dynamic metric name passed to {func.attr}()",
                "prefer a literal dotted name so family rollups stay "
                "bounded; a deliberate dynamic family belongs in the "
                "baseline with a comment at the call site",
            )


#: The default rule set `repro lint` runs.
BUILTIN_RULES: tuple[Rule, ...] = (
    UnitLiteralRule(),
    NondeterminismRule(),
    FloatEqualityRule(),
    CelsiusKelvinRule(),
    SpanHygieneRule(),
    UnguardedExpRule(),
    MetricNameRule(),
)

"""Static experiment validation: check every registered experiment
descriptor and schedule without running a simulation step.

``repro lint --experiments`` imports the registry (cheap — runners are
only referenced, never called) and emits RPR1xx findings:

==========  =========================================================
RPR101      experiment-descriptor (ids, artefacts, runners, benches)
RPR102      schedule-case (grammar, uniqueness, sequence consistency)
RPR103      phase-sanity (durations, supplies, chamber-reachable temps)
RPR104      knob/waveform ranges (alpha > 0, duty in (0, 1], Vdda <= 0)
==========  =========================================================

Everything is injectable so tests can validate deliberately broken
fixtures; the defaults validate the real registry and Table 1 schedule.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.errors import ReproError
from repro.analysis.lint.findings import Finding, Severity

_REGISTRY_PATH = "src/repro/experiments/registry.py"
_SCHEDULE_PATH = "src/repro/lab/schedule.py"
_KNOBS_PATH = "src/repro/core/knobs.py"
_CONDITIONS_PATH = "src/repro/bti/conditions.py"


def _finding(rule_id: str, path: str, message: str, suggestion: str = "") -> Finding:
    return Finding(
        rule_id=rule_id,
        severity=Severity.ERROR,
        path=path,
        line=0,
        message=message,
        suggestion=suggestion,
    )


def _validate_descriptors(
    registry: Mapping[str, object], repo_root: Path | None
) -> list[Finding]:
    findings: list[Finding] = []
    benches_dir = (repo_root / "benchmarks") if repo_root is not None else None
    check_benches = benches_dir is not None and benches_dir.is_dir()
    for key, descriptor in registry.items():
        label = f"experiment {key!r}"
        exp_id = getattr(descriptor, "exp_id", "")
        if not exp_id or exp_id != exp_id.upper():
            findings.append(
                _finding(
                    "RPR101",
                    _REGISTRY_PATH,
                    f"{label}: exp_id {exp_id!r} must be non-empty uppercase",
                )
            )
        if exp_id and exp_id != key:
            findings.append(
                _finding(
                    "RPR101",
                    _REGISTRY_PATH,
                    f"{label}: registered under {key!r} but exp_id is {exp_id!r}",
                )
            )
        for field_name in ("paper_artifact", "description", "bench"):
            if not getattr(descriptor, field_name, ""):
                findings.append(
                    _finding(
                        "RPR101", _REGISTRY_PATH, f"{label}: empty {field_name}"
                    )
                )
        runner = getattr(descriptor, "runner", None)
        if not callable(runner):
            findings.append(
                _finding("RPR101", _REGISTRY_PATH, f"{label}: runner is not callable")
            )
        bench = getattr(descriptor, "bench", "")
        if check_benches and bench and not (repo_root / bench).is_file():
            findings.append(
                _finding(
                    "RPR101",
                    _REGISTRY_PATH,
                    f"{label}: bench file {bench!r} does not exist",
                )
            )
    return findings


def _validate_phase(label: str, phase, chamber) -> list[Finding]:
    findings: list[Finding] = []
    duration = float(getattr(phase, "duration", 0.0))
    if duration <= 0.0:
        findings.append(
            _finding(
                "RPR103",
                _SCHEDULE_PATH,
                f"{label}: non-positive duration {duration:g} s",
            )
        )
    sampling = float(getattr(phase, "sampling_interval", 0.0))
    if sampling <= 0.0:
        findings.append(
            _finding(
                "RPR103",
                _SCHEDULE_PATH,
                f"{label}: non-positive sampling interval {sampling:g} s",
            )
        )
    elif duration > 0.0 and sampling > duration:
        findings.append(
            _finding(
                "RPR103",
                _SCHEDULE_PATH,
                f"{label}: sampling interval {sampling:g} s exceeds the phase "
                f"duration {duration:g} s (zero readouts)",
            )
        )
    supply = float(getattr(phase, "supply_voltage", 0.0))
    kind = getattr(getattr(phase, "kind", None), "value", "")
    if kind == "stress" and supply <= 0.0:
        findings.append(
            _finding(
                "RPR103",
                _SCHEDULE_PATH,
                f"{label}: stress phase at non-positive supply {supply:g} V",
            )
        )
    if kind == "recovery" and supply > 0.0:
        findings.append(
            _finding(
                "RPR103",
                _SCHEDULE_PATH,
                f"{label}: recovery phase at positive supply {supply:g} V "
                "(accelerated recovery needs Vdda <= 0)",
            )
        )
    temperature_c = float(getattr(phase, "temperature_c", 0.0))
    if not chamber.min_c <= temperature_c <= chamber.max_c:
        findings.append(
            _finding(
                "RPR103",
                _SCHEDULE_PATH,
                f"{label}: temperature {temperature_c:g} degC outside the "
                f"thermal chamber range [{chamber.min_c:g}, {chamber.max_c:g}]",
            )
        )
    return findings


def _validate_schedule(
    cases: Sequence[tuple[str, str, int]],
    sequences: Mapping[int, tuple[str, ...]],
    chamber,
    parse,
) -> list[Finding]:
    findings: list[Finding] = []
    table_pairs: list[tuple[str, int]] = []
    for group, name, chip_no in cases:
        label = f"Table 1 case {name!r} (chip {chip_no})"
        if chip_no <= 0:
            findings.append(
                _finding("RPR102", _SCHEDULE_PATH, f"{label}: chip_no must be positive")
            )
        table_pairs.append((name, chip_no))
        try:
            phase = parse(name)
        except ReproError as error:
            findings.append(
                _finding("RPR102", _SCHEDULE_PATH, f"{label}: {error}")
            )
            continue
        findings.extend(_validate_phase(label, phase, chamber))
    seen: set[tuple[str, int]] = set()
    for pair in table_pairs:
        if pair in seen:
            findings.append(
                _finding(
                    "RPR102",
                    _SCHEDULE_PATH,
                    f"duplicate Table 1 case id {pair[0]!r} on chip {pair[1]}",
                )
            )
        seen.add(pair)
    sequence_pairs = {
        (name, chip_no)
        for chip_no, names in sequences.items()
        for name in names
    }
    for name, chip_no in sorted(sequence_pairs - set(table_pairs)):
        findings.append(
            _finding(
                "RPR102",
                _SCHEDULE_PATH,
                f"chip {chip_no} sequence runs {name!r} which is not a "
                "Table 1 row",
            )
        )
    for name, chip_no in sorted(set(table_pairs) - sequence_pairs):
        findings.append(
            _finding(
                "RPR102",
                _SCHEDULE_PATH,
                f"Table 1 row {name!r} (chip {chip_no}) is missing from the "
                "chip execution sequences",
            )
        )
    return findings


def _validate_knobs(knobs_set: Mapping[str, object], chamber) -> list[Finding]:
    findings: list[Finding] = []
    for name, knobs in knobs_set.items():
        alpha = float(getattr(knobs, "alpha", 0.0))
        if alpha <= 0.0:
            findings.append(
                _finding(
                    "RPR104", _KNOBS_PATH, f"{name}: alpha must be positive, got {alpha:g}"
                )
            )
        sleep_voltage = float(getattr(knobs, "sleep_voltage", 0.0))
        if sleep_voltage > 0.0:
            findings.append(
                _finding(
                    "RPR104",
                    _KNOBS_PATH,
                    f"{name}: sleep (recovery) voltage must be <= 0 V, got "
                    f"{sleep_voltage:g}",
                )
            )
        sleep_temp = float(getattr(knobs, "sleep_temperature_c", 0.0))
        if not chamber.min_c <= sleep_temp <= chamber.max_c:
            findings.append(
                _finding(
                    "RPR104",
                    _KNOBS_PATH,
                    f"{name}: sleep temperature {sleep_temp:g} degC outside the "
                    f"thermal chamber range [{chamber.min_c:g}, {chamber.max_c:g}]",
                )
            )
    return findings


def _validate_waveforms(waveforms: Mapping[str, object]) -> list[Finding]:
    findings: list[Finding] = []
    for name, waveform in waveforms.items():
        duty = float(getattr(waveform, "duty", 0.0))
        if not 0.0 < duty <= 1.0:
            findings.append(
                _finding(
                    "RPR104",
                    _CONDITIONS_PATH,
                    f"waveform {name}: duty factor alpha must be in (0, 1], "
                    f"got {duty:g}",
                )
            )
    return findings


def validate_experiments(
    registry: Mapping[str, object] | None = None,
    cases: Sequence[tuple[str, str, int]] | None = None,
    sequences: Mapping[int, tuple[str, ...]] | None = None,
    chamber=None,
    knobs: Mapping[str, object] | None = None,
    waveforms: Mapping[str, object] | None = None,
    extra_phases: Iterable[tuple[str, object]] | None = None,
    repo_root: str | Path | None = ".",
    sweep_specs: Iterable[object] | None = None,
) -> list[Finding]:
    """Statically validate the experiment registry and lab schedules.

    With no arguments this checks the real registry, Table 1 schedule,
    recovery knobs, stress waveforms and the DEPEND demo sweep spec
    (RPR105/RPR106); every parameter is injectable for testing.  Returns
    findings (empty when everything is sane); no simulation is executed.
    """
    from repro.bti.conditions import AC_FIFTY_FIFTY, DC
    from repro.core.knobs import ACCELERATED_KNOBS, PASSIVE_KNOBS
    from repro.experiments.registry import EXPERIMENTS
    from repro.lab.schedule import (
        CHIP_SEQUENCES,
        TABLE1_CASES,
        baseline_phase,
        parse_case_name,
    )
    from repro.lab.thermal_chamber import ThermalChamber

    registry = EXPERIMENTS if registry is None else registry
    cases = TABLE1_CASES if cases is None else cases
    sequences = CHIP_SEQUENCES if sequences is None else sequences
    chamber = ThermalChamber() if chamber is None else chamber
    knobs = (
        {"PASSIVE_KNOBS": PASSIVE_KNOBS, "ACCELERATED_KNOBS": ACCELERATED_KNOBS}
        if knobs is None
        else knobs
    )
    waveforms = (
        {"DC": DC, "AC_FIFTY_FIFTY": AC_FIFTY_FIFTY} if waveforms is None else waveforms
    )
    if extra_phases is None:
        extra_phases = (("baseline burn-in", baseline_phase()),)
    root = Path(repo_root).resolve() if repo_root is not None else None

    findings = _validate_descriptors(registry, root)
    findings += _validate_schedule(cases, sequences, chamber, parse_case_name)
    for label, phase in extra_phases:
        findings += _validate_phase(label, phase, chamber)
    findings += _validate_knobs(knobs, chamber)
    findings += _validate_waveforms(waveforms)
    if sweep_specs is None:
        from repro.dependability.spec import demo_spec

        sweep_specs = (demo_spec(),)
    from repro.dependability.spec import validate_sweep_spec

    for spec in sweep_specs:
        findings += validate_sweep_spec(spec)
    return findings

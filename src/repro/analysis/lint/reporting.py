"""Reporters: findings as human text or machine JSON.

Text goes to developers' terminals (one ``file:line`` per finding, a
summary footer); JSON goes to CI and tooling (stable keys, includes
fingerprints so a failing run can be turned into baseline entries).
"""

from __future__ import annotations

import json

from repro.analysis.lint.baseline import BaselineDiff
from repro.analysis.lint.findings import Finding


def _summary(new: list[Finding], baselined: int, suppressed: int, stale: int) -> str:
    parts = [f"{len(new)} finding{'s' if len(new) != 1 else ''}"]
    if baselined:
        parts.append(f"{baselined} baselined")
    if suppressed:
        parts.append(f"{suppressed} suppressed")
    if stale:
        parts.append(f"{stale} stale baseline entr{'ies' if stale != 1 else 'y'}")
    return ", ".join(parts)


def render_text(
    diff: BaselineDiff, suppressed: list[Finding] | None = None
) -> str:
    """Human-readable report: one line per new finding plus a summary."""
    suppressed = suppressed or []
    lines = [str(finding) for finding in diff.new]
    for entry in diff.stale:
        lines.append(
            f"{entry.get('path')}:{entry.get('line')}: stale baseline entry "
            f"{entry.get('rule')} ({entry.get('message')}) — rerun with "
            "--prune-baseline to drop it"
        )
    lines.append(
        _summary(diff.new, len(diff.baselined), len(suppressed), len(diff.stale))
    )
    return "\n".join(lines)


def render_json(
    diff: BaselineDiff, suppressed: list[Finding] | None = None
) -> str:
    """Machine-readable report with stable keys."""
    suppressed = suppressed or []

    def encode(finding: Finding) -> dict:
        return {
            "rule": finding.rule_id,
            "severity": finding.severity.value,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "suggestion": finding.suggestion,
            "fingerprint": finding.fingerprint,
        }

    payload = {
        "findings": [encode(f) for f in diff.new],
        "baselined": len(diff.baselined),
        "suppressed": len(suppressed),
        "stale": diff.stale,
        "ok": not diff.new,
    }
    return json.dumps(payload, indent=2)

"""Rule base class, per-file context, and the rule registry.

A rule declares which AST node types it wants via ``node_types``; the
engine walks each file's tree exactly once and dispatches every visited
node to the rules registered for its type.  Rules are stateless between
files — anything per-file lives on the :class:`RuleContext`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.errors import ConfigurationError
from repro.analysis.lint.findings import Finding, Severity


class RuleContext:
    """What a rule may look at while checking one file.

    Provides the repo-relative path, the raw source lines, and a
    child -> parent map over the AST (built lazily, once per file) for
    rules that need structural context such as "is this call the context
    expression of a ``with``?".
    """

    def __init__(self, path: str, tree: ast.AST, source_lines: list[str]) -> None:
        self.path = path
        self.tree = tree
        self.source_lines = source_lines
        self._parents: dict[ast.AST, ast.AST] | None = None

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (None for the module root)."""
        if self._parents is None:
            self._parents = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    self._parents[child] = outer
        return self._parents.get(node)

    def line_text(self, lineno: int) -> str:
        """The 1-based physical source line (empty if out of range)."""
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` objects for each violation of ``node``.
    """

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    #: AST node types the engine should dispatch to this rule.
    node_types: tuple[type[ast.AST], ...] = ()

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        """Yield findings for ``node`` (called once per matching node)."""
        raise NotImplementedError

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` at all (repo-relative)."""
        return True

    def finding(
        self, node: ast.AST, ctx: RuleContext, message: str, suggestion: str = ""
    ) -> Finding:
        """A :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            message=message,
            suggestion=suggestion,
        )


def validate_rules(rules: Iterable[Rule]) -> list[Rule]:
    """Check a rule set is well-formed (unique non-empty ids, node types)."""
    checked: list[Rule] = []
    seen: set[str] = set()
    for rule in rules:
        if not rule.rule_id:
            raise ConfigurationError(f"rule {type(rule).__name__} has no rule_id")
        if rule.rule_id in seen:
            raise ConfigurationError(f"duplicate rule id {rule.rule_id}")
        if not rule.node_types:
            raise ConfigurationError(f"rule {rule.rule_id} declares no node_types")
        seen.add(rule.rule_id)
        checked.append(rule)
    return checked

"""Light-weight labelled time series used by the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Series:
    """An immutable (times, values) pair with a label and units.

    Times are seconds unless stated otherwise; the experiment layer keeps
    the paper's hour axes by converting at the edge.
    """

    label: str
    times: np.ndarray
    values: np.ndarray
    units: str = ""

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if times.shape != values.shape or times.ndim != 1:
            raise ConfigurationError("a series needs matching 1-D times and values")
        if times.size == 0:
            raise ConfigurationError("a series cannot be empty")
        if np.any(np.diff(times) < 0.0):
            raise ConfigurationError("series times must be non-decreasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return self.times.size

    @property
    def final(self) -> float:
        """Last value of the series."""
        return float(self.values[-1])

    @property
    def peak(self) -> float:
        """Largest value of the series."""
        return float(self.values.max())

    def at(self, time: float) -> float:
        """Value linearly interpolated at ``time``."""
        return float(np.interp(time, self.times, self.values))

    def scaled(self, factor: float, units: str | None = None) -> "Series":
        """New series with values scaled (e.g. seconds -> nanoseconds)."""
        return Series(
            label=self.label,
            times=self.times,
            values=self.values * factor,
            units=self.units if units is None else units,
        )

    def relabeled(self, label: str) -> "Series":
        """New series with a different label."""
        return Series(label=label, times=self.times, values=self.values, units=self.units)


def nearest_index(times, target: float) -> int:
    """Index of the sample closest in time to ``target``."""
    times = np.asarray(times, dtype=float)
    if times.size == 0:
        raise ConfigurationError("cannot search an empty time axis")
    return int(np.argmin(np.abs(times - target)))


def resample(series: Series, times) -> Series:
    """Series interpolated onto a new time grid."""
    times = np.asarray(times, dtype=float)
    values = np.interp(times, series.times, series.values)
    return Series(label=series.label, times=times, values=values, units=series.units)


def downsample(series: Series, every: int) -> Series:
    """Series keeping every ``every``-th sample (last sample always kept)."""
    if every <= 0:
        raise ConfigurationError(f"every must be positive, got {every}")
    index = np.arange(0, len(series), every)
    if index[-1] != len(series) - 1:
        index = np.append(index, len(series) - 1)
    return Series(
        label=series.label,
        times=series.times[index],
        values=series.values[index],
        units=series.units,
    )

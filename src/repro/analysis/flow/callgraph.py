"""Approximate call graph over a :class:`~repro.analysis.flow.project.Project`.

"Approximate" is deliberate: Python call targets are not statically
decidable, so the graph over-approximates in the directions that keep
the downstream passes *sound for their purpose* (reachability from
thread-pool workers):

* bare names resolve through the module binding tables (local defs,
  ``from m import f`` symbols, ``m.f`` attribute calls on imported
  project modules);
* ``self.method(...)`` resolves to the enclosing class's method when it
  defines one, else falls back to by-name matching;
* ``obj.method(...)`` on an unknown receiver matches *every* project
  method of that name — more reachability than reality, never less;
* calling a class reaches its ``__init__``;
* a function-valued argument (``pool.submit(worker, ...)``,
  ``sorted(key=score)``) adds an edge to the passed function;
* a nested ``def`` gets an implicit edge from its enclosing function.

The passes that consume the graph only *flag* narrow syntactic patterns
(global writes, shared-object mutation), so extra reachable functions
cost nothing unless they actually contain one.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.flow.project import Binding, ModuleInfo, Project, dotted_name


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None

    @property
    def bare_name(self) -> str:
        return self.node.name


@dataclass
class CallGraph:
    """Functions indexed by qualified name, plus resolved call edges."""

    project: Project
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: bare method name -> qualnames of project methods with that name.
    methods_by_name: dict[str, list[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        """Index every function/method and resolve its call edges."""
        graph = cls(project)
        for module in project.sorted_modules():
            graph._index_module(module)
        for info in graph.functions.values():
            graph.edges[info.qualname] = graph._resolve_calls(info)
        return graph

    def _index_module(self, module: ModuleInfo) -> None:
        def visit(node: ast.AST, prefix: str, cls_name: str | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{child.name}"
                    self.functions[qualname] = FunctionInfo(
                        qualname=qualname,
                        module=module.name,
                        path=module.path,
                        node=child,
                        cls=cls_name,
                    )
                    if cls_name is not None:
                        self.methods_by_name.setdefault(child.name, []).append(
                            qualname
                        )
                    visit(child, qualname, None)
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}.{child.name}", child.name)
                else:
                    visit(child, prefix, cls_name)

        visit(module.tree, module.name, None)

    # ------------------------------------------------------------------ #
    # call resolution
    # ------------------------------------------------------------------ #

    def _function_for_binding(
        self, binding: Binding | None
    ) -> list[str]:
        if binding is None:
            return []
        if binding.kind == "function" and binding.target in self.functions:
            return [binding.target]
        if binding.kind == "class":
            init = f"{binding.target}.__init__"
            return [init] if init in self.functions else []
        return []

    def _resolve_name_call(self, module: ModuleInfo, name: str) -> list[str]:
        return self._function_for_binding(self.project.resolve(module, name))

    def _resolve_calls(self, info: FunctionInfo) -> set[str]:
        module = self.project.modules[info.module]
        targets: set[str] = set()

        def add_callable_value(node: ast.AST) -> None:
            """A function passed *as a value* may later be called."""
            if isinstance(node, (ast.Name, ast.Attribute)):
                targets.update(self._resolve_name_call(module, dotted_name(node)))

        def resolve_call(call: ast.Call) -> None:
            func = call.func
            if isinstance(func, ast.Name):
                targets.update(self._resolve_name_call(module, func.id))
            elif isinstance(func, ast.Attribute):
                receiver = func.value
                if isinstance(receiver, ast.Name) and receiver.id == "self":
                    owned = (
                        f"{info.qualname.rsplit('.', 1)[0]}.{func.attr}"
                        if info.cls is not None
                        else ""
                    )
                    if owned in self.functions:
                        targets.add(owned)
                        return
                resolved = self._resolve_name_call(module, dotted_name(func))
                if resolved:
                    targets.update(resolved)
                else:
                    targets.update(self.methods_by_name.get(func.attr, ()))
            for arg in call.args:
                add_callable_value(arg)
            for keyword in call.keywords:
                add_callable_value(keyword.value)

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # Nested defs are separate graph nodes; the parent
                    # may call them, so keep the implicit edge.
                    targets.add(f"{info.qualname}.{child.name}")
                    continue
                if isinstance(child, ast.Call):
                    resolve_call(child)
                visit(child)

        visit(info.node)
        return targets

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def reachable(self, entries: Iterable[str]) -> set[str]:
        """Every function reachable from ``entries`` (inclusive), BFS order."""
        seen: set[str] = set()
        frontier: deque[str] = deque(sorted(set(entries) & set(self.functions)))
        seen.update(frontier)
        while frontier:
            current = frontier.popleft()
            for target in sorted(self.edges.get(current, ())):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def callers_of(self, qualname: str) -> list[str]:
        """Functions with a resolved edge to ``qualname``, sorted."""
        return sorted(f for f, edges in self.edges.items() if qualname in edges)

"""The deep-analysis entry point: project passes behind the lint API.

``analyze_paths`` is shaped exactly like
:func:`repro.analysis.lint.engine.lint_paths` — same ``LintResult``,
same noqa suppression, same repo-relative path space — so everything
downstream of the per-file engine (baselines, reporters, the CLI exit
code) works on deep findings unchanged.  ``repro lint --deep`` is just
the union of both results.
"""

from __future__ import annotations

from pathlib import Path
from dataclasses import replace
from typing import Sequence

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.merge import MergeRegistry
from repro.analysis.flow.project import Project
from repro.analysis.flow.rng_pass import run_rng_pass
from repro.analysis.flow.shared_state import run_shared_state_pass
from repro.analysis.lint.engine import LintResult, _is_suppressed

#: Every rule id the flow passes can emit, for docs and tests.
DEEP_RULE_IDS = (
    "RPR201",
    "RPR202",
    "RPR203",
    "RPR301",
    "RPR302",
    "RPR303",
    "RPR304",
    "RPR305",
)


def analyze_project(
    project: Project, merges: MergeRegistry | None = None
) -> LintResult:
    """Run both flow passes over an already-loaded project."""
    graph = CallGraph.build(project)
    raw = [
        *run_rng_pass(project, graph),
        *run_shared_state_pass(project, graph, merges),
    ]
    lines_by_path = {
        info.path: info.source_lines for info in project.modules.values()
    }
    result = LintResult(files=len(project))
    for finding in raw:
        if _is_suppressed(finding, lines_by_path.get(finding.path, [])):
            result.suppressed.append(replace(finding, suppressed=True))
        else:
            result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return result


def analyze_paths(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
    merges: MergeRegistry | None = None,
) -> LintResult:
    """Deep-analyze files/directories, reporting paths relative to ``root``."""
    return analyze_project(Project.load(paths, root=root), merges=merges)

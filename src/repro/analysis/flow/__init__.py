"""Cross-module flow analysis: RNG ownership and thread-shared state.

The per-file lint layer (:mod:`repro.analysis.lint`) checks what one AST
can prove; this package answers the questions that need the whole tree —
an import graph, an approximate call graph, and two data-flow passes
over them.  ``analyze_paths`` returns the same :class:`LintResult` the
engine does, so ``repro lint --deep`` shares the baseline, noqa and
reporting machinery unchanged.
"""

from repro.analysis.flow.analyzer import DEEP_RULE_IDS, analyze_paths, analyze_project
from repro.analysis.flow.callgraph import CallGraph, FunctionInfo
from repro.analysis.flow.merge import DEFAULT_MERGES, MergeRegistry, MergeRule
from repro.analysis.flow.project import Binding, ModuleInfo, Project
from repro.analysis.flow.rng_pass import run_rng_pass
from repro.analysis.flow.shared_state import (
    MUTATING_METHODS,
    WorkerEntry,
    find_worker_entries,
    run_shared_state_pass,
)
from repro.analysis.flow.values import FunctionScope

__all__ = [
    "DEEP_RULE_IDS",
    "DEFAULT_MERGES",
    "MUTATING_METHODS",
    "Binding",
    "CallGraph",
    "FunctionInfo",
    "FunctionScope",
    "MergeRegistry",
    "MergeRule",
    "ModuleInfo",
    "Project",
    "WorkerEntry",
    "analyze_paths",
    "analyze_project",
    "find_worker_entries",
    "run_rng_pass",
    "run_shared_state_pass",
]

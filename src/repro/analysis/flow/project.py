"""Project model: every module parsed once, with bindings and imports.

The per-file lint engine sees one AST at a time; the flow passes need to
answer questions that span files — "which module does this name come
from?", "is this call target a class defined elsewhere in the tree?".
:class:`Project` loads every Python file under the analysis roots,
derives its dotted module name from the ``__init__.py`` chain, and
records a *binding table* per module: what each top-level name refers to
(an imported module, an imported symbol, a local function/class, or a
module-level object and the class that constructed it).

Everything here is pure ``ast`` — nothing is imported or executed, so
analyzing a module with deliberate violations (the test fixtures) is
safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigurationError


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of an expression ("np.random.default_rng")."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(dotted_name(node.func) + "()")
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class Binding:
    """What one top-level name in a module refers to.

    ``kind`` is one of ``module`` (an imported module; ``target`` is its
    dotted name), ``symbol`` (a ``from m import x``; ``target`` is
    ``m.x``), ``function`` / ``class`` (defined here; ``target`` is the
    qualified name), or ``object`` (a module-level assignment; ``target``
    is the bare name of the constructing class when the right-hand side
    is a recognizable ``SomeClass(...)`` call, else empty).
    """

    kind: str
    target: str = ""
    line: int = 0


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed project."""

    name: str
    path: str
    tree: ast.Module
    source_lines: list[str]
    bindings: dict[str, Binding] = field(default_factory=dict)

    @property
    def tail(self) -> str:
        """The last dotted segment ("campaign" for "repro.lab.campaign")."""
        return self.name.rpartition(".")[2]


def _module_name(file_path: Path) -> str:
    """Dotted module name derived from the ``__init__.py`` chain.

    ``src/repro/lab/campaign.py`` becomes ``repro.lab.campaign`` because
    every directory from ``repro`` down carries an ``__init__.py``; a
    loose file in a plain directory (the test fixtures) is a top-level
    module named after its stem.
    """
    parts = [file_path.stem] if file_path.stem != "__init__" else []
    directory = file_path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        directory = directory.parent
    return ".".join(parts) if parts else file_path.stem


def _constructor_name(value: ast.AST) -> str:
    """Bare class name when ``value`` looks like ``SomeClass(...)``."""
    if not isinstance(value, ast.Call):
        return ""
    tail = dotted_name(value.func).rpartition(".")[2]
    # Heuristic shared with the merge registry: constructors are
    # CapWords, plain calls are not.
    return tail if tail[:1].isupper() else ""


def _bind_imports(module: ModuleInfo, node: ast.stmt) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            name = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(".", 1)[0]
            module.bindings[name] = Binding("module", target, node.lineno)
    elif isinstance(node, ast.ImportFrom):
        base = node.module or ""
        if node.level:
            # Resolve ``from .sibling import x`` against this module.
            package = module.name.rsplit(".", node.level)[0]
            base = f"{package}.{base}" if base else package
        for alias in node.names:
            if alias.name == "*":
                continue
            name = alias.asname or alias.name
            module.bindings[name] = Binding(
                "symbol", f"{base}.{alias.name}", node.lineno
            )


def _bind_toplevel(module: ModuleInfo) -> None:
    """Fill the binding table from the module's top-level statements."""
    for node in module.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            _bind_imports(module, node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.bindings[node.name] = Binding(
                "function", f"{module.name}.{node.name}", node.lineno
            )
        elif isinstance(node, ast.ClassDef):
            module.bindings[node.name] = Binding(
                "class", f"{module.name}.{node.name}", node.lineno
            )
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(node, "value", None)
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                elements = target.elts if isinstance(target, ast.Tuple) else [target]
                for element in elements:
                    if isinstance(element, ast.Name):
                        module.bindings.setdefault(
                            element.id,
                            Binding(
                                "object",
                                _constructor_name(value) if value else "",
                                node.lineno,
                            ),
                        )


class Project:
    """Every module under the analysis roots, parsed and cross-indexed."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        #: module name -> project modules it imports (resolved edges only).
        self.imports: dict[str, set[str]] = {}
        for info in modules.values():
            self.imports[info.name] = self._import_edges(info)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def load(cls, paths: Sequence[str | Path], root: str | Path | None = None) -> "Project":
        """Parse every ``*.py`` under ``paths`` into a project model.

        ``root`` (default: the current directory) anchors the
        repo-relative paths findings are reported against — the same
        convention as :func:`repro.analysis.lint.engine.lint_paths`, so
        deep findings share the baseline's path space.  Files that do
        not parse are skipped here; the per-file engine already reports
        them as ``RPR000``.
        """
        root = Path(root if root is not None else ".").resolve()
        modules: dict[str, ModuleInfo] = {}
        for file_path in _python_files(paths):
            resolved = file_path.resolve()
            try:
                relative = resolved.relative_to(root).as_posix()
            except ValueError:
                relative = resolved.as_posix()
            source = file_path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=relative)
            except SyntaxError:
                continue
            info = ModuleInfo(
                name=_module_name(resolved),
                path=relative,
                tree=tree,
                source_lines=source.splitlines(),
            )
            _bind_toplevel(info)
            modules[info.name] = info
        return cls(modules)

    def _import_edges(self, info: ModuleInfo) -> set[str]:
        edges: set[str] = set()
        for binding in info.bindings.values():
            if binding.kind == "module" and binding.target in self.modules:
                edges.add(binding.target)
            elif binding.kind == "symbol":
                owner = binding.target.rpartition(".")[0]
                if binding.target in self.modules:
                    edges.add(binding.target)
                elif owner in self.modules:
                    edges.add(owner)
        return edges

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.modules)

    def sorted_modules(self) -> list[ModuleInfo]:
        """Modules in name order — the deterministic iteration order."""
        return [self.modules[name] for name in sorted(self.modules)]

    def resolve(self, module: ModuleInfo, name: str) -> Binding | None:
        """Resolve a (possibly dotted) name seen in ``module``.

        Follows one ``symbol`` hop into the defining module, so
        ``from repro.lab.datalog import DataLog`` resolves to that
        module's ``class`` binding.  Returns ``None`` for builtins and
        third-party names.
        """
        head, _, tail = name.partition(".")
        binding = module.bindings.get(head)
        if binding is None:
            return None
        if binding.kind == "module":
            target = self.modules.get(binding.target)
            if target is None or not tail:
                return binding
            return self.resolve(target, tail)
        if binding.kind == "symbol":
            owner, _, symbol = binding.target.rpartition(".")
            target = self.modules.get(owner)
            if target is not None and symbol in target.bindings:
                resolved = target.bindings[symbol]
                if tail and resolved.kind == "class":
                    # Method access through an imported class name.
                    return resolved
                return resolved if not tail else None
            if binding.target in self.modules and tail:
                return self.resolve(self.modules[binding.target], tail)
            return binding
        return binding

    def importers_of(self, name: str) -> list[str]:
        """Project modules that import the module called ``name``."""
        return sorted(m for m, edges in self.imports.items() if name in edges)


def _python_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        target = Path(raw)
        if target.is_file():
            candidates: Iterable[Path] = [target]
        elif target.is_dir():
            candidates = sorted(
                p for p in target.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            raise ConfigurationError(f"flow analysis target {target} does not exist")
        for path in candidates:
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(path)
    return files

"""RPR2xx — RNG stream ownership across the project.

The repo's determinism contract gives every stream exactly one owner: a
chip or bench derives its child stream from the campaign master and
nothing else ever draws from it.  Three ways that contract breaks, and
the rule that catches each:

==========  ==========================================================
RPR201      a stream escapes its owning scope — created at module level,
            written to a module global, or stored on a class attribute,
            where every importer shares (and advances) it
RPR202      one stream is consumed by both the campaign path and the
            fault-injection path, which PR 4 deliberately separated so
            a fault plan never perturbs clean-chip records
RPR203      a function draws from a stream that was not threaded through
            its parameters (a free/global variable), so its output
            depends on call order elsewhere in the program
==========  ==========================================================

All three are cross-file properties: single-file lint (RPR002) sees an
unseeded ``default_rng()``, but a correctly-seeded stream shared through
a module global looks locally fine in every file that touches it.
"""

from __future__ import annotations

import ast

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo
from repro.analysis.flow.project import ModuleInfo, Project, dotted_name
from repro.analysis.flow.values import (
    RNG_DRAW_METHODS,
    RNG_FACTORIES,
    RNG_PARAM_RE,
    FunctionScope,
)
from repro.analysis.lint.findings import Finding, Severity

#: Module tail segments that belong to the fault-injection path.
FAULT_SEGMENTS = ("fault",)

#: Module tail segments that belong to the campaign/measurement path.
CAMPAIGN_SEGMENTS = ("campaign", "measurement", "chip", "bench")


def _finding(rule_id: str, path: str, line: int, message: str, suggestion: str) -> Finding:
    return Finding(
        rule_id=rule_id,
        severity=Severity.ERROR,
        path=path,
        line=line,
        message=message,
        suggestion=suggestion,
    )


def _is_rng_creation(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func).rpartition(".")[2] in RNG_FACTORIES
    )


def _module_side(module_name: str) -> str | None:
    """Which determinism domain a module belongs to, if any."""
    tail = module_name.rpartition(".")[2]
    if any(segment in tail for segment in FAULT_SEGMENTS):
        return "fault"
    if any(segment in tail for segment in CAMPAIGN_SEGMENTS):
        return "campaign"
    return None


def _check_module_level(module: ModuleInfo, findings: list[Finding]) -> None:
    """RPR201: streams created at module scope are shared by construction."""
    for node in module.tree.body:
        value = getattr(node, "value", None)
        if not isinstance(node, (ast.Assign, ast.AnnAssign)) or value is None:
            continue
        if not _is_rng_creation(value):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                findings.append(
                    _finding(
                        "RPR201",
                        module.path,
                        node.lineno,
                        f"module-global RNG stream {target.id!r} is shared by "
                        "every importer",
                        "create the stream where it is owned (a chip, bench or "
                        "campaign) and thread it through parameters",
                    )
                )


class _FunctionRngChecker:
    """Runs the RPR201/202/203 checks over one function body."""

    def __init__(
        self,
        project: Project,
        graph: CallGraph,
        module: ModuleInfo,
        info: FunctionInfo,
        findings: list[Finding],
    ) -> None:
        self.project = project
        self.graph = graph
        self.module = module
        self.info = info
        self.findings = findings
        self.scope = FunctionScope(info.node)
        #: stream name -> {side: first line it was consumed on that side}.
        self.consumers: dict[str, dict[str, int]] = {}

    def run(self) -> None:
        for node in self.scope._body_nodes():
            if isinstance(node, ast.Assign):
                self._check_escape(node)
            elif isinstance(node, ast.Call):
                self._check_draw(node)
                self._check_cross_path(node)
        self._emit_cross_path()

    # -------------------------------------------------------------- #
    # RPR201 — escapes
    # -------------------------------------------------------------- #

    def _check_escape(self, node: ast.Assign) -> None:
        if not self.scope.is_rng_expr(node.value):
            return
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in self.scope.global_names:
                self.findings.append(
                    _finding(
                        "RPR201",
                        self.module.path,
                        node.lineno,
                        f"RNG stream escapes {self.info.bare_name}() into "
                        f"module global {target.id!r}",
                        "return the stream to the caller instead of publishing "
                        "it through module state",
                    )
                )
            elif isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                receiver = target.value.id
                if receiver == "self":
                    continue  # instance-owned streams are the blessed pattern
                binding = self.project.resolve(self.module, receiver)
                if binding is not None and binding.kind == "class":
                    self.findings.append(
                        _finding(
                            "RPR201",
                            self.module.path,
                            node.lineno,
                            f"RNG stream escapes {self.info.bare_name}() into "
                            f"class attribute {receiver}.{target.attr}",
                            "store the stream on the instance (self.*) so each "
                            "object owns its own state",
                        )
                    )

    # -------------------------------------------------------------- #
    # RPR203 — draws from non-threaded streams
    # -------------------------------------------------------------- #

    def _check_draw(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in RNG_DRAW_METHODS):
            return
        receiver = func.value
        if not isinstance(receiver, ast.Name):
            return  # self._rng / obj.rng draws are owner-mediated
        origin = self.scope.origin_of(receiver.id)
        if origin in ("param", "local"):
            return
        # A free name is only an RNG finding when we have positive
        # evidence it is a stream: a conventional name, or a module
        # binding whose value was an RNG factory call.
        looks_rng = bool(RNG_PARAM_RE.search(receiver.id))
        binding = self.module.bindings.get(receiver.id)
        if binding is not None and binding.kind == "object":
            value_line = binding.line
            looks_rng = looks_rng or self._module_binding_is_rng(receiver.id)
        else:
            value_line = 0
        if not looks_rng and binding is None:
            return
        if not looks_rng:
            return
        # No line number in the message: fingerprints must survive the
        # definition moving (the baseline contract).
        where = "a module global" if value_line else "an enclosing scope"
        self.findings.append(
            _finding(
                "RPR203",
                self.module.path,
                node.lineno,
                f"{self.info.bare_name}() draws from RNG stream "
                f"{receiver.id!r} captured from {where}, not threaded "
                "through its parameters",
                "accept the stream as a parameter so callers control "
                "(and tests can replay) the draw order",
            )
        )

    def _module_binding_is_rng(self, name: str) -> bool:
        for node in self.module.tree.body:
            value = getattr(node, "value", None)
            if not isinstance(node, (ast.Assign, ast.AnnAssign)) or value is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return _is_rng_creation(value)
        return False

    # -------------------------------------------------------------- #
    # RPR202 — campaign/fault cross-consumption
    # -------------------------------------------------------------- #

    def _check_cross_path(self, node: ast.Call) -> None:
        callee = self._callee_module(node)
        if callee is None:
            return
        side = _module_side(callee)
        if side is None:
            return
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            if isinstance(arg, ast.Name) and self.scope.origin_of(arg.id) is not None:
                if not self.scope.is_rng_expr(arg):
                    continue
                sides = self.consumers.setdefault(arg.id, {})
                sides.setdefault(side, node.lineno)

    def _callee_module(self, node: ast.Call) -> str | None:
        """The project module a call target resolves into, if any."""
        name = dotted_name(node.func)
        if not name:
            return None
        binding = self.project.resolve(self.module, name)
        if binding is None or binding.kind not in ("function", "class"):
            # ``obj.method(...)``: fall back to the unique project class
            # defining that method.
            if isinstance(node.func, ast.Attribute):
                owners = {
                    self.graph.functions[q].module
                    for q in self.graph.methods_by_name.get(node.func.attr, ())
                }
                if len(owners) == 1:
                    return next(iter(owners))
            return None
        return binding.target.rpartition(".")[0]

    def _emit_cross_path(self) -> None:
        for name in sorted(self.consumers):
            sides = self.consumers[name]
            if "fault" in sides and "campaign" in sides:
                line = max(sides.values())
                self.findings.append(
                    _finding(
                        "RPR202",
                        self.module.path,
                        line,
                        f"RNG stream {name!r} is consumed by both the campaign "
                        "path and the fault-injection path in "
                        f"{self.info.bare_name}()",
                        "spawn independent child streams so fault plans never "
                        "perturb clean-chip records",
                    )
                )


def run_rng_pass(project: Project, graph: CallGraph) -> list[Finding]:
    """The RPR2xx findings for a loaded project, in deterministic order."""
    findings: list[Finding] = []
    for module in project.sorted_modules():
        _check_module_level(module, findings)
    for qualname in sorted(graph.functions):
        info = graph.functions[qualname]
        module = project.modules[info.module]
        _FunctionRngChecker(project, graph, module, info, findings).run()
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return findings

"""Value tracking for RNG streams within one function scope.

The RNG pass needs to know, for every name used inside a function,
whether it (probably) holds a ``numpy.random.Generator`` /
``SeedSequence`` and where that stream came from: created locally,
threaded in through a parameter, or captured from an enclosing scope.
:class:`FunctionScope` computes that with two deliberately simple fixed
point passes over the function body — no interprocedural inference, the
same altitude as the rest of the flow layer.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.flow.project import dotted_name

#: Call tails that create a new RNG stream.
RNG_FACTORIES = frozenset({"default_rng", "SeedSequence"})

#: Generator methods that consume (advance) the stream.  ``spawn`` is
#: included: it advances the parent's state exactly like a draw.
RNG_DRAW_METHODS = frozenset(
    {
        "binomial",
        "choice",
        "exponential",
        "gamma",
        "integers",
        "lognormal",
        "normal",
        "permutation",
        "poisson",
        "random",
        "shuffle",
        "spawn",
        "standard_normal",
        "uniform",
    }
)

#: Parameter names that conventionally carry an RNG stream.
RNG_PARAM_RE = re.compile(r"(^|_)(rng|stream|seed_seq|seedsequence|generator)s?$")

#: Annotation substrings that mark a parameter as stream-typed.
_RNG_ANNOTATIONS = ("Generator", "SeedSequence")


def is_rng_param(arg: ast.arg) -> bool:
    """Whether a parameter conventionally carries an RNG stream."""
    if RNG_PARAM_RE.search(arg.arg):
        return True
    if arg.annotation is not None:
        text = ast.unparse(arg.annotation)
        return any(marker in text for marker in _RNG_ANNOTATIONS)
    return False


@dataclass
class FunctionScope:
    """RNG-relevant names of one function body.

    ``rng_names`` maps each stream-holding name to its origin:
    ``"param"`` (threaded in), ``"local"`` (created or derived here) or
    ``"free"`` (read from an enclosing scope — the suspicious case).
    """

    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: set[str] = field(default_factory=set)
    locals: set[str] = field(default_factory=set)
    rng_names: dict[str, str] = field(default_factory=dict)
    global_names: set[str] = field(default_factory=set)
    nonlocal_names: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        args = self.node.args
        every = [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
        self.params = {arg.arg for arg in every}
        for arg in every:
            if is_rng_param(arg):
                self.rng_names[arg.arg] = "param"
        self._collect()

    # ------------------------------------------------------------------ #
    # body analysis
    # ------------------------------------------------------------------ #

    def _body_nodes(self) -> list[ast.AST]:
        """Every node of the body, nested function/class bodies excluded."""
        nodes: list[ast.AST] = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                nodes.append(child)
                visit(child)

        visit(self.node)
        return nodes

    def _collect(self) -> None:
        nodes = self._body_nodes()
        for node in nodes:
            if isinstance(node, ast.Global):
                self.global_names.update(node.names)
            elif isinstance(node, ast.Nonlocal):
                self.nonlocal_names.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    for name in _target_names(target):
                        self.locals.add(name)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self.locals.update(_target_names(node.target))
            elif isinstance(node, ast.comprehension):
                self.locals.update(_target_names(node.target))
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                self.locals.update(_target_names(node.optional_vars))
        # Names declared global/nonlocal are not locals even when written.
        self.locals -= self.global_names | self.nonlocal_names
        # Fixed point: an assignment from an RNG-valued expression makes
        # its targets RNG-valued too; two sweeps close chains like
        # ``streams = master.spawn(2); chip_stream = streams[0]``.
        for _ in range(2):
            changed = False
            for node in nodes:
                if not isinstance(node, ast.Assign):
                    continue
                if not self.is_rng_expr(node.value):
                    continue
                for target in node.targets:
                    for name in _target_names(target):
                        origin = "local" if name in self.locals else "free"
                        if self.rng_names.get(name) != origin:
                            self.rng_names[name] = origin
                            changed = True
            if not changed:
                break

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #

    def is_rng_expr(self, node: ast.AST) -> bool:
        """Whether an expression (probably) evaluates to an RNG stream."""
        if isinstance(node, ast.Name):
            return node.id in self.rng_names or bool(RNG_PARAM_RE.search(node.id))
        if isinstance(node, ast.Subscript):
            return self.is_rng_expr(node.value)
        if isinstance(node, ast.Call):
            tail = dotted_name(node.func).rpartition(".")[2]
            if tail in RNG_FACTORIES:
                return True
            if tail == "spawn" and isinstance(node.func, ast.Attribute):
                return self.is_rng_expr(node.func.value)
        return False

    def origin_of(self, name: str) -> str | None:
        """``"param"``/``"local"``/``"free"`` for a stream name, else None."""
        origin = self.rng_names.get(name)
        if origin is not None:
            return origin
        if name in self.params:
            return "param"
        if name in self.locals:
            return "local"
        return None


def _target_names(target: ast.AST) -> list[str]:
    """Plain names bound by an assignment target (tuples flattened)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []
